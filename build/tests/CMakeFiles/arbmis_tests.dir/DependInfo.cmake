
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aggregate.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_aggregate.cpp.o.d"
  "/root/repo/tests/test_arb_mis.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_arb_mis.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_arb_mis.cpp.o.d"
  "/root/repo/tests/test_arboricity_exact.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_arboricity_exact.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_arboricity_exact.cpp.o.d"
  "/root/repo/tests/test_bfs_rooting.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_bfs_rooting.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_bfs_rooting.cpp.o.d"
  "/root/repo/tests/test_bit_metivier.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_bit_metivier.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_bit_metivier.cpp.o.d"
  "/root/repo/tests/test_bounded_arb.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_bounded_arb.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_bounded_arb.cpp.o.d"
  "/root/repo/tests/test_cole_vishkin.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_cole_vishkin.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_cole_vishkin.cpp.o.d"
  "/root/repo/tests/test_congest_compliance.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_congest_compliance.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_congest_compliance.cpp.o.d"
  "/root/repo/tests/test_degree_reduction.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_degree_reduction.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_degree_reduction.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_distributed_verify.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_distributed_verify.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_distributed_verify.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_forest_decomposition.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_forest_decomposition.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_forest_decomposition.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gather_solve.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_gather_solve.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_gather_solve.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_ghaffari_arb.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_ghaffari_arb.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_ghaffari_arb.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_linial.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_linial.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_linial.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_lw_tree_mis.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_lw_tree_mis.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_lw_tree_mis.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_mis_algorithms.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_mis_algorithms.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_mis_algorithms.cpp.o.d"
  "/root/repo/tests/test_orientation.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_orientation.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_orientation.cpp.o.d"
  "/root/repo/tests/test_orientation_opt.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_orientation_opt.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_orientation_opt.cpp.o.d"
  "/root/repo/tests/test_params.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_params.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_params.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_readk_bounds.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_readk_bounds.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_readk_bounds.cpp.o.d"
  "/root/repo/tests/test_readk_events.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_readk_events.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_readk_events.cpp.o.d"
  "/root/repo/tests/test_readk_family.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_readk_family.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_readk_family.cpp.o.d"
  "/root/repo/tests/test_readk_montecarlo.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_readk_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_readk_montecarlo.cpp.o.d"
  "/root/repo/tests/test_shattering.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_shattering.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_shattering.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sparse_mis.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_sparse_mis.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_sparse_mis.cpp.o.d"
  "/root/repo/tests/test_subgraph.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_subgraph.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_subgraph.cpp.o.d"
  "/root/repo/tests/test_tree_mis.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_tree_mis.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_tree_mis.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_verifier.cpp" "tests/CMakeFiles/arbmis_tests.dir/test_verifier.cpp.o" "gcc" "tests/CMakeFiles/arbmis_tests.dir/test_verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/arbmis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/readk/CMakeFiles/arbmis_readk.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/arbmis_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arbmis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
