# Empty dependencies file for arbmis_tests.
# This may be replaced when dependencies are built.
