# Empty compiler generated dependencies file for arbmis_core.
# This may be replaced when dependencies are built.
