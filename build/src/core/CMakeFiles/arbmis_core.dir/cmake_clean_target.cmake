file(REMOVE_RECURSE
  "libarbmis_core.a"
)
