
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arb_mis.cpp" "src/core/CMakeFiles/arbmis_core.dir/arb_mis.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/arb_mis.cpp.o.d"
  "/root/repo/src/core/bounded_arb.cpp" "src/core/CMakeFiles/arbmis_core.dir/bounded_arb.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/bounded_arb.cpp.o.d"
  "/root/repo/src/core/ghaffari_arb.cpp" "src/core/CMakeFiles/arbmis_core.dir/ghaffari_arb.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/ghaffari_arb.cpp.o.d"
  "/root/repo/src/core/invariant.cpp" "src/core/CMakeFiles/arbmis_core.dir/invariant.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/invariant.cpp.o.d"
  "/root/repo/src/core/lw_tree_mis.cpp" "src/core/CMakeFiles/arbmis_core.dir/lw_tree_mis.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/lw_tree_mis.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/arbmis_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/params.cpp.o.d"
  "/root/repo/src/core/shattering.cpp" "src/core/CMakeFiles/arbmis_core.dir/shattering.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/shattering.cpp.o.d"
  "/root/repo/src/core/tree_mis.cpp" "src/core/CMakeFiles/arbmis_core.dir/tree_mis.cpp.o" "gcc" "src/core/CMakeFiles/arbmis_core.dir/tree_mis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mis/CMakeFiles/arbmis_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arbmis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
