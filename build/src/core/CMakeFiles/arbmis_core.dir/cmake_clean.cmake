file(REMOVE_RECURSE
  "CMakeFiles/arbmis_core.dir/arb_mis.cpp.o"
  "CMakeFiles/arbmis_core.dir/arb_mis.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/bounded_arb.cpp.o"
  "CMakeFiles/arbmis_core.dir/bounded_arb.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/ghaffari_arb.cpp.o"
  "CMakeFiles/arbmis_core.dir/ghaffari_arb.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/invariant.cpp.o"
  "CMakeFiles/arbmis_core.dir/invariant.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/lw_tree_mis.cpp.o"
  "CMakeFiles/arbmis_core.dir/lw_tree_mis.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/params.cpp.o"
  "CMakeFiles/arbmis_core.dir/params.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/shattering.cpp.o"
  "CMakeFiles/arbmis_core.dir/shattering.cpp.o.d"
  "CMakeFiles/arbmis_core.dir/tree_mis.cpp.o"
  "CMakeFiles/arbmis_core.dir/tree_mis.cpp.o.d"
  "libarbmis_core.a"
  "libarbmis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbmis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
