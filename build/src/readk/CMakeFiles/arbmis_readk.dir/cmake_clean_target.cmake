file(REMOVE_RECURSE
  "libarbmis_readk.a"
)
