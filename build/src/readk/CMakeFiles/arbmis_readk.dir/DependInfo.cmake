
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/readk/bounds.cpp" "src/readk/CMakeFiles/arbmis_readk.dir/bounds.cpp.o" "gcc" "src/readk/CMakeFiles/arbmis_readk.dir/bounds.cpp.o.d"
  "/root/repo/src/readk/events.cpp" "src/readk/CMakeFiles/arbmis_readk.dir/events.cpp.o" "gcc" "src/readk/CMakeFiles/arbmis_readk.dir/events.cpp.o.d"
  "/root/repo/src/readk/family.cpp" "src/readk/CMakeFiles/arbmis_readk.dir/family.cpp.o" "gcc" "src/readk/CMakeFiles/arbmis_readk.dir/family.cpp.o.d"
  "/root/repo/src/readk/montecarlo.cpp" "src/readk/CMakeFiles/arbmis_readk.dir/montecarlo.cpp.o" "gcc" "src/readk/CMakeFiles/arbmis_readk.dir/montecarlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
