file(REMOVE_RECURSE
  "CMakeFiles/arbmis_readk.dir/bounds.cpp.o"
  "CMakeFiles/arbmis_readk.dir/bounds.cpp.o.d"
  "CMakeFiles/arbmis_readk.dir/events.cpp.o"
  "CMakeFiles/arbmis_readk.dir/events.cpp.o.d"
  "CMakeFiles/arbmis_readk.dir/family.cpp.o"
  "CMakeFiles/arbmis_readk.dir/family.cpp.o.d"
  "CMakeFiles/arbmis_readk.dir/montecarlo.cpp.o"
  "CMakeFiles/arbmis_readk.dir/montecarlo.cpp.o.d"
  "libarbmis_readk.a"
  "libarbmis_readk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbmis_readk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
