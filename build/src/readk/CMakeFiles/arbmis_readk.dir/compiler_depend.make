# Empty compiler generated dependencies file for arbmis_readk.
# This may be replaced when dependencies are built.
