# Empty dependencies file for arbmis_mis.
# This may be replaced when dependencies are built.
