file(REMOVE_RECURSE
  "libarbmis_mis.a"
)
