
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mis/bit_metivier.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/bit_metivier.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/bit_metivier.cpp.o.d"
  "/root/repo/src/mis/cole_vishkin.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/cole_vishkin.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/cole_vishkin.cpp.o.d"
  "/root/repo/src/mis/color_sweep.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/color_sweep.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/color_sweep.cpp.o.d"
  "/root/repo/src/mis/degree_reduction.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/degree_reduction.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/degree_reduction.cpp.o.d"
  "/root/repo/src/mis/distributed_verify.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/distributed_verify.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/distributed_verify.cpp.o.d"
  "/root/repo/src/mis/forest_decomposition.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/forest_decomposition.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/forest_decomposition.cpp.o.d"
  "/root/repo/src/mis/gather_solve.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/gather_solve.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/gather_solve.cpp.o.d"
  "/root/repo/src/mis/ghaffari.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/ghaffari.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/ghaffari.cpp.o.d"
  "/root/repo/src/mis/greedy.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/greedy.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/greedy.cpp.o.d"
  "/root/repo/src/mis/linial.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/linial.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/linial.cpp.o.d"
  "/root/repo/src/mis/luby.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/luby.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/luby.cpp.o.d"
  "/root/repo/src/mis/matching.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/matching.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/matching.cpp.o.d"
  "/root/repo/src/mis/metivier.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/metivier.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/metivier.cpp.o.d"
  "/root/repo/src/mis/slow_local.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/slow_local.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/slow_local.cpp.o.d"
  "/root/repo/src/mis/sparse_mis.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/sparse_mis.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/sparse_mis.cpp.o.d"
  "/root/repo/src/mis/verifier.cpp" "src/mis/CMakeFiles/arbmis_mis.dir/verifier.cpp.o" "gcc" "src/mis/CMakeFiles/arbmis_mis.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/arbmis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
