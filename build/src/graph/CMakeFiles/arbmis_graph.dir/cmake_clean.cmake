file(REMOVE_RECURSE
  "CMakeFiles/arbmis_graph.dir/arboricity_exact.cpp.o"
  "CMakeFiles/arbmis_graph.dir/arboricity_exact.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/generators.cpp.o"
  "CMakeFiles/arbmis_graph.dir/generators.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/graph.cpp.o"
  "CMakeFiles/arbmis_graph.dir/graph.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/io.cpp.o"
  "CMakeFiles/arbmis_graph.dir/io.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/orientation.cpp.o"
  "CMakeFiles/arbmis_graph.dir/orientation.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/orientation_opt.cpp.o"
  "CMakeFiles/arbmis_graph.dir/orientation_opt.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/properties.cpp.o"
  "CMakeFiles/arbmis_graph.dir/properties.cpp.o.d"
  "CMakeFiles/arbmis_graph.dir/subgraph.cpp.o"
  "CMakeFiles/arbmis_graph.dir/subgraph.cpp.o.d"
  "libarbmis_graph.a"
  "libarbmis_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbmis_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
