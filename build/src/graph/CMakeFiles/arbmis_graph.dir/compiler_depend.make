# Empty compiler generated dependencies file for arbmis_graph.
# This may be replaced when dependencies are built.
