
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/arboricity_exact.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/arboricity_exact.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/arboricity_exact.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/orientation.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/orientation.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/orientation.cpp.o.d"
  "/root/repo/src/graph/orientation_opt.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/orientation_opt.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/orientation_opt.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/properties.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/properties.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/arbmis_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/arbmis_graph.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
