file(REMOVE_RECURSE
  "libarbmis_graph.a"
)
