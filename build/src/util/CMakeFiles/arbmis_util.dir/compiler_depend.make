# Empty compiler generated dependencies file for arbmis_util.
# This may be replaced when dependencies are built.
