file(REMOVE_RECURSE
  "libarbmis_util.a"
)
