file(REMOVE_RECURSE
  "CMakeFiles/arbmis_util.dir/histogram.cpp.o"
  "CMakeFiles/arbmis_util.dir/histogram.cpp.o.d"
  "CMakeFiles/arbmis_util.dir/log.cpp.o"
  "CMakeFiles/arbmis_util.dir/log.cpp.o.d"
  "CMakeFiles/arbmis_util.dir/stats.cpp.o"
  "CMakeFiles/arbmis_util.dir/stats.cpp.o.d"
  "CMakeFiles/arbmis_util.dir/table.cpp.o"
  "CMakeFiles/arbmis_util.dir/table.cpp.o.d"
  "libarbmis_util.a"
  "libarbmis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbmis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
