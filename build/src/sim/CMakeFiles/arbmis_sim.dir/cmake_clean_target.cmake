file(REMOVE_RECURSE
  "libarbmis_sim.a"
)
