file(REMOVE_RECURSE
  "CMakeFiles/arbmis_sim.dir/aggregate.cpp.o"
  "CMakeFiles/arbmis_sim.dir/aggregate.cpp.o.d"
  "CMakeFiles/arbmis_sim.dir/bfs_rooting.cpp.o"
  "CMakeFiles/arbmis_sim.dir/bfs_rooting.cpp.o.d"
  "CMakeFiles/arbmis_sim.dir/network.cpp.o"
  "CMakeFiles/arbmis_sim.dir/network.cpp.o.d"
  "CMakeFiles/arbmis_sim.dir/trace.cpp.o"
  "CMakeFiles/arbmis_sim.dir/trace.cpp.o.d"
  "libarbmis_sim.a"
  "libarbmis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbmis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
