# Empty compiler generated dependencies file for arbmis_sim.
# This may be replaced when dependencies are built.
