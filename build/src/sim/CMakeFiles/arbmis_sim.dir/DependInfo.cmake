
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/aggregate.cpp" "src/sim/CMakeFiles/arbmis_sim.dir/aggregate.cpp.o" "gcc" "src/sim/CMakeFiles/arbmis_sim.dir/aggregate.cpp.o.d"
  "/root/repo/src/sim/bfs_rooting.cpp" "src/sim/CMakeFiles/arbmis_sim.dir/bfs_rooting.cpp.o" "gcc" "src/sim/CMakeFiles/arbmis_sim.dir/bfs_rooting.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/arbmis_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/arbmis_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/arbmis_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/arbmis_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
