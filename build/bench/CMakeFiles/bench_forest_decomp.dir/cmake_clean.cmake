file(REMOVE_RECURSE
  "CMakeFiles/bench_forest_decomp.dir/bench_forest_decomp.cpp.o"
  "CMakeFiles/bench_forest_decomp.dir/bench_forest_decomp.cpp.o.d"
  "bench_forest_decomp"
  "bench_forest_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forest_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
