# Empty dependencies file for bench_forest_decomp.
# This may be replaced when dependencies are built.
