file(REMOVE_RECURSE
  "CMakeFiles/bench_shattering.dir/bench_shattering.cpp.o"
  "CMakeFiles/bench_shattering.dir/bench_shattering.cpp.o.d"
  "bench_shattering"
  "bench_shattering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shattering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
