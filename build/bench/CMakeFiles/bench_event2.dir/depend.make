# Empty dependencies file for bench_event2.
# This may be replaced when dependencies are built.
