file(REMOVE_RECURSE
  "CMakeFiles/bench_event2.dir/bench_event2.cpp.o"
  "CMakeFiles/bench_event2.dir/bench_event2.cpp.o.d"
  "bench_event2"
  "bench_event2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
