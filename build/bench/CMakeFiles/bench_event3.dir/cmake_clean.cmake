file(REMOVE_RECURSE
  "CMakeFiles/bench_event3.dir/bench_event3.cpp.o"
  "CMakeFiles/bench_event3.dir/bench_event3.cpp.o.d"
  "bench_event3"
  "bench_event3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
