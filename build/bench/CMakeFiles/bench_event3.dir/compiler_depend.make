# Empty compiler generated dependencies file for bench_event3.
# This may be replaced when dependencies are built.
