# Empty compiler generated dependencies file for bench_event1.
# This may be replaced when dependencies are built.
