file(REMOVE_RECURSE
  "CMakeFiles/bench_event1.dir/bench_event1.cpp.o"
  "CMakeFiles/bench_event1.dir/bench_event1.cpp.o.d"
  "bench_event1"
  "bench_event1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
