file(REMOVE_RECURSE
  "CMakeFiles/bench_bit_complexity.dir/bench_bit_complexity.cpp.o"
  "CMakeFiles/bench_bit_complexity.dir/bench_bit_complexity.cpp.o.d"
  "bench_bit_complexity"
  "bench_bit_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bit_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
