file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_history.dir/bench_tree_history.cpp.o"
  "CMakeFiles/bench_tree_history.dir/bench_tree_history.cpp.o.d"
  "bench_tree_history"
  "bench_tree_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
