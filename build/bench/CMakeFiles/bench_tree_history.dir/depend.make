# Empty dependencies file for bench_tree_history.
# This may be replaced when dependencies are built.
