file(REMOVE_RECURSE
  "CMakeFiles/bench_bad_probability.dir/bench_bad_probability.cpp.o"
  "CMakeFiles/bench_bad_probability.dir/bench_bad_probability.cpp.o.d"
  "bench_bad_probability"
  "bench_bad_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bad_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
