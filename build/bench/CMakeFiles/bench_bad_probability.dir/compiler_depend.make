# Empty compiler generated dependencies file for bench_bad_probability.
# This may be replaced when dependencies are built.
