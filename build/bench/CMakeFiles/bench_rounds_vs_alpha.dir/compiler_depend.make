# Empty compiler generated dependencies file for bench_rounds_vs_alpha.
# This may be replaced when dependencies are built.
