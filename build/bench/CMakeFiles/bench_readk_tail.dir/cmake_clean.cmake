file(REMOVE_RECURSE
  "CMakeFiles/bench_readk_tail.dir/bench_readk_tail.cpp.o"
  "CMakeFiles/bench_readk_tail.dir/bench_readk_tail.cpp.o.d"
  "bench_readk_tail"
  "bench_readk_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readk_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
