# Empty compiler generated dependencies file for bench_readk_tail.
# This may be replaced when dependencies are built.
