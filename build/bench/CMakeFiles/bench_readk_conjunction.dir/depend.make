# Empty dependencies file for bench_readk_conjunction.
# This may be replaced when dependencies are built.
