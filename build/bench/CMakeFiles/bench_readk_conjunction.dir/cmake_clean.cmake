file(REMOVE_RECURSE
  "CMakeFiles/bench_readk_conjunction.dir/bench_readk_conjunction.cpp.o"
  "CMakeFiles/bench_readk_conjunction.dir/bench_readk_conjunction.cpp.o.d"
  "bench_readk_conjunction"
  "bench_readk_conjunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readk_conjunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
