# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "800" "2" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_planar_mis "/root/repo/build/examples/planar_mis" "600" "3")
set_tests_properties(example_planar_mis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shattering_demo "/root/repo/build/examples/shattering_demo" "2000" "2" "4" "1")
set_tests_properties(example_shattering_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_readk_playground "/root/repo/build/examples/readk_playground" "500" "2" "2000" "1")
set_tests_properties(example_readk_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_congest_trace "/root/repo/build/examples/congest_trace" "16" "2")
set_tests_properties(example_congest_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_arboricity_tools "/root/repo/build/examples/arboricity_tools" "gen" "planar" "300" "1")
set_tests_properties(example_arboricity_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
