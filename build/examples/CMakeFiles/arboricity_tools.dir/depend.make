# Empty dependencies file for arboricity_tools.
# This may be replaced when dependencies are built.
