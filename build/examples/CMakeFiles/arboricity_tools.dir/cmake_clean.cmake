file(REMOVE_RECURSE
  "CMakeFiles/arboricity_tools.dir/arboricity_tools.cpp.o"
  "CMakeFiles/arboricity_tools.dir/arboricity_tools.cpp.o.d"
  "arboricity_tools"
  "arboricity_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arboricity_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
