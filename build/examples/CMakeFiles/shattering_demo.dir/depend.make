# Empty dependencies file for shattering_demo.
# This may be replaced when dependencies are built.
