file(REMOVE_RECURSE
  "CMakeFiles/shattering_demo.dir/shattering_demo.cpp.o"
  "CMakeFiles/shattering_demo.dir/shattering_demo.cpp.o.d"
  "shattering_demo"
  "shattering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shattering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
