file(REMOVE_RECURSE
  "CMakeFiles/congest_trace.dir/congest_trace.cpp.o"
  "CMakeFiles/congest_trace.dir/congest_trace.cpp.o.d"
  "congest_trace"
  "congest_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
