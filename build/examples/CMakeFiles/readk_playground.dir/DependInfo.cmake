
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/readk_playground.cpp" "examples/CMakeFiles/readk_playground.dir/readk_playground.cpp.o" "gcc" "examples/CMakeFiles/readk_playground.dir/readk_playground.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/arbmis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/readk/CMakeFiles/arbmis_readk.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/arbmis_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arbmis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/arbmis_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arbmis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
