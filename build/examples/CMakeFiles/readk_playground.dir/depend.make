# Empty dependencies file for readk_playground.
# This may be replaced when dependencies are built.
