file(REMOVE_RECURSE
  "CMakeFiles/readk_playground.dir/readk_playground.cpp.o"
  "CMakeFiles/readk_playground.dir/readk_playground.cpp.o.d"
  "readk_playground"
  "readk_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readk_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
