file(REMOVE_RECURSE
  "CMakeFiles/planar_mis.dir/planar_mis.cpp.o"
  "CMakeFiles/planar_mis.dir/planar_mis.cpp.o.d"
  "planar_mis"
  "planar_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
