# Empty dependencies file for planar_mis.
# This may be replaced when dependencies are built.
