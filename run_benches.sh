#!/bin/bash
cd /root/repo
for b in build/bench/bench_*; do
  name=$(basename "$b")
  echo "=== running $name ==="
  timeout 3000 "$b" > "results/${name}.txt" 2>&1
  echo "=== $name done rc=$? ==="
done
echo ALL_BENCHES_DONE
