#!/bin/bash
# Runs every experiment binary in bench/ and captures its report under
# results/. The list below mirrors the arbmis_bench() targets in
# bench/CMakeLists.txt (plus bench_micro) — regenerate it when adding a
# bench target. Fails on the first bench that exits nonzero, so a broken
# experiment (e.g. a fault-tolerance cell that misses certification)
# fails the whole sweep instead of scrolling by.
#
# Timing results are only meaningful from a Release tree, so the script
# refuses anything else, twice over: the configure-time stamp written by
# the top-level CMakeLists must say Release, and each timing-sensitive
# binary must report build=Release via --build-info (NDEBUG check compiled
# into the binary itself). Point BUILD_DIR at build-bench to use the
# dedicated `bench` preset tree; the default tree is Release too.
set -euo pipefail
cd /root/repo

BUILD_DIR="${BUILD_DIR:-build}"

stamp="${BUILD_DIR}/arbmis_build_type.txt"
if [[ ! -f "$stamp" ]]; then
  echo "=== MISSING ${stamp} (reconfigure: cmake --preset bench) ===" >&2
  exit 1
fi
build_type="$(tr -d '[:space:]' < "$stamp")"
if [[ "$build_type" != "Release" ]]; then
  echo "=== REFUSING non-Release bench tree: ${BUILD_DIR} is ${build_type}" \
       "(use cmake --preset bench / --preset default) ===" >&2
  exit 1
fi

BENCHES=(
  bench_readk_conjunction   # T1
  bench_readk_tail          # T2
  bench_event1              # F1
  bench_event2              # F2
  bench_event3              # F3
  bench_bad_probability     # T3
  bench_shattering          # F4
  bench_rounds_vs_n         # F5
  bench_rounds_vs_alpha     # F6
  bench_comparison          # T4
  bench_forest_decomp       # T5
  bench_ablation            # A1-A4
  bench_tree_history        # T6
  bench_bit_complexity      # T7
  bench_sim_parallel        # P1
  bench_sim_arena           # P2
  bench_fault_tolerance     # R1
  bench_mmap_graph          # P3
  bench_engine              # E1
  bench_serve               # S1
  bench_micro               # M1
)

mkdir -p results
for name in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "$bin" ]]; then
    echo "=== MISSING $name (build bench targets first) ===" >&2
    exit 1
  fi
  if ! "$bin" --build-info | grep -q 'build=Release'; then
    echo "=== REFUSING $name: --build-info is not build=Release ===" >&2
    exit 1
  fi
  echo "=== running $name ==="
  case "$name" in
    bench_micro)
      # google-benchmark binary: its wrapper main translates --json into
      # native gbench flags; bench_common.h flags are not understood.
      timeout 3000 "$bin" --json results/BENCH_micro.json \
        > "results/${name}.txt" 2>&1
      ;;
    bench_sim_arena)
      timeout 3000 "$bin" --json results/BENCH_sim_arena.json "$@" \
        > "results/${name}.txt" 2>&1
      ;;
    bench_sim_parallel)
      timeout 3000 "$bin" --json results/BENCH_sim_parallel.json "$@" \
        > "results/${name}.txt" 2>&1
      ;;
    bench_mmap_graph)
      timeout 3000 "$bin" --json results/BENCH_mmap_graph.json "$@" \
        > "results/${name}.txt" 2>&1
      ;;
    bench_engine)
      timeout 3000 "$bin" --json results/BENCH_engine.json "$@" \
        > "results/${name}.txt" 2>&1
      ;;
    bench_serve)
      timeout 3000 "$bin" --json results/BENCH_serve.json "$@" \
        > "results/${name}.txt" 2>&1
      ;;
    *)
      timeout 3000 "$bin" "$@" > "results/${name}.txt" 2>&1
      ;;
  esac
  echo "=== $name done ==="
done
echo ALL_BENCHES_DONE
