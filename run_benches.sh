#!/bin/bash
# Runs every experiment binary in bench/ and captures its report under
# results/. The list below mirrors the arbmis_bench() targets in
# bench/CMakeLists.txt (plus bench_micro) — regenerate it when adding a
# bench target. Fails on the first bench that exits nonzero, so a broken
# experiment (e.g. a fault-tolerance cell that misses certification)
# fails the whole sweep instead of scrolling by.
set -euo pipefail
cd /root/repo

BENCHES=(
  bench_readk_conjunction   # T1
  bench_readk_tail          # T2
  bench_event1              # F1
  bench_event2              # F2
  bench_event3              # F3
  bench_bad_probability     # T3
  bench_shattering          # F4
  bench_rounds_vs_n         # F5
  bench_rounds_vs_alpha     # F6
  bench_comparison          # T4
  bench_forest_decomp       # T5
  bench_ablation            # A1-A4
  bench_tree_history        # T6
  bench_bit_complexity      # T7
  bench_sim_parallel        # P1
  bench_fault_tolerance     # R1
  bench_micro               # M1
)

mkdir -p results
for name in "${BENCHES[@]}"; do
  bin="build/bench/${name}"
  if [[ ! -x "$bin" ]]; then
    echo "=== MISSING $name (build bench targets first) ===" >&2
    exit 1
  fi
  echo "=== running $name ==="
  if [[ "$name" == "bench_micro" ]]; then
    # google-benchmark binary: rejects the bench_common.h flags.
    timeout 3000 "$bin" > "results/${name}.txt" 2>&1
  else
    timeout 3000 "$bin" "$@" > "results/${name}.txt" 2>&1
  fi
  echo "=== $name done ==="
done
echo ALL_BENCHES_DONE
