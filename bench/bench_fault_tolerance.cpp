// Experiment R1: fault tolerance of the MIS stack. Sweeps message drop
// rate x node crash rate x algorithm (the paper's Algorithm 1 via
// shatter_driver, Luby B, Ghaffari), runs each cell through ResilientMis
// (fault/resilient_mis.h), and reports whether a certified MIS was
// reached, how many attempts it took, and the rounds-to-recovery. Prints
// a table and writes machine-readable results to
// results/BENCH_fault_tolerance.json (path via --json).
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/adversary.h"
#include "fault/resilient_mis.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "util/table.h"

namespace {

using namespace arbmis;

struct CellResult {
  std::string algorithm;
  double drop_rate = 0.0;
  double crash_rate = 0.0;
  bool certified = false;
  std::uint32_t attempts = 0;
  std::uint32_t rounds_to_recovery = 0;
  std::uint64_t mis_size = 0;
  std::uint64_t drops = 0;
  std::uint32_t crashes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  std::string json_path = "results/BENCH_fault_tolerance.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  bench::print_header(
      "R1", "certified MIS under message loss and node crashes");

  const graph::NodeId n = options.quick ? 200 : 600;
  util::Rng rng(options.seed);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  bench::ObsSession obs_session(options, "bench_fault_tolerance");
  obs_session.set_workload("arb2 forest union", g.num_nodes(),
                           g.num_edges());
  std::cout << "workload: arb2 forest union, n=" << n
            << ", m=" << g.num_edges() << ", threads=" << options.threads
            << "\n\n";

  const std::vector<double> drop_rates =
      options.quick ? std::vector<double>{0.0, 0.3}
                    : std::vector<double>{0.0, 0.1, 0.3};
  const std::vector<double> crash_rates =
      options.quick ? std::vector<double>{0.0, 0.02}
                    : std::vector<double>{0.0, 0.01, 0.05};

  struct Algo {
    std::string name;
    fault::MisDriver driver;
  };
  // shatter_constant lowered so Algorithm 1 runs real scales on this
  // workload's modest Δ instead of degenerating to the Luby fallback.
  const std::vector<Algo> algos = {
      {"arbmis", fault::shatter_driver(2, {.shatter_constant = 0.05})},
      {"luby", fault::algorithm_driver<mis::LubyBMis>()},
      {"ghaffari", fault::algorithm_driver<mis::GhaffariMis>()},
  };

  std::vector<CellResult> cells;
  for (const Algo& algo : algos) {
    for (const double drop : drop_rates) {
      for (const double crash : crash_rates) {
        fault::IidAdversary adversary(
            {.drop_rate = drop, .duplicate_rate = drop / 4.0,
             .crash_rate = crash, .recovery_delay = 0});
        fault::ResilientOptions resilient;
        resilient.max_rounds_per_attempt = 4096;
        resilient.num_threads = options.threads;
        const fault::ResilientResult result = fault::resilient_mis(
            g, options.seed, adversary, algo.driver, resilient);

        CellResult cell;
        cell.algorithm = algo.name;
        cell.drop_rate = drop;
        cell.crash_rate = crash;
        cell.certified = result.certified;
        cell.attempts = result.attempts;
        cell.rounds_to_recovery = result.rounds_to_recovery;
        for (const mis::MisState s : result.state) {
          cell.mis_size += (s == mis::MisState::kInMis) ? 1 : 0;
        }
        cell.drops = result.faults.drops;
        cell.crashes = result.faults.crashes;
        cells.push_back(cell);
      }
    }
  }

  util::Table table({"algorithm", "drop", "crash", "certified", "attempts",
                     "rounds", "mis_size", "drops_injected",
                     "crashes_injected"});
  table.set_double_precision(2);
  for (const CellResult& cell : cells) {
    table.row()
        .cell(cell.algorithm)
        .cell(cell.drop_rate)
        .cell(cell.crash_rate)
        .cell(cell.certified ? "yes" : "NO")
        .cell(std::uint64_t{cell.attempts})
        .cell(std::uint64_t{cell.rounds_to_recovery})
        .cell(cell.mis_size)
        .cell(cell.drops)
        .cell(std::uint64_t{cell.crashes});
  }
  bench::emit(table, options);

  bool all_certified = true;
  for (const CellResult& cell : cells) {
    all_certified = all_certified && cell.certified;
  }
  std::cout << "\ncertification: "
            << (all_certified ? "every cell certified" : "CELL FAILED")
            << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"fault_tolerance\",\n"
         << "  \"workload\": \"arb2\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"threads\": " << options.threads << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      json << "    {\"algorithm\": \"" << c.algorithm
           << "\", \"drop_rate\": " << c.drop_rate
           << ", \"crash_rate\": " << c.crash_rate
           << ", \"certified\": " << (c.certified ? "true" : "false")
           << ", \"attempts\": " << c.attempts
           << ", \"rounds_to_recovery\": " << c.rounds_to_recovery
           << ", \"mis_size\": " << c.mis_size
           << ", \"drops_injected\": " << c.drops
           << ", \"crashes_injected\": " << c.crashes << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_certified ? 0 : 1;
}
