// Experiment T1 (paper Theorem 1.1): for read-k indicator families with
// Pr[Y_i = 1] = p, Pr[Y_1 = ... = Y_n = 1] <= p^(n/k).
//
// Workload: shared-block families (the extremal construction where the
// bound is tight) swept over n, k, p, plus an independent control column.
// Each row reports the empirical conjunction probability with a 95% CI,
// the Theorem 1.1 bound, and the independent-case p^n reference.
#include "bench_common.h"
#include "readk/bounds.h"
#include "readk/family.h"
#include "readk/montecarlo.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t trials =
      options.trials ? options.trials : (options.quick ? 5000 : 100000);

  bench::print_header(
      "T1", "Theorem 1.1 — P(conjunction) <= p^(n/k) for read-k families");
  std::cout << "trials per cell: " << trials << "\n\n";

  util::Rng rng(options.seed);
  util::Table table({"n", "k", "p", "empirical", "ci_hi", "thm1.1_bound",
                     "independent_p^n", "vs_bound"});
  table.set_double_precision(4);

  const std::vector<std::uint32_t> ns =
      options.quick ? std::vector<std::uint32_t>{32, 64}
                    : std::vector<std::uint32_t>{32, 64, 128, 256, 512};
  const std::vector<std::uint32_t> ks{1, 2, 4, 8, 16};
  const std::vector<double> ps{0.3, 0.5, 0.7, 0.9};

  for (std::uint32_t n : ns) {
    for (std::uint32_t k : ks) {
      for (double p : ps) {
        const readk::ReadKFamily family =
            readk::shared_block_family(n, k, p);
        const readk::ConjunctionEstimate estimate =
            readk::estimate_conjunction(family, trials, rng);
        const double bound = readk::conjunction_bound(p, n, family.read_k());
        table.row()
            .cell(n)
            .cell(k)
            .cell(p)
            .cell(estimate.probability)
            .cell(estimate.ci.hi)
            .cell(bound)
            .cell(readk::independent_conjunction(p, n))
            // The block family ATTAINS the bound exactly (its conjunction
            // probability is p^ceil(n/k)), so sampling noise straddles
            // it. Poisson-aware verdict: with E = bound·trials expected
            // hits, only an observation beyond E + 4·sqrt(E) + 4 (a >4σ
            // excess even in the rare-event regime) would count as
            // evidence above the bound.
            .cell([&] {
              const double expected_hits =
                  bound * static_cast<double>(trials);
              const auto observed =
                  static_cast<double>(estimate.all_ones);
              if (observed >
                  expected_hits + 4.0 * std::sqrt(expected_hits) + 4.0) {
                return "ABOVE";
              }
              return estimate.ci.hi >= bound - 1e-12 ? "tight" : "below";
            }());
      }
    }
  }
  bench::emit(table, options);
  std::cout << "\nnote: this family attains p^(n/k) exactly, so most rows "
               "read 'tight' — the empirical value straddles the bound "
               "within Monte-Carlo noise (verdict is Poisson-aware for "
               "rare-event cells). An 'ABOVE' would falsify Theorem 1.1.\n";
  return 0;
}
