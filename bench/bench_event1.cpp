// Experiment F1 (paper Theorem 3.1 / Figure 1A — Event (1)): on an
// oriented arboricity-α graph, the probability that SOME node of a member
// set M draws a priority above all of its children is at least
// 1 - (1 - 1/Δ(M))^(|M|/2α²).
//
// Workload: degeneracy-oriented unions of α random forests and Apollonian
// (planar) graphs, sweeping α and the member-set size. Each row reports
// the empirical success probability (with CI) against the theorem's lower
// bound.
#include <algorithm>

#include "bench_common.h"
#include "graph/orientation.h"
#include "graph/orientation_opt.h"
#include "graph/properties.h"
#include "readk/events.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t trials =
      options.trials ? options.trials : (options.quick ? 2000 : 20000);

  bench::print_header(
      "F1",
      "Theorem 3.1 (Event 1, Fig 1A) — some member beats all its children");
  std::cout << "trials per cell: " << trials << "\n\n";

  util::Rng rng(options.seed);
  util::Table table({"family", "orientation", "alpha_cert", "|M|",
                     "empirical", "ci_lo", "thm3.1_lower_bound", "holds"});
  table.set_double_precision(4);

  struct Family {
    std::string name;
    graph::Graph g{0};
  };
  std::vector<Family> families;
  for (graph::NodeId alpha : {1u, 2u, 3u, 4u}) {
    util::Rng gen_rng(options.seed + alpha);
    families.push_back({"forest_union_" + std::to_string(alpha),
                        graph::gen::union_of_random_forests(
                            options.quick ? 200u : 1000u, alpha, gen_rng)});
  }
  {
    util::Rng gen_rng(options.seed + 99);
    families.push_back({"apollonian", graph::gen::random_apollonian(
                                          options.quick ? 200u : 1000u,
                                          gen_rng)});
  }

  for (const Family& family : families) {
    // Two parent-structure certificates: the cheap degeneracy orientation
    // (out-degree <= 2α-1) and the max-flow optimal one (out-degree =
    // pseudoarboricity <= α) — the tighter orientation gives the theorem a
    // smaller k and therefore a stronger lower bound.
    struct Oriented {
      const char* label;
      graph::Orientation orientation;
    };
    const Oriented variants[] = {
        {"degeneracy", graph::degeneracy_orientation(family.g)},
        {"optimal", graph::min_outdegree_orientation(family.g)},
    };
    for (const Oriented& variant : variants) {
      const graph::NodeId alpha_cert = variant.orientation.max_out_degree();
      auto all_members = readk::nodes_with_children(variant.orientation);
      for (std::size_t size :
           {all_members.size() / 8, all_members.size()}) {
        if (size == 0) continue;
        const std::vector<graph::NodeId> members(
            all_members.begin(),
            all_members.begin() + static_cast<std::ptrdiff_t>(size));
        const readk::EventEstimate estimate = readk::estimate_event1(
            family.g, variant.orientation, members, alpha_cert, trials, rng);
        table.row()
            .cell(family.name)
            .cell(variant.label)
            .cell(std::uint64_t{alpha_cert})
            .cell(std::uint64_t{members.size()})
            .cell(estimate.probability)
            .cell(estimate.ci.lo)
            .cell(estimate.paper_bound)
            .cell(estimate.ci.hi >= estimate.paper_bound - 1e-12
                      ? "yes"
                      : "VIOLATED");
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
