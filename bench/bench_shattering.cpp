// Experiment F4 (paper Lemma 3.7): whp every connected component of the
// bad set B has O(Δ⁶·log_Δ n) nodes. With practical constants we measure
// the component-size distribution of B as n grows and check the shape:
// the largest component stays polylogarithmic (flat-ish against n, far
// below linear).
#include "bench_common.h"
#include "core/bounded_arb.h"
#include "core/shattering.h"
#include "util/histogram.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 5 : 25);

  bench::print_header(
      "F4",
      "Lemma 3.7 — components of the bad set B stay polylog-size as n grows");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"n", "alpha", "max_degree", "mean|B|",
                     "mean_components", "max_component(all runs)",
                     "mean_largest", "log_Delta(n)", "n/1000"});
  table.set_double_precision(4);

  const std::vector<graph::NodeId> ns =
      options.quick ? std::vector<graph::NodeId>{2000, 8000}
                    : std::vector<graph::NodeId>{2000, 8000, 32000, 128000};
  const graph::NodeId alpha = 2;

  // With the default tuning the competitions eliminate so thoroughly that
  // B is usually empty (Theorem 3.6 holds vacuously); a stressed tuning —
  // far fewer iterations per scale — forces bad nodes into existence so
  // Lemma 3.7's component-size claim can actually be measured.
  core::PracticalTuning stressed;
  stressed.iteration_constant = 0.15;
  stressed.shatter_constant = 0.5;

  util::Log2Histogram component_histogram;
  for (graph::NodeId n : ns) {
    std::uint64_t total_bad = 0;
    std::uint64_t total_components = 0;
    std::uint64_t max_component = 0;
    double sum_largest = 0;
    double log_delta_n = 0;
    double max_degree = 0;
    for (std::uint64_t run = 0; run < runs; ++run) {
      util::Rng rng(options.seed + run * 37 + n);
      const graph::Graph g =
          graph::gen::hubbed_forest_union(n, alpha, n / 500, rng);
      const core::Params params =
          core::Params::practical(alpha, g.max_degree(), stressed);
      const auto result = core::BoundedArbIndependentSet::run(
          g, params, options.seed + run);
      const core::ShatteringStats stats =
          core::shattering_stats(g, result.bad_mask());
      total_bad += stats.set_size;
      total_components += stats.num_components;
      max_component = std::max<std::uint64_t>(max_component,
                                              stats.largest_component);
      sum_largest += static_cast<double>(stats.largest_component);
      log_delta_n = stats.log_delta_n;
      max_degree = static_cast<double>(g.max_degree());
      for (graph::NodeId size : stats.component_sizes) {
        component_histogram.add(size);
      }
    }
    table.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{alpha})
        .cell(max_degree)
        .cell(static_cast<double>(total_bad) / static_cast<double>(runs))
        .cell(static_cast<double>(total_components) /
              static_cast<double>(runs))
        .cell(max_component)
        .cell(sum_largest / static_cast<double>(runs))
        .cell(log_delta_n)
        .cell(static_cast<double>(n) / 1000.0);
  }
  bench::emit(table, options);
  std::cout << "\ncomponent-size distribution of algorithmic B (all runs "
               "pooled):\n"
            << component_histogram.to_string() << "\n";
  std::cout
      << "finding: with any reasonable iteration budget the algorithmic B "
         "is (near-)empty on bounded-arboricity inputs — Theorem 3.6 holds "
         "with enormous margin.\n\n";

  // Part 2 — Lemma 3.7's mechanism in isolation: Theorem 3.6 delivers
  // Pr[v in B] <= 1/Δ^(2p) with 3-neighborhood independence; the lemma
  // turns that into O(Δ⁶·log_Δ n) components. We mark nodes independently
  // bad with probability q and measure the component growth against log n.
  std::cout << "Lemma 3.7 mechanism: independent marking with Pr[bad] = q\n\n";
  util::Table mech({"n", "q", "mean|B|", "mean_components",
                    "mean_largest", "max_largest", "log2(n)"});
  mech.set_double_precision(4);
  for (graph::NodeId n : ns) {
    for (double q : {0.05, 0.02, 0.005}) {
      util::RunningStats size_stats, comp_stats, largest_stats;
      std::uint64_t max_largest = 0;
      for (std::uint64_t run = 0; run < runs; ++run) {
        util::Rng rng(options.seed + run * 97 + n);
        const graph::Graph g =
            graph::gen::hubbed_forest_union(n, alpha, n / 500, rng);
        std::vector<std::uint8_t> mask(g.num_nodes(), 0);
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          mask[v] = rng.bernoulli(q) ? 1 : 0;
        }
        const core::ShatteringStats stats = core::shattering_stats(g, mask);
        size_stats.add(static_cast<double>(stats.set_size));
        comp_stats.add(static_cast<double>(stats.num_components));
        largest_stats.add(static_cast<double>(stats.largest_component));
        max_largest = std::max<std::uint64_t>(max_largest,
                                              stats.largest_component);
      }
      mech.row()
          .cell(std::uint64_t{n})
          .cell(q)
          .cell(size_stats.mean())
          .cell(comp_stats.mean())
          .cell(largest_stats.mean())
          .cell(max_largest)
          .cell(std::log2(static_cast<double>(n)));
    }
  }
  bench::emit(mech, options);
  std::cout << "\nclaim shape: at fixed q, mean_largest grows like log n "
               "(compare the log2(n) column), NOT like n — rare "
               "near-independent failures shatter into tiny components.\n";
  return 0;
}
