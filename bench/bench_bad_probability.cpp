// Experiment T3 (paper Theorem 3.6): a node that is active at the start
// of a scale joins the bad set B with probability at most 1/Δ^(2p). With
// practical constants we measure the empirical per-node bad probability
// across many runs and check that it (a) is small and (b) shrinks as Δ
// grows — the direction Theorem 3.6 predicts.
//
// Workload: hubbed forest unions (bounded arboricity, large Δ) so scales
// actually execute; sweep over n, α and Δ (via the hub count).
#include "bench_common.h"
#include "core/bounded_arb.h"
#include "graph/properties.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 10 : 60);

  bench::print_header(
      "T3", "Theorem 3.6 — Pr[v in B] is small and shrinks with Delta");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"n", "alpha", "hubs", "max_degree", "scales",
                     "iters/scale", "nodes_sampled", "bad_nodes",
                     "empirical_P[bad]", "1/Delta", "1/Delta^2"});
  table.set_double_precision(4);

  const graph::NodeId n = options.quick ? 2000 : 20000;
  auto sweep = [&](const core::PracticalTuning& tuning) {
    for (graph::NodeId alpha : {1u, 2u, 3u}) {
      for (graph::NodeId hubs : {4u, 16u, 64u}) {
        std::uint64_t sampled = 0;
        std::uint64_t bad = 0;
        double max_degree = 0;
        core::Params params;
        for (std::uint64_t run = 0; run < runs; ++run) {
          util::Rng rng(options.seed + run * 1000 + alpha * 7 + hubs);
          const graph::Graph g =
              graph::gen::hubbed_forest_union(n, alpha, hubs, rng);
          params = core::Params::practical(alpha, g.max_degree(), tuning);
          const auto result = core::BoundedArbIndependentSet::run(
              g, params, options.seed + run);
          sampled += g.num_nodes();
          bad += result.count(core::ArbOutcome::kBad);
          max_degree = static_cast<double>(g.max_degree());
        }
        const double p_bad =
            static_cast<double>(bad) / static_cast<double>(sampled);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{alpha})
            .cell(std::uint64_t{hubs})
            .cell(max_degree)
            .cell(std::uint64_t{params.num_scales})
            .cell(std::uint64_t{params.iterations_per_scale})
            .cell(sampled)
            .cell(bad)
            .cell(p_bad)
            .cell(1.0 / max_degree)
            .cell(1.0 / (max_degree * max_degree));
      }
    }
  };

  std::cout << "default practical tuning (enough iterations -> B nearly "
               "empty, the bound holds with room):\n\n";
  sweep(core::PracticalTuning{});
  bench::emit(table, options);

  util::Table stressed_table(
      {"n", "alpha", "hubs", "max_degree", "scales", "iters/scale",
       "nodes_sampled", "bad_nodes", "empirical_P[bad]", "1/Delta",
       "1/Delta^2"});
  stressed_table.set_double_precision(4);
  table = stressed_table;
  core::PracticalTuning stressed;
  stressed.iteration_constant = 0.15;
  stressed.shatter_constant = 0.5;
  std::cout << "\nstressed tuning (iterations cut ~7x so bad nodes exist):"
            << "\n\n";
  sweep(stressed);
  bench::emit(table, options);

  std::cout << "\nclaim shape: empirical_P[bad] should be well below 1/Delta "
               "and trend down as Delta grows.\n";
  return 0;
}
