// Experiment M1: google-benchmark microbenchmarks of the substrate (not a
// paper claim — a regression guard for the simulator and graph library
// that every other experiment's wall-clock depends on).
#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/metivier.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace arbmis;

void BM_GraphBuildCsr(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(1);
  std::vector<graph::Edge> edges =
      graph::gen::union_of_random_forests(n, 2, rng).edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuildCsr)->Arg(1 << 12)->Arg(1 << 16);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(2);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 16);

void BM_CoreDecomposition(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(3);
  const graph::Graph g = graph::gen::random_apollonian(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::core_decomposition(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoreDecomposition)->Arg(1 << 12)->Arg(1 << 16);

void BM_NetworkRoundThroughput(benchmark::State& state) {
  // Full Métivier runs: measures simulator round dispatch + delivery.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(4);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  std::uint64_t seed = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const mis::MisResult result = mis::MetivierMis::run(g, ++seed);
    messages += result.stats.messages;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_NetworkRoundThroughput)->Arg(1 << 12)->Arg(1 << 15);

void BM_RngDraws(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngDraws);

}  // namespace

BENCHMARK_MAIN();
