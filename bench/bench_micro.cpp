// Experiment M1: google-benchmark microbenchmarks of the substrate (not a
// paper claim — a regression guard for the simulator and graph library
// that every other experiment's wall-clock depends on).
//
// The binary wraps google-benchmark's flag handling so run_benches.sh and
// CI can drive it with the same vocabulary as the bench_common.h benches:
//   --quick           short timing windows for smoke runs
//   --json FILE       machine-readable results (gbench JSON format)
//   --flightrec=FILE  attach a flight recorder for the whole run (dump on
//                     exit) — measures the recorder-attached overhead of
//                     the same benchmarks the perf-smoke gate watches
//   --build-info      print "build=Release|Debug" for this binary and exit
// plus any native --benchmark_* flag, passed through untouched.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/recorder.h"

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/metivier.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace arbmis;

void BM_GraphBuildCsr(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(1);
  std::vector<graph::Edge> edges =
      graph::gen::union_of_random_forests(n, 2, rng).edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuildCsr)->Arg(1 << 12)->Arg(1 << 16);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(2);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 16);

void BM_CoreDecomposition(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(3);
  const graph::Graph g = graph::gen::random_apollonian(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::core_decomposition(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CoreDecomposition)->Arg(1 << 12)->Arg(1 << 16);

void BM_NetworkRoundThroughput(benchmark::State& state) {
  // Full Métivier runs: measures simulator round dispatch + delivery.
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(4);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  std::uint64_t seed = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const mis::MisResult result = mis::MetivierMis::run(g, ++seed);
    messages += result.stats.messages;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_NetworkRoundThroughput)->Arg(1 << 12)->Arg(1 << 15);

void BM_NetworkRoundThroughputReference(benchmark::State& state) {
  // Same workload through the retained vector-of-vectors inbox path; the
  // gap to BM_NetworkRoundThroughput is what the message arena buys
  // (EXPERIMENTS.md P2 measures the same delta at larger n).
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(4);
  const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
  const sim::ScopedInboxImpl scoped(sim::InboxImpl::kReferenceVectors);
  std::uint64_t seed = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const mis::MisResult result = mis::MetivierMis::run(g, ++seed);
    messages += result.stats.messages;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_NetworkRoundThroughputReference)->Arg(1 << 12)->Arg(1 << 15);

void BM_RngDraws(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngDraws);

// The system libbenchmark (Debian 1.7.1) is itself compiled without NDEBUG,
// so ConsoleReporter::ReportContext prints "***WARNING*** Library was built
// as DEBUG" on every run no matter how this binary was compiled. The
// warning travels through the reporter's error stream; buffer that stream
// and drop the one line. (--build-info reports the flavor that actually
// matters: this binary's.)
class DebianDebugWarningFilter : public benchmark::ConsoleReporter {
 public:
  // No OO_Color: the reporter is constructed directly (bypassing gbench's
  // tty detection), and the captured results/bench_micro.txt must not
  // contain ANSI escapes.
  DebianDebugWarningFilter() : benchmark::ConsoleReporter(OO_Tabular) {}

  bool ReportContext(const Context& context) override {
    std::ostream& err = GetErrorStream();
    std::ostringstream buffered;
    SetErrorStream(&buffered);
    const bool keep_going =
        benchmark::ConsoleReporter::ReportContext(context);
    SetErrorStream(&err);
    std::istringstream lines(buffered.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("Library was built as DEBUG") != std::string::npos) {
        continue;
      }
      err << line << '\n';
    }
    return keep_going;
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Translate the repo-wide flags into native gbench flags before
  // Initialize sees them (gbench hard-errors on unknown flags).
  std::unique_ptr<arbmis::obs::FlightRecorder> recorder;
  std::vector<std::string> translated;
  translated.reserve(static_cast<std::size_t>(argc) + 2);
  translated.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--build-info") {
      std::cout << "build=" << arbmis::bench::build_type() << "\n";
      return 0;
    }
    if (arg == "--quick") {
      translated.emplace_back("--benchmark_min_time=0.05");
    } else if (arg == "--json" && i + 1 < argc) {
      translated.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      translated.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--flightrec=", 0) == 0) {
      arbmis::obs::RecorderConfig config;
      config.dump_path = arg.substr(12);
      recorder = std::make_unique<arbmis::obs::FlightRecorder>(config);
    } else {
      translated.emplace_back(arg);
    }
  }
  std::vector<char*> raw;
  raw.reserve(translated.size());
  for (std::string& s : translated) raw.push_back(s.data());
  int raw_argc = static_cast<int>(raw.size());
  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
  DebianDebugWarningFilter display;
  {
    std::optional<arbmis::obs::ScopedRecorder> recorder_scope;
    if (recorder != nullptr) recorder_scope.emplace(recorder.get());
    benchmark::RunSpecifiedBenchmarks(&display);
  }
  if (recorder != nullptr && recorder->auto_dump("bench_exit")) {
    std::cerr << "[obs] flightrec -> " << recorder->config().dump_path
              << "\n";
  }
  benchmark::Shutdown();
  return 0;
}
