// Experiment P2: message-arena vs reference vector inboxes — before/after
// round throughput for the CONGEST hot path, with the byte-equivalence
// contract checked inline: on every cell the arena run's observable output
// (MIS states + run stats) must hash identically to the reference run's.
// Prints a table and writes machine-readable results to
// results/BENCH_sim_arena.json (path via --json); exits nonzero on any
// equivalence mismatch, so the sweep in run_benches.sh fails loudly.
#include <chrono>
#include <fstream>
#include <functional>
#include <limits>
#include <thread>

#include "bench_common.h"
#include "mis/metivier.h"
#include "sim/network.h"
#include "util/stats.h"

namespace {

using namespace arbmis;

double time_best_ms(std::uint64_t reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t fold(std::uint64_t h, std::uint64_t x) {
  return util::mix64(h, x);
}

/// Order-sensitive fold of a run's observable output (same digest as P1),
/// so "identical" means byte-identical output, not merely the same MIS.
std::uint64_t hash_mis(const mis::MisResult& r) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const mis::MisState s : r.state) {
    h = fold(h, static_cast<std::uint64_t>(s));
  }
  h = fold(h, r.stats.rounds);
  h = fold(h, r.stats.messages);
  h = fold(h, r.stats.payload_bits);
  h = fold(h, r.stats.max_edge_load);
  return h;
}

struct CaseResult {
  std::string name;
  graph::NodeId n = 0;
  std::uint32_t threads = 0;  ///< 0 = serial executor
  std::uint64_t messages = 0;
  double reference_ms = 0.0;
  double arena_ms = 0.0;
  bool identical = false;
  double speedup() const {
    return arena_ms > 0.0 ? reference_ms / arena_ms : 0.0;
  }
  double items_per_second(double ms) const {
    return ms > 0.0 ? static_cast<double>(messages) / (ms / 1000.0) : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint32_t hardware = std::thread::hardware_concurrency();
  const std::uint32_t threads =
      options.threads != 0 ? options.threads
                           : std::max<std::uint32_t>(hardware, 2);
  const std::uint64_t reps = options.quick ? 2 : 3;
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_sim_arena.json"
                                    : options.json_out;
  std::vector<graph::NodeId> sizes = {4096, 32768};
  if (!options.quick) sizes.push_back(262144);

  bench::print_header(
      "P2", "message arena vs reference inboxes — byte-identical output");
  std::cout << "threads (threaded cells): " << threads
            << "  (hardware_concurrency: " << hardware << ")\n"
            << "best of " << reps << " reps per cell\n\n";

  std::vector<CaseResult> cases;
  for (const graph::NodeId n : sizes) {
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
    for (const std::uint32_t t : {0u, threads}) {
      CaseResult c;
      c.n = n;
      c.threads = t;
      c.name = "metivier_arb2_n" + std::to_string(n) +
               (t == 0 ? "_serial" : "_t" + std::to_string(t));
      std::uint64_t reference_hash = 0;
      std::uint64_t arena_hash = 0;
      c.reference_ms = time_best_ms(reps, [&] {
        const sim::ScopedInboxImpl inbox(sim::InboxImpl::kReferenceVectors);
        const sim::ScopedNumThreads workers(t);
        const mis::MisResult r = mis::MetivierMis::run(g, options.seed);
        reference_hash = hash_mis(r);
        c.messages = r.stats.messages;
      });
      c.arena_ms = time_best_ms(reps, [&] {
        const sim::ScopedInboxImpl inbox(sim::InboxImpl::kArena);
        const sim::ScopedNumThreads workers(t);
        arena_hash = hash_mis(mis::MetivierMis::run(g, options.seed));
      });
      c.identical = reference_hash == arena_hash;
      cases.push_back(c);
    }
  }

  util::Table table({"case", "messages", "reference_ms", "arena_ms",
                     "speedup", "arena_items_per_s", "identical"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.messages)
        .cell(c.reference_ms)
        .cell(c.arena_ms)
        .cell(c.speedup())
        .cell(c.items_per_second(c.arena_ms))
        .cell(c.identical ? "yes" : "NO");
  }
  bench::emit(table, options);

  bool all_identical = true;
  for (const CaseResult& c : cases) {
    all_identical = all_identical && c.identical;
  }
  std::cout << "\nequivalence: "
            << (all_identical ? "all cases identical" : "MISMATCH") << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"sim_arena\",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
           << ", \"threads\": " << c.threads
           << ", \"messages\": " << c.messages
           << ", \"reference_ms\": " << c.reference_ms
           << ", \"arena_ms\": " << c.arena_ms
           << ", \"speedup\": " << c.speedup()
           << ", \"reference_items_per_second\": "
           << c.items_per_second(c.reference_ms)
           << ", \"arena_items_per_second\": "
           << c.items_per_second(c.arena_ms) << ", \"identical\": "
           << (c.identical ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_identical ? 0 : 1;
}
