// Experiment E1: shared-memory engine family (src/engine/) vs the CONGEST
// simulator, head-to-head on the same graphs — the raw-speed ceiling of
// ROADMAP item 3 made a number. items/s counts nodes decided per second
// per solve; the simulator rows run MetivierMis (the repo's flagship
// CONGEST MIS) through sim::Network on the identical GraphView.
//
// Correctness is checked inline on every engine row: the mask must be
// independent + maximal and byte-equal to the sequential-greedy oracle
// over the same (priority, id) order; the run exits nonzero on any
// mismatch so run_benches.sh fails loudly. The full sweep covers
// n = 2^12..2^18 plus a mapped ~10^6-edge row (engines running off an
// mmap-backed .gr file through the GraphView seam); --quick keeps n=2^12,
// which contains the perf-smoke gated row engine_tas_n4096.
//
// Prints a table and writes results/BENCH_engine.json (path via --json)
// with a gbench-style "benchmarks" array for tools/bench_gate.py.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>

#include "bench_common.h"
#include "engine/engine.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"
#include "mis/metivier.h"
#include "mis/verifier.h"

namespace {

using namespace arbmis;

double time_best_ms(std::uint64_t reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct CaseResult {
  std::string name;
  std::uint64_t items = 0;  ///< nodes decided per solve
  double ms = 0.0;
  std::uint64_t mis_size = 0;
  bool ok = true;  ///< verified + matched the greedy oracle
  double items_per_second() const {
    return ms > 0.0 ? static_cast<double>(items) / (ms / 1000.0) : 0.0;
  }
};

/// One engine row: best-of-reps solve, then the inline contract check
/// (verify_mask + byte-equality with the greedy oracle's mask).
CaseResult run_engine_case(graph::GraphView g, engine::EngineKind kind,
                           const engine::EngineOptions& options,
                           const std::string& suffix, std::uint64_t reps,
                           const std::vector<std::uint8_t>& oracle_mask) {
  CaseResult c{std::string("engine_") + std::string(engine::engine_name(kind))
                   + suffix,
               g.num_nodes(), 0.0, 0, true};
  engine::EngineResult result;
  c.ms = time_best_ms(reps, [&] { result = engine::solve(g, kind, options); });
  c.mis_size = result.mis_size();
  const mis::Verification check = mis::verify_mask(g, result.in_mis);
  c.ok = check.independent && check.maximal && result.in_mis == oracle_mask;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t reps =
      options.trials != 0 ? options.trials : (options.quick ? 2 : 3);
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_engine.json"
                                    : options.json_out;
  std::vector<graph::NodeId> sizes = {4096};
  if (!options.quick) {
    sizes.push_back(16384);
    sizes.push_back(65536);
    sizes.push_back(262144);
  }

  bench::print_header(
      "E1", "shared-memory engines vs CONGEST simulator, items/s per node");
  std::cout << "best of " << reps << " reps per cell, engine threads="
            << options.threads << "\n\n";

  std::vector<CaseResult> cases;
  bool all_ok = true;

  for (const graph::NodeId n : sizes) {
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::hubbed_forest_union(n, 2, 64, rng);
    const std::string suffix = "_n" + std::to_string(n);

    engine::EngineOptions engine_options;
    engine_options.seed = options.seed;
    engine_options.num_threads = options.threads;
    const std::vector<std::uint8_t> oracle_mask =
        engine::solve(g, engine::EngineKind::kSequentialGreedy,
                      engine_options)
            .in_mis;

    for (const engine::EngineKind kind : engine::all_engines()) {
      cases.push_back(run_engine_case(g, kind, engine_options, suffix, reps,
                                      oracle_mask));
      all_ok = all_ok && cases.back().ok;
    }
    {
      CaseResult c{"sim_metivier" + suffix, n, 0.0, 0, true};
      mis::MisResult result;
      c.ms = time_best_ms(
          reps, [&] { result = mis::MetivierMis::run(g, options.seed); });
      c.mis_size = result.mis_size();
      c.ok = mis::verify(g, result).ok();
      all_ok = all_ok && c.ok;
      cases.push_back(c);
    }
  }

  if (!options.quick) {
    // The mapped row: a ~10^6-edge forest union written to .gr and solved
    // off the mmap-backed view — the engines are storage-oblivious through
    // the GraphView seam, so items/s here is the out-of-core figure.
    const graph::NodeId n = 524288;
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);
    const std::string path = "/tmp/arbmis_bench_engine.gr";
    graph::storage::write_gr(path, g);
    const auto mapped = graph::storage::MappedGraph::open(path);
    std::cout << "mapped row: n=" << n << " m=" << mapped.num_edges()
              << " via " << path << "\n";

    engine::EngineOptions engine_options;
    engine_options.seed = options.seed;
    engine_options.num_threads = options.threads;
    const std::vector<std::uint8_t> oracle_mask =
        engine::solve(mapped.view(), engine::EngineKind::kSequentialGreedy,
                      engine_options)
            .in_mis;
    for (const engine::EngineKind kind : engine::all_engines()) {
      cases.push_back(run_engine_case(mapped.view(), kind, engine_options,
                                      "_mapped_m1e6", reps, oracle_mask));
      all_ok = all_ok && cases.back().ok;
    }
    std::remove(path.c_str());
  }

  util::Table table({"case", "nodes", "best_ms", "nodes_per_s", "mis_size",
                     "ok"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.items)
        .cell(c.ms)
        .cell(c.items_per_second())
        .cell(c.mis_size)
        .cell(c.ok ? "yes" : "NO");
  }
  bench::emit(table, options);
  std::cout << "\ncontract: "
            << (all_ok ? "all rows verified and matched the greedy oracle"
                       : "MISMATCH")
            << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"engine\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"threads\": " << options.threads << ",\n"
         << "  \"ok\": " << (all_ok ? "true" : "false") << ",\n"
         << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"nodes\": " << c.items
           << ", \"best_ms\": " << c.ms
           << ", \"items_per_second\": " << c.items_per_second()
           << ", \"mis_size\": " << c.mis_size
           << ", \"ok\": " << (c.ok ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_ok ? 0 : 1;
}
