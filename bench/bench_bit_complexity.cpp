// Experiment T7 (paper reference [11] — Métivier, Robson, Saheb-Djahromi,
// Zemmari, "An optimal bit complexity randomised distributed MIS
// algorithm"): the competition engine inside every shattering algorithm
// can run on O(log n) BITS per channel in total, versus shipping whole
// priorities (a log(n)-to-64-bit word per edge per iteration).
//
// Rows: total semantic payload bits per channel for
//   * bit_metivier — bitwise duels (this is [11] as published),
//   * metivier     — 64-bit priority words (messages × 64),
//   * luby_a       — priorities from {1..n^4} (messages × 4·log₂ n).
// The claim's shape: bit_metivier's bits/channel grows like log n while
// the word versions pay a word per round — an order of magnitude more.
#include "bench_common.h"
#include "mis/bit_metivier.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);

  bench::print_header(
      "T7",
      "reference [11] — bit complexity per channel of the MIS competition");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"workload", "n", "bitwise_bits/ch", "bitwise_rounds",
                     "word64_bits/ch", "lubyA_bits/ch", "log2(n)",
                     "verified"});
  table.set_double_precision(4);

  const std::vector<graph::NodeId> ns =
      options.quick ? std::vector<graph::NodeId>{1 << 10, 1 << 13}
                    : std::vector<graph::NodeId>{1 << 10, 1 << 13, 1 << 16};

  for (const std::string& workload :
       {std::string("tree"), std::string("arb2"), std::string("gnp")}) {
    for (graph::NodeId n : ns) {
      util::RunningStats bitwise, bitwise_rounds, word, luby;
      bool verified = true;
      for (std::uint64_t run = 0; run < runs; ++run) {
        util::Rng rng(options.seed + run * 19 + n);
        const graph::Graph g = bench::make_workload(workload, n, rng);
        const double m = static_cast<double>(g.num_edges());
        if (m == 0) continue;

        const auto bits = mis::BitMetivierMis::run(g, options.seed + run);
        verified = verified && mis::verify(g, bits.mis).ok();
        bitwise.add(bits.bits_per_channel);
        bitwise_rounds.add(bits.mis.stats.rounds);

        const auto words = mis::MetivierMis::run(g, options.seed + run);
        verified = verified && mis::verify(g, words).ok();
        word.add(static_cast<double>(words.stats.messages) * 64.0 / m);

        const auto luby_a = mis::luby_a_mis(g, options.seed + run);
        verified = verified && mis::verify(g, luby_a).ok();
        const double priority_bits =
            4.0 * std::log2(static_cast<double>(n));
        luby.add(static_cast<double>(luby_a.stats.messages) * priority_bits /
                 m);
      }
      table.row()
          .cell(workload)
          .cell(std::uint64_t{n})
          .cell(bitwise.mean())
          .cell(bitwise_rounds.mean())
          .cell(word.mean())
          .cell(luby.mean())
          .cell(std::log2(static_cast<double>(n)))
          .cell(verified ? "yes" : "NO");
    }
  }
  bench::emit(table, options);
  std::cout << "\nclaim shape: bitwise_bits/ch tracks log2(n) (the [11] "
               "bound); the word-based columns are an order of magnitude "
               "above it and scale with word size, not with the "
               "information actually needed.\n";
  return 0;
}
