// Experiment F3 (paper Theorem 3.3 / Figure 1C — Event (3)): with
// probability at least 1 - 1/Δ³, at least a 1/(8α²(32α⁶+1)) fraction of a
// high-degree member set M is eliminated in one Métivier iteration.
//
// Each row: the paper's (deliberately slack) per-iteration elimination
// fraction, the measured mean elimination fraction, and the success
// probability of clearing the paper's target. The measured fraction
// exceeding the target by orders of magnitude is expected — the paper's
// constants are proof-driven (it says so), and the headroom column is the
// honest way to report that.
#include "bench_common.h"
#include "graph/properties.h"
#include "readk/events.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t trials =
      options.trials ? options.trials : (options.quick ? 1000 : 10000);

  bench::print_header(
      "F3",
      "Theorem 3.3 (Event 3, Fig 1C) — fraction of M eliminated per "
      "iteration");
  std::cout << "trials per cell: " << trials << "\n\n";

  util::Rng rng(options.seed);
  util::Table table({"family", "alpha_cert", "min_deg(M)", "|M|",
                     "paper_fraction", "measured_mean_fraction",
                     "success_prob", "ci_lo"});
  table.set_double_precision(4);

  for (graph::NodeId alpha : {1u, 2u, 3u}) {
    for (graph::NodeId min_degree : {2u, 4u, 8u}) {
      util::Rng gen_rng(options.seed + alpha * 31 + min_degree);
      const graph::Graph g = graph::gen::hubbed_forest_union(
          options.quick ? 400u : 2000u, alpha,
          (options.quick ? 400u : 2000u) / 50, gen_rng);
      std::vector<graph::NodeId> members;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.degree(v) >= min_degree) members.push_back(v);
      }
      if (members.size() < 20) continue;
      const graph::NodeId alpha_cert = graph::degeneracy(g);
      const readk::EventEstimate estimate =
          readk::estimate_event3(g, members, alpha_cert, trials, rng);
      table.row()
          .cell("hubbed_arb_" + std::to_string(alpha))
          .cell(std::uint64_t{alpha_cert})
          .cell(std::uint64_t{min_degree})
          .cell(std::uint64_t{members.size()})
          .cell(estimate.paper_bound)
          .cell(estimate.mean_metric)
          .cell(estimate.probability)
          .cell(estimate.ci.lo);
    }
  }
  bench::emit(table, options);
  return 0;
}
