// Experiment P3: out-of-core graph storage (graph/storage/) — .gr write
// throughput, mmap vs buffered load throughput, and the end-to-end cost of
// running arb_mis off the mapped file instead of the in-memory Graph, with
// the storage-independence contract checked inline: every mapped run's
// observable output must hash identically to the in-memory run's.
//
// Prints a table and writes machine-readable results to
// results/BENCH_mmap_graph.json (path via --json). The JSON carries a
// gbench-style top-level "benchmarks" array (name + items_per_second), so
// tools/bench_gate.py gates rows from this file directly; the gated row
// loads the checked-in data/corpus_small.gr corpus in a loop. Exits
// nonzero on any equivalence mismatch so run_benches.sh fails loudly.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "bench_common.h"
#include "core/arb_mis.h"
#include "graph/storage/convert.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"

namespace {

using namespace arbmis;

double time_best_ms(std::uint64_t reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t hash_mis(const mis::MisResult& r) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const mis::MisState s : r.state) {
    h = util::mix64(h, static_cast<std::uint64_t>(s));
  }
  h = util::mix64(h, r.stats.rounds);
  h = util::mix64(h, r.stats.messages);
  h = util::mix64(h, r.stats.payload_bits);
  return h;
}

struct CaseResult {
  std::string name;
  std::uint64_t items = 0;  ///< edges processed per rep
  double ms = 0.0;
  bool identical = true;  ///< rows without an equivalence leg stay true
  double items_per_second() const {
    return ms > 0.0 ? static_cast<double>(items) / (ms / 1000.0) : 0.0;
  }
};

/// --large: the offline end-to-end record for a generated ~10^7-edge graph
/// (ROADMAP item 1's stretch goal, run once and committed as
/// results/BENCH_mmap_large.json rather than part of the default sweep).
/// Pipeline mirrors real ingest: edge-list text -> convert (gr_convert's
/// parser) -> write .gr -> mmap load with verification -> arb_mis solve
/// off the mapped file; each stage timed once at full scale.
int run_large(const bench::BenchOptions& options) {
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_mmap_large.json"
                                    : options.json_out;
  const graph::NodeId n = 2'500'000;
  const graph::NodeId arboricity = 4;

  bench::print_header(
      "P3-large", "end-to-end convert/load/solve at ~10^7 edges");
  util::Rng rng(options.seed);
  const graph::Graph g = graph::gen::hubbed_forest_union(
      n, arboricity, /*num_hubs=*/64, rng);
  const std::uint64_t m = g.num_edges();
  std::cout << "generated n=" << n << " m=" << m << " (arboricity <= "
            << arboricity << ")\n";

  // Untimed setup: materialize the edge-list text input gr_convert would
  // see. Timing starts at the parse, the first stage a user actually runs.
  const std::string text_path = "/tmp/arbmis_large_edges.txt";
  const std::string gr_path = "/tmp/arbmis_large.gr";
  {
    std::ofstream text(text_path);
    for (const auto [u, v] : g.edges()) text << u << ' ' << v << '\n';
  }

  std::vector<CaseResult> cases;
  graph::storage::ConvertResult converted;
  {
    CaseResult c{"large_convert_text", m, 0.0, true};
    c.ms = time_best_ms(1, [&] {
      std::ifstream in(text_path);
      converted = graph::storage::convert_edge_list(in, {});
    });
    cases.push_back(c);
  }
  const bool convert_identical =
      converted.graph.num_nodes() == g.num_nodes() &&
      converted.graph.num_edges() == m;
  cases.back().identical = convert_identical;
  {
    CaseResult c{"large_write_gr", m, 0.0, true};
    c.ms = time_best_ms(
        1, [&] { graph::storage::write_gr(gr_path, converted.graph); });
    cases.push_back(c);
  }
  {
    CaseResult c{"large_mmap_load_verify", m, 0.0, true};
    c.ms = time_best_ms(1, [&] {
      const auto mapped = graph::storage::MappedGraph::open(gr_path);
      if (mapped.num_edges() != m) std::abort();
    });
    cases.push_back(c);
  }
  bool solve_identical = true;
  {
    const auto mapped = graph::storage::MappedGraph::open(gr_path);
    std::uint64_t memory_hash = 0;
    std::uint64_t mapped_hash = 0;
    CaseResult c{"large_arb_mis_mapped", m, 0.0, true};
    c.ms = time_best_ms(1, [&] {
      mapped_hash =
          hash_mis(core::arb_mis(mapped, {.alpha = 2}, options.seed).mis);
    });
    memory_hash = hash_mis(
        core::arb_mis(converted.graph, {.alpha = 2}, options.seed).mis);
    solve_identical = mapped_hash == memory_hash;
    c.identical = solve_identical;
    cases.push_back(c);
  }
  std::remove(text_path.c_str());
  std::remove(gr_path.c_str());

  util::Table table({"case", "edges", "ms", "edges_per_s", "identical"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.items)
        .cell(c.ms)
        .cell(c.items_per_second())
        .cell(c.identical ? "yes" : "NO");
  }
  std::cout << '\n';
  table.print(std::cout);

  const bool all_ok = convert_identical && solve_identical;
  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"mmap_graph_large\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"m\": " << m << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"identical\": " << (all_ok ? "true" : "false") << ",\n"
         << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"edges\": " << c.items
           << ", \"best_ms\": " << c.ms
           << ", \"items_per_second\": " << c.items_per_second()
           << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--large") return run_large(options);
  }
  const std::uint64_t reps = options.quick ? 2 : 3;
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_mmap_graph.json"
                                    : options.json_out;
  std::vector<graph::NodeId> sizes = {65536};
  if (!options.quick) sizes.push_back(262144);

  bench::print_header(
      "P3", "binary .gr storage — write/load throughput, mapped == memory");
  std::cout << "best of " << reps << " reps per cell\n\n";

  std::vector<CaseResult> cases;
  bool all_identical = true;

  for (const graph::NodeId n : sizes) {
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::hubbed_forest_union(n, 2, 64, rng);
    const std::uint64_t m = g.num_edges();
    const std::string path =
        "/tmp/arbmis_bench_" + std::to_string(n) + ".gr";
    const std::string suffix = "_n" + std::to_string(n);

    {
      CaseResult c{"write_gr" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] { graph::storage::write_gr(path, g); });
      cases.push_back(c);
    }
    {
      CaseResult c{"mmap_load_verify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped = graph::storage::MappedGraph::open(path);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      graph::storage::GrMapOptions open_options;
      open_options.verify_structure = false;
      CaseResult c{"mmap_load_noverify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped =
            graph::storage::MappedGraph::open(path, open_options);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      graph::storage::GrMapOptions open_options;
      open_options.mode = graph::storage::GrMapMode::kBuffered;
      CaseResult c{"buffered_load_verify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped =
            graph::storage::MappedGraph::open(path, open_options);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      // End-to-end: the full pipeline off each storage backend; the mapped
      // run must reproduce the in-memory bytes.
      const auto mapped = graph::storage::MappedGraph::open(path);
      std::uint64_t memory_hash = 0;
      std::uint64_t mapped_hash = 0;
      CaseResult mem{"arb_mis_memory" + suffix, m, 0.0, true};
      mem.ms = time_best_ms(reps, [&] {
        memory_hash =
            hash_mis(core::arb_mis(g, {.alpha = 2}, options.seed).mis);
      });
      cases.push_back(mem);
      CaseResult disk{"arb_mis_mapped" + suffix, m, 0.0, true};
      disk.ms = time_best_ms(reps, [&] {
        mapped_hash =
            hash_mis(core::arb_mis(mapped, {.alpha = 2}, options.seed).mis);
      });
      disk.identical = mapped_hash == memory_hash;
      all_identical = all_identical && disk.identical;
      cases.push_back(disk);
    }
    std::remove(path.c_str());
  }

  {
    // The gated perf-smoke row: the checked-in corpus, loaded (mmap +
    // full verification) in a loop so the per-open cost amortizes to a
    // stable figure. items/s counts edges loaded across the whole loop.
    constexpr std::uint64_t kLoops = 1000;
    const std::string corpus = "data/corpus_small.gr";
    const auto probe = graph::storage::MappedGraph::open(corpus);
    CaseResult c{"corpus_small_mmap_x1000", probe.num_edges() * kLoops, 0.0,
                 true};
    c.ms = time_best_ms(reps, [&] {
      for (std::uint64_t i = 0; i < kLoops; ++i) {
        const auto mapped = graph::storage::MappedGraph::open(corpus);
        if (mapped.num_nodes() != probe.num_nodes()) std::abort();
      }
    });
    cases.push_back(c);
  }

  util::Table table({"case", "edges", "best_ms", "edges_per_s", "identical"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.items)
        .cell(c.ms)
        .cell(c.items_per_second())
        .cell(c.identical ? "yes" : "NO");
  }
  bench::emit(table, options);

  std::cout << "\nequivalence: "
            << (all_identical ? "mapped == memory on all rows" : "MISMATCH")
            << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"mmap_graph\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"identical\": " << (all_identical ? "true" : "false")
         << ",\n"
         << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"edges\": " << c.items
           << ", \"best_ms\": " << c.ms
           << ", \"items_per_second\": " << c.items_per_second()
           << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_identical ? 0 : 1;
}
