// Experiment P3: out-of-core graph storage (graph/storage/) — .gr write
// throughput, mmap vs buffered load throughput, and the end-to-end cost of
// running arb_mis off the mapped file instead of the in-memory Graph, with
// the storage-independence contract checked inline: every mapped run's
// observable output must hash identically to the in-memory run's.
//
// Prints a table and writes machine-readable results to
// results/BENCH_mmap_graph.json (path via --json). The JSON carries a
// gbench-style top-level "benchmarks" array (name + items_per_second), so
// tools/bench_gate.py gates rows from this file directly; the gated row
// loads the checked-in data/corpus_small.gr corpus in a loop. Exits
// nonzero on any equivalence mismatch so run_benches.sh fails loudly.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>

#include "bench_common.h"
#include "core/arb_mis.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"

namespace {

using namespace arbmis;

double time_best_ms(std::uint64_t reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

std::uint64_t hash_mis(const mis::MisResult& r) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const mis::MisState s : r.state) {
    h = util::mix64(h, static_cast<std::uint64_t>(s));
  }
  h = util::mix64(h, r.stats.rounds);
  h = util::mix64(h, r.stats.messages);
  h = util::mix64(h, r.stats.payload_bits);
  return h;
}

struct CaseResult {
  std::string name;
  std::uint64_t items = 0;  ///< edges processed per rep
  double ms = 0.0;
  bool identical = true;  ///< rows without an equivalence leg stay true
  double items_per_second() const {
    return ms > 0.0 ? static_cast<double>(items) / (ms / 1000.0) : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t reps = options.quick ? 2 : 3;
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_mmap_graph.json"
                                    : options.json_out;
  std::vector<graph::NodeId> sizes = {65536};
  if (!options.quick) sizes.push_back(262144);

  bench::print_header(
      "P3", "binary .gr storage — write/load throughput, mapped == memory");
  std::cout << "best of " << reps << " reps per cell\n\n";

  std::vector<CaseResult> cases;
  bool all_identical = true;

  for (const graph::NodeId n : sizes) {
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::hubbed_forest_union(n, 2, 64, rng);
    const std::uint64_t m = g.num_edges();
    const std::string path =
        "/tmp/arbmis_bench_" + std::to_string(n) + ".gr";
    const std::string suffix = "_n" + std::to_string(n);

    {
      CaseResult c{"write_gr" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] { graph::storage::write_gr(path, g); });
      cases.push_back(c);
    }
    {
      CaseResult c{"mmap_load_verify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped = graph::storage::MappedGraph::open(path);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      graph::storage::GrMapOptions open_options;
      open_options.verify_structure = false;
      CaseResult c{"mmap_load_noverify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped =
            graph::storage::MappedGraph::open(path, open_options);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      graph::storage::GrMapOptions open_options;
      open_options.mode = graph::storage::GrMapMode::kBuffered;
      CaseResult c{"buffered_load_verify" + suffix, m, 0.0, true};
      c.ms = time_best_ms(reps, [&] {
        const auto mapped =
            graph::storage::MappedGraph::open(path, open_options);
        if (mapped.num_edges() != m) std::abort();
      });
      cases.push_back(c);
    }
    {
      // End-to-end: the full pipeline off each storage backend; the mapped
      // run must reproduce the in-memory bytes.
      const auto mapped = graph::storage::MappedGraph::open(path);
      std::uint64_t memory_hash = 0;
      std::uint64_t mapped_hash = 0;
      CaseResult mem{"arb_mis_memory" + suffix, m, 0.0, true};
      mem.ms = time_best_ms(reps, [&] {
        memory_hash =
            hash_mis(core::arb_mis(g, {.alpha = 2}, options.seed).mis);
      });
      cases.push_back(mem);
      CaseResult disk{"arb_mis_mapped" + suffix, m, 0.0, true};
      disk.ms = time_best_ms(reps, [&] {
        mapped_hash =
            hash_mis(core::arb_mis(mapped, {.alpha = 2}, options.seed).mis);
      });
      disk.identical = mapped_hash == memory_hash;
      all_identical = all_identical && disk.identical;
      cases.push_back(disk);
    }
    std::remove(path.c_str());
  }

  {
    // The gated perf-smoke row: the checked-in corpus, loaded (mmap +
    // full verification) in a loop so the per-open cost amortizes to a
    // stable figure. items/s counts edges loaded across the whole loop.
    constexpr std::uint64_t kLoops = 1000;
    const std::string corpus = "data/corpus_small.gr";
    const auto probe = graph::storage::MappedGraph::open(corpus);
    CaseResult c{"corpus_small_mmap_x1000", probe.num_edges() * kLoops, 0.0,
                 true};
    c.ms = time_best_ms(reps, [&] {
      for (std::uint64_t i = 0; i < kLoops; ++i) {
        const auto mapped = graph::storage::MappedGraph::open(corpus);
        if (mapped.num_nodes() != probe.num_nodes()) std::abort();
      }
    });
    cases.push_back(c);
  }

  util::Table table({"case", "edges", "best_ms", "edges_per_s", "identical"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.items)
        .cell(c.ms)
        .cell(c.items_per_second())
        .cell(c.identical ? "yes" : "NO");
  }
  bench::emit(table, options);

  std::cout << "\nequivalence: "
            << (all_identical ? "mapped == memory on all rows" : "MISMATCH")
            << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"mmap_graph\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"identical\": " << (all_identical ? "true" : "false")
         << ",\n"
         << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"edges\": " << c.items
           << ", \"best_ms\": " << c.ms
           << ", \"items_per_second\": " << c.items_per_second()
           << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_identical ? 0 : 1;
}
