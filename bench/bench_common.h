// Shared helpers for the experiment benches: command-line trial counts,
// consistent headers, the standard workload constructors, and the
// telemetry session (--events/--trace/--metrics, docs/OBSERVABILITY.md).
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/table.h"

namespace arbmis::bench {

/// Build flavor of *this* translation unit (the system libbenchmark is a
/// Debian Debug build and warns about itself; our code is what matters for
/// timing validity). run_benches.sh refuses to record results from a
/// non-Release binary via `--build-info`.
inline constexpr const char* build_type() noexcept {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

/// Parses "--trials N" / "--quick" style options shared by all benches.
struct BenchOptions {
  std::uint64_t trials = 0;  ///< 0 = bench default
  bool quick = false;        ///< shrink sweeps for smoke runs
  bool csv = false;          ///< also emit each table as CSV
  std::uint64_t seed = 12345;
  std::uint32_t threads = 0;  ///< simulator workers; 0 = serial
  std::string json_out;       ///< machine-readable copy; "" = bench default
  std::string events_out;     ///< telemetry event stream (.jsonl or .bin)
  std::string trace_out;      ///< Chrome trace_event JSON from OBS_SCOPE
  std::string metrics_out;    ///< "arbmis.metrics.v1" registry dump
  std::string flightrec_out;  ///< attach a flight recorder; dump here at exit
  std::size_t recorder_bytes = std::size_t{1} << 20;  ///< ring capacity
  std::uint32_t trace_sample = 1;  ///< keep every Nth round event/series

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        options.quick = true;
      } else if (arg == "--csv") {
        options.csv = true;
      } else if (arg == "--build-info") {
        std::cout << "build=" << build_type() << "\n";
        std::exit(0);
      } else if (arg == "--trials" && i + 1 < argc) {
        options.trials = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--seed" && i + 1 < argc) {
        options.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--json" && i + 1 < argc) {
        options.json_out = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        options.threads =
            static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (arg.rfind("--events=", 0) == 0) {
        options.events_out = arg.substr(9);
      } else if (arg.rfind("--trace=", 0) == 0) {
        options.trace_out = arg.substr(8);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        options.metrics_out = arg.substr(10);
      } else if (arg.rfind("--flightrec=", 0) == 0) {
        options.flightrec_out = arg.substr(12);
      } else if (arg.rfind("--recorder-bytes=", 0) == 0) {
        options.recorder_bytes = std::strtoull(
            arg.substr(17).c_str(), nullptr, 10);
      } else if (arg.rfind("--trace-sample=", 0) == 0) {
        options.trace_sample = static_cast<std::uint32_t>(
            std::strtoul(arg.substr(15).c_str(), nullptr, 10));
      }
    }
    return options;
  }
};

/// RAII telemetry session for a bench binary: attaches (per the options)
/// an event sink (--events=path, binary when the path ends in .bin), a
/// flight recorder (--flightrec=path, sized by --recorder-bytes=N), a
/// metrics registry (--metrics=path), and a profiler (--trace=path), all
/// process-wide via the obs Scoped* guards. On destruction the metrics
/// JSON and the Chrome trace are written next to the bench's other
/// artifacts, each embedding the run manifest. With none of the flags
/// given, constructing the session attaches nothing and the run pays the
/// usual zero cost.
class ObsSession {
 public:
  ObsSession(const BenchOptions& options, std::string tool)
      : manifest_(obs::make_manifest(std::move(tool))),
        trace_out_(options.trace_out),
        metrics_out_(options.metrics_out) {
    manifest_.seed = options.seed;
    manifest_.threads =
        options.threads != 0 ? options.threads : sim::default_num_threads();
    manifest_.inbox =
        sim::default_inbox_impl() == sim::InboxImpl::kReferenceVectors
            ? "reference"
            : "arena";
    const std::uint32_t sample =
        options.trace_sample == 0 ? 1 : options.trace_sample;
    if (!options.events_out.empty()) {
      obs::SinkConfig config;
      config.round_sample = sample;
      const bool binary = options.events_out.size() >= 4 &&
                          options.events_out.compare(
                              options.events_out.size() - 4, 4, ".bin") == 0;
      if (binary) {
        events_ = std::make_unique<obs::BinaryWriter>(options.events_out,
                                                      config);
      } else {
        events_ = std::make_unique<obs::JsonlWriter>(options.events_out,
                                                     config);
      }
      events_->attach_manifest(manifest_);
    }
    if (!metrics_out_.empty()) {
      registry_ = std::make_unique<obs::Registry>(sample);
      registry_->track_round_series("sim.messages");
      registry_->track_round_series("sim.payload_bits");
    }
    if (!options.flightrec_out.empty()) {
      // --flightrec attaches a flight recorder for the whole bench run
      // and snapshots the ring on destruction — used to measure the
      // recorder-attached overhead against the perf-smoke gate.
      obs::RecorderConfig config;
      config.max_bytes = options.recorder_bytes;
      config.dump_path = options.flightrec_out;
      recorder_ = std::make_unique<obs::FlightRecorder>(config);
      recorder_->attach_manifest(manifest_);
    }
    if (!trace_out_.empty()) profiler_ = std::make_unique<obs::Profiler>();
    if (events_ != nullptr) sink_scope_.emplace(events_.get());
    if (recorder_ != nullptr) recorder_scope_.emplace(recorder_.get());
    if (registry_ != nullptr) registry_scope_.emplace(registry_.get());
    if (profiler_ != nullptr) profiler_scope_.emplace(profiler_.get());
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Stamp the workload description into the manifest. Call before the
  /// measured work; an attached events file gets the updated manifest as
  /// an additional record (readers use the latest one).
  void set_workload(std::string description, std::uint64_t nodes,
                    std::uint64_t edges) {
    manifest_.workload = std::move(description);
    manifest_.nodes = nodes;
    manifest_.edges = edges;
    if (events_ != nullptr) events_->attach_manifest(manifest_);
    if (recorder_ != nullptr) recorder_->attach_manifest(manifest_);
  }

  obs::Registry* metrics() noexcept { return registry_.get(); }

  ~ObsSession() {
    profiler_scope_.reset();
    registry_scope_.reset();
    recorder_scope_.reset();
    sink_scope_.reset();
    if (recorder_ != nullptr) {
      if (recorder_->auto_dump("bench_exit")) {
        const obs::RecorderStats rs = recorder_->stats();
        std::cout << "[obs] flightrec -> " << recorder_->config().dump_path
                  << " (" << rs.buffered_events << " buffered, "
                  << rs.evicted_events << " evicted)\n";
      }
    }
    if (events_ != nullptr) {
      events_->flush();
      std::cout << "[obs] events -> " << events_path_of(events_.get())
                << "\n";
    }
    if (registry_ != nullptr && !metrics_out_.empty()) {
      std::ofstream out(metrics_out_);
      out << registry_->to_json(&manifest_) << "\n";
      std::cout << "[obs] metrics -> " << metrics_out_ << "\n";
    }
    if (profiler_ != nullptr && !trace_out_.empty()) {
      std::ofstream out(trace_out_);
      out << profiler_->to_chrome_trace_json(&manifest_) << "\n";
      std::cout << "[obs] trace -> " << trace_out_ << " ("
                << profiler_->span_count()
                << " spans; open in chrome://tracing or Perfetto)\n";
    }
  }

 private:
  static std::string events_path_of(const obs::EventSink* sink) {
    if (const auto* jsonl = dynamic_cast<const obs::JsonlWriter*>(sink)) {
      return jsonl->path();
    }
    if (const auto* binary = dynamic_cast<const obs::BinaryWriter*>(sink)) {
      return binary->path();
    }
    return "<sink>";
  }

  obs::Manifest manifest_;
  std::string trace_out_;
  std::string metrics_out_;
  std::unique_ptr<obs::EventSink> events_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::optional<obs::ScopedSink> sink_scope_;
  std::optional<obs::ScopedRecorder> recorder_scope_;
  std::optional<obs::ScopedRegistry> registry_scope_;
  std::optional<obs::ScopedProfiler> profiler_scope_;
};

inline void print_header(std::string_view experiment_id,
                         std::string_view claim) {
  std::cout << "# " << experiment_id << ": " << claim << "\n";
}

/// Prints the aligned table, plus a CSV copy when --csv was passed.
inline void emit(const util::Table& table, const BenchOptions& options) {
  table.print(std::cout);
  if (options.csv) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
}

/// Workload families keyed by name, used by the comparison benches.
inline graph::Graph make_workload(const std::string& name, graph::NodeId n,
                                  util::Rng& rng) {
  if (name == "tree") return graph::gen::random_tree(n, rng);
  if (name == "pa_tree") return graph::gen::preferential_attachment_tree(n, rng);
  if (name == "planar") return graph::gen::random_apollonian(n, rng);
  if (name == "arb2") return graph::gen::union_of_random_forests(n, 2, rng);
  if (name == "arb4") return graph::gen::union_of_random_forests(n, 4, rng);
  if (name == "gnp") {
    return graph::gen::gnp(n, 8.0 / static_cast<double>(n), rng);
  }
  if (name == "powerlaw") {
    return graph::gen::chung_lu_power_law(n, 2.5, 6.0, rng);
  }
  if (name == "grid") {
    const auto side = static_cast<graph::NodeId>(std::sqrt(double(n)));
    return graph::gen::grid(side, side);
  }
  return graph::gen::random_tree(n, rng);
}

/// Arboricity hint matching make_workload's families.
inline graph::NodeId workload_alpha(const std::string& name) {
  if (name == "tree" || name == "pa_tree") return 1;
  if (name == "planar") return 3;
  if (name == "arb2") return 2;
  if (name == "arb4") return 4;
  if (name == "grid") return 2;
  return 4;  // gnp / power-law fallback hint
}

}  // namespace arbmis::bench
