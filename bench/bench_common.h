// Shared helpers for the experiment benches: command-line trial counts,
// consistent headers, and the standard workload constructors.
#pragma once

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/table.h"

namespace arbmis::bench {

/// Build flavor of *this* translation unit (the system libbenchmark is a
/// Debian Debug build and warns about itself; our code is what matters for
/// timing validity). run_benches.sh refuses to record results from a
/// non-Release binary via `--build-info`.
inline constexpr const char* build_type() noexcept {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

/// Parses "--trials N" / "--quick" style options shared by all benches.
struct BenchOptions {
  std::uint64_t trials = 0;  ///< 0 = bench default
  bool quick = false;        ///< shrink sweeps for smoke runs
  bool csv = false;          ///< also emit each table as CSV
  std::uint64_t seed = 12345;
  std::uint32_t threads = 0;  ///< simulator workers; 0 = serial
  std::string json_out;       ///< machine-readable copy; "" = bench default

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        options.quick = true;
      } else if (arg == "--csv") {
        options.csv = true;
      } else if (arg == "--build-info") {
        std::cout << "build=" << build_type() << "\n";
        std::exit(0);
      } else if (arg == "--trials" && i + 1 < argc) {
        options.trials = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--seed" && i + 1 < argc) {
        options.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--json" && i + 1 < argc) {
        options.json_out = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        options.threads =
            static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      }
    }
    return options;
  }
};

inline void print_header(std::string_view experiment_id,
                         std::string_view claim) {
  std::cout << "# " << experiment_id << ": " << claim << "\n";
}

/// Prints the aligned table, plus a CSV copy when --csv was passed.
inline void emit(const util::Table& table, const BenchOptions& options) {
  table.print(std::cout);
  if (options.csv) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
}

/// Workload families keyed by name, used by the comparison benches.
inline graph::Graph make_workload(const std::string& name, graph::NodeId n,
                                  util::Rng& rng) {
  if (name == "tree") return graph::gen::random_tree(n, rng);
  if (name == "pa_tree") return graph::gen::preferential_attachment_tree(n, rng);
  if (name == "planar") return graph::gen::random_apollonian(n, rng);
  if (name == "arb2") return graph::gen::union_of_random_forests(n, 2, rng);
  if (name == "arb4") return graph::gen::union_of_random_forests(n, 4, rng);
  if (name == "gnp") {
    return graph::gen::gnp(n, 8.0 / static_cast<double>(n), rng);
  }
  if (name == "powerlaw") {
    return graph::gen::chung_lu_power_law(n, 2.5, 6.0, rng);
  }
  if (name == "grid") {
    const auto side = static_cast<graph::NodeId>(std::sqrt(double(n)));
    return graph::gen::grid(side, side);
  }
  return graph::gen::random_tree(n, rng);
}

/// Arboricity hint matching make_workload's families.
inline graph::NodeId workload_alpha(const std::string& name) {
  if (name == "tree" || name == "pa_tree") return 1;
  if (name == "planar") return 3;
  if (name == "arb2") return 2;
  if (name == "arb4") return 4;
  if (name == "grid") return 2;
  return 4;  // gnp / power-law fallback hint
}

}  // namespace arbmis::bench
