// Experiment T6 (paper §1's narrative): the tree-MIS lineage measured on
// one axis. The introduction contrasts
//   * consistently oriented trees  -> O(log* n) via Cole–Vishkin,
//   * unoriented trees             -> Luby/Métivier O(log n) was the best
//     until Lenzen–Wattenhofer (PODC'11) and BEPS (FOCS'12) reached
//     O(√(log n)·log log n) by shattering.
// Rows: rounds of each approach on random and preferential-attachment
// trees as n grows. The oriented path (BFS rooting + Cole–Vishkin) splits
// its cost into the O(diameter) orientation (which the paper's setting
// assumes away) and the O(log* n) coloring, reported separately.
#include "bench_common.h"
#include "core/lw_tree_mis.h"
#include "core/tree_mis.h"
#include "graph/properties.h"
#include "mis/cole_vishkin.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "sim/bfs_rooting.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);

  bench::print_header(
      "T6", "the tree MIS lineage (paper §1): oriented vs unoriented trees");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"tree", "n", "metivier", "lw(PODC11)", "beps(FOCS12)",
                     "cv_color(log*)", "rooting(diam)", "all_verified"});
  table.set_double_precision(4);

  const std::vector<graph::NodeId> ns =
      options.quick ? std::vector<graph::NodeId>{1 << 10, 1 << 13}
                    : std::vector<graph::NodeId>{1 << 10, 1 << 13, 1 << 16};

  for (const std::string& family : {std::string("tree"), std::string("pa_tree")}) {
    for (graph::NodeId n : ns) {
      util::RunningStats metivier, lw, beps, cv, rooting;
      bool verified = true;
      for (std::uint64_t run = 0; run < runs; ++run) {
        util::Rng rng(options.seed + run * 17 + n);
        const graph::Graph t = bench::make_workload(family, n, rng);

        const auto m = mis::MetivierMis::run(t, options.seed + run);
        verified = verified && mis::verify(t, m).ok();
        metivier.add(m.stats.rounds);

        const auto l = core::lw_tree_mis(t, options.seed + run);
        verified = verified && mis::verify(t, l.mis).ok();
        lw.add(l.mis.stats.rounds);

        const auto b = core::tree_independent_set(t, options.seed + run);
        verified = verified && mis::verify(t, b.mis).ok();
        beps.add(b.mis.stats.rounds);

        // Oriented-tree path: rooting cost (the orientation the paper's
        // §1 contrast assumes given) + Cole–Vishkin MIS.
        const auto root = sim::BfsRooting::run(t, options.seed + run,
                                               t.num_nodes() + 2);
        rooting.add(root.quiescence_round);
        const auto colored = mis::ColeVishkin::run(
            t, root.parent, mis::ColeVishkin::Mode::kForestMis);
        mis::MisResult cv_result;
        cv_result.state = colored.state;
        verified = verified && mis::verify(t, cv_result).ok();
        cv.add(colored.stats.rounds);
      }
      table.row()
          .cell(family)
          .cell(std::uint64_t{n})
          .cell(metivier.mean())
          .cell(lw.mean())
          .cell(beps.mean())
          .cell(cv.mean())
          .cell(rooting.mean())
          .cell(verified ? "yes" : "NO");
    }
  }
  bench::emit(table, options);
  std::cout << "\nclaim shape: cv_color is flat in n (log*), the shattering "
               "architectures grow sublogarithmically, Métivier tracks "
               "log n; rooting reports the flood's actual quiescence round — "
               "the O(diameter) cost of creating the orientation the "
               "'easy' path presupposes.\n";
  return 0;
}
