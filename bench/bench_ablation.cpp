// Ablation bench (DESIGN.md §4/§6): how the practical-preset knobs move
// the pipeline's behavior.
//
//   A1. iteration_constant — fewer competition iterations per scale means
//       less elimination before the bad check: the bad set grows and the
//       rounds shrink (the Λ ↔ |B| trade the paper's Λ formula is sized
//       to win decisively).
//   A2. rho_log_factor — the competitiveness cap ρ_k: with a tiny cap
//       many nodes sit out (priority 0) and progress slows; with a huge
//       cap the algorithm degenerates toward plain Métivier.
//   A3. shatter_constant — where the scale cascade stops, i.e. how much
//       work is left for the finishing stage.
//   A4. finisher choice for the leftovers.
#include "bench_common.h"
#include "core/arb_mis.h"
#include "mis/verifier.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);
  const graph::NodeId n = options.quick ? 4000 : 20000;
  const graph::NodeId alpha = 2;

  bench::print_header("A1-A4", "ablations of the practical parameterization");
  std::cout << "n = " << n << ", alpha = " << alpha
            << ", runs per cell: " << runs << "\n\n";

  auto sweep = [&](const std::string& label, auto make_options) {
    util::Table table({"setting", "scales", "iters/scale", "shatter_rounds",
                       "finish_rounds", "total_rounds", "bad_nodes(mean)",
                       "verified"});
    table.set_double_precision(4);
    std::cout << label << "\n\n";
    make_options(table);
    bench::emit(table, options);
    std::cout << "\n";
  };

  auto run_cell = [&](util::Table& table, const std::string& setting,
                      const core::ArbMisOptions& arb_options) {
    util::RunningStats shatter, finish, total, bad;
    std::uint32_t scales = 0, iterations = 0;
    bool verified = true;
    for (std::uint64_t run = 0; run < runs; ++run) {
      util::Rng rng(options.seed + run * 53);
      const graph::Graph g =
          graph::gen::hubbed_forest_union(n, alpha, 8, rng);
      const core::ArbMisResult result =
          core::arb_mis(g, arb_options, options.seed + run);
      verified = verified && mis::verify(g, result.mis).ok();
      shatter.add(result.shatter_stats.rounds);
      finish.add(result.low_stats.rounds + result.high_stats.rounds +
                 result.bad_stats.rounds);
      total.add(result.mis.stats.rounds);
      bad.add(static_cast<double>(result.bad_size));
      scales = result.params.num_scales;
      iterations = result.params.iterations_per_scale;
    }
    table.row()
        .cell(setting)
        .cell(std::uint64_t{scales})
        .cell(std::uint64_t{iterations})
        .cell(shatter.mean())
        .cell(finish.mean())
        .cell(total.mean())
        .cell(bad.mean())
        .cell(verified ? "yes" : "NO");
  };

  sweep("A1: iteration budget Λ (iteration_constant)", [&](util::Table& t) {
    for (double c : {0.05, 0.15, 0.5, 1.0, 2.0}) {
      core::ArbMisOptions arb_options;
      arb_options.alpha = alpha;
      arb_options.tuning.iteration_constant = c;
      run_cell(t, "c_iter=" + std::to_string(c), arb_options);
    }
  });

  sweep("A2: competitiveness cap ρ (rho_log_factor)", [&](util::Table& t) {
    for (double c : {0.25, 1.0, 4.0, 16.0}) {
      core::ArbMisOptions arb_options;
      arb_options.alpha = alpha;
      arb_options.tuning.rho_log_factor = c;
      run_cell(t, "c_rho=" + std::to_string(c), arb_options);
    }
  });

  sweep("A3: scale cascade depth (shatter_constant)", [&](util::Table& t) {
    for (double c : {0.25, 0.5, 1.0, 4.0, 16.0}) {
      core::ArbMisOptions arb_options;
      arb_options.alpha = alpha;
      arb_options.tuning.shatter_constant = c;
      run_cell(t, "c_shatter=" + std::to_string(c), arb_options);
    }
  });

  sweep("A4: finisher for the leftovers (shattering disabled so the whole "
        "graph reaches the finisher)",
        [&](util::Table& t) {
          const std::pair<const char*, core::Finisher> finishers[] = {
              {"metivier", core::Finisher::kMetivier},
              {"linial", core::Finisher::kLinial},
              {"election", core::Finisher::kElection},
              {"sparse", core::Finisher::kSparse},
              {"gather", core::Finisher::kGather},
          };
          for (const auto& [name, finisher] : finishers) {
            core::ArbMisOptions arb_options;
            arb_options.alpha = alpha;
            // Push the scale cut above Δ: zero scales, pure finisher.
            arb_options.tuning.shatter_constant = 1e9;
            arb_options.low_finisher = finisher;
            arb_options.high_finisher = finisher;
            arb_options.bad_finisher = finisher;
            run_cell(t, name, arb_options);
          }
        });

  return 0;
}
