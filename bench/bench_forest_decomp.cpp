// Experiment T5 (paper Lemma 3.8 machinery): the finishing toolbox —
// (a) Barenboim–Elkin H-partition: ceil((2+eps)α) forests in O(log n)
//     rounds,
// (b) Cole–Vishkin: 3-coloring/MIS of a forest in O(log* n) rounds,
// (c) Linial bounded-degree MIS: O(log* n + D²) rounds, n-independent.
#include "bench_common.h"
#include "graph/properties.h"
#include "mis/cole_vishkin.h"
#include "mis/forest_decomposition.h"
#include "mis/linial.h"
#include "mis/sparse_mis.h"
#include "mis/verifier.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  bench::print_header("T5", "Lemma 3.8 machinery round counts");

  std::cout << "\n(a) Barenboim–Elkin forest decomposition (eps = 2)\n\n";
  util::Table fd({"n", "alpha", "forests", "rounds", "log2(n)", "valid"});
  fd.set_double_precision(4);
  const std::vector<graph::NodeId> ns =
      options.quick ? std::vector<graph::NodeId>{1 << 10, 1 << 13}
                    : std::vector<graph::NodeId>{1 << 10, 1 << 13, 1 << 16};
  for (graph::NodeId n : ns) {
    for (graph::NodeId alpha : {1u, 2u, 4u}) {
      util::Rng rng(options.seed + n + alpha);
      const graph::Graph g =
          graph::gen::union_of_random_forests(n, alpha, rng);
      const auto result = mis::ForestDecomposition::run(
          g, {.alpha = alpha, .eps = 2.0}, options.seed);
      fd.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{alpha})
          .cell(std::uint64_t{result.forests.num_forests()})
          .cell(std::uint64_t{result.stats.rounds})
          .cell(std::log2(static_cast<double>(n)))
          .cell(result.complete &&
                        graph::valid_forest_partition(g, result.forests)
                    ? "yes"
                    : "NO");
    }
  }
  bench::emit(fd, options);

  std::cout << "\n(b) Cole–Vishkin forest MIS (rounds are a fixed function "
               "of n — log* growth)\n\n";
  util::Table cv({"n", "rounds", "log*(ish)", "verified"});
  for (graph::NodeId n : ns) {
    util::Rng rng(options.seed + n);
    const graph::Graph t = graph::gen::random_tree(n, rng);
    // Root by BFS.
    std::vector<graph::NodeId> parent(t.num_nodes(), graph::kNoParent);
    {
      std::vector<bool> seen(t.num_nodes(), false);
      std::vector<graph::NodeId> stack{0};
      seen[0] = true;
      while (!stack.empty()) {
        const graph::NodeId v = stack.back();
        stack.pop_back();
        for (graph::NodeId w : t.neighbors(v)) {
          if (!seen[w]) {
            seen[w] = true;
            parent[w] = v;
            stack.push_back(w);
          }
        }
      }
    }
    const auto result = mis::ColeVishkin::run(
        t, parent, mis::ColeVishkin::Mode::kForestMis, options.seed);
    mis::MisResult mis_result;
    mis_result.state = result.state;
    cv.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{result.stats.rounds})
        .cell(std::uint64_t{mis::ColeVishkin::reduction_iterations(n)})
        .cell(mis::verify(t, mis_result).ok() ? "yes" : "NO");
  }
  bench::emit(cv, options);

  std::cout << "\n(c) Linial bounded-degree MIS (rounds independent of n, "
               "quadratic in D)\n\n";
  util::Table linial({"n", "max_degree_D", "reduction_steps", "final_colors",
                      "rounds", "verified"});
  for (graph::NodeId n : ns) {
    util::Rng rng(options.seed + 3 * n);
    const graph::Graph g =
        graph::gen::union_of_random_forests(n, 2, rng);
    mis::LinialMis algorithm(g, {.max_degree = g.max_degree()});
    sim::Network net(g, options.seed);
    const sim::RunStats stats = net.run(algorithm, 1 << 24);
    mis::MisResult result;
    result.state = algorithm.states();
    linial.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{g.max_degree()})
        .cell(std::uint64_t{algorithm.schedule().steps.size()})
        .cell(algorithm.schedule().final_colors)
        .cell(std::uint64_t{stats.rounds})
        .cell(mis::verify(g, result).ok() ? "yes" : "NO");
  }
  bench::emit(linial, options);

  std::cout << "\n(d) SparseMis composite pipeline (decomposition + per-"
               "forest Cole–Vishkin + 3^k sweep)\n\n";
  util::Table sparse({"n", "alpha", "forests", "classes", "fallback",
                      "rounds", "verified"});
  for (graph::NodeId n : ns) {
    for (graph::NodeId alpha : {1u, 2u}) {
      util::Rng rng(options.seed + 7 * n + alpha);
      const graph::Graph g =
          graph::gen::union_of_random_forests(n, alpha, rng);
      const auto result = mis::sparse_mis(g, {.alpha = alpha}, options.seed);
      sparse.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{alpha})
          .cell(std::uint64_t{result.num_forests})
          .cell(result.composite_classes)
          .cell(result.used_fallback ? "yes" : "no")
          .cell(std::uint64_t{result.mis.stats.rounds})
          .cell(mis::verify(g, result.mis).ok() ? "yes" : "NO");
    }
  }
  bench::emit(sparse, options);
  return 0;
}
