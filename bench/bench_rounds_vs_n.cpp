// Experiment F5 (paper Theorems 1.3 / 2.1): the full ArbMIS pipeline runs
// in O(poly(α)·√(log n)·log log n) rounds — sublogarithmic growth in n for
// fixed α. We sweep n with α fixed and print the measured rounds of each
// pipeline stage next to two reference curves, √(log₂ n · log₂ log₂ n)
// and log₂ n. The claim's shape: total rounds should track the first
// reference (up to a constant), clearly flatter than the Luby baseline,
// whose rounds track log₂ n.
#include "bench_common.h"
#include "core/arb_mis.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);

  bench::print_header(
      "F5",
      "Theorem 2.1 — ArbMIS rounds vs n at fixed alpha (sublogarithmic "
      "shape)");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"n", "max_degree", "shatter_rounds", "finish_rounds",
                     "total_rounds", "metivier_rounds",
                     "sqrt(log2 n*loglog2 n)", "log2(n)", "verified"});
  table.set_double_precision(4);

  const graph::NodeId alpha = 2;
  const std::vector<graph::NodeId> ns =
      options.quick
          ? std::vector<graph::NodeId>{1 << 10, 1 << 12}
          : std::vector<graph::NodeId>{1 << 10, 1 << 12, 1 << 14, 1 << 16,
                                       1 << 18};

  std::vector<double> log_ns, totals;
  for (graph::NodeId n : ns) {
    util::RunningStats shatter, finish, total, metivier;
    double max_degree = 0;
    bool all_verified = true;
    for (std::uint64_t run = 0; run < runs; ++run) {
      util::Rng rng(options.seed + run * 101 + n);
      const graph::Graph g =
          graph::gen::hubbed_forest_union(n, alpha, n / 512, rng);
      max_degree = static_cast<double>(g.max_degree());
      const core::ArbMisResult result =
          core::arb_mis(g, {.alpha = alpha}, options.seed + run);
      all_verified = all_verified && mis::verify(g, result.mis).ok();
      shatter.add(result.shatter_stats.rounds);
      finish.add(result.low_stats.rounds + result.high_stats.rounds +
                 result.bad_stats.rounds);
      total.add(result.mis.stats.rounds);
      metivier.add(
          mis::MetivierMis::run(g, options.seed + run + 7).stats.rounds);
    }
    const double log_n = std::log2(static_cast<double>(n));
    const double reference = std::sqrt(log_n * std::log2(log_n));
    table.row()
        .cell(std::uint64_t{n})
        .cell(max_degree)
        .cell(shatter.mean())
        .cell(finish.mean())
        .cell(total.mean())
        .cell(metivier.mean())
        .cell(reference)
        .cell(log_n)
        .cell(all_verified ? "yes" : "NO");
    log_ns.push_back(log_n);
    totals.push_back(total.mean());
  }
  bench::emit(table, options);

  const util::LinearFit fit = util::linear_fit(log_ns, totals);
  std::cout << "\nfit: total_rounds ~ " << fit.slope << "·log2(n) + "
            << fit.intercept << " (r² = " << fit.r_squared << ")\n";
  std::cout << "claim shape: rounds grow sublogarithmically — the slope "
               "against log2(n) should shrink as n grows, while the "
               "Métivier baseline tracks log2(n) with a constant slope.\n";
  return 0;
}
