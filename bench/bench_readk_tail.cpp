// Experiment T2 (paper Theorem 1.2): lower-tail bounds for the sum of a
// read-k indicator family —
//   form (1): P(Y <= (p-eps)n)     <= exp(-2 eps² n / k)
//   form (2): P(Y <= (1-δ)E[Y])   <= exp(-δ² E[Y] / 2k)
// vs the Chernoff bound (k = 1) the paper contrasts them with.
//
// Workload: shared-block families (maximally correlated read-k) and the
// independent control. The interesting row shape: the empirical tail of
// the correlated family EXCEEDS the Chernoff bound (so independence-based
// analysis would be wrong) while staying below the read-k bound — that is
// the paper's §1.1 message in one table.
#include "bench_common.h"
#include "readk/bounds.h"
#include "readk/family.h"
#include "readk/montecarlo.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t trials =
      options.trials ? options.trials : (options.quick ? 10000 : 200000);

  bench::print_header(
      "T2",
      "Theorem 1.2 — read-k lower-tail bounds vs Chernoff (block families)");
  std::cout << "trials per cell: " << trials << " (per pass)\n\n";

  util::Rng rng(options.seed);
  util::Table table({"n", "k", "p", "delta", "empirical", "ci_hi",
                     "readk_form2", "chernoff", "holds", "beats_chernoff"});
  table.set_double_precision(4);

  const std::vector<std::uint32_t> ns =
      options.quick ? std::vector<std::uint32_t>{64} :
                      std::vector<std::uint32_t>{64, 128, 256};
  const std::vector<std::uint32_t> ks{1, 2, 4, 8};
  const std::vector<double> deltas{0.25, 0.5, 0.75};

  for (std::uint32_t n : ns) {
    for (std::uint32_t k : ks) {
      const double p = 0.5;
      const readk::ReadKFamily family = readk::shared_block_family(n, k, p);
      const readk::TailEstimate estimate =
          readk::estimate_lower_tail(family, trials, deltas, rng);
      for (const auto& point : estimate.points) {
        const double readk_bound = readk::lower_tail_form2(
            point.delta, estimate.expected_sum, family.read_k());
        const double chernoff =
            readk::chernoff_lower_tail(point.delta, estimate.expected_sum);
        table.row()
            .cell(n)
            .cell(k)
            .cell(p)
            .cell(point.delta)
            .cell(point.probability)
            .cell(point.ci.hi)
            .cell(readk_bound)
            .cell(chernoff)
            .cell(point.ci.lo <= readk_bound + 1e-12 ? "yes" : "VIOLATED")
            .cell(point.probability > chernoff ? "yes" : "no");
      }
    }
  }
  bench::emit(table, options);

  std::cout << "\nform (1) check at eps = p/2 (same families):\n\n";
  util::Table form1({"n", "k", "empirical", "form1_bound", "holds"});
  form1.set_double_precision(4);
  for (std::uint32_t n : ns) {
    for (std::uint32_t k : ks) {
      const double p = 0.5;
      const double eps = p / 2.0;
      const readk::ReadKFamily family = readk::shared_block_family(n, k, p);
      // P(Y <= (p - eps)·n) = P(Y <= E[Y]/2) -> delta = 0.5 against the
      // exact expectation p·n.
      const std::vector<double> single_delta{0.5};
      const readk::TailEstimate estimate =
          readk::estimate_lower_tail(family, trials, single_delta, rng);
      const double bound =
          readk::lower_tail_form1(eps, n, family.read_k());
      form1.row()
          .cell(n)
          .cell(k)
          .cell(estimate.points[0].probability)
          .cell(bound)
          .cell(estimate.points[0].ci.lo <= bound + 1e-12 ? "yes"
                                                          : "VIOLATED");
    }
  }
  bench::emit(form1, options);
  return 0;
}
