// Experiment T4 (paper §1 / §1.2 discussion): who wins where. Luby's
// algorithm is Θ(log n) everywhere; the shattering pipeline targets
// bounded-arboricity graphs; Ghaffari's algorithm (O(log Δ) + small) is
// conceded by the paper to dominate. Every algorithm runs on every
// workload; rows report rounds, messages, and MIS size vs the greedy
// reference.
#include "bench_common.h"
#include "core/arb_mis.h"
#include "core/ghaffari_arb.h"
#include "mis/bit_metivier.h"
#include "mis/ghaffari.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);
  const graph::NodeId n = options.quick ? 4000 : 32000;

  bench::ObsSession obs_session(options, "bench_comparison");
  obs_session.set_workload(
      "comparison sweep: tree,pa_tree,planar,arb2,arb4,gnp,powerlaw", n, 0);

  bench::print_header(
      "T4", "who-wins comparison across workloads (paper §1, §1.2)");
  std::cout << "n = " << n << ", runs per cell: " << runs << "\n\n";

  util::Table table({"workload", "algorithm", "rounds(mean)", "rounds(max)",
                     "messages(mean)", "mis/greedy", "verified"});
  table.set_double_precision(4);

  const std::vector<std::string> workloads{"tree",  "pa_tree", "planar",
                                           "arb2",  "arb4",    "gnp",
                                           "powerlaw"};

  for (const std::string& workload : workloads) {
    struct Row {
      std::string name;
      util::RunningStats rounds, messages;
      double mis_ratio_sum = 0;
      bool verified = true;
    };
    std::vector<Row> rows(7);
    rows[0].name = "luby_b";
    rows[1].name = "metivier";
    rows[2].name = "ghaffari";
    rows[3].name = "arb_mis(paper)";
    rows[4].name = "arb_mis+degred";
    rows[5].name = "ghaffari_arb(§1.2)";
    rows[6].name = "bit_metivier[11]";

    for (std::uint64_t run = 0; run < runs; ++run) {
      util::Rng rng(options.seed + run * 131);
      const graph::Graph g = bench::make_workload(workload, n, rng);
      const graph::NodeId alpha = bench::workload_alpha(workload);
      const double greedy_size =
          static_cast<double>(mis::greedy_mis(g).mis_size());

      auto record = [&](Row& row, const mis::MisResult& result) {
        row.rounds.add(result.stats.rounds);
        row.messages.add(static_cast<double>(result.stats.messages));
        row.mis_ratio_sum +=
            greedy_size > 0
                ? static_cast<double>(result.mis_size()) / greedy_size
                : 1.0;
        row.verified = row.verified && mis::verify(g, result).ok();
      };

      record(rows[0], mis::LubyBMis::run(g, options.seed + run));
      record(rows[1], mis::MetivierMis::run(g, options.seed + run));
      record(rows[2], mis::GhaffariMis::run(g, options.seed + run));
      record(rows[3],
             core::arb_mis(g, {.alpha = alpha}, options.seed + run).mis);
      core::ArbMisOptions with_reduction;
      with_reduction.alpha = alpha;
      with_reduction.degree_reduction = true;
      record(rows[4],
             core::arb_mis(g, with_reduction, options.seed + run).mis);
      record(rows[5], core::ghaffari_arb_mis(g, options.seed + run).mis);
      record(rows[6],
             mis::BitMetivierMis::run(g, options.seed + run).mis);
    }

    for (const Row& row : rows) {
      table.row()
          .cell(workload)
          .cell(row.name)
          .cell(row.rounds.mean())
          .cell(row.rounds.max())
          .cell(row.messages.mean())
          .cell(row.mis_ratio_sum / static_cast<double>(runs))
          .cell(row.verified ? "yes" : "NO");
    }
  }
  bench::emit(table, options);
  std::cout << "\nexpected ordering (paper): ghaffari <= shattering "
               "pipeline < luby on bounded-arboricity workloads; all "
               "within a constant factor of greedy's MIS size.\n";
  return 0;
}
