// Experiment F2 (paper Theorem 3.2 / Figure 1B — Event (2)): with
// probability at least 1 - 1/Δ⁴, more than |M|/(2α) of the members draw a
// priority above all of their parents. The read-ρ structure (a
// competitive priority influences at most ρ indicators) is what makes the
// concentration work.
//
// Each row: empirical success probability, the mean fraction of members
// beating their parents (theory: >= 1/(α+1) per member, so the |M|/2α
// target has headroom), and the read-ρ tail bound on the failure side.
#include "bench_common.h"
#include "graph/orientation.h"
#include "graph/properties.h"
#include "readk/bounds.h"
#include "readk/events.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t trials =
      options.trials ? options.trials : (options.quick ? 2000 : 20000);

  bench::print_header(
      "F2",
      "Theorem 3.2 (Event 2, Fig 1B) — >|M|/2α members beat all parents");
  std::cout << "trials per cell: " << trials << "\n\n";

  util::Rng rng(options.seed);
  util::Table table({"family", "alpha_cert", "|M|", "mean_beat_fraction",
                     "1/(2*alpha)", "empirical_success", "ci_lo",
                     "readk_failure_bound"});
  table.set_double_precision(4);

  for (graph::NodeId alpha : {1u, 2u, 3u, 4u}) {
    util::Rng gen_rng(options.seed + alpha * 13);
    const graph::Graph g = graph::gen::union_of_random_forests(
        options.quick ? 300u : 2000u, alpha, gen_rng);
    const graph::Orientation orientation = graph::degeneracy_orientation(g);
    const graph::NodeId alpha_cert = graph::degeneracy(g);
    const auto members = readk::nodes_with_parents(orientation);
    const readk::EventEstimate estimate = readk::estimate_event2(
        g, orientation, members, alpha_cert, trials, rng);
    table.row()
        .cell("forest_union_" + std::to_string(alpha))
        .cell(std::uint64_t{alpha_cert})
        .cell(std::uint64_t{members.size()})
        .cell(estimate.mean_metric)
        .cell(1.0 / (2.0 * static_cast<double>(alpha_cert)))
        .cell(estimate.probability)
        .cell(estimate.ci.lo)
        .cell(readk::event2_failure_bound(members.size(), g.max_degree(),
                                          alpha_cert));
  }
  bench::emit(table, options);
  std::cout << "\nnote: at alpha = 1 the per-node success probability is "
               "exactly 1/(alpha+1) = 1/2, so E[X] = |M|/2 equals the "
               "|M|/(2*alpha) target and the success probability hovers at "
               "~1/2 — the paper's Pr(X_u = 1) >= 1/alpha step should read "
               "1/(alpha+1) (see EXPERIMENTS.md); for alpha >= 2 the "
               "theorem's margin is real and the event is near-certain.\n";
  return 0;
}
