// Experiment F6 (paper Theorem 2.1): the poly(α) dependence of the
// pipeline's round complexity. n and Δ are held (approximately) fixed
// while α sweeps; the measured rounds should grow polynomially in α
// (practical preset: ~α², see DESIGN.md — the paper's α⁸·(...)·log Δ
// constants are proof slack it explicitly offers to reduce).
#include "bench_common.h"
#include "core/arb_mis.h"
#include "mis/verifier.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t runs =
      options.trials ? options.trials : (options.quick ? 3 : 10);

  bench::print_header("F6",
                      "Theorem 2.1 — ArbMIS rounds vs alpha at fixed n");
  std::cout << "runs per cell: " << runs << "\n\n";

  util::Table table({"alpha", "max_degree", "scales", "iters/scale",
                     "scheduled_rounds", "shatter_rounds", "total_rounds",
                     "alpha^2_reference", "verified"});
  table.set_double_precision(4);

  const graph::NodeId n = options.quick ? 4000 : 32000;
  for (graph::NodeId alpha : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    util::RunningStats shatter, total;
    double max_degree = 0;
    std::uint32_t scales = 0, iterations = 0, scheduled = 0;
    bool all_verified = true;
    for (std::uint64_t run = 0; run < runs; ++run) {
      util::Rng rng(options.seed + run * 11 + alpha);
      const graph::Graph g =
          graph::gen::hubbed_forest_union(n, alpha, 4, rng);
      max_degree = static_cast<double>(g.max_degree());
      core::ArbMisOptions arb_options;
      arb_options.alpha = alpha;
      // Lower shattering cut so the scale machinery engages across the
      // whole alpha sweep at this Δ (ablation knob; see DESIGN.md).
      arb_options.tuning.shatter_constant = 0.25;
      const core::ArbMisResult result =
          core::arb_mis(g, arb_options, options.seed + run);
      all_verified = all_verified && mis::verify(g, result.mis).ok();
      shatter.add(result.shatter_stats.rounds);
      total.add(result.mis.stats.rounds);
      scales = result.params.num_scales;
      iterations = result.params.iterations_per_scale;
      scheduled = result.params.total_rounds();
    }
    table.row()
        .cell(std::uint64_t{alpha})
        .cell(max_degree)
        .cell(std::uint64_t{scales})
        .cell(std::uint64_t{iterations})
        .cell(std::uint64_t{scheduled})
        .cell(shatter.mean())
        .cell(total.mean())
        .cell(static_cast<double>(alpha) * static_cast<double>(alpha))
        .cell(all_verified ? "yes" : "NO");
  }
  bench::emit(table, options);
  std::cout << "\nclaim shape: the scheduled shattering budget (Θ·(3Λ+2)) "
               "scales polynomially with alpha (compare the alpha² "
               "reference); measured rounds are far smaller because the "
               "competitions decide every node long before the budget — "
               "the poly(alpha) cost lives in the worst-case schedule, "
               "not the typical run.\n";
  return 0;
}
