// Experiment S1: MIS-as-a-service end-to-end throughput (docs/SERVING.md).
//
// Spins up an in-process serve::Server + serve::MisService on an ephemeral
// loopback port and drives the mixed loadgen workload (tools/loadgen_core.h:
// LOAD -> COMPUTE xK -> QUERY -> fuzzed UPDATE_EDGES -> VERIFY -> STATS)
// from concurrent client threads — the same code path mis_loadgen exercises
// against an external daemon, minus process startup.
//
// Rows:
//   serve_mixed_quick  the CI smoke workload (4 clients x 240 nodes,
//                      120 fuzzed updates); tools/bench_gate.py gates its
//                      items_per_second (requests/s) against the committed
//                      results/BENCH_serve.json in the serve-smoke job.
//   serve_mixed        the full workload (omitted under --quick).
//
// Every workload pass must finish with zero client-side invariant
// violations and all updates certified — the bench exits nonzero
// otherwise, so run_benches.sh fails loudly on a serving regression, not
// just a slow one.
#include <fstream>
#include <limits>
#include <thread>

#include "bench_common.h"
#include "loadgen_core.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using namespace arbmis;

struct PassResult {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  bool all_certified = true;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_second() const {
    return wall_ms > 0.0
               ? static_cast<double>(requests) / (wall_ms / 1000.0)
               : 0.0;
  }
};

/// One full workload pass against a fresh service (fresh cache, epoch 0),
/// so repeated passes see identical hit/miss behavior.
PassResult run_pass(const loadgen::WorkloadOptions& workload,
                    std::uint32_t service_threads) {
  serve::ServiceOptions service_options;
  service_options.num_threads = service_threads;
  serve::MisService service(service_options);
  serve::Server server(service, {});
  server.start();

  std::vector<loadgen::ClientTotals> per_client(workload.clients);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t c = 0; c < workload.clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[c] =
          loadgen::run_client("127.0.0.1", server.port(), c, workload);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();
  server.stop();

  loadgen::ClientTotals totals;
  for (const loadgen::ClientTotals& t : per_client) totals.merge(t);
  PassResult result;
  result.requests = totals.requests;
  result.failures = totals.failures;
  result.all_certified = totals.updates_certified == totals.updates_total;
  result.wall_ms = std::chrono::duration<double, std::milli>(stop - start)
                       .count();
  result.p50_ms = loadgen::percentile_ms(totals.latencies_ms, 50);
  result.p99_ms = loadgen::percentile_ms(totals.latencies_ms, 99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t reps = options.quick ? 2 : 3;
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_serve.json"
                                    : options.json_out;

  bench::print_header(
      "S1", "serving daemon — mixed-workload request throughput");
  bench::ObsSession session(options, "bench_serve");
  session.set_workload("serve_mixed", 0, 0);
  std::cout << "best of " << reps << " passes per row; threads="
            << options.threads << "\n\n";

  struct Row {
    std::string name;
    loadgen::WorkloadOptions workload;
  };
  std::vector<Row> rows;
  {
    // Mirror the mis_loadgen --quick preset exactly: the gated row must
    // mean the same thing whether produced here or by the CI smoke job.
    loadgen::WorkloadOptions quick;
    quick.clients = 4;
    quick.nodes = 240;
    quick.computes = 3;
    quick.updates = 30;
    quick.queries = 6;
    quick.seed = options.seed;
    rows.push_back({"serve_mixed_quick", quick});
  }
  if (!options.quick) {
    loadgen::WorkloadOptions full;
    full.seed = options.seed;
    rows.push_back({"serve_mixed", full});
  }

  std::vector<std::pair<std::string, PassResult>> results;
  bool ok = true;
  for (const Row& row : rows) {
    PassResult best;
    best.wall_ms = std::numeric_limits<double>::infinity();
    for (std::uint64_t r = 0; r < reps; ++r) {
      const PassResult pass = run_pass(row.workload, options.threads);
      ok = ok && pass.failures == 0 && pass.all_certified;
      if (pass.wall_ms < best.wall_ms) best = pass;
    }
    results.emplace_back(row.name, best);
  }

  util::Table table(
      {"row", "requests", "best_ms", "req_per_s", "p50_ms", "p99_ms", "ok"});
  table.set_double_precision(3);
  for (const auto& [name, r] : results) {
    table.row()
        .cell(name)
        .cell(r.requests)
        .cell(r.wall_ms)
        .cell(r.requests_per_second())
        .cell(r.p50_ms)
        .cell(r.p99_ms)
        .cell(r.failures == 0 && r.all_certified ? "yes" : "NO");
  }
  bench::emit(table, options);
  std::cout << "\ninvariants: "
            << (ok ? "all passes certified, zero violations"
                   : "VIOLATION (see table)")
            << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [name, r] = results[i];
      json << "    {\"name\": \"" << name << "\", \"requests\": "
           << r.requests << ", \"best_ms\": " << r.wall_ms
           << ", \"items_per_second\": " << r.requests_per_second()
           << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return ok ? 0 : 1;
}
