// Experiment P1: serial-vs-parallel wall-clock for the round executor and
// the Monte-Carlo samplers, with the equivalence contract checked inline —
// the simulator cases must be bit-identical to serial, and the sampler
// cases thread-count-invariant (parallel at T == parallel at 1). Prints a
// table and writes machine-readable results to BENCH_sim_parallel.json
// (path via --json).
#include <chrono>
#include <fstream>
#include <functional>
#include <limits>
#include <thread>

#include "bench_common.h"
#include "core/arb_mis.h"
#include "mis/metivier.h"
#include "readk/family.h"
#include "readk/montecarlo.h"
#include "sim/network.h"
#include "util/stats.h"

namespace {

using namespace arbmis;

double time_best_ms(std::uint64_t reps, const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// Order-sensitive fold of a run's observable output, so "identical"
/// below means identical byte-for-byte, not merely same-MIS.
std::uint64_t fold(std::uint64_t h, std::uint64_t x) {
  return util::mix64(h, x);
}

struct CaseResult {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

std::uint64_t hash_mis(const mis::MisResult& r) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const mis::MisState s : r.state) {
    h = fold(h, static_cast<std::uint64_t>(s));
  }
  h = fold(h, r.stats.rounds);
  h = fold(h, r.stats.messages);
  h = fold(h, r.stats.payload_bits);
  h = fold(h, r.stats.max_edge_load);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  const std::uint32_t hardware = std::thread::hardware_concurrency();
  const std::uint32_t threads =
      options.threads != 0 ? options.threads
                           : std::max<std::uint32_t>(hardware, 2);
  const std::uint64_t reps = options.quick ? 2 : 3;
  const std::string json_path = options.json_out.empty()
                                    ? "results/BENCH_sim_parallel.json"
                                    : options.json_out;

  bench::print_header(
      "P1", "parallel round executor — speedup with bit-identical output");
  std::cout << "threads: " << threads
            << "  (hardware_concurrency: " << hardware << ")\n"
            << "best of " << reps << " reps per cell\n\n";

  std::vector<CaseResult> cases;

  // --- Simulator cases: parallel must be bit-identical to serial. ---
  {
    const graph::NodeId n = options.quick ? 5000 : 20000;
    util::Rng rng(options.seed);
    const graph::Graph g = graph::gen::union_of_random_forests(n, 2, rng);

    CaseResult c;
    c.name = "metivier_mis_arb2_n" + std::to_string(n);
    std::uint64_t serial_hash = 0;
    std::uint64_t parallel_hash = 0;
    c.serial_ms = time_best_ms(reps, [&] {
      serial_hash = hash_mis(mis::MetivierMis::run(g, options.seed));
    });
    c.parallel_ms = time_best_ms(reps, [&] {
      const sim::ScopedNumThreads scoped(threads);
      parallel_hash = hash_mis(mis::MetivierMis::run(g, options.seed));
    });
    c.identical = serial_hash == parallel_hash;
    cases.push_back(c);
  }
  {
    const graph::NodeId n = options.quick ? 4000 : 16000;
    util::Rng rng(options.seed + 1);
    const graph::Graph g =
        graph::gen::hubbed_forest_union(n, 2, n / 512, rng);

    CaseResult c;
    c.name = "arb_mis_pipeline_n" + std::to_string(n);
    std::uint64_t serial_hash = 0;
    std::uint64_t parallel_hash = 0;
    c.serial_ms = time_best_ms(reps, [&] {
      serial_hash =
          hash_mis(core::arb_mis(g, {.alpha = 2}, options.seed).mis);
    });
    c.parallel_ms = time_best_ms(reps, [&] {
      const sim::ScopedNumThreads scoped(threads);
      parallel_hash =
          hash_mis(core::arb_mis(g, {.alpha = 2}, options.seed).mis);
    });
    c.identical = serial_hash == parallel_hash;
    cases.push_back(c);
  }

  // --- Sampler case: block-parallel is a different (documented) stream
  // decomposition than the legacy serial sampler, so the contract here is
  // thread-count-invariance: T workers == 1 worker, draw for draw. ---
  {
    const std::uint64_t trials =
        options.trials ? options.trials : (options.quick ? 20000 : 200000);
    const readk::ReadKFamily family =
        readk::shared_block_family(2000, 8, 0.999);

    CaseResult c;
    c.name = "mc_conjunction_" + std::to_string(trials) + "trials";
    readk::ConjunctionEstimate one, many;
    c.serial_ms = time_best_ms(reps, [&] {
      util::Rng local(options.seed + 3);
      one = readk::estimate_conjunction(family, trials, local,
                                        {.num_threads = 1});
    });
    c.parallel_ms = time_best_ms(reps, [&] {
      util::Rng local(options.seed + 3);
      many = readk::estimate_conjunction(family, trials, local,
                                         {.num_threads = threads});
    });
    c.identical = one.all_ones == many.all_ones &&
                  one.mean_indicator == many.mean_indicator;
    cases.push_back(c);
  }

  util::Table table(
      {"case", "serial_ms", "parallel_ms", "speedup", "identical"});
  table.set_double_precision(3);
  for (const CaseResult& c : cases) {
    table.row()
        .cell(c.name)
        .cell(c.serial_ms)
        .cell(c.parallel_ms)
        .cell(c.speedup())
        .cell(c.identical ? "yes" : "NO");
  }
  bench::emit(table, options);

  bool all_identical = true;
  for (const CaseResult& c : cases) all_identical = all_identical && c.identical;
  std::cout << "\nequivalence: "
            << (all_identical ? "all cases identical" : "MISMATCH") << "\n";

  std::ofstream json(json_path);
  if (json) {
    json << "{\n"
         << "  \"bench\": \"sim_parallel\",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const CaseResult& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"serial_ms\": "
           << c.serial_ms << ", \"parallel_ms\": " << c.parallel_ms
           << ", \"speedup\": " << c.speedup() << ", \"identical\": "
           << (c.identical ? "true" : "false") << "}"
           << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << "could not open " << json_path << " for writing\n";
  }
  return all_identical ? 0 : 1;
}
