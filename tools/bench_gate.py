#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Compares the `items_per_second` counter of selected benchmarks in a fresh
run against a committed baseline and fails (exit 1) when any of them
regresses by more than the tolerance. CI's perf-smoke job drives it as:

    python3 tools/bench_gate.py \
        --baseline results/BENCH_micro.json \
        --current  /tmp/bench_micro_now.json \
        --benchmark 'BM_NetworkRoundThroughput/4096' \
        --tolerance 0.25

Only throughput counters are compared — absolute wall-clock on shared CI
runners is too noisy, and items/s at fixed n drifts less than ns/op. The
baseline file is the one run_benches.sh commits from a quiet machine; the
tolerance (default 25%) absorbs runner-to-runner variance, not real
regressions (the arena refactor moved this counter by >100%).

A second, independent gate diffs "arbmis.metrics.v1" dumps (the --metrics=
output of the bench binaries; see docs/OBSERVABILITY.md). Unlike timing,
those counters are deterministic in (graph, seed, algorithm), so selected
counters are compared by EXACT equality — any drift means the simulation
semantics changed, not the machine:

    python3 tools/bench_gate.py \
        --metrics-baseline results/BENCH_metrics_smoke.json \
        --metrics-current  /tmp/metrics_now.json \
        --metric sim.messages --metric sim.rounds --metric sim.rng_draws

Both gates may be combined in one invocation; the gate fails if either
does.

Stdlib only: the image has no third-party Python packages.
"""

import argparse
import json
import sys


def load_items_per_second(path):
    """Returns {benchmark name: items_per_second} from a gbench JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for row in doc.get("benchmarks", []):
        if "items_per_second" in row:
            out[row["name"]] = float(row["items_per_second"])
    return out


def load_metrics_counters(path):
    """Returns the counters dict of an "arbmis.metrics.v1" dump."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != "arbmis.metrics.v1":
        raise ValueError(f"{path}: schema {schema!r} is not "
                         "'arbmis.metrics.v1'")
    return doc.get("counters", {})


def regen_hint(args):
    """How to rebuild the committed metrics baseline, for error messages."""
    if args.regen_command:
        return args.regen_command
    return (f"re-run the workload that produced {args.metrics_baseline} "
            f"(see the CI job invoking this gate) and commit the "
            f"refreshed file")


def gate_metrics(args):
    """Exact-equality diff of selected counters; returns failure count."""
    baseline = load_metrics_counters(args.metrics_baseline)
    current = load_metrics_counters(args.metrics_current)
    failures = 0
    for name in args.metrics:
        if name not in baseline:
            # A missing counter usually means the baseline predates the
            # counter, not that the code regressed — say exactly which
            # counter and how to regenerate, or every contributor rediscovers
            # the fix from the CI logs.
            print(f"GATE ERROR: counter {name!r} missing from baseline "
                  f"{args.metrics_baseline}\n"
                  f"  The committed baseline does not know this counter. "
                  f"To regenerate:\n"
                  f"    {regen_hint(args)}")
            failures += 1
            continue
        if name not in current:
            print(f"GATE ERROR: counter {name!r} missing from current run "
                  f"{args.metrics_current}")
            failures += 1
            continue
        base, cur = baseline[name], current[name]
        verdict = "OK" if base == cur else "DRIFT"
        print(f"{verdict}: {name}: baseline {base}, current {cur}")
        if base != cur:
            failures += 1
    return failures


def gate_throughput(args):
    """Tolerance gate over gbench items/s; returns failure count."""
    baseline = load_items_per_second(args.baseline)
    current = load_items_per_second(args.current)

    failures = 0
    for name in args.benchmarks:
        if name not in baseline:
            print(f"GATE ERROR: {name!r} missing from baseline "
                  f"{args.baseline}")
            failures += 1
            continue
        if name not in current:
            print(f"GATE ERROR: {name!r} missing from current run "
                  f"{args.current}")
            failures += 1
            continue
        base = baseline[name]
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        ratio = cur / base if base > 0 else float("inf")
        verdict = "OK" if cur >= floor else "REGRESSION"
        print(f"{verdict}: {name}: baseline {base:.3e} items/s, "
              f"current {cur:.3e} items/s ({ratio:.2f}x, floor "
              f"{floor:.3e})")
        if cur < floor:
            failures += 1
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        help="committed gbench JSON (e.g. results/BENCH_micro.json)")
    parser.add_argument("--current",
                        help="gbench JSON from the fresh run under test")
    parser.add_argument("--benchmark", action="append", default=[],
                        dest="benchmarks",
                        help="benchmark name to gate on (repeatable)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--metrics-baseline",
                        help="committed arbmis.metrics.v1 JSON baseline")
    parser.add_argument("--metrics-current",
                        help="arbmis.metrics.v1 JSON from the run under test")
    parser.add_argument("--metric", action="append", default=[],
                        dest="metrics",
                        help="counter name to diff by exact equality "
                             "(repeatable)")
    parser.add_argument("--regen-command", default=None,
                        help="exact command that regenerates the metrics "
                             "baseline; echoed in missing-counter errors")
    args = parser.parse_args(argv)

    throughput = bool(args.benchmarks)
    metrics = bool(args.metrics)
    if throughput and (not args.baseline or not args.current):
        parser.error("--benchmark requires --baseline and --current")
    if metrics and (not args.metrics_baseline or not args.metrics_current):
        parser.error("--metric requires --metrics-baseline and "
                     "--metrics-current")
    if not throughput and not metrics:
        parser.error("nothing to gate: pass --benchmark and/or --metric")

    failures = 0
    if throughput:
        failures += gate_throughput(args)
    if metrics:
        failures += gate_metrics(args)

    if failures:
        print(f"bench gate FAILED: {failures} check(s) out of bounds")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
