// flightrec_smoke: plants a CONGEST model-checker violation with a flight
// recorder attached and exits through the auto-dump seam.
//
//   flightrec_smoke --out PATH [--ring-bytes N]
//
// Runs a deliberately over-wide sender (40 message bits against a
// 16-bit edge budget) serially with fail_fast off, so the checker counts
// the violation, obs emits the kViolation event, and the attached
// recorder auto-dumps its ring to --out. Exit 0 requires that the
// violation was counted AND the dump file was written; the tier-1 ctest
// entry (tooling.flightrec_smoke) then round-trips the artifact through
// tools/trace_inspect.py --validate and summary via flightrec_smoke.py.
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <span>
#include <string>
#include <string_view>

#include "graph/generators.h"
#include "obs/recorder.h"
#include "sim/network.h"

namespace {

/// Sends one 40-bit message (32 payload + 8 tag) from node 0, then halts:
/// over the planted 16-bit edge budget, so the checker must object.
class OverWideSender : public arbmis::sim::Algorithm {
 public:
  std::string_view name() const override { return "overwide_sender"; }
  void on_start(arbmis::sim::NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(0, 1, 0xFFFFFFFFULL);
  }
  void on_round(arbmis::sim::NodeContext& ctx,
                std::span<const arbmis::sim::Message>) override {
    ctx.halt();
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::size_t ring_bytes = std::size_t{64} << 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--ring-bytes" && i + 1 < argc) {
      ring_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: " << argv[0] << " --out PATH [--ring-bytes N]\n";
      return 1;
    }
  }
  if (out.empty()) {
    std::cerr << "flightrec_smoke: --out is required\n";
    return 1;
  }

  try {
    arbmis::obs::RecorderConfig config;
    config.max_bytes = ring_bytes;
    config.dump_path = out;
    arbmis::obs::FlightRecorder recorder(config);
    const arbmis::obs::ScopedRecorder scope(&recorder);

    const arbmis::graph::Graph g = arbmis::graph::gen::path(2);
    arbmis::sim::NetworkOptions options;
    options.model_check.min_edge_bits = 16;
    options.model_check.log_n_factor = 1;
    options.model_check.fail_fast = false;  // count, emit, auto-dump
    arbmis::sim::Network net(g, /*seed=*/1, options);
    OverWideSender algorithm;
    net.run(algorithm, 4);

    const std::uint64_t violations = net.model_check_report().violations;
    const arbmis::obs::RecorderStats stats = recorder.stats();
    std::cout << "flightrec_smoke: violations=" << violations
              << " recorded_events=" << stats.recorded_events
              << " dumps=" << stats.dumps << " out=" << out << "\n";
    if (violations == 0) {
      std::cerr << "flightrec_smoke: planted violation was not detected\n";
      return 2;
    }
    if (stats.dumps == 0) {
      std::cerr << "flightrec_smoke: recorder auto-dump did not fire\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "flightrec_smoke: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
