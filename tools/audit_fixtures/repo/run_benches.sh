#!/bin/bash
# Fixture for HYG003 (see bench/CMakeLists.txt in this fixture repo).
set -euo pipefail

BENCHES=(
  bench_alpha
  bench_stale   # not a CMake target: must be flagged
)

for name in "${BENCHES[@]}"; do
  echo "$name"
done
