// Fixture: LAY001 must fire 1x here — engine/ reaching sideways into
// mis/, an edge the tools/layering.toml matrix deliberately omits (the
// engines define their own result surface; see the engine row's comment).
#include "mis/greedy.h"

namespace fixture {

int engine_matrix_breaker() { return 1; }

}  // namespace fixture
