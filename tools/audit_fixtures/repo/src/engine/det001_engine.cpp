// Fixture: DET001 must fire 2x here — the engine module is semantic (its
// priorities must be pure functions of the seed): the <random> include and
// std::random_device.
#include <random>

namespace fixture {

unsigned engine_draw() {
  std::random_device dev;
  return dev();
}

}  // namespace fixture
