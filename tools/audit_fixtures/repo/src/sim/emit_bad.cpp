// Fixture for HYG002: a make_event call site passing three values where
// the 'alpha' schema declares two fields — the rule must fire 1x here.
#include "obs/events.h"

namespace fixture {

void emit_too_wide() {
  emit(make_event(EventKind::kAlpha, 0, "", 1, 2, 3));
}

}  // namespace fixture
