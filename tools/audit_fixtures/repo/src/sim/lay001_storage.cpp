// Fixture: LAY001 must fire 1x here — sim/ reaching into the sealed
// graph/storage submodule, which no src module's layering row allows
// (storage-backed graphs cross into src/ only as graph::GraphView).
#include "graph/storage/mapped_graph.h"

namespace fixture {

int seam_breaker() { return 1; }

}  // namespace fixture
