// Fixture for CON001: a contract header whose poison list is missing the
// required identifier 'getenv' — the rule must fire 1x here. Everything
// it does poison is in the audit's recognized banned set, so no
// unknown-identifier finding fires.
#pragma once

#if defined(ARBMIS_CONTRACTS_POISON) && defined(__GNUC__)
#pragma GCC poison rand srand random_device mt19937
#endif
