// Fixture for HYG002: a miniature event-kind enum. The kinds here agree
// with this fixture repo's events.cpp wire names; the deliberate drift
// lives in events.cpp (declared field count) and tools/trace_inspect.py
// (missing kind).
#pragma once

namespace fixture {

enum class EventKind : unsigned char {
  kAlpha = 0,
  kBetaGamma,
  kCount
};

}  // namespace fixture
