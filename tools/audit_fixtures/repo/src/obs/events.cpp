// Fixture for HYG002: the kSchemas table. Exactly one deliberate defect —
// the beta_gamma entry declares num_fields=2 but lists a single field —
// so the rule must fire 1x on this file.
#include "obs/events.h"

namespace fixture {

constexpr SchemaTable kSchemas = {{
    {"alpha", nullptr, {"x", "y"}, 2},
    {"beta_gamma", "label", {"n"}, 2},
}};

}  // namespace fixture
