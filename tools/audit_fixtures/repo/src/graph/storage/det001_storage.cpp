// Fixture: DET001 must fire 2x here — the graph/storage submodule
// inherits graph's determinism regime (module key "graph/storage", DET
// scans key on the first component): the <random> include and rand().
#include <random>

namespace fixture {

int storage_draw() { return rand(); }

}  // namespace fixture
