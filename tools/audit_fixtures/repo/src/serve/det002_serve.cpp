// Fixture: DET002 must fire 1x here — a wall-clock read inside serve/,
// which is a semantic module: replies must be deterministic functions of
// the request sequence, so latency timing belongs to the hosts
// (tools/mis_loadgen, bench/bench_serve), never the service.
#include <chrono>

namespace fixture {

long serve_clock_breaker() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
