// Fixture: LAY001 must fire 2x here — serve/ textually including mis/ and
// sim/, which its layering row forbids (serve reaches the verifier only
// through fault::certify_labels and mis types only transitively).
#include "mis/verifier.h"
#include "sim/network.h"

namespace fixture {

int serve_layer_breaker() { return 1; }

}  // namespace fixture
