// Fixture: LAY002 must fire 1x here — core/ may depend on sim/ per the
// matrix, but sim/thread_pool.h is a restricted executor internal.
#include "sim/network.h"
#include "sim/thread_pool.h"

namespace fixture {

int lane_peeker() { return 2; }

}  // namespace fixture
