// Fixture: DET001 must fire 4x here — std entropy sources in a semantic
// module (the <random> include, random_device, mt19937, and rand()).
#include <random>

namespace fixture {

int hardware_draw() {
  std::random_device dev;
  std::mt19937 gen(dev());
  return static_cast<int>(gen());
}

int legacy_draw() { return rand(); }

}  // namespace fixture
