// Fixture: DET002 must fire 2x here — wall-clock reads in a semantic
// module (steady_clock and time()).
#include <chrono>
#include <ctime>

namespace fixture {

long now_ns() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<long>(t.time_since_epoch().count());
}

long now_s() { return static_cast<long>(time(nullptr)); }

}  // namespace fixture
