namespace fixture {

// This file is the HYG001 fixture: two suppression markers below are
// non-compliant (one bare, one named but unjustified) and must fire; the
// third is the compliant form and must pass. Keep the word itself out of
// prose comments here — like clang-tidy, the audit treats any comment
// occurrence as a live marker.

int bare = 0;       // NOLINT
int unjustified = 1;  // NOLINT(bugprone-branch-clone)
int justified = 2;  // NOLINT(bugprone-branch-clone): fixture for the
                    // compliant form; named check plus a reason.

}  // namespace fixture
