// Fixture: DET005 must fire 2x here — ordered containers keyed by pointer
// (ordered by address, i.e. by allocator/ASLR state).
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

int count_live(const std::set<Node*>& live,
               const std::map<Node*, int>& weight) {
  return static_cast<int>(live.size() + weight.size());
}

}  // namespace fixture
