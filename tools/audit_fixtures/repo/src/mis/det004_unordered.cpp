// Fixture: DET004 must fire 1x here — an unordered container in a
// semantic module, iterated by range-for (the include line itself is not
// counted; the type mention is).
#include <cstdint>
#include <unordered_map>

namespace fixture {

std::uint64_t sum_values(const std::unordered_map<int, int>& table) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : table) {
    sum += static_cast<std::uint64_t>(value) ^
           static_cast<std::uint64_t>(key);
  }
  return sum;  // depends on implementation-defined bucket order
}

}  // namespace fixture
