// Fixture: the control file — deterministic, well-layered code that must
// produce ZERO findings. It also exercises the lexer's corner cases:
// banned identifiers inside strings and comments must not fire
// (e.g. "rand", "getenv", unordered_map, steady_clock in this comment).
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/algorithm.h"

namespace fixture {

inline constexpr const char* kDoc =
    "strings mentioning rand() or getenv() or mt19937 are not code";

std::uint64_t mix_sorted(const std::vector<std::uint64_t>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t v : values) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace fixture
