// Fixture: DET003 must fire 2x here — environment/process-state access in
// a semantic module (getenv and system()).
#include <cstdlib>

namespace fixture {

const char* home() { return std::getenv("HOME"); }

int shell() { return std::system("true"); }

}  // namespace fixture
