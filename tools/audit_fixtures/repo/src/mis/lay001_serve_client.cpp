// Fixture: LAY001 must fire 1x here — an algorithm module reaching up
// into serve/. The serving layer is the top of the stack: no src module
// lists it in tools/layering.toml.
#include "serve/protocol.h"

namespace fixture {

int serve_upcall_breaker() { return 1; }

}  // namespace fixture
