// Fixture: LAY001 must fire 1x here — mis/ reaching up into fault/, an
// edge the tools/layering.toml matrix does not allow.
#include "fault/adversary.h"

namespace fixture {

int matrix_breaker() { return 1; }

}  // namespace fixture
