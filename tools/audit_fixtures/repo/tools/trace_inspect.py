# Fixture for HYG002: the offline validator's embedded schema table,
# deliberately missing the 'beta_gamma' kind — the rule must fire 1x on
# this file.

EVENT_SCHEMAS = {
    "alpha": (["x", "y"], None),
}
