// arbmis_serve: the MIS-as-a-service daemon (docs/SERVING.md).
//
//   arbmis_serve [--port N] [--port-file PATH] [--threads N]
//                [--cache N] [--full-fraction F] [--max-attempts N]
//                [--events=PATH[.bin]] [--quiet]
//
// Binds a loopback TCP listener (port 0 = ephemeral; the bound port is
// printed and optionally written to --port-file so scripts can rendezvous),
// serves the length-prefixed binary protocol until SIGINT/SIGTERM, then
// shuts down cleanly so an attached event stream is flushed complete. As a
// host binary this is where graph/storage is wired in: LOAD_GRAPH path
// requests go through an injected MappedGraph loader, which the serve
// library itself never names.
#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "graph/storage/mapped_graph.h"
#include "obs/manifest.h"
#include "obs/sink.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--port N] [--port-file PATH] [--threads N] [--cache N]\n"
         "       [--full-fraction F] [--max-attempts N] [--events=PATH]\n"
         "       [--quiet]\n"
         "  --port N          TCP port (default 0 = ephemeral)\n"
         "  --port-file PATH  write the bound port for rendezvous\n"
         "  --threads N       simulator worker threads (0 = serial)\n"
         "  --cache N         result-cache capacity (entries)\n"
         "  --full-fraction F residual fraction forcing full recompute\n"
         "  --max-attempts N  resilient_mis attempt budget\n"
         "  --events=PATH     telemetry event stream (.jsonl or .bin)\n"
         "  --quiet           suppress startup banner\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  arbmis::serve::ServiceOptions service_options;
  arbmis::serve::ServerOptions server_options;
  std::string port_file;
  std::string events_out;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      server_options.port =
          static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      service_options.num_threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cache" && i + 1 < argc) {
      service_options.max_cache_entries =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--full-fraction" && i + 1 < argc) {
      service_options.full_recompute_fraction =
          std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      service_options.max_attempts =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--events=", 0) == 0) {
      events_out = arg.substr(9);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "arbmis_serve: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  // Block the shutdown signals before any thread spawns so sigwait below
  // is the only consumer — every worker inherits the mask.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    // Path-based LOAD_GRAPH: host-side wiring of the sealed storage layer.
    service_options.gr_loader =
        [](const std::string& path) -> arbmis::serve::LoadedGraph {
      auto mapped = std::make_shared<arbmis::graph::storage::MappedGraph>(
          arbmis::graph::storage::MappedGraph::open(path));
      const arbmis::graph::GraphView view = mapped->view();
      return {std::move(mapped), view};
    };
    arbmis::serve::MisService service(service_options);

    arbmis::obs::Manifest manifest =
        arbmis::obs::make_manifest("arbmis_serve");
    manifest.threads = service_options.num_threads;
    std::unique_ptr<arbmis::obs::EventSink> events;
    std::optional<arbmis::obs::ScopedSink> sink_scope;
    if (!events_out.empty()) {
      const bool binary =
          events_out.size() >= 4 &&
          events_out.compare(events_out.size() - 4, 4, ".bin") == 0;
      arbmis::obs::SinkConfig config;
      if (binary) {
        events = std::make_unique<arbmis::obs::BinaryWriter>(events_out,
                                                             config);
      } else {
        events = std::make_unique<arbmis::obs::JsonlWriter>(events_out,
                                                            config);
      }
      events->attach_manifest(manifest);
      sink_scope.emplace(events.get());
    }

    arbmis::serve::Server server(service, server_options);
    server.start();
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    if (!quiet) {
      std::cout << "arbmis_serve: listening on " << server_options.bind_address
                << ":" << server.port() << " (threads="
                << service_options.num_threads << ", cache="
                << service_options.max_cache_entries << ")\n"
                << std::flush;
    }

    int sig = 0;
    sigwait(&mask, &sig);
    if (!quiet) {
      std::cout << "arbmis_serve: signal " << sig << ", shutting down\n";
    }
    server.stop();
    sink_scope.reset();
    if (events != nullptr) events->flush();
  } catch (const std::exception& e) {
    std::cerr << "arbmis_serve: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
