// arbmis_serve: the MIS-as-a-service daemon (docs/SERVING.md).
//
//   arbmis_serve [--port N] [--port-file PATH] [--threads N]
//                [--cache N] [--full-fraction F] [--max-attempts N]
//                [--events=PATH[.bin]] [--metrics=PATH]
//                [--recorder-bytes=N] [--flightrec=PATH]
//                [--crash-dump=PATH] [--quiet]
//
// Binds a loopback TCP listener (port 0 = ephemeral; the bound port is
// printed and optionally written to --port-file so scripts can rendezvous),
// serves the length-prefixed binary protocol until SIGINT/SIGTERM, then
// shuts down cleanly so an attached event stream is flushed complete. As a
// host binary this is where graph/storage is wired in: LOAD_GRAPH path
// requests go through an injected MappedGraph loader, which the serve
// library itself never names.
//
// Introspection (docs/OBSERVABILITY.md): a metrics registry and a flight
// recorder are always attached, so METRICS and DUMP_RECORDER requests work
// without any flags. --flightrec names the auto-dump artifact written when
// a ModelChecker violation or certification failure fires; --crash-dump
// pre-opens a file descriptor and installs fatal-signal handlers that
// stream the ring into it (async-signal-safe) before re-raising.
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "graph/storage/mapped_graph.h"
#include "obs/manifest.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--port N] [--port-file PATH] [--threads N] [--cache N]\n"
         "       [--full-fraction F] [--max-attempts N] [--events=PATH]\n"
         "       [--metrics=PATH] [--recorder-bytes=N] [--flightrec=PATH]\n"
         "       [--crash-dump=PATH] [--quiet]\n"
         "  --port N           TCP port (default 0 = ephemeral)\n"
         "  --port-file PATH   write the bound port for rendezvous\n"
         "  --threads N        simulator worker threads (0 = serial)\n"
         "  --cache N          result-cache capacity (entries)\n"
         "  --full-fraction F  residual fraction forcing full recompute\n"
         "  --max-attempts N   resilient_mis attempt budget\n"
         "  --events=PATH      telemetry event stream (.jsonl or .bin)\n"
         "  --metrics=PATH     write the metrics registry JSON at shutdown\n"
         "  --recorder-bytes=N flight-recorder ring capacity (default 1MiB)\n"
         "  --flightrec=PATH   auto-dump artifact for violation/cert seams\n"
         "  --crash-dump=PATH  pre-opened fatal-signal recorder dump\n"
         "  --quiet            suppress startup banner\n";
  return 1;
}

// Fatal-signal crash dump. The handler reads two relaxed atomics set up
// before the server starts, streams the ring via the async-signal-safe
// dump_to_fd, and re-raises with default disposition (SA_RESETHAND) so
// the process still dies with the original signal.
std::atomic<arbmis::obs::FlightRecorder*> g_crash_recorder{nullptr};
std::atomic<int> g_crash_fd{-1};

extern "C" void crash_dump_handler(int sig) {
  arbmis::obs::FlightRecorder* r =
      g_crash_recorder.load(std::memory_order_relaxed);
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (r != nullptr && fd >= 0) {
    r->dump_to_fd(fd, "fatal_signal");
    ::fsync(fd);
  }
  ::raise(sig);
}

void install_crash_handler() {
  struct sigaction sa{};
  sa.sa_handler = crash_dump_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(sig, &sa, nullptr);
  }
}

}  // namespace

int main(int argc, char** argv) {
  arbmis::serve::ServiceOptions service_options;
  arbmis::serve::ServerOptions server_options;
  std::string port_file;
  std::string events_out;
  std::string metrics_out;
  std::string crash_dump_path;
  arbmis::obs::RecorderConfig recorder_config;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      server_options.port =
          static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      service_options.num_threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cache" && i + 1 < argc) {
      service_options.max_cache_entries =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--full-fraction" && i + 1 < argc) {
      service_options.full_recompute_fraction =
          std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      service_options.max_attempts =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--events=", 0) == 0) {
      events_out = arg.substr(9);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_out = arg.substr(10);
    } else if (arg.rfind("--recorder-bytes=", 0) == 0) {
      recorder_config.max_bytes = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg.rfind("--flightrec=", 0) == 0) {
      recorder_config.dump_path = arg.substr(12);
    } else if (arg.rfind("--crash-dump=", 0) == 0) {
      crash_dump_path = arg.substr(13);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "arbmis_serve: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  // Block the shutdown signals before any thread spawns so sigwait below
  // is the only consumer — every worker inherits the mask.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    // Path-based LOAD_GRAPH: host-side wiring of the sealed storage layer.
    service_options.gr_loader =
        [](const std::string& path) -> arbmis::serve::LoadedGraph {
      auto mapped = std::make_shared<arbmis::graph::storage::MappedGraph>(
          arbmis::graph::storage::MappedGraph::open(path));
      const arbmis::graph::GraphView view = mapped->view();
      return {std::move(mapped), view};
    };
    arbmis::serve::MisService service(service_options);

    arbmis::obs::Manifest manifest =
        arbmis::obs::make_manifest("arbmis_serve");
    manifest.threads = service_options.num_threads;

    // Always-on introspection: METRICS and DUMP_RECORDER answer from the
    // live registry and ring without requiring any flag.
    arbmis::obs::Registry metrics_registry;
    const arbmis::obs::ScopedRegistry registry_scope(&metrics_registry);
    arbmis::obs::FlightRecorder flight_recorder(recorder_config);
    flight_recorder.attach_manifest(manifest);
    const arbmis::obs::ScopedRecorder recorder_scope(&flight_recorder);
    if (!crash_dump_path.empty()) {
      const int fd = ::open(crash_dump_path.c_str(),
                            O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd < 0) {
        std::cerr << "arbmis_serve: cannot open --crash-dump "
                  << crash_dump_path << "\n";
        return 2;
      }
      g_crash_recorder.store(&flight_recorder, std::memory_order_relaxed);
      g_crash_fd.store(fd, std::memory_order_relaxed);
      install_crash_handler();
    }

    std::unique_ptr<arbmis::obs::EventSink> events;
    std::optional<arbmis::obs::ScopedSink> sink_scope;
    if (!events_out.empty()) {
      const bool binary =
          events_out.size() >= 4 &&
          events_out.compare(events_out.size() - 4, 4, ".bin") == 0;
      arbmis::obs::SinkConfig config;
      if (binary) {
        events = std::make_unique<arbmis::obs::BinaryWriter>(events_out,
                                                             config);
      } else {
        events = std::make_unique<arbmis::obs::JsonlWriter>(events_out,
                                                            config);
      }
      events->attach_manifest(manifest);
      sink_scope.emplace(events.get());
    }

    arbmis::serve::Server server(service, server_options);
    server.start();
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    if (!quiet) {
      std::cout << "arbmis_serve: listening on " << server_options.bind_address
                << ":" << server.port() << " (threads="
                << service_options.num_threads << ", cache="
                << service_options.max_cache_entries << ")\n"
                << std::flush;
    }

    int sig = 0;
    sigwait(&mask, &sig);
    if (!quiet) {
      std::cout << "arbmis_serve: signal " << sig << ", shutting down\n";
    }
    server.stop();
    sink_scope.reset();
    if (events != nullptr) events->flush();
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << metrics_registry.to_json(&manifest) << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "arbmis_serve: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
