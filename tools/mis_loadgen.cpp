// mis_loadgen: concurrent load generator for arbmis_serve (docs/SERVING.md).
//
//   mis_loadgen --port N [--host A] [--clients N] [--nodes N]
//               [--computes N] [--updates N] [--ops-per-update N]
//               [--queries N] [--seed S] [--quick]
//               [--json PATH] [--metrics PATH]
//
// Drives the mixed workload of tools/loadgen_core.h from --clients
// concurrent connections, then reports p50/p99 latency and request
// throughput as a gbench-style JSON document (--json, gated by
// tools/bench_gate.py --benchmark) and the deterministic client-side
// totals as an "arbmis.metrics.v1" dump (--metrics, gated exactly).
//
// Exit status is the assertion: nonzero when any reply violated the
// workload's invariants — an update that failed to certify, a compute
// repeat that missed the cache or changed its labels hash, a failed
// verify. The serve-smoke CI job relies on this.
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "loadgen_core.h"
#include "obs/manifest.h"
#include "obs/registry.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port N [--host A] [--clients N] [--nodes N]\n"
               "       [--computes N] [--updates N] [--ops-per-update N]\n"
               "       [--queries N] [--seed S] [--quick] [--json PATH]\n"
               "       [--metrics PATH]\n"
               "  --quick  small preset for CI smoke runs\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using arbmis::loadgen::ClientTotals;
  using arbmis::loadgen::WorkloadOptions;

  WorkloadOptions workload;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string json_out;
  std::string metrics_out;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--clients" && i + 1 < argc) {
      workload.clients =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--nodes" && i + 1 < argc) {
      workload.nodes = static_cast<arbmis::graph::NodeId>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--computes" && i + 1 < argc) {
      workload.computes =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--updates" && i + 1 < argc) {
      workload.updates =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--ops-per-update" && i + 1 < argc) {
      workload.ops_per_update =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queries" && i + 1 < argc) {
      workload.queries =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      workload.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::cerr << "mis_loadgen: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (port == 0) {
    std::cerr << "mis_loadgen: --port is required\n";
    return usage(argv[0]);
  }
  if (quick) {
    // ≥100 fuzzed updates total (4 clients x 30), small graphs: the CI
    // smoke preset that still exercises every request type and repair path.
    workload.clients = 4;
    workload.nodes = 240;
    workload.computes = 3;
    workload.updates = 30;
    workload.queries = 6;
  }

  std::vector<ClientTotals> per_client(workload.clients);
  std::vector<std::thread> threads;
  std::vector<std::string> errors(workload.clients);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint32_t c = 0; c < workload.clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        per_client[c] = arbmis::loadgen::run_client(host, port, c, workload);
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  int exit_code = 0;
  ClientTotals totals;
  for (std::uint32_t c = 0; c < workload.clients; ++c) {
    if (!errors[c].empty()) {
      std::cerr << "mis_loadgen: client " << c << ": " << errors[c] << "\n";
      exit_code = 2;
    }
    totals.merge(per_client[c]);
  }
  if (totals.failures != 0 ||
      totals.updates_certified != totals.updates_total) {
    std::cerr << "mis_loadgen: " << totals.failures
              << " invariant violation(s); " << totals.updates_certified
              << "/" << totals.updates_total << " updates certified\n";
    exit_code = 2;
  }

  const double p50 = arbmis::loadgen::percentile_ms(totals.latencies_ms, 50);
  const double p99 = arbmis::loadgen::percentile_ms(totals.latencies_ms, 99);
  const double req_s = wall_ms > 0
                           ? static_cast<double>(totals.requests) /
                                 (wall_ms / 1000.0)
                           : 0.0;

  std::cout << "mis_loadgen: " << totals.requests << " requests from "
            << workload.clients << " clients in " << wall_ms << " ms ("
            << req_s << " req/s, p50=" << p50 << " ms, p99=" << p99
            << " ms)\n"
            << "  cache " << totals.cache_hits << " hit / "
            << totals.cache_misses << " miss; updates "
            << totals.updates_certified << "/" << totals.updates_total
            << " certified (" << totals.repairs_incremental
            << " incremental, " << totals.repairs_full << " full); "
            << totals.failures << " failure(s)\n";
  for (std::size_t op = 0; op < arbmis::loadgen::kOpCount; ++op) {
    const std::vector<double>& samples = totals.latencies_by_op_ms[op];
    if (samples.empty()) continue;
    std::cout << "  " << arbmis::loadgen::op_name(op) << ": "
              << samples.size() << " requests, p50="
              << arbmis::loadgen::percentile_ms(samples, 50) << " ms, p99="
              << arbmis::loadgen::percentile_ms(samples, 99) << " ms\n";
  }

  const std::string bench_name = quick ? "serve_mixed_quick" : "serve_mixed";
  if (!json_out.empty()) {
    std::ostringstream json;
    json << "{\n  \"context\": {\"tool\": \"mis_loadgen\", \"clients\": "
         << workload.clients << ", \"seed\": " << workload.seed << "},\n"
         << "  \"benchmarks\": [\n    {\"name\": \"" << bench_name
         << "\", \"run_type\": \"iteration\", \"iterations\": "
         << totals.requests << ", \"real_time\": " << wall_ms
         << ", \"cpu_time\": " << wall_ms
         << ", \"time_unit\": \"ms\", \"items_per_second\": " << req_s
         << ", \"p50_ms\": " << p50 << ", \"p99_ms\": " << p99 << "}\n"
         << "  ]\n}\n";
    std::ofstream out(json_out);
    out << json.str();
    std::cout << "[json] -> " << json_out << "\n";
  }

  if (!metrics_out.empty()) {
    // Client-side totals only: they are deterministic in (seed, workload)
    // regardless of server threading, so bench_gate.py compares them by
    // exact equality in the serve-smoke job. Latency stays out — it is
    // gated by tolerance through the gbench JSON above instead.
    arbmis::obs::Registry registry;
    registry.add("loadgen.requests", totals.requests);
    registry.add("loadgen.failures", totals.failures);
    registry.add("loadgen.cache_hits", totals.cache_hits);
    registry.add("loadgen.cache_misses", totals.cache_misses);
    registry.add("loadgen.updates_total", totals.updates_total);
    registry.add("loadgen.updates_certified", totals.updates_certified);
    registry.add("loadgen.repairs_incremental", totals.repairs_incremental);
    registry.add("loadgen.repairs_full", totals.repairs_full);
    registry.add("loadgen.verifies_ok", totals.verifies_ok);
    // Per-request-type latency distributions as log2 histograms (in
    // microseconds, so the buckets resolve sub-millisecond replies). They
    // land in the "histograms" section, which the exact-equality counter
    // gate never reads — timing stays tolerance-gated only.
    for (std::size_t op = 0; op < arbmis::loadgen::kOpCount; ++op) {
      const std::string name =
          std::string("loadgen.latency_us.") + arbmis::loadgen::op_name(op);
      for (const double ms : totals.latencies_by_op_ms[op]) {
        registry.observe(name, static_cast<std::uint64_t>(ms * 1000.0));
      }
    }
    arbmis::obs::Manifest manifest = arbmis::obs::make_manifest("mis_loadgen");
    manifest.seed = workload.seed;
    manifest.workload = bench_name;
    std::ofstream out(metrics_out);
    out << registry.to_json(&manifest) << "\n";
    std::cout << "[metrics] -> " << metrics_out << "\n";
  }

  return exit_code;
}
