#!/usr/bin/env python3
"""Tier-1 round-trip of a flight-recorder auto-dump (docs/OBSERVABILITY.md).

Drives the flightrec_smoke binary (tools/flightrec_smoke.cpp), which plants
a CONGEST model-checker violation with a recorder attached so the
"model_check_violation" auto-dump seam fires, then proves the resulting
.flightrec artifact is a first-class event file:

  1. tools/trace_inspect.py --validate accepts it (magic, manifest record,
     decodable event records).
  2. The summary mode decodes it, reports the kViolation event, and prints
     the recorder-dump trailer line with reason='model_check_violation'.

Registered from tests/CMakeLists.txt as ctest entry tooling.flightrec_smoke
(label tier1). Stdlib only: the image has no third-party Python packages.

    python3 tools/flightrec_smoke.py \
        --binary build/tools/flightrec_smoke \
        --inspect tools/trace_inspect.py \
        --workdir /tmp
"""

import argparse
import os
import subprocess
import sys


def run(cmd):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True,
                        help="path to the flightrec_smoke executable")
    parser.add_argument("--inspect", required=True,
                        help="path to tools/trace_inspect.py")
    parser.add_argument("--workdir", default=".",
                        help="directory for the dump artifact")
    args = parser.parse_args(argv)

    artifact = os.path.join(args.workdir, "planted_violation.flightrec")
    if os.path.exists(artifact):
        os.remove(artifact)

    smoke = run([args.binary, "--out", artifact])
    sys.stdout.write(smoke.stdout)
    sys.stderr.write(smoke.stderr)
    if smoke.returncode != 0:
        print(f"FAIL: flightrec_smoke exited {smoke.returncode}")
        return 1
    if not os.path.exists(artifact):
        print(f"FAIL: auto-dump artifact {artifact} was not written")
        return 1

    validate = run([sys.executable, args.inspect, "--validate", artifact])
    sys.stdout.write(validate.stdout)
    sys.stderr.write(validate.stderr)
    if validate.returncode != 0:
        print("FAIL: trace_inspect.py --validate rejected the dump")
        return 1

    summary = run([sys.executable, args.inspect, "--summary", artifact])
    sys.stdout.write(summary.stdout)
    sys.stderr.write(summary.stderr)
    if summary.returncode != 0:
        print("FAIL: trace_inspect.py summary failed on the dump")
        return 1
    failures = 0
    for needle, why in [
        ("violation", "the planted kViolation event"),
        ("recorder_dump", "the kRecorderDump trailer"),
        ("model_check_violation", "the auto-dump reason"),
    ]:
        if needle not in summary.stdout:
            print(f"FAIL: summary is missing {why} ({needle!r})")
            failures += 1
    if failures:
        return 1

    print("flightrec_smoke round-trip OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
