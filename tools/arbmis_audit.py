#!/usr/bin/env python3
"""arbmis-audit: repo-contract static analysis for the arbmis codebase.

The repository's load-bearing invariants — byte-identical determinism
across executors and inboxes, CONGEST bit budgets, and the strict layering
that keeps algorithm code talking to the world only through Messages — are
enforced at *runtime* by src/sim/model_check.cpp and the differential test
matrix. This tool enforces the same contracts *structurally*, at lint
time, so a violation costs a red CI job instead of a flaky-golden-pin
bisect. docs/TOOLING.md §9 is the user guide.

Rule groups (``--list-rules`` for the table, ``--explain RULE`` for one):

  DET00x  determinism lints over the semantic modules
          (src/{core,fault,graph,mis,readk,sim}): no std entropy sources,
          no wall clocks, no environment reads, no unordered or
          pointer-keyed containers. util/rng.h is the only sanctioned
          entropy source.
  LAY00x  layering rules: the allowed-include matrix and the
          restricted-header list, both read from tools/layering.toml.
  HYG00x  contract hygiene: NOLINT justification discipline, the
          three-way event-schema sync (src/obs/events.h enum,
          src/obs/events.cpp kSchemas, tools/trace_inspect.py
          EVENT_SCHEMAS) plus make_event call-site arities, and
          bench-target coverage in run_benches.sh.
  CON00x  compile-time contract sync: src/sim/contract.h's poison list
          must stay a recognized subset of this tool's banned identifiers.

Drivers: the TU list comes from ``compile_commands.json`` when one exists
(``--compile-commands``, or <repo>/build/compile_commands.json), unioned
with a directory walk so headers and not-yet-configured trees still scan.
Each file then goes through a tokenizing pass (comments and string
literals separated from code) — no compiler needed, stdlib only.

Intentional exceptions live in tools/audit_baseline.toml; each entry names
the rule, the file, a maximum occurrence count, and a reason. Findings
beyond the baseline fail the run (exit 1). ``--self-test`` checks every
rule against its deliberately-violating fixture under tools/audit_fixtures/
and fails if any rule under- or over-fires there.
"""

import argparse
import ast
import json
import os
import re
import sys
import tomllib

SEMANTIC_MODULES = ("core", "engine", "fault", "graph", "mis", "readk",
                    "serve", "sim")
# Nested src/ directories that carry their own layering row. Their files
# report module "graph/storage" (etc.) for LAY rules but still fall under
# the parent's determinism regime: DET scans key on the first component.
SUBMODULES = ("graph/storage",)
HYGIENE_DIRS = ("src", "tests", "bench", "examples")

# ---------------------------------------------------------------------------
# Rule table. Adding a rule means: an entry here, a scanner below, a fixture
# under tools/audit_fixtures/repo/ and its row in SELF_TEST_EXPECTED —
# --self-test fails until all four exist, so the table can't silently rot.
# ---------------------------------------------------------------------------

RULES = {
    "DET001": (
        "banned entropy source in semantic code",
        """Semantic modules must draw randomness exclusively from util/rng.h
(seed-derived xoshiro256** streams, split per node). std::random_device is
hardware entropy (irreproducible by construction); rand()/srand()/drand48
are process-global hidden state; the <random> engines (mt19937,
default_random_engine, ...) have implementation-defined distribution
algorithms, so the same seed produces different bytes on different
standard libraries. Any of these breaks the
reproducible-from-a-printed-seed story the golden determinism pins in
tests/test_determinism.cpp enforce, which is why even including <random>
is flagged. Fix: take a util::Rng (or a seed to derive one) as an
argument. The one sanctioned exception is src/sim/contract.h, which must
pre-include <random> so that #pragma GCC poison can ban its names — that
exception is recorded in tools/audit_baseline.toml."""),
    "DET002": (
        "wall-clock read in semantic code",
        """Simulation semantics must be a pure function of (graph, seed,
options). A wall-clock read (std::chrono::{system,steady,high_resolution}
_clock, time(), clock_gettime, gettimeofday) in a semantic module is
either dead weight or — worse — feeds timing into an algorithm decision,
which no differential test can pin. Wall-clock belongs exclusively to the
profiler (src/obs/profile.h, OBS_SCOPE), which the determinism contract
explicitly excludes from the byte-identity comparisons. Fix: move timing
to obs/, or use logical rounds."""),
    "DET003": (
        "environment read in semantic code",
        """getenv/setenv/system() make behavior depend on invisible process
state: two runs with identical (graph, seed) inputs could diverge because
a shell variable changed. Configuration must flow through explicit
parameter structs (src/core/params.h, sim::NetworkOptions) so every knob
is recorded in run manifests and reproducible from the command line.
Fix: plumb the value through the options struct of the entry point."""),
    "DET004": (
        "unordered container in semantic code",
        """Iteration order of std::unordered_{map,set} is
implementation-defined and changes with load factor, libstdc++ version,
and insertion history. Iterating one in semantic code leaks that order
into message schedules or MIS decisions — the exact bug class behind
flaky golden-pin failures (src/mis/gather_solve.cpp shipped one until
this tool's first run). The rule flags every unordered-container mention
in a semantic TU, not just visible iteration: a container that is
membership-only today is one refactor away from being iterated. Fix: use
a sorted vector + binary search, an index-keyed vector, or std::map.
Genuinely membership-only uses may be baselined with a reason in
tools/audit_baseline.toml."""),
    "DET005": (
        "pointer-keyed ordered container in semantic code",
        """std::map/std::set keyed by a pointer type order their elements by
address. Addresses vary run to run (ASLR, allocator state), so iterating
such a container is nondeterministic even though the container itself is
'ordered'. Fix: key by node id / index, or sort by a value-based
comparator."""),
    "LAY001": (
        "include outside the allowed module matrix",
        """tools/layering.toml defines which src/ modules each module may
include (DESIGN.md §8 draws the graph). The matrix makes the CONGEST
isolation the model checker proves dynamically also structural: mis/
cannot reach obs/ (algorithms observe the world through Messages alone;
the simulator emits telemetry on their behalf), util/ includes nothing
above itself, and so on. A new edge in the graph is a design decision —
make it by editing tools/layering.toml in the same reviewable diff."""),
    "LAY002": (
        "restricted internal header included",
        """Some headers are internals even where their module is an allowed
dependency: sim/thread_pool.h (executor internals — algorithm code must
be oblivious to lanes or the determinism-merge proof breaks),
sim/model_check.h (code that can name the checker can steer around it),
obs/registry.h (counters are recorded only at the simulator's round
barriers, or metrics streams diverge across executors). The allowed
includers and the reasons live in [[restricted]] entries of
tools/layering.toml."""),
    "HYG001": (
        "NOLINT without named check and justification",
        """The .clang-tidy header's review rule, machine-enforced: every
NOLINT/NOLINTNEXTLINE/NOLINTBEGIN must (a) name the specific check being
suppressed — a bare NOLINT or NOLINT(*) silences future, unrelated
findings on the same line forever — and (b) carry a justification after
the check list, e.g. `// NOLINT(cert-err58-cpp): gtest registration
object`. Matching NOLINTEND markers are exempt (the BEGIN carries the
justification)."""),
    "HYG002": (
        "event schema drift or bad make_event arity",
        """The telemetry wire format has one source of truth duplicated in
three places by design (src/obs/events.h's EventKind enum,
src/obs/events.cpp's kSchemas table, tools/trace_inspect.py's
EVENT_SCHEMAS) plus N emit sites. This rule cross-checks all of them:
enum entries must match kSchemas wire names in order, each kSchemas entry
must declare num_fields equal to its field list, trace_inspect.py must
carry the identical table, and every make_event(EventKind::kX, ...) call
site must pass exactly the schema's field count. Update the three tables
together and bump the manifest schema version on breaking change."""),
    "HYG003": (
        "bench target not covered by run_benches.sh",
        """Every bench target declared in bench/CMakeLists.txt must appear in
run_benches.sh's BENCHES array, and vice versa: a target missing from the
script silently drops out of the committed results/ sweep, and a stale
script entry fails the sweep at runtime. The two lists are compared in
both directions."""),
    "CON001": (
        "contract header out of sync with audit rules",
        """src/sim/contract.h is the compile-time half of the determinism
lints: under ARBMIS_CONTRACTS=ON its #pragma GCC poison list makes the
banned identifiers hard compile errors in semantic TUs. This rule keeps
the two layers agreeing: the poison list must contain the core banned set
(rand, srand, random_device, mt19937, getenv) and must not poison any
identifier this tool does not also recognize — otherwise one layer would
accept what the other rejects."""),
}

# Identifier sets shared by the DET scanners and the CON001 sync check.
ENTROPY_IDENTIFIERS = (
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48", "knuth_b",
    "drand48", "lrand48", "rand_r",
)
ENTROPY_CALLS = ("rand", "srand")
ENVIRONMENT_IDENTIFIERS = ("getenv", "setenv", "putenv", "unsetenv",
                           "secure_getenv")
ENVIRONMENT_CALLS = ("system",)
KNOWN_BANNED = (set(ENTROPY_IDENTIFIERS) | set(ENTROPY_CALLS)
                | set(ENVIRONMENT_IDENTIFIERS) | set(ENVIRONMENT_CALLS))
REQUIRED_POISON = {"rand", "srand", "random_device", "mt19937", "getenv"}

CLOCK_IDENTIFIERS = ("system_clock", "steady_clock", "high_resolution_clock",
                     "clock_gettime", "gettimeofday", "timespec_get")
CLOCK_CALLS = ("time", "clock")


class Finding:
    __slots__ = ("rule", "path", "line", "message", "baselined")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line
        self.message = message
        self.baselined = None  # reason string once matched

    def __repr__(self):
        return f"{self.rule} {self.path}:{self.line}: {self.message}"


# ---------------------------------------------------------------------------
# Tokenizing pass: split every line of a C++ file into (code, comment) with
# string/char literal contents blanked out of the code part. NOLINT
# discipline is checked on the comment parts; every other rule reads only
# code. Raw strings are handled; trigraphs and line-continued comments are
# not (the codebase has neither).
# ---------------------------------------------------------------------------

def lex_cpp(text):
    """Returns (code_lines, comment_lines), same length as text's lines."""
    code, comment = [], []
    cur_code, cur_comment = [], []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    raw_delim = None

    def endline():
        code.append("".join(cur_code))
        comment.append("".join(cur_comment))
        cur_code.clear()
        cur_comment.clear()

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            endline()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # Raw string? Identify R"delim( ... )delim"
                if cur_code and cur_code[-1].endswith("R"):
                    m = re.match(r'"([^()\\ ]{0,16})\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "string"
                        cur_code.append('"')
                        i += 1 + len(m.group(1)) + 1
                        continue
                raw_delim = None
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
        elif state == "line_comment":
            cur_comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
        elif state == "string":
            if raw_delim is not None:
                if text.startswith(raw_delim, i):
                    cur_code.append('"')
                    i += len(raw_delim)
                    state = "code"
                    raw_delim = None
                else:
                    cur_code.append(c)
                    i += 1
            elif c == "\\":
                cur_code.append(text[i:i + 2])
                i += 2
            elif c == '"':
                cur_code.append('"')
                state = "code"
                i += 1
            else:
                cur_code.append(c)
                i += 1
        elif state == "char":
            if c == "\\":
                cur_code.append(text[i:i + 2])
                i += 2
            elif c == "'":
                cur_code.append("'")
                state = "code"
                i += 1
            else:
                cur_code.append(c)
                i += 1
    endline()
    return code, comment


_STRING_BLANK_RE = re.compile(
    r'"(?:\\.|[^"\\])*"|' r"'(?:\\.|[^'\\])*'")


def blank_strings(line):
    """Replaces string/char literal contents with spaces (quotes kept)."""
    return _STRING_BLANK_RE.sub(lambda m: '"' + " " * (len(m.group(0)) - 2)
                                + '"', line)


class SourceFile:
    """One lexed file.

    Three channels per line: `code` (comments stripped, string literals
    intact — used for includes and table parsing), `scan` (additionally
    blanks literal contents — used for the DET token scans so a string
    mentioning rand() cannot fire), and `comments` (used by HYG001).
    """

    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        with open(os.path.join(root, relpath), "r", encoding="utf-8") as fh:
            text = fh.read()
        self.code, self.comments = lex_cpp(text)
        self.scan = [blank_strings(line) for line in self.code]

    @property
    def module(self):
        """Layering module for src/ files: "graph", "sim", ... — or a
        nested submodule like "graph/storage" when that two-component
        prefix has its own row in tools/layering.toml's [modules]."""
        parts = self.relpath.split("/")
        if len(parts) >= 4 and parts[0] == "src" \
                and "/".join(parts[1:3]) in SUBMODULES:
            return "/".join(parts[1:3])
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    def includes(self):
        """Yields (lineno, 'x/y.h') for every project #include."""
        for lineno, line in enumerate(self.code, 1):
            m = re.match(r'\s*#\s*include\s*"([^"]+)"', line)
            if m:
                yield lineno, m.group(1)

    def code_joined(self):
        return "\n".join(self.code)


# ---------------------------------------------------------------------------
# Determinism lints (DET001-DET005).
# ---------------------------------------------------------------------------

def _identifier_re(names):
    # Plain word-boundary match: qualified uses (std::mt19937,
    # chrono::steady_clock) must fire no matter the nesting.
    return re.compile(r"\b(" + "|".join(names) + r")\b")


def _call_re(names):
    return re.compile(r"(?<![\w.:>])(?:std\s*::\s*)?(" + "|".join(names)
                      + r")\s*\(")


DET001_IDENT = _identifier_re(ENTROPY_IDENTIFIERS)
DET001_CALL = _call_re(ENTROPY_CALLS)
DET001_INCLUDE = re.compile(r"\s*#\s*include\s*<random>")
DET002_IDENT = _identifier_re(CLOCK_IDENTIFIERS)
DET002_CALL = _call_re(CLOCK_CALLS)
DET003_IDENT = _identifier_re(ENVIRONMENT_IDENTIFIERS)
DET003_CALL = _call_re(ENVIRONMENT_CALLS)
DET004_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")
DET005_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(map|set|multimap|multiset)\s*<[^<>;]*\*")


def scan_determinism(sf, findings):
    # Submodules ("graph/storage") inherit the parent's determinism regime.
    if (sf.module or "").split("/")[0] not in SEMANTIC_MODULES:
        return
    for lineno, line in enumerate(sf.scan, 1):
        stripped = line.lstrip()
        if stripped.startswith("#pragma"):
            continue  # poison pragmas in contract.h name banned tokens
        is_include = stripped.startswith("#include") or \
            re.match(r"#\s*include", stripped)
        if DET001_INCLUDE.match(line):
            findings.append(Finding(
                "DET001", sf.relpath, lineno,
                "#include <random>: std engines/distributions are "
                "implementation-defined; use util/rng.h"))
            continue
        if is_include:
            continue
        for m in DET001_IDENT.finditer(line):
            findings.append(Finding(
                "DET001", sf.relpath, lineno,
                f"std entropy source '{m.group(1)}'; util/rng.h is the only "
                "sanctioned randomness"))
        for m in DET001_CALL.finditer(line):
            findings.append(Finding(
                "DET001", sf.relpath, lineno,
                f"legacy entropy call '{m.group(1)}()'; util/rng.h is the "
                "only sanctioned randomness"))
        for m in DET002_IDENT.finditer(line):
            findings.append(Finding(
                "DET002", sf.relpath, lineno,
                f"wall-clock '{m.group(1)}' in semantic code; timing "
                "belongs to obs/profile.h"))
        for m in DET002_CALL.finditer(line):
            findings.append(Finding(
                "DET002", sf.relpath, lineno,
                f"wall-clock call '{m.group(1)}()' in semantic code"))
        for m in DET003_IDENT.finditer(line):
            findings.append(Finding(
                "DET003", sf.relpath, lineno,
                f"environment access '{m.group(1)}'; plumb configuration "
                "through params/options structs"))
        for m in DET003_CALL.finditer(line):
            findings.append(Finding(
                "DET003", sf.relpath, lineno,
                f"process-state call '{m.group(1)}()'"))
        for m in DET004_RE.finditer(line):
            findings.append(Finding(
                "DET004", sf.relpath, lineno,
                f"std::{m.group(0)} in semantic code: iteration order is "
                "implementation-defined"))
        for m in DET005_RE.finditer(line):
            findings.append(Finding(
                "DET005", sf.relpath, lineno,
                f"pointer-keyed std::{m.group(1)}: ordered by address, "
                "which varies run to run"))


# ---------------------------------------------------------------------------
# Layering rules (LAY001-LAY002), driven by tools/layering.toml.
# ---------------------------------------------------------------------------

def load_layering(path):
    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    matrix = {mod: set(deps) for mod, deps in doc.get("modules", {}).items()}
    restricted = {entry["header"]: set(entry["allowed"])
                  for entry in doc.get("restricted", [])}
    return matrix, restricted


def scan_layering(sf, matrix, restricted, findings):
    mod = sf.module
    if mod is None or mod not in matrix:
        return  # tests/bench/examples and unknown dirs are hosts, not layers
    for lineno, inc in sf.includes():
        parts = inc.split("/")
        if len(parts) < 2:
            target = None
        elif len(parts) >= 3 and "/".join(parts[:2]) in matrix:
            # "graph/storage/mapped_graph.h" targets the graph/storage
            # submodule row, not the parent graph module.
            target = "/".join(parts[:2])
        else:
            target = parts[0]
        if inc in restricted and mod not in restricted[inc]:
            findings.append(Finding(
                "LAY002", sf.relpath, lineno,
                f'restricted header "{inc}" (allowed from: '
                f'{", ".join(sorted(restricted[inc]))}) — see '
                "tools/layering.toml"))
            continue
        if target is None or target == mod:
            continue
        if target in matrix and target not in matrix[mod]:
            findings.append(Finding(
                "LAY001", sf.relpath, lineno,
                f'module "{mod}" may not include "{target}/" (allowed: '
                f'{", ".join(sorted(matrix[mod])) or "nothing"}) — see '
                "tools/layering.toml"))


# ---------------------------------------------------------------------------
# NOLINT hygiene (HYG001) over the comment channel of all C++ files.
# ---------------------------------------------------------------------------

NOLINT_RE = re.compile(r"\bNOLINT(NEXTLINE|BEGIN|END)?\b(\([^)]*\))?(.*)")


def scan_nolint(sf, findings):
    for lineno, comment in enumerate(sf.comments, 1):
        for m in NOLINT_RE.finditer(comment):
            marker = "NOLINT" + (m.group(1) or "")
            if m.group(1) == "END":
                continue  # justification lives on the BEGIN marker
            checks = (m.group(2) or "").strip("()").strip()
            if not checks or checks == "*":
                findings.append(Finding(
                    "HYG001", sf.relpath, lineno,
                    f"bare {marker}: name the suppressed check, e.g. "
                    f"{marker}(bugprone-...)"))
                continue
            tail = m.group(3).strip()
            if not (tail.startswith(":") and len(tail.lstrip(":").strip())
                    >= 8):
                findings.append(Finding(
                    "HYG001", sf.relpath, lineno,
                    f"{marker}({checks}) lacks a justification — append "
                    "': <why this suppression is sound>'"))


# ---------------------------------------------------------------------------
# Event-schema sync (HYG002): events.h enum <-> events.cpp kSchemas <->
# trace_inspect.py EVENT_SCHEMAS <-> make_event call sites.
# ---------------------------------------------------------------------------

def camel_to_wire(kind):
    """kRunBegin -> run_begin."""
    name = kind.lstrip("k")
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def parse_event_enum(sf):
    """Returns the EventKind entry names (without kCount), in order."""
    text = sf.code_joined()
    m = re.search(r"enum\s+class\s+EventKind[^{]*\{(.*?)\}", text, re.S)
    if not m:
        return None
    names = re.findall(r"\b(k[A-Z]\w*)\b", m.group(1))
    return [n for n in names if n != "kCount"]


def _split_top_level(text, sep=","):
    """Splits text at top-level sep (outside (), {}, <> nesting)."""
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts


def parse_cpp_schemas(sf):
    """Parses kSchemas entries: [(wire_name, text_field, fields, declared_n)]."""
    text = sf.code_joined()
    m = re.search(r"kSchemas\s*=\s*\{\{(.*?)\}\};", text, re.S)
    if not m:
        return None
    entries = []
    body = m.group(1)
    # Top-level {...} groups of the initializer list.
    depth, start = 0, None
    for i, c in enumerate(body):
        if c == "{":
            if depth == 0:
                start = i
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0 and start is not None:
                entry = body[start + 1:i]
                parts = [p.strip() for p in _split_top_level(entry)]
                if len(parts) < 3:
                    continue
                name = parts[0].strip('"')
                text_field = (None if parts[1] == "nullptr"
                              else parts[1].strip('"'))
                fields = re.findall(r'"(\w+)"', parts[2])
                declared = None
                if len(parts) >= 4 and parts[3].strip().isdigit():
                    declared = int(parts[3].strip())
                elif parts[2].strip() == "{}":
                    declared = None
                entries.append((name, text_field, fields, declared))
                start = None
    return entries


def parse_py_schemas(root, relpath):
    """Returns trace_inspect.py's EVENT_SCHEMAS dict, or None."""
    path = os.path.join(root, relpath)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if getattr(target, "id", None) == "EVENT_SCHEMAS":
                    try:
                        return ast.literal_eval(node.value)
                    except ValueError:
                        return None
    return None


MAKE_EVENT_RE = re.compile(r"\bmake_event\s*\(")


def scan_make_event_sites(sf, field_counts, findings):
    """Checks every make_event(EventKind::kX, ...) site's value arity."""
    # The scan channel: commas inside string-literal arguments must not
    # perturb the top-level argument split.
    text = "\n".join(sf.scan)
    for m in MAKE_EVENT_RE.finditer(text):
        # Extract the balanced argument list.
        depth, j = 0, m.end() - 1
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        args = _split_top_level(text[m.end():j])
        km = re.search(r"EventKind\s*::\s*(k\w+)", args[0] if args else "")
        if not km:
            continue  # the template definition itself, or a forwarded kind
        wire = camel_to_wire(km.group(1))
        if wire not in field_counts:
            lineno = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "HYG002", sf.relpath, lineno,
                f"make_event uses unknown kind {km.group(1)}"))
            continue
        num_values = len(args) - 3  # (kind, round, text, values...)
        expected = field_counts[wire]
        if num_values != expected:
            lineno = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "HYG002", sf.relpath, lineno,
                f"make_event({km.group(1)}, ...) passes {num_values} "
                f"values; schema '{wire}' declares {expected} fields"))


def scan_event_schemas(root, files_by_path, findings):
    events_h = files_by_path.get("src/obs/events.h")
    events_cpp = files_by_path.get("src/obs/events.cpp")
    if events_h is None or events_cpp is None:
        return  # not an error: fixture repos may omit the obs layer
    enum_names = parse_event_enum(events_h)
    schemas = parse_cpp_schemas(events_cpp)
    if enum_names is None:
        findings.append(Finding("HYG002", events_h.relpath, 1,
                                "could not parse enum EventKind"))
        return
    if schemas is None:
        findings.append(Finding("HYG002", events_cpp.relpath, 1,
                                "could not parse kSchemas table"))
        return
    wire_from_enum = [camel_to_wire(n) for n in enum_names]
    wire_from_cpp = [s[0] for s in schemas]
    if wire_from_enum != wire_from_cpp:
        findings.append(Finding(
            "HYG002", events_cpp.relpath, 1,
            f"kSchemas wire names {wire_from_cpp} do not match EventKind "
            f"entries {wire_from_enum}"))
    for name, _text_field, fields, declared in schemas:
        if declared is not None and declared != len(fields):
            findings.append(Finding(
                "HYG002", events_cpp.relpath, 1,
                f"schema '{name}' declares num_fields={declared} but lists "
                f"{len(fields)} field names"))
    py = parse_py_schemas(root, "tools/trace_inspect.py")
    if py is not None:
        cpp_table = {s[0]: (s[2], s[1]) for s in schemas}
        for name, (fields, text_field) in cpp_table.items():
            if name not in py:
                findings.append(Finding(
                    "HYG002", "tools/trace_inspect.py", 1,
                    f"EVENT_SCHEMAS is missing kind '{name}'"))
            elif (list(py[name][0]), py[name][1]) != (fields, text_field):
                findings.append(Finding(
                    "HYG002", "tools/trace_inspect.py", 1,
                    f"EVENT_SCHEMAS['{name}'] = {py[name]} disagrees with "
                    f"events.cpp ({fields}, {text_field!r})"))
        for name in py:
            if name not in cpp_table:
                findings.append(Finding(
                    "HYG002", "tools/trace_inspect.py", 1,
                    f"EVENT_SCHEMAS has unknown kind '{name}'"))
        if list(py.keys()) != [s[0] for s in schemas] and \
                set(py.keys()) == set(cpp_table):
            findings.append(Finding(
                "HYG002", "tools/trace_inspect.py", 1,
                "EVENT_SCHEMAS kind order differs from events.cpp (binary "
                "records index kinds by position)"))
    field_counts = {s[0]: len(s[2]) for s in schemas}
    for sf in files_by_path.values():
        if sf.relpath.startswith("src/") and sf.relpath != "src/obs/events.h":
            scan_make_event_sites(sf, field_counts, findings)


# ---------------------------------------------------------------------------
# Bench coverage (HYG003): bench/CMakeLists.txt <-> run_benches.sh.
# ---------------------------------------------------------------------------

def scan_bench_coverage(root, findings):
    cml = os.path.join(root, "bench", "CMakeLists.txt")
    script = os.path.join(root, "run_benches.sh")
    if not os.path.exists(cml) or not os.path.exists(script):
        return
    with open(cml, "r", encoding="utf-8") as fh:
        cml_text = "\n".join(line.split("#", 1)[0] for line in fh)
    targets = set(re.findall(r"\barbmis_bench\s*\(\s*(\w+)", cml_text))
    targets |= set(re.findall(r"\badd_executable\s*\(\s*(\w+)", cml_text))
    with open(script, "r", encoding="utf-8") as fh:
        sh_text = fh.read()
    m = re.search(r"BENCHES=\(\s*(.*?)\)", sh_text, re.S)
    listed = set()
    if m:
        for line in m.group(1).splitlines():
            line = line.split("#", 1)[0].strip()
            listed.update(line.split())
    for missing in sorted(targets - listed):
        findings.append(Finding(
            "HYG003", "run_benches.sh", 1,
            f"bench target '{missing}' (bench/CMakeLists.txt) is missing "
            "from the BENCHES array"))
    for stale in sorted(listed - targets):
        findings.append(Finding(
            "HYG003", "run_benches.sh", 1,
            f"BENCHES entry '{stale}' is not a bench/CMakeLists.txt target"))


# ---------------------------------------------------------------------------
# Contract-header sync (CON001): src/sim/contract.h's poison list.
# ---------------------------------------------------------------------------

def scan_contract_sync(files_by_path, findings):
    contract = files_by_path.get("src/sim/contract.h")
    if contract is None:
        findings.append(Finding(
            "CON001", "src/sim/contract.h", 1,
            "missing: the compile-time contract header (static_asserts + "
            "poison list) must exist"))
        return
    poisoned = set()
    for line in contract.code:
        m = re.match(r"\s*#\s*pragma\s+GCC\s+poison\s+(.*)", line)
        if m:
            poisoned.update(m.group(1).split())
    for missing in sorted(REQUIRED_POISON - poisoned):
        findings.append(Finding(
            "CON001", contract.relpath, 1,
            f"poison list is missing required identifier '{missing}'"))
    for unknown in sorted(poisoned - KNOWN_BANNED):
        findings.append(Finding(
            "CON001", contract.relpath, 1,
            f"poisons '{unknown}', which this audit does not recognize — "
            "add it to the DET rule identifier sets so both layers agree"))


# ---------------------------------------------------------------------------
# Baseline (intentional, documented exceptions).
# ---------------------------------------------------------------------------

def load_baseline(path):
    if path is None or not os.path.exists(path):
        return []
    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    entries = []
    for entry in doc.get("suppress", []):
        entries.append({
            "rule": entry["rule"],
            "file": entry["file"],
            "max": int(entry.get("max", 1)),
            "reason": entry.get("reason", "").strip(),
            "used": 0,
        })
    return entries


def apply_baseline(findings, baseline):
    for finding in findings:
        for entry in baseline:
            if (entry["rule"] == finding.rule
                    and entry["file"] == finding.path
                    and entry["used"] < entry["max"]):
                entry["used"] += 1
                finding.baselined = entry["reason"]
                break


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def discover_files(root, compile_commands):
    """Returns sorted repo-relative paths of files to scan."""
    paths = set()
    for top in HYGIENE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith((".cpp", ".h")):
                    paths.add(os.path.relpath(os.path.join(dirpath, name),
                                              root))
    n_tus = 0
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as fh:
            for entry in json.load(fh):
                f = os.path.normpath(os.path.join(entry.get("directory", ""),
                                                  entry["file"]))
                rel = os.path.relpath(f, root)
                if not rel.startswith("..") and rel.split(os.sep)[0] in \
                        HYGIENE_DIRS:
                    paths.add(rel)
                    n_tus += 1
    return sorted(paths), n_tus


def run_audit(root, layering_path, baseline_path, compile_commands):
    """Returns (findings, files_scanned, n_tus)."""
    matrix, restricted = load_layering(layering_path)
    relpaths, n_tus = discover_files(root, compile_commands)
    findings = []
    files_by_path = {}
    for rel in relpaths:
        try:
            sf = SourceFile(root, rel)
        except (OSError, UnicodeDecodeError) as err:
            findings.append(Finding("HYG001", rel.replace(os.sep, "/"), 1,
                                    f"unreadable source file: {err}"))
            continue
        files_by_path[sf.relpath] = sf
        scan_determinism(sf, findings)
        scan_layering(sf, matrix, restricted, findings)
        scan_nolint(sf, findings)
    scan_event_schemas(root, files_by_path, findings)
    scan_bench_coverage(root, findings)
    scan_contract_sync(files_by_path, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    baseline = load_baseline(baseline_path)
    apply_baseline(findings, baseline)
    for entry in baseline:
        if entry["used"] == 0:
            print(f"note: unused baseline entry {entry['rule']} "
                  f"{entry['file']} (stale suppression — consider removing)")
    return findings, len(files_by_path), n_tus


# ---------------------------------------------------------------------------
# Self-test: every rule must fire exactly on its fixture.
# ---------------------------------------------------------------------------

SELF_TEST_EXPECTED = {
    "DET001": {"src/mis/det001_entropy.cpp": 4,
               "src/graph/storage/det001_storage.cpp": 2,
               "src/engine/det001_engine.cpp": 2},
    "DET002": {"src/mis/det002_wallclock.cpp": 2,
               "src/serve/det002_serve.cpp": 1},
    "DET003": {"src/mis/det003_environment.cpp": 2},
    "DET004": {"src/mis/det004_unordered.cpp": 1},
    "DET005": {"src/mis/det005_pointer_keyed.cpp": 2},
    "LAY001": {"src/mis/lay001_matrix.cpp": 1,
               "src/mis/lay001_serve_client.cpp": 1,
               "src/serve/lay001_serve.cpp": 2,
               "src/sim/lay001_storage.cpp": 1,
               "src/engine/lay001_engine.cpp": 1},
    "LAY002": {"src/core/lay002_restricted.cpp": 1},
    "HYG001": {"src/mis/hyg001_nolint.cpp": 2},
    "HYG002": {"src/obs/events.cpp": 1, "tools/trace_inspect.py": 1,
               "src/sim/emit_bad.cpp": 1},
    "HYG003": {"run_benches.sh": 2},
    "CON001": {"src/sim/contract.h": 1},
}


def self_test(tool_root, layering_path):
    fixtures = os.path.join(tool_root, "audit_fixtures", "repo")
    if not os.path.isdir(fixtures):
        print(f"SELF-TEST ERROR: fixture repo missing at {fixtures}")
        return 1
    findings, _, _ = run_audit(fixtures, layering_path, None, None)
    got = {}
    for f in findings:
        got.setdefault(f.rule, {}).setdefault(f.path, 0)
        got[f.rule][f.path] += 1
    failures = 0
    for rule in sorted(RULES):
        expected = SELF_TEST_EXPECTED.get(rule)
        if expected is None:
            print(f"SELF-TEST FAIL: rule {rule} has no fixture expectation "
                  "(add one to SELF_TEST_EXPECTED and a fixture TU)")
            failures += 1
            continue
        actual = got.pop(rule, {})
        if actual != expected:
            print(f"SELF-TEST FAIL: {rule}: expected {expected}, "
                  f"got {actual}")
            failures += 1
        else:
            total = sum(expected.values())
            print(f"SELF-TEST OK: {rule} fired {total}x on "
                  f"{len(expected)} fixture file(s)")
    for rule, actual in sorted(got.items()):
        print(f"SELF-TEST FAIL: unexpected findings for {rule}: {actual}")
        failures += 1
    # The clean fixture must stay clean: no rule above may have attributed
    # a finding to it, and it must exist (guards against a walk that scans
    # nothing and vacuously passes).
    clean = os.path.join(fixtures, "src", "mis", "clean.cpp")
    if not os.path.exists(clean):
        print("SELF-TEST FAIL: clean fixture src/mis/clean.cpp missing")
        failures += 1
    for f in findings:
        if f.path.endswith("clean.cpp"):
            print(f"SELF-TEST FAIL: clean fixture flagged: {f}")
            failures += 1
    if failures == 0:
        print(f"SELF-TEST PASSED: {len(RULES)} rules, "
              f"{len(findings)} expected findings")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(
        prog="arbmis_audit.py",
        description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None,
                        help="repository root (default: the tool's parent)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to drive the TU list "
                             "(default: <repo>/build/compile_commands.json "
                             "when present)")
    parser.add_argument("--layering", default=None,
                        help="layering matrix (default: tools/layering.toml)")
    parser.add_argument("--baseline", default=None,
                        help="suppression file (default: "
                             "tools/audit_baseline.toml)")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the documentation of one rule and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="check every rule against its fixture under "
                             "tools/audit_fixtures/ and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    args = parser.parse_args(argv)

    tool_root = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.repo or os.path.dirname(tool_root))
    layering = args.layering or os.path.join(tool_root, "layering.toml")

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule][0]}")
        return 0
    if args.explain:
        rule = args.explain.upper()
        if rule not in RULES:
            print(f"unknown rule {args.explain!r}; --list-rules for the "
                  "table")
            return 2
        title, body = RULES[rule]
        print(f"{rule}: {title}\n")
        print(body)
        return 0
    if args.self_test:
        return self_test(tool_root, layering)

    baseline = args.baseline or os.path.join(tool_root, "audit_baseline.toml")
    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")
    findings, n_files, n_tus = run_audit(root, layering, baseline,
                                         compile_commands)
    live = [f for f in findings if f.baselined is None]
    suppressed = [f for f in findings if f.baselined is not None]
    if args.json:
        print(json.dumps([{
            "rule": f.rule, "file": f.path, "line": f.line,
            "message": f.message, "baselined": f.baselined,
        } for f in findings], indent=2))
    else:
        for f in live:
            print(f"{f.rule} {f.path}:{f.line}: {f.message}")
        for f in suppressed:
            print(f"baselined {f.rule} {f.path}:{f.line} ({f.baselined})")
    driver = (f"{n_tus} TUs from compile_commands.json + walk"
              if n_tus else "directory walk (no compile_commands.json)")
    print(f"arbmis-audit: {n_files} files scanned ({driver}); "
          f"{len(live)} finding(s), {len(suppressed)} baselined",
          file=sys.stderr if args.json else sys.stdout)
    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
