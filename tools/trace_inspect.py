#!/usr/bin/env python3
"""Inspect, validate, and diff arbmis telemetry artifacts.

Handles every artifact the telemetry subsystem (src/obs, documented in
docs/OBSERVABILITY.md) writes, auto-detected by content:

  * event streams, JSONL   — first line {"manifest":{...}}, then events
  * event streams, binary  — magic "ARBMISEV" + version 0x01
  * Chrome traces          — {"traceEvents":[...]} from --trace=
  * metrics dumps          — {"schema":"arbmis.metrics.v1"} from --metrics=

Usage:

    python3 tools/trace_inspect.py --validate out.jsonl
    python3 tools/trace_inspect.py --summary  out.bin
    python3 tools/trace_inspect.py --diff a.jsonl b.jsonl

--validate exits 0 iff the artifact is well-formed against the embedded
event schema (EVENT_SCHEMAS below mirrors kSchemas in src/obs/events.cpp;
update the two together and bump the schema version on breaking change).
--diff compares two event streams for semantic equality: manifests are
excluded (they legitimately differ in threads/inbox/git_sha), event
records must match exactly and in order — the offline version of the
byte-identity the differential harness enforces in-process.

Stdlib only: the image has no third-party Python packages.
"""

import argparse
import json
import sys

SCHEMA_VERSION = "arbmis.obs.v1"
METRICS_SCHEMA_VERSION = "arbmis.metrics.v1"
BINARY_MAGIC = b"ARBMISEV"
BINARY_VERSION = 1

# Mirrors kSchemas in src/obs/events.cpp: kind -> (fields, text_field).
EVENT_SCHEMAS = {
    "run_begin": (["nodes", "edges", "seed", "max_rounds",
                   "enforce_congest"], "algorithm"),
    "round": (["halted", "messages", "payload_bits", "in_flight",
               "rng_draws", "max_message_bits", "k_prev"], None),
    "run_end": (["rounds", "messages", "payload_bits", "max_edge_load",
                 "all_halted", "rng_draws"], None),
    "model_check": (["k", "max_message_bits", "max_edge_bits",
                     "max_rng_reads", "violations", "edge_bit_budget"],
                    None),
    "violation": ([], "what"),
    "fault_round": (["drops", "duplicates", "crashes", "recoveries"], None),
    "fault_crash": (["node", "recover_at"], None),
    "fault_recovery": (["node"], None),
    "phase": (["index", "set_size", "rounds", "messages"], "name"),
    "scale": (["scale", "joined", "covered", "bad", "active_after"], None),
    "shatter": (["set_size", "components", "largest", "vlo", "vhi"], None),
    "attempt": (["attempt", "residual", "committed", "covered", "faulty",
                 "rounds"], None),
    "certified": (["certified", "attempts", "rounds_to_recovery"], None),
    "log": (["level"], "message"),
    "lane_merge": (["lane", "sends", "messages", "halts"], None),
    "request_begin": (["request", "graph"], "op"),
    "request_end": (["request", "status", "payload_bytes"], None),
    "cache_hit": (["graph", "seed", "key_hash"], None),
    "cache_miss": (["graph", "seed", "key_hash"], None),
    "repair_begin": (["graph", "epoch", "residual", "full_recompute"], None),
    "repair_certified": (["graph", "epoch", "certified", "committed",
                          "rounds"], None),
    "span_begin": (["span", "parent", "ref"], "name"),
    "span_end": (["span"], None),
    "recorder_dump": (["buffered_events", "buffered_bytes",
                       "evicted_events", "evicted_bytes"], "reason"),
}
# Binary event records carry the kind as a byte in EventKind order.
KIND_NAMES = list(EVENT_SCHEMAS.keys())


class FormatError(Exception):
    pass


def check_event(obj, where):
    """Validates one decoded JSONL event object against the schema."""
    kind = obj.get("ev")
    if kind not in EVENT_SCHEMAS:
        raise FormatError(f"{where}: unknown event kind {kind!r}")
    fields, text_field = EVENT_SCHEMAS[kind]
    if not isinstance(obj.get("round"), int):
        raise FormatError(f"{where}: missing/non-integer 'round'")
    allowed = {"ev", "round"} | set(fields)
    if text_field is not None:
        allowed.add(text_field)
    for key, value in obj.items():
        if key not in allowed:
            raise FormatError(f"{where}: unexpected field {key!r} on "
                              f"{kind!r}")
        if key in fields and not isinstance(value, int):
            raise FormatError(f"{where}: field {key!r} is not an integer")
        if key == text_field and not isinstance(value, str):
            raise FormatError(f"{where}: text field {key!r} is not a string")
    return kind


def check_manifest(obj, where):
    manifest = obj.get("manifest")
    if not isinstance(manifest, dict):
        raise FormatError(f"{where}: 'manifest' is not an object")
    if manifest.get("schema") != SCHEMA_VERSION:
        raise FormatError(f"{where}: schema {manifest.get('schema')!r}, "
                          f"expected {SCHEMA_VERSION!r}")
    return manifest


# ---------------------------------------------------------------------------
# Per-format parsers. Each returns (kind, summary_dict) where kind names
# the artifact type; events formats also return the decoded stream.
# ---------------------------------------------------------------------------

def parse_events_jsonl(text):
    """Returns (manifests, events) or raises FormatError."""
    manifests, events = [], []
    lines = text.splitlines()
    if not lines:
        raise FormatError("empty file")
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise FormatError(f"{where}: not JSON: {err}") from err
        if "manifest" in obj:
            manifests.append(check_manifest(obj, where))
        elif "ev" in obj:
            check_event(obj, where)
            events.append(obj)
        else:
            raise FormatError(f"{where}: neither a manifest nor an event")
    if not manifests or "manifest" not in json.loads(lines[0]):
        raise FormatError("first line is not the manifest header")
    return manifests, events


def read_varint(buf, pos):
    value, shift = 0, 0
    while True:
        if pos >= len(buf):
            raise FormatError(f"offset {pos}: truncated varint")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def parse_events_binary(buf):
    """Decodes the binary stream into (manifests, events)."""
    if buf[: len(BINARY_MAGIC)] != BINARY_MAGIC:
        raise FormatError("bad magic")
    if len(buf) < len(BINARY_MAGIC) + 1:
        raise FormatError("truncated header")
    version = buf[len(BINARY_MAGIC)]
    if version != BINARY_VERSION:
        raise FormatError(f"unknown binary version {version}")
    pos = len(BINARY_MAGIC) + 1
    manifests, events = [], []
    while pos < len(buf):
        where = f"offset {pos}"
        record_type = buf[pos]
        pos += 1
        if record_type == 0x00:
            length, pos = read_varint(buf, pos)
            blob = buf[pos:pos + length]
            if len(blob) != length:
                raise FormatError(f"{where}: truncated manifest")
            pos += length
            try:
                obj = json.loads(blob.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                raise FormatError(f"{where}: bad manifest JSON: {err}") \
                    from err
            manifests.append(check_manifest(obj, where))
        elif record_type == 0x01:
            if pos >= len(buf):
                raise FormatError(f"{where}: truncated event")
            kind_byte = buf[pos]
            pos += 1
            if kind_byte >= len(KIND_NAMES):
                raise FormatError(f"{where}: unknown kind byte {kind_byte}")
            kind = KIND_NAMES[kind_byte]
            round_no, pos = read_varint(buf, pos)
            num_values, pos = read_varint(buf, pos)
            fields, text_field = EVENT_SCHEMAS[kind]
            if num_values > len(fields):
                raise FormatError(f"{where}: {kind}: {num_values} values, "
                                  f"schema has {len(fields)}")
            event = {"ev": kind, "round": round_no}
            for i in range(num_values):
                event[fields[i]], pos = read_varint(buf, pos)
            text_len, pos = read_varint(buf, pos)
            blob = buf[pos:pos + text_len]
            if len(blob) != text_len:
                raise FormatError(f"{where}: truncated text")
            pos += text_len
            if text_field is not None:
                event[text_field] = blob.decode("utf-8", "replace")
            elif text_len:
                raise FormatError(f"{where}: {kind}: unexpected text")
            events.append(event)
        else:
            raise FormatError(f"{where}: unknown record type {record_type}")
    if not manifests:
        raise FormatError("no manifest record")
    return manifests, events


def parse_chrome_trace(doc):
    spans = doc.get("traceEvents")
    if not isinstance(spans, list):
        raise FormatError("'traceEvents' is not a list")
    for i, span in enumerate(spans):
        where = f"traceEvents[{i}]"
        if span.get("ph") != "X":
            raise FormatError(f"{where}: ph {span.get('ph')!r} != 'X'")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in span:
                raise FormatError(f"{where}: missing {key!r}")
    other = doc.get("otherData")
    if other is not None and other.get("schema") not in (None,
                                                         SCHEMA_VERSION):
        raise FormatError(f"otherData schema {other.get('schema')!r}")
    return spans


def parse_metrics(doc):
    if doc.get("schema") != METRICS_SCHEMA_VERSION:
        raise FormatError(f"schema {doc.get('schema')!r}, expected "
                          f"{METRICS_SCHEMA_VERSION!r}")
    counters = doc.get("counters", {})
    if not all(isinstance(v, int) for v in counters.values()):
        raise FormatError("non-integer counter value")
    rounds = doc.get("rounds", {})
    sampled = rounds.get("sampled", [])
    for name, series in rounds.get("series", {}).items():
        if len(series) != len(sampled):
            raise FormatError(f"series {name!r}: {len(series)} deltas for "
                              f"{len(sampled)} sampled rounds")
    return doc


def detect_and_parse(path):
    """Returns (kind, payload): kind in {events, trace, metrics}."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if raw[: len(BINARY_MAGIC)] == BINARY_MAGIC:
        return "events", parse_events_binary(raw)
    text = raw.decode("utf-8")
    stripped = text.lstrip()
    if not stripped:
        raise FormatError("empty file")
    first_line = stripped.splitlines()[0]
    try:
        head = json.loads(first_line)
    except json.JSONDecodeError:
        head = None
    # Order matters: a metrics dump also embeds a "manifest" key, so the
    # single-document formats are ruled out before the JSONL event format
    # (whose manifest header is exactly {"manifest":{...}}).
    if isinstance(head, dict):
        if head.get("schema") == METRICS_SCHEMA_VERSION:
            return "metrics", parse_metrics(json.loads(text))
        if "traceEvents" in head:
            return "trace", parse_chrome_trace(json.loads(text))
        if "ev" in head or set(head) == {"manifest"}:
            return "events", parse_events_jsonl(text)
    doc = json.loads(text)
    if "traceEvents" in doc:
        return "trace", parse_chrome_trace(doc)
    if doc.get("schema") == METRICS_SCHEMA_VERSION:
        return "metrics", parse_metrics(doc)
    raise FormatError("unrecognized artifact (not events/trace/metrics)")


# ---------------------------------------------------------------------------
# Modes.
# ---------------------------------------------------------------------------

def do_validate(path):
    try:
        kind, _ = detect_and_parse(path)
    except (FormatError, OSError, UnicodeDecodeError,
            json.JSONDecodeError) as err:
        print(f"INVALID {path}: {err}")
        return 1
    print(f"OK {path}: valid {kind} artifact")
    return 0


def do_summary(path):
    kind, payload = detect_and_parse(path)
    if kind == "events":
        manifests, events = payload
        manifest = manifests[-1]
        print(f"{path}: event stream ({len(events)} events)")
        print(f"  tool={manifest.get('tool')!r} "
              f"workload={manifest.get('workload')!r} "
              f"seed={manifest.get('seed')} "
              f"threads={manifest.get('threads')} "
              f"inbox={manifest.get('inbox')!r}")
        by_kind = {}
        for event in events:
            by_kind[event["ev"]] = by_kind.get(event["ev"], 0) + 1
        for name in sorted(by_kind):
            print(f"  {name:16s} {by_kind[name]}")
        rounds = [e for e in events if e["ev"] == "round"]
        if rounds:
            messages = sum(e.get("messages", 0) for e in rounds)
            print(f"  rounds observed: {len(rounds)}, "
                  f"messages: {messages}")
        for dump in (e for e in events if e["ev"] == "recorder_dump"):
            print(f"  recorder dump: reason={dump.get('reason')!r} "
                  f"buffered={dump.get('buffered_events', 0)} events / "
                  f"{dump.get('buffered_bytes', 0)} bytes, "
                  f"evicted={dump.get('evicted_events', 0)} events / "
                  f"{dump.get('evicted_bytes', 0)} bytes")
    elif kind == "trace":
        spans = payload
        by_name = {}
        for span in spans:
            entry = by_name.setdefault(span["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += float(span["dur"])
        print(f"{path}: Chrome trace ({len(spans)} spans)")
        for name in sorted(by_name):
            count, total = by_name[name]
            print(f"  {name:16s} x{count}  total {total / 1000.0:.3f} ms")
    else:
        doc = payload
        counters = doc.get("counters", {})
        print(f"{path}: metrics dump ({len(counters)} counters)")
        for name in sorted(counters):
            print(f"  {name:24s} {counters[name]}")
    return 0


def collect_spans(events):
    """Builds the span forest from span_begin/span_end markers.

    Returns (roots, orphans): roots are spans with parent == 0, each a dict
    with nested children; facts emitted while a span is open (run_end
    rounds/messages, repair outcomes) are attributed to the innermost open
    span. orphans counts span_end markers with no matching span_begin.
    """
    stack, roots, orphans = [], [], 0
    for index, event in enumerate(events):
        kind = event["ev"]
        if kind == "span_begin":
            span = {"span": event.get("span", 0),
                    "parent": event.get("parent", 0),
                    "name": event.get("name", ""),
                    "ref": event.get("ref", 0),
                    "begin": index, "end": None, "events": 0,
                    "rounds": 0, "messages": 0, "repairs": 0,
                    "certified": 0, "children": []}
            if stack:
                stack[-1]["children"].append(span)
            else:
                roots.append(span)
            stack.append(span)
            continue
        if kind == "span_end":
            span_id = event.get("span", 0)
            if stack and stack[-1]["span"] == span_id:
                span = stack.pop()
                span["end"] = index
                span["events"] = index - span["begin"] - 1
            else:
                orphans += 1
            continue
        if not stack:
            continue
        span = stack[-1]
        if kind == "run_end":
            span["rounds"] += event.get("rounds", 0)
            span["messages"] += event.get("messages", 0)
        elif kind == "repair_certified":
            span["repairs"] += 1
            span["certified"] += event.get("certified", 0)
    return roots, orphans


def aggregate_span(span):
    """Sums rounds/messages/repairs over a span and its descendants."""
    rounds, messages, repairs = (span["rounds"], span["messages"],
                                 span["repairs"])
    for child in span["children"]:
        c_rounds, c_messages, c_repairs = aggregate_span(child)
        rounds += c_rounds
        messages += c_messages
        repairs += c_repairs
    return rounds, messages, repairs


def print_span(span, depth):
    rounds, messages, repairs = aggregate_span(span)
    indent = "  " * (depth + 1)
    state = "open" if span["end"] is None else f"{span['events']} events"
    print(f"{indent}span {span['span']} {span['name']!r} ref={span['ref']} "
          f"[{state}] rounds={rounds} messages={messages} "
          f"repairs={repairs}")
    for child in span["children"]:
        print_span(child, depth + 1)


def do_spans(path):
    events = event_stream_of(path)
    roots, orphans = collect_spans(events)
    print(f"{path}: {len(roots)} request spans")
    by_op = {}
    for span in roots:
        print_span(span, 0)
        rounds, messages, repairs = aggregate_span(span)
        entry = by_op.setdefault(span["name"], [0, 0, 0, 0])
        entry[0] += 1
        entry[1] += rounds
        entry[2] += messages
        entry[3] += repairs
    if by_op:
        print("  per-op totals:")
        for name in sorted(by_op):
            count, rounds, messages, repairs = by_op[name]
            print(f"    {name:16s} x{count}  rounds={rounds} "
                  f"messages={messages} repairs={repairs}")
    if orphans:
        print(f"  WARNING: {orphans} span_end markers without a matching "
              "span_begin")
    return 0


def event_stream_of(path):
    kind, payload = detect_and_parse(path)
    if kind != "events":
        raise FormatError(f"{path} is a {kind} artifact, not an event "
                          "stream")
    return payload[1]


def do_diff(path_a, path_b):
    events_a = event_stream_of(path_a)
    events_b = event_stream_of(path_b)
    limit = min(len(events_a), len(events_b))
    for i in range(limit):
        if events_a[i] != events_b[i]:
            print(f"DIFF at event {i}:")
            print(f"  {path_a}: {json.dumps(events_a[i], sort_keys=True)}")
            print(f"  {path_b}: {json.dumps(events_b[i], sort_keys=True)}")
            return 1
    if len(events_a) != len(events_b):
        print(f"DIFF: {path_a} has {len(events_a)} events, {path_b} has "
              f"{len(events_b)}")
        return 1
    print(f"IDENTICAL: {len(events_a)} events (manifests excluded)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--validate", action="store_true",
                      help="check well-formedness; exit 1 when invalid")
    mode.add_argument("--summary", action="store_true",
                      help="print per-kind counts / span totals / counters")
    mode.add_argument("--diff", action="store_true",
                      help="compare two event streams (manifests excluded)")
    mode.add_argument("--spans", action="store_true",
                      help="per-request span breakdown of an event stream")
    parser.add_argument("paths", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)

    if args.diff:
        if len(args.paths) != 2:
            parser.error("--diff takes exactly two files")
        try:
            return do_diff(args.paths[0], args.paths[1])
        except (FormatError, OSError) as err:
            print(f"ERROR: {err}")
            return 1
    status = 0
    for path in args.paths:
        if args.validate:
            status |= do_validate(path)
        else:
            try:
                if args.spans:
                    status |= do_spans(path)
                else:
                    do_summary(path)
            except (FormatError, OSError) as err:
                print(f"ERROR {path}: {err}")
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
