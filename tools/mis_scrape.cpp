// mis_scrape: live-introspection client for a running arbmis_serve
// (docs/SERVING.md, docs/OBSERVABILITY.md).
//
//   mis_scrape (--port N | --port-file PATH) [--host H]
//              [--json-out=PATH] [--interval MS] [--count N] [--deltas]
//              [--dump-recorder=PATH] [--clear] [--quiet]
//
// Issues METRICS requests against the daemon and renders the
// arbmis.metrics.v1 reply. Default output is a Prometheus-style text
// exposition on stdout (counters, gauges, histogram count/max), suitable
// for eyeballs and node_exporter-textfile-style collection. --json-out
// writes one reply verbatim — the file is a standard arbmis.metrics.v1
// document, so tools/bench_gate.py --metrics-current can gate on it (the
// serve-smoke CI job does exactly that). With --count > 1 the daemon is
// polled every --interval ms; --deltas switches stdout to one JSON line
// per poll carrying counter increments since the previous poll.
//
// --dump-recorder fetches the daemon's flight-recorder ring (a complete
// ARBMISEV artifact; see obs/recorder.h) and writes it to PATH, where
// tools/trace_inspect.py can validate/summarize/diff it. --clear empties
// the ring server-side after the dump.
//
// The scrape itself is a request: a METRICS reply never includes the
// request that produced it (MisService feeds the registry after building
// the reply), so a single scrape of an idle daemon sees exactly the
// preceding workload's counters.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--port N | --port-file PATH) [--host H]\n"
         "       [--json-out=PATH] [--interval MS] [--count N] [--deltas]\n"
         "       [--dump-recorder=PATH] [--clear] [--quiet]\n"
         "  --port N              daemon TCP port\n"
         "  --port-file PATH      read the port from a rendezvous file\n"
         "  --host H              daemon address (default 127.0.0.1)\n"
         "  --json-out=PATH       write one raw arbmis.metrics.v1 reply\n"
         "  --interval MS         poll period for --count > 1 (default "
         "1000)\n"
         "  --count N             number of scrapes (default 1)\n"
         "  --deltas              JSON lines of counter deltas per poll\n"
         "  --dump-recorder=PATH  fetch the flight-recorder ring artifact\n"
         "  --clear               clear the ring server-side after the "
         "dump\n"
         "  --quiet               suppress the summary line on stderr\n";
  return 1;
}

/// Prometheus metric name: [a-zA-Z_][a-zA-Z0-9_]*, prefixed "arbmis_".
std::string prom_name(const std::string& name) {
  std::string out = "arbmis_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

// -- Minimal scanner for the arbmis.metrics.v1 document ---------------------
// The registry emits this document itself (obs/registry.cpp), so its shape
// is fixed: flat string->integer maps for "counters"/"gauges" and one level
// of nesting under "histograms". A purpose-built scanner keeps the tool
// dependency-free (the toolchain has no C++ JSON library baked in).

/// Position just past `"key":` at `from` or npos.
std::size_t find_key(const std::string& doc, const std::string& key,
                     std::size_t from) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = doc.find(needle, from);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

/// Parses the flat object starting at doc[at] == '{' into name -> value.
std::map<std::string, long long> parse_flat(const std::string& doc,
                                            std::size_t at) {
  std::map<std::string, long long> out;
  if (at == std::string::npos || at >= doc.size() || doc[at] != '{') {
    return out;
  }
  std::size_t i = at + 1;
  while (i < doc.size() && doc[i] != '}') {
    if (doc[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t name_end = doc.find('"', i + 1);
    if (name_end == std::string::npos) break;
    const std::string name = doc.substr(i + 1, name_end - i - 1);
    std::size_t v = name_end + 1;
    while (v < doc.size() && (doc[v] == ':' || doc[v] == ' ')) ++v;
    out[name] = std::strtoll(doc.c_str() + v, nullptr, 10);
    i = doc.find_first_of(",}", v);
    if (i == std::string::npos) break;
  }
  return out;
}

/// Returns the offset of the top-level section object, skipping the
/// manifest (which, when present, could embed a matching key in a string).
std::size_t section_at(const std::string& doc, const std::string& section) {
  std::size_t from = 0;
  const std::size_t manifest = find_key(doc, "manifest", 0);
  if (manifest != std::string::npos && manifest < doc.size() &&
      doc[manifest] == '{') {
    std::size_t depth = 0;
    std::size_t i = manifest;
    for (; i < doc.size(); ++i) {
      if (doc[i] == '{') ++depth;
      if (doc[i] == '}' && --depth == 0) break;
    }
    from = i;
  }
  return find_key(doc, section, from);
}

struct HistogramSummary {
  long long total = 0;
  long long max_value = -1;  ///< -1: linear histogram, no max tracked
};

/// name -> {total, max_value} for every entry under "histograms".
std::map<std::string, HistogramSummary> parse_histograms(
    const std::string& doc) {
  std::map<std::string, HistogramSummary> out;
  std::size_t at = section_at(doc, "histograms");
  if (at == std::string::npos || at >= doc.size() || doc[at] != '{') {
    return out;
  }
  std::size_t i = at + 1;
  while (i < doc.size() && doc[i] != '}') {
    if (doc[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t name_end = doc.find('"', i + 1);
    if (name_end == std::string::npos) break;
    const std::string name = doc.substr(i + 1, name_end - i - 1);
    std::size_t body = doc.find('{', name_end);
    if (body == std::string::npos) break;
    std::size_t depth = 0;
    std::size_t end = body;
    for (; end < doc.size(); ++end) {
      if (doc[end] == '{') ++depth;
      if (doc[end] == '}' && --depth == 0) break;
    }
    const std::string entry = doc.substr(body, end - body + 1);
    HistogramSummary h;
    std::size_t v = find_key(entry, "total", 0);
    if (v != std::string::npos) {
      h.total = std::strtoll(entry.c_str() + v, nullptr, 10);
    }
    v = find_key(entry, "max_value", 0);
    if (v != std::string::npos) {
      h.max_value = std::strtoll(entry.c_str() + v, nullptr, 10);
    }
    out[name] = h;
    i = end + 1;
    if (i < doc.size() && doc[i] == ',') ++i;
  }
  return out;
}

void print_prometheus(std::ostream& os, const std::string& doc) {
  for (const auto& [name, value] :
       parse_flat(doc, section_at(doc, "counters"))) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] :
       parse_flat(doc, section_at(doc, "gauges"))) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, h] : parse_histograms(doc)) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << "_count counter\n"
       << p << "_count " << h.total << "\n";
    if (h.max_value >= 0) {
      os << "# TYPE " << p << "_max gauge\n"
         << p << "_max " << h.max_value << "\n";
    }
  }
}

void print_deltas(std::ostream& os, std::uint64_t seq,
                  const std::map<std::string, long long>& prev,
                  const std::map<std::string, long long>& cur,
                  const std::map<std::string, long long>& gauges) {
  os << "{\"seq\":" << seq << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : cur) {
    const auto it = prev.find(name);
    const long long delta = value - (it == prev.end() ? 0 : it->second);
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << delta;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << value;
  }
  os << "}}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool have_port = false;
  std::string json_out;
  std::string dump_out;
  bool clear_after = false;
  bool deltas = false;
  bool quiet = false;
  std::uint64_t count = 1;
  std::uint64_t interval_ms = 1000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
      have_port = true;
    } else if (arg == "--port-file" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      unsigned long p = 0;
      if (!(in >> p)) {
        std::cerr << "mis_scrape: cannot read port from " << argv[i] << "\n";
        return 1;
      }
      port = static_cast<std::uint16_t>(p);
      have_port = true;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--count" && i + 1 < argc) {
      count = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--deltas") {
      deltas = true;
    } else if (arg.rfind("--dump-recorder=", 0) == 0) {
      dump_out = arg.substr(16);
    } else if (arg == "--clear") {
      clear_after = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "mis_scrape: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (!have_port) {
    std::cerr << "mis_scrape: --port or --port-file is required\n";
    return usage(argv[0]);
  }

  try {
    arbmis::serve::Client client(host, port);

    if (!dump_out.empty()) {
      const arbmis::serve::DumpRecorderReply dump =
          client.dump_recorder(clear_after);
      if (dump.recorder_attached == 0) {
        std::cerr << "mis_scrape: daemon has no flight recorder attached\n";
        return 2;
      }
      std::ofstream out(dump_out, std::ios::binary);
      out.write(dump.artifact.data(),
                static_cast<std::streamsize>(dump.artifact.size()));
      if (!out) {
        std::cerr << "mis_scrape: cannot write " << dump_out << "\n";
        return 2;
      }
      if (!quiet) {
        std::cerr << "mis_scrape: wrote " << dump.artifact.size()
                  << " bytes (" << dump.buffered_events << " buffered, "
                  << dump.evicted_events << " evicted) to " << dump_out
                  << "\n";
      }
    }

    std::map<std::string, long long> prev_counters;
    for (std::uint64_t seq = 0; seq < count; ++seq) {
      if (seq > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
      const arbmis::serve::MetricsReply reply = client.metrics();
      if (!json_out.empty() && seq == 0) {
        std::ofstream out(json_out);
        out << reply.json << "\n";
        if (!out) {
          std::cerr << "mis_scrape: cannot write " << json_out << "\n";
          return 2;
        }
      }
      const std::map<std::string, long long> counters =
          parse_flat(reply.json, section_at(reply.json, "counters"));
      if (deltas) {
        print_deltas(std::cout, seq, prev_counters, counters,
                     parse_flat(reply.json, section_at(reply.json, "gauges")));
      } else {
        if (seq > 0) std::cout << "\n";
        print_prometheus(std::cout, reply.json);
      }
      std::cout << std::flush;
      prev_counters = counters;
    }
  } catch (const std::exception& e) {
    std::cerr << "mis_scrape: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
