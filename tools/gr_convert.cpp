// gr_convert: edge-list text -> binary .gr CSR file (docs/STORAGE.md).
//
//   gr_convert [--degree-order] [--quiet] <edge-list.txt|-> <out.gr>
//
// Accepts SNAP-style edge lists: one "u v" pair per line, '#'/'%' comments,
// CRLF, sparse out-of-order ids up to 2^32 - 1. Self-loops are dropped and
// duplicate edges deduplicated (both counted in the printed stats); any
// malformed line is a hard error naming its line number. With
// --degree-order, vertices are renumbered by descending degree and the file
// carries a permutation section mapping new ids back to the original input
// ids. The written file is re-opened and structurally verified before the
// tool reports success, so a 0 exit status certifies a loadable graph.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/storage/convert.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--degree-order] [--quiet] [--stats-json PATH|-]"
               " <edge-list.txt|-> <out.gr>\n"
               "  --degree-order  renumber vertices by descending degree\n"
               "                  (saves a new->original id permutation)\n"
               "  --quiet         suppress the stats summary\n"
               "  --stats-json    write ConvertStats + graph shape as JSON\n"
               "                  to PATH ('-' = stdout)\n";
  return 1;
}

/// Machine-readable ConvertStats (the --stats-json payload): every counter
/// the human summary prints, plus the resulting graph's shape, one object
/// per conversion.
void write_stats_json(std::ostream& out,
                      const arbmis::graph::storage::ConvertResult& result,
                      const std::string& output_path) {
  const auto& s = result.stats;
  out << "{\"tool\": \"gr_convert\", \"output\": \"" << output_path
      << "\", \"n\": " << result.graph.num_nodes()
      << ", \"m\": " << result.graph.num_edges()
      << ", \"max_degree\": " << result.graph.max_degree()
      << ", \"degree_ordered\": " << (result.degree_ordered ? "true" : "false")
      << ", \"lines_total\": " << s.lines_total
      << ", \"lines_comment\": " << s.lines_comment
      << ", \"edges_input\": " << s.edges_input
      << ", \"self_loops_dropped\": " << s.self_loops_dropped
      << ", \"duplicates_dropped\": " << s.duplicates_dropped
      << ", \"edges_kept\": " << s.edges_kept << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  arbmis::graph::storage::ConvertOptions options;
  bool quiet = false;
  std::string stats_json;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--degree-order") {
      options.degree_order = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "gr_convert: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage(argv[0]);
  const std::string& input_path = positional[0];
  const std::string& output_path = positional[1];

  try {
    arbmis::graph::storage::ConvertResult result;
    if (input_path == "-") {
      result = arbmis::graph::storage::convert_edge_list(std::cin, options);
    } else {
      std::ifstream in(input_path);
      if (!in) {
        std::cerr << "gr_convert: cannot open " << input_path << '\n';
        return 2;
      }
      result = arbmis::graph::storage::convert_edge_list(in, options);
    }

    arbmis::graph::storage::GrWriteOptions write_options;
    write_options.new_to_old = result.new_to_old;
    write_options.degree_ordered = result.degree_ordered;
    arbmis::graph::storage::write_gr(output_path, result.graph,
                                     write_options);

    // Round-trip self-check: the file must load and survive full structural
    // verification before we certify success.
    const auto reloaded =
        arbmis::graph::storage::MappedGraph::open(output_path);
    if (reloaded.num_nodes() != result.graph.num_nodes() ||
        reloaded.num_edges() != result.graph.num_edges()) {
      std::cerr << "gr_convert: self-check failed: " << output_path
                << " reloaded with different counts\n";
      return 2;
    }

    if (!quiet) {
      const auto& s = result.stats;
      std::cout << "gr_convert: " << output_path << ": n="
                << result.graph.num_nodes() << " m="
                << result.graph.num_edges() << " max_degree="
                << result.graph.max_degree()
                << (result.degree_ordered ? " (degree-ordered)" : "") << '\n'
                << "  lines=" << s.lines_total << " comments="
                << s.lines_comment << " edges_in=" << s.edges_input
                << " self_loops_dropped=" << s.self_loops_dropped
                << " duplicates_dropped=" << s.duplicates_dropped << '\n';
    }

    if (!stats_json.empty()) {
      if (stats_json == "-") {
        write_stats_json(std::cout, result, output_path);
      } else {
        std::ofstream out(stats_json);
        if (!out) {
          std::cerr << "gr_convert: cannot write " << stats_json << '\n';
          return 2;
        }
        write_stats_json(out, result, output_path);
      }
    }
  } catch (const std::exception& e) {
    // Converter messages already carry the "gr_convert:" prefix; .gr
    // loader/writer messages carry "gr:". Don't double the prefix.
    const std::string what = e.what();
    if (what.rfind("gr", 0) == 0) {
      std::cerr << what << '\n';
    } else {
      std::cerr << "gr_convert: " << what << '\n';
    }
    return 2;
  }
  return 0;
}
