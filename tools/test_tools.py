#!/usr/bin/env python3
"""Unit tests for the stdlib Python tooling (bench_gate, trace_inspect).

Run directly or via ctest (the `tooling.py_unit` test):

    python3 tools/test_tools.py

The C++ side of these contracts is covered by the test suite; these tests
pin the Python side — gate arithmetic edge cases (a gate that silently
passes is worse than no gate) and rejection of malformed telemetry
artifacts (a validator that accepts garbage hides real corruption).

Stdlib only: the image has no third-party Python packages.
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_gate  # noqa: E402
import trace_inspect  # noqa: E402


def write_temp(dirname, name, data):
    path = os.path.join(dirname, name)
    mode = "wb" if isinstance(data, bytes) else "w"
    with open(path, mode) as fh:
        fh.write(data)
    return path


def gbench_json(items):
    return json.dumps({
        "benchmarks": [{"name": k, "items_per_second": v}
                       for k, v in items.items()],
    })


def metrics_json(counters, schema="arbmis.metrics.v1"):
    return json.dumps({"schema": schema, "counters": counters})


class GateThroughputTest(unittest.TestCase):
    def run_gate(self, base, cur, tolerance=0.25,
                 benchmarks=("BM_x",)):
        with tempfile.TemporaryDirectory() as tmp:
            args = argparse.Namespace(
                baseline=write_temp(tmp, "base.json", gbench_json(base)),
                current=write_temp(tmp, "cur.json", gbench_json(cur)),
                benchmarks=list(benchmarks),
                tolerance=tolerance)
            return bench_gate.gate_throughput(args)

    def test_exactly_at_floor_passes(self):
        # The floor is inclusive: cur == base * (1 - tolerance) is OK.
        self.assertEqual(self.run_gate({"BM_x": 1000.0},
                                       {"BM_x": 750.0}), 0)

    def test_just_below_floor_fails(self):
        self.assertEqual(self.run_gate({"BM_x": 1000.0},
                                       {"BM_x": 749.999}), 1)

    def test_improvement_passes(self):
        self.assertEqual(self.run_gate({"BM_x": 1000.0},
                                       {"BM_x": 2500.0}), 0)

    def test_zero_tolerance_requires_no_regression(self):
        self.assertEqual(self.run_gate({"BM_x": 1000.0}, {"BM_x": 1000.0},
                                       tolerance=0.0), 0)
        self.assertEqual(self.run_gate({"BM_x": 1000.0}, {"BM_x": 999.0},
                                       tolerance=0.0), 1)

    def test_missing_benchmark_is_a_failure_not_a_pass(self):
        # A renamed benchmark must not silently disable the gate.
        self.assertEqual(self.run_gate({"BM_x": 1000.0}, {}), 1)
        self.assertEqual(self.run_gate({}, {"BM_x": 1000.0}), 1)

    def test_each_selected_benchmark_gates_independently(self):
        base = {"BM_x": 1000.0, "BM_y": 1000.0}
        cur = {"BM_x": 100.0, "BM_y": 990.0}
        self.assertEqual(self.run_gate(base, cur,
                                       benchmarks=("BM_x", "BM_y")), 1)

    def test_zero_baseline_never_divides(self):
        # base == 0 is degenerate but must not crash or fail spuriously.
        self.assertEqual(self.run_gate({"BM_x": 0.0}, {"BM_x": 0.0}), 0)


class GateMetricsTest(unittest.TestCase):
    def run_gate(self, base, cur, metrics=("sim.messages",),
                 regen_command=None, capture=None):
        with tempfile.TemporaryDirectory() as tmp:
            args = argparse.Namespace(
                metrics_baseline=write_temp(tmp, "base.json",
                                            metrics_json(base)),
                metrics_current=write_temp(tmp, "cur.json",
                                           metrics_json(cur)),
                metrics=list(metrics),
                regen_command=regen_command)
            if capture is None:
                return bench_gate.gate_metrics(args)
            with contextlib.redirect_stdout(capture):
                return bench_gate.gate_metrics(args)

    def test_equal_counters_pass(self):
        self.assertEqual(self.run_gate({"sim.messages": 42},
                                       {"sim.messages": 42}), 0)

    def test_off_by_one_is_drift(self):
        # Deterministic counters are compared exactly — no tolerance.
        self.assertEqual(self.run_gate({"sim.messages": 42},
                                       {"sim.messages": 43}), 1)

    def test_missing_counter_is_a_failure(self):
        self.assertEqual(self.run_gate({}, {"sim.messages": 42}), 1)
        self.assertEqual(self.run_gate({"sim.messages": 42}, {}), 1)

    def test_missing_baseline_counter_names_counter_and_regen(self):
        # A counter absent from the committed baseline usually means the
        # baseline predates it: the error must name the counter and echo
        # the regeneration command so the fix is in the CI log itself.
        out = io.StringIO()
        regen = "./run_benches.sh --serve && git add results/"
        self.assertEqual(
            self.run_gate({}, {"serve.requests": 7},
                          metrics=("serve.requests",),
                          regen_command=regen, capture=out), 1)
        text = out.getvalue()
        self.assertIn("'serve.requests'", text)
        self.assertIn("missing from baseline", text)
        self.assertIn(regen, text)

    def test_missing_baseline_counter_without_regen_has_fallback_hint(self):
        out = io.StringIO()
        self.assertEqual(
            self.run_gate({}, {"serve.requests": 7},
                          metrics=("serve.requests",), capture=out), 1)
        self.assertIn("re-run the workload", out.getvalue())

    def test_unselected_counters_are_ignored(self):
        self.assertEqual(self.run_gate({"sim.messages": 1, "other": 5},
                                       {"sim.messages": 1, "other": 9}), 0)

    def test_wrong_schema_is_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_temp(tmp, "bad.json",
                              metrics_json({}, schema="arbmis.metrics.v2"))
            with self.assertRaises(ValueError):
                bench_gate.load_metrics_counters(path)


class BenchGateMainTest(unittest.TestCase):
    def test_exit_codes(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = write_temp(tmp, "base.json",
                              gbench_json({"BM_x": 1000.0}))
            good = write_temp(tmp, "good.json",
                              gbench_json({"BM_x": 900.0}))
            bad = write_temp(tmp, "bad.json",
                             gbench_json({"BM_x": 100.0}))
            argv = ["--baseline", base, "--benchmark", "BM_x"]
            self.assertEqual(bench_gate.main(argv + ["--current", good]), 0)
            self.assertEqual(bench_gate.main(argv + ["--current", bad]), 1)

    def test_nothing_to_gate_is_an_error(self):
        with self.assertRaises(SystemExit):
            bench_gate.main([])


def manifest_line():
    return json.dumps({"manifest": {"schema": "arbmis.obs.v1",
                                    "tool": "t", "seed": 1}})


class EventsJsonlTest(unittest.TestCase):
    def test_minimal_valid_stream(self):
        text = "\n".join([
            manifest_line(),
            json.dumps({"ev": "run_begin", "round": 0, "nodes": 4,
                        "algorithm": "luby"}),
            json.dumps({"ev": "round", "round": 1, "messages": 8}),
        ])
        manifests, events = trace_inspect.parse_events_jsonl(text)
        self.assertEqual(len(manifests), 1)
        self.assertEqual([e["ev"] for e in events], ["run_begin", "round"])

    def test_missing_manifest_header_is_rejected(self):
        text = json.dumps({"ev": "round", "round": 1})
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_jsonl(text)

    def test_unknown_kind_is_rejected(self):
        text = "\n".join([manifest_line(),
                          json.dumps({"ev": "nope", "round": 1})])
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_jsonl(text)

    def test_unexpected_field_is_rejected(self):
        # Schema drift between producer and inspector must be loud.
        text = "\n".join([manifest_line(),
                          json.dumps({"ev": "round", "round": 1,
                                      "bogus": 3})])
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_jsonl(text)

    def test_non_integer_counter_field_is_rejected(self):
        text = "\n".join([manifest_line(),
                          json.dumps({"ev": "round", "round": 1,
                                      "messages": "8"})])
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_jsonl(text)

    def test_missing_round_is_rejected(self):
        text = "\n".join([manifest_line(),
                          json.dumps({"ev": "round", "messages": 8})])
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_jsonl(text)


def varint(value):
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def binary_stream(records):
    blob = trace_inspect.BINARY_MAGIC + bytes([trace_inspect.BINARY_VERSION])
    manifest = json.dumps({"manifest": {"schema": "arbmis.obs.v1"}}).encode()
    blob += b"\x00" + varint(len(manifest)) + manifest
    for rec in records:
        blob += rec
    return blob


def binary_event(kind, round_no, values=(), text=b""):
    kind_byte = trace_inspect.KIND_NAMES.index(kind)
    rec = b"\x01" + bytes([kind_byte]) + varint(round_no)
    rec += varint(len(values))
    for v in values:
        rec += varint(v)
    rec += varint(len(text)) + text
    return rec


class EventsBinaryTest(unittest.TestCase):
    def test_round_trip(self):
        blob = binary_stream([
            binary_event("round", 3, values=(1, 20)),
            binary_event("violation", 4, text=b"over budget"),
        ])
        manifests, events = trace_inspect.parse_events_binary(blob)
        self.assertEqual(len(manifests), 1)
        self.assertEqual(events[0],
                         {"ev": "round", "round": 3, "halted": 1,
                          "messages": 20})
        self.assertEqual(events[1],
                         {"ev": "violation", "round": 4,
                          "what": "over budget"})

    def test_bad_magic(self):
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(b"NOTMAGIC\x01")

    def test_unknown_version(self):
        blob = trace_inspect.BINARY_MAGIC + b"\x02"
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(blob)

    def test_truncated_event_is_rejected(self):
        blob = binary_stream([binary_event("round", 3, values=(1, 20))])
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(blob[:-1])

    def test_unknown_kind_byte_is_rejected(self):
        bad = b"\x01" + bytes([250]) + varint(0) + varint(0) + varint(0)
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(binary_stream([bad]))

    def test_too_many_values_is_rejected(self):
        # "violation" declares zero counter fields.
        bad = binary_event("violation", 1, values=(7,))
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(binary_stream([bad]))

    def test_text_on_textless_kind_is_rejected(self):
        bad = binary_event("round", 1, text=b"nope")
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(binary_stream([bad]))

    def test_missing_manifest_is_rejected(self):
        blob = (trace_inspect.BINARY_MAGIC
                + bytes([trace_inspect.BINARY_VERSION])
                + binary_event("round", 1))
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_events_binary(blob)


class ChromeTraceTest(unittest.TestCase):
    def test_valid_trace(self):
        doc = {"traceEvents": [{"ph": "X", "name": "round", "ts": 0,
                                "dur": 5, "pid": 1, "tid": 1}]}
        self.assertEqual(len(trace_inspect.parse_chrome_trace(doc)), 1)

    def test_non_complete_span_is_rejected(self):
        doc = {"traceEvents": [{"ph": "B", "name": "round", "ts": 0,
                                "dur": 5, "pid": 1, "tid": 1}]}
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_chrome_trace(doc)

    def test_missing_span_key_is_rejected(self):
        doc = {"traceEvents": [{"ph": "X", "name": "round"}]}
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_chrome_trace(doc)


class MetricsTest(unittest.TestCase):
    def test_non_integer_counter_is_rejected(self):
        doc = {"schema": "arbmis.metrics.v1",
               "counters": {"sim.messages": 1.5}}
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_metrics(doc)

    def test_series_length_mismatch_is_rejected(self):
        doc = {"schema": "arbmis.metrics.v1", "counters": {},
               "rounds": {"sampled": [1, 2],
                          "series": {"messages": [5]}}}
        with self.assertRaises(trace_inspect.FormatError):
            trace_inspect.parse_metrics(doc)


class DetectAndDiffTest(unittest.TestCase):
    def test_metrics_with_manifest_key_routes_to_metrics(self):
        # A metrics dump embeds a "manifest" key; detection must not
        # misroute it to the JSONL event parser.
        doc = {"schema": "arbmis.metrics.v1", "counters": {"c": 1},
               "manifest": {"schema": "arbmis.obs.v1"}}
        with tempfile.TemporaryDirectory() as tmp:
            path = write_temp(tmp, "m.json", json.dumps(doc))
            kind, _ = trace_inspect.detect_and_parse(path)
        self.assertEqual(kind, "metrics")

    def test_diff_detects_single_field_drift(self):
        a = "\n".join([manifest_line(),
                       json.dumps({"ev": "round", "round": 1,
                                   "messages": 8})])
        b = a.replace('"messages": 8', '"messages": 9')
        with tempfile.TemporaryDirectory() as tmp:
            pa = write_temp(tmp, "a.jsonl", a)
            pb = write_temp(tmp, "b.jsonl", b)
            self.assertEqual(trace_inspect.do_diff(pa, pa), 0)
            self.assertEqual(trace_inspect.do_diff(pa, pb), 1)

    def test_diff_ignores_manifest_differences(self):
        a = "\n".join([manifest_line(),
                       json.dumps({"ev": "round", "round": 1})])
        b = a.replace('"seed": 1', '"seed": 2')
        self.assertNotEqual(a, b)
        with tempfile.TemporaryDirectory() as tmp:
            pa = write_temp(tmp, "a.jsonl", a)
            pb = write_temp(tmp, "b.jsonl", b)
            self.assertEqual(trace_inspect.do_diff(pa, pb), 0)

    def test_validate_rejects_garbage(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_temp(tmp, "junk.bin", b"\xff\xfe not an artifact")
            self.assertEqual(trace_inspect.do_validate(path), 1)


if __name__ == "__main__":
    unittest.main()
