// Shared mixed-workload core of tools/mis_loadgen and bench/bench_serve.
//
// Each simulated client owns one graph (distinct content and params seed
// per client index, so totals are independent of how the server
// interleaves connections) and walks a fixed phase sequence:
//
//   LOAD (inline arboricity-2 graph) -> COMPUTE xK (first a cache miss,
//   the rest must be cache hits with identical labels hashes) -> QUERY
//   batches -> UPDATE_EDGES batches (every reply must certify; repairs
//   counted) -> VERIFY -> STATS.
//
// The per-client op stream is a pure function of (seed, client index), so
// client-side totals are deterministic regardless of server thread count
// or connection interleaving — which is what lets the serve-smoke CI job
// gate them by exact equality via tools/bench_gate.py.
//
// This header is host code (tools/): wall-clock latency timing lives here,
// never inside src/serve.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "serve/client.h"
#include "util/rng.h"

namespace arbmis::loadgen {

/// Request types of the workload, in phase order. Indexes the per-op
/// latency samples; op_name() gives the registry/summary suffix.
enum Op : std::size_t {
  kOpLoad = 0,
  kOpCompute,
  kOpQuery,
  kOpUpdate,
  kOpVerify,
  kOpStats,
  kOpCount,
};

inline const char* op_name(std::size_t op) {
  static constexpr const char* kNames[kOpCount] = {
      "load", "compute", "query", "update", "verify", "stats"};
  return op < kOpCount ? kNames[op] : "?";
}

struct WorkloadOptions {
  std::uint32_t clients = 4;       ///< concurrent connections
  graph::NodeId nodes = 600;       ///< per-client graph size
  std::uint32_t computes = 3;      ///< COMPUTE_MIS calls per client
  std::uint32_t updates = 30;      ///< UPDATE_EDGES batches per client
  std::uint32_t ops_per_update = 4;
  std::uint32_t queries = 8;       ///< QUERY batches per client
  std::uint64_t seed = 12345;
};

struct ClientTotals {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t updates_total = 0;
  std::uint64_t updates_certified = 0;
  std::uint64_t repairs_incremental = 0;
  std::uint64_t repairs_full = 0;
  std::uint64_t verifies_ok = 0;
  std::uint64_t failures = 0;  ///< protocol/consistency violations
  std::vector<double> latencies_ms;
  /// Same samples split by request type (indexed by Op), for the per-op
  /// percentiles and the loadgen.latency_us.<op> registry histograms.
  std::array<std::vector<double>, kOpCount> latencies_by_op_ms;

  void merge(const ClientTotals& other) {
    requests += other.requests;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    updates_total += other.updates_total;
    updates_certified += other.updates_certified;
    repairs_incremental += other.repairs_incremental;
    repairs_full += other.repairs_full;
    verifies_ok += other.verifies_ok;
    failures += other.failures;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
    for (std::size_t op = 0; op < kOpCount; ++op) {
      latencies_by_op_ms[op].insert(latencies_by_op_ms[op].end(),
                                    other.latencies_by_op_ms[op].begin(),
                                    other.latencies_by_op_ms[op].end());
    }
  }
};

/// Sorted-percentile helper (returns 0 on an empty sample).
inline double percentile_ms(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

/// Runs one client's full workload against host:port. Throws on transport
/// failure; records consistency violations in ClientTotals::failures.
inline ClientTotals run_client(const std::string& host, std::uint16_t port,
                               std::uint32_t client_index,
                               const WorkloadOptions& options) {
  using clock = std::chrono::steady_clock;
  ClientTotals totals;
  serve::Client client(host, port);

  const std::uint64_t client_seed =
      util::mix64(options.seed, client_index + 1);
  util::Rng rng(client_seed);
  const std::uint64_t graph_id = client_index + 1;
  const serve::ComputeParams params{/*alpha=*/2, /*seed=*/client_seed};

  const auto timed = [&totals](Op op, auto&& fn) {
    const auto start = clock::now();
    auto result = fn();
    const auto stop = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    totals.latencies_ms.push_back(ms);
    totals.latencies_by_op_ms[op].push_back(ms);
    ++totals.requests;
    return result;
  };

  // LOAD: arboricity-2 graph, content distinct per client via the seed.
  graph::Graph g =
      graph::gen::union_of_random_forests(options.nodes, 2, rng);
  graph::NodeId n = g.num_nodes();
  const auto load = timed(
      kOpLoad, [&] { return client.load_inline(graph_id, n, g.edges()); });
  if (load.num_nodes != n) ++totals.failures;

  // COMPUTE xK: the first call must miss, repeats must hit and agree.
  std::uint64_t first_hash = 0;
  for (std::uint32_t i = 0; i < options.computes; ++i) {
    const auto reply = timed(
        kOpCompute, [&] { return client.compute(graph_id, params); });
    if (reply.cache_hit != 0) {
      ++totals.cache_hits;
    } else {
      ++totals.cache_misses;
    }
    if (reply.certified == 0) ++totals.failures;
    if (i == 0) {
      first_hash = reply.labels_hash;
      if (reply.cache_hit != 0) ++totals.failures;
    } else if (reply.cache_hit == 0 || reply.labels_hash != first_hash) {
      ++totals.failures;
    }
  }

  // QUERY batches over deterministic node samples.
  for (std::uint32_t q = 0; q < options.queries; ++q) {
    std::vector<graph::NodeId> nodes;
    for (std::uint32_t j = 0; j < 8; ++j) {
      nodes.push_back(static_cast<graph::NodeId>(rng.below(n)));
    }
    const auto count = nodes.size();
    const auto reply = timed(
        kOpQuery,
        [&] { return client.query(graph_id, params, std::move(nodes)); });
    if (reply.states.size() != count) ++totals.failures;
  }

  // UPDATE batches: mixed insert/remove/add-vertex/detach ops; every reply
  // must certify or the run fails loudly (mis_loadgen exits nonzero).
  for (std::uint32_t u = 0; u < options.updates; ++u) {
    std::vector<serve::EdgeUpdate> ops;
    for (std::uint32_t j = 0; j < options.ops_per_update; ++j) {
      const std::uint64_t kind = rng.below(10);
      serve::EdgeUpdate op;
      if (kind < 4) {
        op.op = serve::UpdateOp::kInsertEdge;
        op.u = static_cast<graph::NodeId>(rng.below(n));
        do {
          op.v = static_cast<graph::NodeId>(rng.below(n));
        } while (op.v == op.u);
      } else if (kind < 8) {
        op.op = serve::UpdateOp::kRemoveEdge;
        op.u = static_cast<graph::NodeId>(rng.below(n));
        do {
          op.v = static_cast<graph::NodeId>(rng.below(n));
        } while (op.v == op.u);
      } else if (kind == 8) {
        op.op = serve::UpdateOp::kAddVertex;
        ++n;  // mirror the server's id assignment
      } else {
        op.op = serve::UpdateOp::kDetachVertex;
        op.u = static_cast<graph::NodeId>(rng.below(n));
      }
      ops.push_back(op);
    }
    const auto reply = timed(
        kOpUpdate,
        [&] { return client.update(graph_id, params, std::move(ops)); });
    ++totals.updates_total;
    if (reply.certified != 0) {
      ++totals.updates_certified;
    } else {
      ++totals.failures;
    }
    if (reply.incremental != 0) {
      ++totals.repairs_incremental;
    } else {
      ++totals.repairs_full;
    }
  }

  // VERIFY must pass on the final maintained labeling.
  const auto verify =
      timed(kOpVerify, [&] { return client.verify(graph_id, params); });
  if (verify.ok != 0) {
    ++totals.verifies_ok;
  } else {
    ++totals.failures;
  }

  // STATS: exercised for protocol coverage; totals are server-wide.
  (void)timed(kOpStats, [&] { return client.stats(); });

  return totals;
}

}  // namespace arbmis::loadgen
