// Example: what the CONGEST simulator actually does, round by round.
// Runs Métivier's algorithm on a small tree with a per-round trace and a
// verbose observer, then prints the final states — useful as a first look
// at the simulator API and for debugging new algorithms.
//
//   ./congest_trace [n] [seed]
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "sim/network.h"
#include "sim/trace.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const graph::NodeId n = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 5;

  util::Rng rng(seed);
  const graph::Graph g = graph::gen::random_tree(n, rng);
  std::cout << "tree on " << n << " nodes; edges:";
  for (const graph::Edge& e : g.edges()) {
    std::cout << " " << e.u << "-" << e.v;
  }
  std::cout << "\n\n";

  mis::MetivierMis algorithm(g);
  sim::Network net(g, seed);
  sim::Trace trace;

  // Observer that narrates node decisions as they happen.
  std::vector<mis::MisState> last(n, mis::MisState::kUndecided);
  auto trace_observer = trace.observer();
  const sim::RunStats stats = net.run(
      algorithm, 1 << 16,
      [&](const sim::Network& network, std::uint32_t round) {
        trace_observer(network, round);
        for (graph::NodeId v = 0; v < n; ++v) {
          const mis::MisState now = algorithm.states()[v];
          if (now != last[v]) {
            std::cout << "  round " << round << ": node " << v
                      << (now == mis::MisState::kInMis ? " JOINS the MIS"
                                                       : " is covered")
                      << "\n";
            last[v] = now;
          }
        }
      });

  std::cout << "\nhalt progress per round:\n";
  trace.print(std::cout);

  mis::MisResult result;
  result.state = algorithm.states();
  result.stats = stats;
  std::cout << "\nrounds=" << stats.rounds << " messages=" << stats.messages
            << " (" << stats.payload_bits << " payload bits, max "
            << stats.max_edge_load << " message/edge/round)\n";
  std::cout << "MIS = {";
  bool first = true;
  for (graph::NodeId v : result.mis_nodes()) {
    std::cout << (first ? "" : ", ") << v;
    first = false;
  }
  std::cout << "}\nverified: "
            << (mis::verify(g, result).ok() ? "yes" : "NO") << "\n";
  return 0;
}
