// Example: MIS on planar graphs — the flagship bounded-arboricity family
// (planar => arboricity <= 3). Builds a random Apollonian network (maximal
// planar) and a triangulated grid, runs the full toolbox on each, and
// reports rounds/messages/MIS quality side by side.
//
//   ./planar_mis [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/arb_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/ghaffari.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "mis/sparse_mis.h"
#include "mis/verifier.h"
#include "util/table.h"

namespace {

void run_suite(const arbmis::graph::Graph& g, const std::string& name,
               std::uint64_t seed) {
  using namespace arbmis;
  const auto bounds = graph::arboricity_bounds(g);
  std::cout << name << ": n=" << g.num_nodes() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree() << " arboricity in ["
            << bounds.lower << ", " << bounds.upper << "]\n";

  const double greedy_size =
      static_cast<double>(mis::greedy_mis(g).mis_size());

  util::Table table({"algorithm", "rounds", "messages", "mis_size",
                     "vs_greedy", "verified"});
  table.set_double_precision(3);
  auto report = [&](const std::string& algorithm,
                    const mis::MisResult& result) {
    table.row()
        .cell(algorithm)
        .cell(std::uint64_t{result.stats.rounds})
        .cell(result.stats.messages)
        .cell(result.mis_size())
        .cell(static_cast<double>(result.mis_size()) / greedy_size)
        .cell(mis::verify(g, result).ok() ? "yes" : "NO");
  };

  report("arb_mis (paper)", core::arb_mis(g, {.alpha = 3}, seed).mis);
  report("sparse_mis (Lemma 3.8)",
         mis::sparse_mis(g, {.alpha = 3}, seed).mis);
  report("metivier", mis::MetivierMis::run(g, seed + 1));
  report("luby_b", mis::LubyBMis::run(g, seed + 2));
  report("ghaffari", mis::GhaffariMis::run(g, seed + 3));
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arbmis;
  const graph::NodeId n = argc > 1 ? std::atoi(argv[1]) : 8000;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 7;

  util::Rng rng(seed);
  run_suite(graph::gen::random_apollonian(n, rng), "random Apollonian",
            seed);
  const auto side = static_cast<graph::NodeId>(std::sqrt(double(n)));
  run_suite(graph::gen::triangular_grid(side, side), "triangulated grid",
            seed);
  return 0;
}
