// Quickstart: build a bounded-arboricity graph, run the paper's ArbMIS
// pipeline on the CONGEST simulator, verify the result, and compare with
// the classic baselines.
//
//   ./quickstart [n] [alpha] [seed]
#include <cstdlib>
#include <iostream>

#include "core/arb_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace arbmis;

  const graph::NodeId n = argc > 1 ? std::atoi(argv[1]) : 5000;
  const graph::NodeId alpha = argc > 2 ? std::atoi(argv[2]) : 2;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  // 1. A random graph of arboricity <= alpha with high-degree hubs — the
  // regime the paper targets (large independent sets inside
  // neighborhoods, bounded arboricity).
  util::Rng rng(seed);
  const graph::Graph g = graph::gen::hubbed_forest_union(n, alpha, 8, rng);
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree()
            << " degeneracy=" << graph::degeneracy(g) << "\n\n";

  // 2. The paper's pipeline: BoundedArbIndependentSet + finishing stages.
  const core::ArbMisResult pipeline = core::arb_mis(g, {.alpha = alpha}, seed);
  const mis::Verification check = mis::verify(g, pipeline.mis);
  std::cout << "ArbMIS: mis_size=" << pipeline.mis.mis_size()
            << " rounds=" << pipeline.mis.stats.rounds
            << " verified=" << (check.ok() ? "yes" : "NO") << "\n";
  std::cout << "  shattering: scales=" << pipeline.params.num_scales
            << " iterations/scale=" << pipeline.params.iterations_per_scale
            << " bad_nodes=" << pipeline.bad_size
            << " largest_bad_component="
            << pipeline.bad_components.largest_component << "\n\n";

  // 3. Baselines on the same graph.
  util::Table table({"algorithm", "mis_size", "rounds", "messages"});
  const auto metivier = mis::MetivierMis::run(g, seed + 1);
  const auto luby = mis::LubyBMis::run(g, seed + 2);
  table.row().cell("arb_mis (paper)").cell(pipeline.mis.mis_size())
      .cell(std::uint64_t{pipeline.mis.stats.rounds})
      .cell(pipeline.mis.stats.messages);
  table.row().cell("metivier").cell(metivier.mis_size())
      .cell(std::uint64_t{metivier.stats.rounds}).cell(metivier.stats.messages);
  table.row().cell("luby_b").cell(luby.mis_size())
      .cell(std::uint64_t{luby.stats.rounds}).cell(luby.stats.messages);
  table.print(std::cout);

  return check.ok() ? 0 : 1;
}
