// Example: watching BoundedArbIndependentSet shatter a graph, scale by
// scale. Attaches the Invariant auditor and prints per-scale progress —
// how many nodes join I, get covered, go bad, and how the high-degree
// neighborhood invariant tightens.
//
//   ./shattering_demo [n] [alpha] [hubs] [seed]
#include <cstdlib>
#include <iostream>

#include "core/bounded_arb.h"
#include "core/invariant.h"
#include "core/shattering.h"
#include "graph/generators.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const graph::NodeId n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const graph::NodeId alpha = argc > 2 ? std::atoi(argv[2]) : 2;
  const graph::NodeId hubs = argc > 3 ? std::atoi(argv[3]) : 8;
  const std::uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 3;

  util::Rng rng(seed);
  const graph::Graph g = graph::gen::hubbed_forest_union(n, alpha, hubs, rng);
  const core::Params params = core::Params::practical(alpha, g.max_degree());

  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree() << "\n";
  std::cout << "params: scales=" << params.num_scales
            << " iterations/scale=" << params.iterations_per_scale
            << " rho_1=" << params.rho(1)
            << " residual_cut=" << params.residual_degree_cut() << "\n\n";

  core::BoundedArbIndependentSet algorithm(g, params);
  core::InvariantAuditor auditor(g, algorithm);
  sim::Network net(g, seed);
  const sim::RunStats stats =
      net.run(algorithm, params.total_rounds(), auditor.observer());

  core::BoundedArbIndependentSet::Result result;
  result.outcome = algorithm.outcomes();
  result.scale_stats = algorithm.scale_stats();

  util::Table scales({"scale", "high_deg_threshold", "bad_threshold",
                      "joined", "covered", "bad", "active_after",
                      "max_high_neighbors(audit)", "invariant"});
  for (std::size_t i = 0; i < result.scale_stats.size(); ++i) {
    const auto& s = result.scale_stats[i];
    const auto* audit = i < auditor.audits().size()
                            ? &auditor.audits()[i]
                            : nullptr;
    scales.row()
        .cell(std::uint64_t{s.scale})
        .cell(params.high_degree_threshold(s.scale))
        .cell(params.bad_threshold(s.scale))
        .cell(s.joined)
        .cell(s.covered)
        .cell(s.bad)
        .cell(s.active_after)
        .cell(audit ? std::to_string(audit->max_high_degree_neighbors)
                    : std::string("-"))
        .cell(audit ? (audit->violations == 0 ? "holds" : "VIOLATED")
                    : std::string("-"));
  }
  scales.print(std::cout);

  std::cout << "\ntotals: rounds=" << stats.rounds
            << " messages=" << stats.messages << " I="
            << result.count(core::ArbOutcome::kInMis)
            << " covered=" << result.count(core::ArbOutcome::kCovered)
            << " bad=" << result.count(core::ArbOutcome::kBad)
            << " remaining=" << result.count(core::ArbOutcome::kRemaining)
            << "\n";

  const core::ShatteringStats bad_stats =
      core::shattering_stats(g, result.bad_mask());
  if (bad_stats.set_size > 0) {
    std::cout << "bad set: " << bad_stats.set_size << " nodes in "
              << bad_stats.num_components << " components, largest "
              << bad_stats.largest_component << " (Lemma 3.7 scale: log_D n="
              << bad_stats.log_delta_n << ")\n";
  } else {
    std::cout << "bad set: empty — every scale satisfied the Invariant "
                 "outright (Theorem 3.6 with room to spare)\n";
  }
  return 0;
}
