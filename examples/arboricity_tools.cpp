// Example/tool: everything this library knows about arboricity — the
// paper's key parameter — for a given graph. Reads an edge-list file or
// generates a named workload, then prints the full certificate chain:
// density lower bound, degeneracy upper bound, exact pseudoarboricity
// (max-flow), exact arboricity with a forest-partition certificate
// (matroid union, for graphs that fit), and orientation statistics.
//
//   ./arboricity_tools <file.txt>
//   ./arboricity_tools gen <family> <n> [seed]    (family: tree, planar,
//                      arb2, arb4, powerlaw, gnp, complete)
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/arboricity_exact.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/orientation.h"
#include "graph/orientation_opt.h"
#include "graph/properties.h"

namespace {

arbmis::graph::Graph make(const std::string& family, arbmis::graph::NodeId n,
                          arbmis::util::Rng& rng) {
  using namespace arbmis::graph;
  if (family == "tree") return gen::random_tree(n, rng);
  if (family == "planar") return gen::random_apollonian(n, rng);
  if (family == "arb2") return gen::union_of_random_forests(n, 2, rng);
  if (family == "arb4") return gen::union_of_random_forests(n, 4, rng);
  if (family == "powerlaw") return gen::chung_lu_power_law(n, 2.5, 6.0, rng);
  if (family == "gnp") return gen::gnp(n, 8.0 / double(n), rng);
  if (family == "complete") return gen::complete(n);
  throw std::invalid_argument("unknown family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace arbmis;
  graph::Graph g(0);
  if (argc >= 2 && std::string(argv[1]) == "gen") {
    const std::string family = argc > 2 ? argv[2] : "planar";
    const graph::NodeId n = argc > 3 ? std::atoi(argv[3]) : 500;
    util::Rng rng(argc > 4 ? std::atoll(argv[4]) : 1);
    g = make(family, n, rng);
    std::cout << "generated " << family << " n=" << n << "\n";
  } else if (argc >= 2) {
    g = graph::load_graph(argv[1]);
    std::cout << "loaded " << argv[1] << "\n";
  } else {
    util::Rng rng(1);
    g = graph::gen::random_apollonian(500, rng);
    std::cout << "no input given — using a 500-node random Apollonian "
                 "network (see --help in the header comment)\n";
  }

  std::cout << "n = " << g.num_nodes() << ", m = " << g.num_edges()
            << ", max degree = " << g.max_degree() << "\n\n";

  // Cheap bounds.
  const graph::ArboricityBounds basic = graph::arboricity_bounds(g);
  std::cout << "density lower bound  ceil(m/(n-1)) = " << basic.lower << "\n";
  std::cout << "degeneracy (<= 2*arboricity - 1)   = " << basic.upper << "\n";

  // Exact pseudoarboricity + optimal orientation.
  const graph::NodeId p = graph::pseudoarboricity(g);
  std::cout << "pseudoarboricity (max-flow exact)  = " << p
            << "   [p <= arboricity <= p+1]\n";
  const graph::Orientation optimal = graph::min_outdegree_orientation(g);
  const graph::Orientation greedy = graph::degeneracy_orientation(g);
  std::cout << "orientation out-degree: optimal = " << optimal.max_out_degree()
            << ", degeneracy-greedy = " << greedy.max_out_degree() << "\n";

  // Exact arboricity (matroid union) on graphs that fit.
  if (g.num_edges() <= 20000) {
    const graph::ArboricityCertificate certificate =
        graph::exact_arboricity_certified(g);
    std::cout << "exact arboricity (matroid union)   = "
              << certificate.arboricity << " (certified by a partition into "
              << certificate.forests.num_forests() << " forests, valid = "
              << (graph::valid_forest_partition(g, certificate.forests)
                      ? "yes"
                      : "NO")
              << ")\n";
  } else {
    std::cout << "exact arboricity: skipped (m > 20000; the matroid-union "
                 "oracle is polynomial but untuned)\n";
  }
  return 0;
}
