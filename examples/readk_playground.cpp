// Example: the read-k inequalities, hands on. Builds the paper's
// dependency structures on a real oriented graph, estimates the event
// probabilities by Monte Carlo, and prints them against Theorems 1.1/1.2
// and the (wrong-for-correlated-data) independent-case bounds — the
// paper's §1.1 message as an interactive demo.
//
//   ./readk_playground [n] [alpha] [trials] [seed]
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/properties.h"
#include "readk/bounds.h"
#include "readk/events.h"
#include "readk/family.h"
#include "readk/montecarlo.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace arbmis;
  const graph::NodeId n = argc > 1 ? std::atoi(argv[1]) : 2000;
  const graph::NodeId alpha = argc > 2 ? std::atoi(argv[2]) : 2;
  const std::uint64_t trials = argc > 3 ? std::atoll(argv[3]) : 20000;
  const std::uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 1;

  util::Rng rng(seed);
  const graph::Graph g = graph::gen::union_of_random_forests(n, alpha, rng);
  const graph::Orientation orientation = graph::degeneracy_orientation(g);
  const graph::NodeId alpha_cert = orientation.max_out_degree();

  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << ", orientation out-degree (alpha certificate) = "
            << alpha_cert << "\n\n";

  // 1. How correlated is the child-max family? Compare its conjunction
  //    probability with what independence would predict.
  std::cout << "[1] conjunction of 'v loses to a child' across an "
               "independent member set\n";
  const auto members = readk::nodes_with_children(orientation);
  const readk::ReadKFamily family =
      readk::child_max_family(orientation, members);
  util::Rng mc_rng(seed + 1);
  const readk::ConjunctionEstimate conjunction =
      readk::estimate_conjunction(family, trials, mc_rng);
  std::cout << "  family: " << family.num_indicators()
            << " indicators over " << family.num_base()
            << " priorities, read-k = " << family.read_k() << "\n";
  std::cout << "  mean P(Y_j = 1) = " << conjunction.mean_indicator << "\n";
  std::cout << "  empirical P(all lose) = " << conjunction.probability
            << "\n";
  std::cout << "  Theorem 1.1 bound    = "
            << readk::conjunction_bound(conjunction.mean_indicator,
                                        family.num_indicators(),
                                        family.read_k())
            << "\n";
  std::cout << "  independent p^n      = "
            << readk::independent_conjunction(conjunction.mean_indicator,
                                              family.num_indicators())
            << "  <- what a naive analysis would claim\n\n";

  // 2. The three events of §3.1 on this graph.
  std::cout << "[2] the paper's three events (Figure 1)\n";
  util::Table events({"event", "empirical_P", "paper_bound", "mean_metric"});
  events.set_double_precision(4);
  util::Rng e_rng(seed + 2);
  const auto parents_members = readk::nodes_with_parents(orientation);
  const readk::EventEstimate e1 = readk::estimate_event1(
      g, orientation, members, alpha_cert, trials / 4, e_rng);
  const readk::EventEstimate e2 = readk::estimate_event2(
      g, orientation, parents_members, alpha_cert, trials / 4, e_rng);
  std::vector<graph::NodeId> high_degree;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 2) high_degree.push_back(v);
  }
  const readk::EventEstimate e3 = readk::estimate_event3(
      g, high_degree, alpha_cert, trials / 4, e_rng);
  events.row().cell("1: some member beats children").cell(e1.probability)
      .cell(e1.paper_bound).cell(e1.mean_metric);
  events.row().cell("2: >|M|/2a beat parents").cell(e2.probability)
      .cell(e2.paper_bound).cell(e2.mean_metric);
  events.row().cell("3: elimination fraction").cell(e3.probability)
      .cell(e3.paper_bound).cell(e3.mean_metric);
  events.print(std::cout);

  // 3. Tail comparison: correlated blocks break Chernoff, obey read-k.
  std::cout << "\n[3] lower tail of a correlated (read-8) block family vs "
               "bounds\n";
  const readk::ReadKFamily blocks = readk::shared_block_family(64, 8, 0.5);
  const std::vector<double> deltas{0.5};
  util::Rng t_rng(seed + 3);
  const readk::TailEstimate tail =
      readk::estimate_lower_tail(blocks, trials, deltas, t_rng);
  std::cout << "  E[Y] = " << tail.expected_sum << ", P(Y <= E[Y]/2):\n";
  std::cout << "    empirical        = " << tail.points[0].probability
            << "\n";
  std::cout << "    read-8 bound     = "
            << readk::lower_tail_form2(0.5, tail.expected_sum, 8) << "\n";
  std::cout << "    Chernoff (k = 1) = "
            << readk::chernoff_lower_tail(0.5, tail.expected_sum)
            << "  <- violated by the correlated family\n";
  return 0;
}
