#!/bin/bash
# Final deliverable artifacts: full test log + full bench log.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
for b in build/bench/*; do
  if [ -x "$b" ] && [ ! -d "$b" ]; then "$b"; fi
done 2>&1 | tee /root/repo/bench_output.txt | tail -3
echo FINAL_OUTPUTS_DONE
