// Tests for the full ArbMIS pipeline (the paper's Algorithm 2).
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "graph/generators.h"
#include "mis/verifier.h"

namespace arbmis::core {
namespace {

using Param = std::tuple<graph::NodeId, std::uint64_t>;

class ArbMisSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ArbMisSweep, ProducesVerifiedMisOnForestUnions) {
  const auto [alpha, seed] = GetParam();
  util::Rng rng(seed);
  const graph::Graph g =
      graph::gen::union_of_random_forests(700, alpha, rng);
  ArbMisOptions options;
  options.alpha = alpha;
  const ArbMisResult result = arb_mis(g, options, seed);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_FALSE(result.cleanup_used);
  // Stage sizes partition the shattering leftovers.
  EXPECT_EQ(result.vlo_size + result.vhi_size,
            std::count(result.shatter_outcome.begin(),
                       result.shatter_outcome.end(), ArbOutcome::kRemaining));
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSeeds, ArbMisSweep,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(3, 88, 2025)));

TEST(ArbMis, WorksOnTrees) {
  util::Rng rng(41);
  const graph::Graph t = graph::gen::random_tree(800, rng);
  const ArbMisResult result = arb_mis(t, {.alpha = 1}, 7);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
}

TEST(ArbMis, WorksOnPlanar) {
  util::Rng rng(43);
  const graph::Graph g = graph::gen::random_apollonian(600, rng);
  const ArbMisResult result = arb_mis(g, {.alpha = 3}, 11);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
}

TEST(ArbMis, WorksOnTinyAndDegenerateInputs) {
  for (graph::NodeId n : {0u, 1u, 2u, 5u}) {
    const graph::Graph g = graph::gen::path(n);
    const ArbMisResult result = arb_mis(g, {.alpha = 1}, 1);
    EXPECT_TRUE(mis::verify(g, result.mis).ok()) << "n=" << n;
  }
  const graph::Graph isolated = graph::Builder(6).build();
  EXPECT_TRUE(mis::verify(isolated, arb_mis(isolated, {.alpha = 1}, 1).mis).ok());
}

TEST(ArbMis, PaperFaithfulParamsDegenerateButCorrect) {
  // With the printed constants Θ = 0, so the whole graph flows to the
  // finishing stage — still a correct MIS, just no shattering.
  util::Rng rng(47);
  const graph::Graph g = graph::gen::union_of_random_forests(300, 2, rng);
  ArbMisOptions options;
  options.alpha = 2;
  options.paper_faithful_params = true;
  const ArbMisResult result = arb_mis(g, options, 3);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_EQ(result.params.num_scales, 0u);
  EXPECT_EQ(result.bad_size, 0u);
}

TEST(ArbMis, DegreeReductionPathVerifies) {
  util::Rng rng(53);
  const graph::Graph g = graph::gen::union_of_random_forests(600, 2, rng);
  ArbMisOptions options;
  options.alpha = 2;
  options.degree_reduction = true;
  const ArbMisResult result = arb_mis(g, options, 5);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_GT(result.reduction_stats.rounds, 0u);
}

TEST(ArbMis, AllFinisherChoicesVerify) {
  util::Rng rng(59);
  const graph::Graph g = graph::gen::union_of_random_forests(400, 2, rng);
  for (Finisher finisher : {Finisher::kMetivier, Finisher::kLinial,
                            Finisher::kElection, Finisher::kSparse,
                            Finisher::kGather}) {
    ArbMisOptions options;
    options.alpha = 2;
    options.low_finisher = finisher;
    options.high_finisher = finisher;
    options.bad_finisher = finisher;
    const ArbMisResult result = arb_mis(g, options, 13);
    EXPECT_TRUE(mis::verify(g, result.mis).ok())
        << "finisher " << static_cast<int>(finisher);
  }
}

TEST(ArbMis, StatsAreAdditive) {
  util::Rng rng(61);
  const graph::Graph g = graph::gen::union_of_random_forests(500, 2, rng);
  const ArbMisResult result = arb_mis(g, {.alpha = 2}, 17);
  EXPECT_EQ(result.mis.stats.rounds,
            result.reduction_stats.rounds + result.shatter_stats.rounds +
                result.low_stats.rounds + result.high_stats.rounds +
                result.bad_stats.rounds);
}

TEST(ArbMis, DeterministicGivenSeed) {
  util::Rng rng(67);
  const graph::Graph g = graph::gen::union_of_random_forests(300, 2, rng);
  const ArbMisResult a = arb_mis(g, {.alpha = 2}, 23);
  const ArbMisResult b = arb_mis(g, {.alpha = 2}, 23);
  EXPECT_EQ(a.mis.state, b.mis.state);
  EXPECT_EQ(a.mis.stats.rounds, b.mis.stats.rounds);
}

TEST(ArbMis, BadComponentStatsPopulated) {
  util::Rng rng(71);
  const graph::Graph g = graph::gen::union_of_random_forests(1500, 3, rng);
  const ArbMisResult result = arb_mis(g, {.alpha = 3}, 29);
  EXPECT_EQ(result.bad_components.set_size, result.bad_size);
  if (result.bad_size > 0) {
    EXPECT_GT(result.bad_components.num_components, 0u);
    EXPECT_GE(result.bad_components.largest_component, 1u);
  }
}

TEST(ArbMis, InvariantAuditOption) {
  util::Rng rng(79);
  const graph::Graph g = graph::gen::hubbed_forest_union(2000, 2, 4, rng);
  ArbMisOptions options;
  options.alpha = 2;
  options.audit_invariant = true;
  const ArbMisResult result = arb_mis(g, options, 37);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_TRUE(result.invariant_held);
  // One audit per executed scale (the run can end early if everyone is
  // decided before the last scale).
  EXPECT_LE(result.invariant_audits.size(), result.params.num_scales);
  for (const auto& audit : result.invariant_audits) {
    EXPECT_EQ(audit.violations, 0u) << "scale " << audit.scale;
  }
  // The audited and unaudited runs agree bit-for-bit.
  ArbMisOptions plain = options;
  plain.audit_invariant = false;
  const ArbMisResult reference = arb_mis(g, plain, 37);
  EXPECT_EQ(result.mis.state, reference.mis.state);
}

TEST(ArbMis, GnpControlStillCorrect) {
  // Unbounded-arboricity input: no claims about speed, but the pipeline
  // must remain correct (α is just a parameter hint).
  util::Rng rng(73);
  const graph::Graph g = graph::gen::gnp(300, 0.05, rng);
  const ArbMisResult result = arb_mis(g, {.alpha = 4}, 31);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
}

}  // namespace
}  // namespace arbmis::core
