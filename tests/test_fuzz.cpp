// Randomized property tests ("fuzz"): differential checks of the graph
// substrate against naive reference implementations, and end-to-end
// pipeline runs on randomly generated structures.
#include <gtest/gtest.h>

#include <set>

#include "core/arb_mis.h"
#include "fault/adversary.h"
#include "fault/resilient_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/subgraph.h"
#include "mis/matching.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "sim/network.h"
#include "util/rng.h"

namespace arbmis {
namespace {

/// Random simple graph as a set of edges (reference representation).
std::set<std::pair<graph::NodeId, graph::NodeId>> random_edge_set(
    graph::NodeId n, std::uint64_t edge_attempts, util::Rng& rng) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (std::uint64_t i = 0; i < edge_attempts; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  return edges;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, BuilderMatchesReferenceEdgeSet) {
  util::Rng rng(GetParam());
  const graph::NodeId n = 2 + static_cast<graph::NodeId>(rng.below(60));
  const auto reference = random_edge_set(n, 3 * n, rng);

  graph::Builder builder(n);
  // Insert in scrambled order with duplicates.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> inserts(
      reference.begin(), reference.end());
  for (const auto& e : inserts) builder.add_edge(e.second, e.first);
  for (std::size_t i = 0; i < inserts.size(); i += 2) {
    builder.add_edge(inserts[i].first, inserts[i].second);  // duplicate
  }
  const graph::Graph g = builder.build();

  EXPECT_EQ(g.num_edges(), reference.size());
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      EXPECT_EQ(g.has_edge(u, v), reference.count({u, v}) > 0)
          << u << "-" << v;
    }
  }
  // Degrees match reference counts.
  for (graph::NodeId v = 0; v < n; ++v) {
    graph::NodeId expected = 0;
    for (const auto& e : reference) {
      expected += (e.first == v || e.second == v);
    }
    EXPECT_EQ(g.degree(v), expected);
  }
}

TEST_P(Fuzz, DegeneracyMatchesBruteForceOnSmallGraphs) {
  util::Rng rng(GetParam() + 100);
  const graph::NodeId n = 2 + static_cast<graph::NodeId>(rng.below(14));
  const auto reference = random_edge_set(n, 2 * n, rng);
  graph::Builder builder(n);
  for (const auto& e : reference) builder.add_edge(e.first, e.second);
  const graph::Graph g = builder.build();

  // Brute-force degeneracy: repeatedly remove a minimum-degree node.
  std::vector<bool> removed(n, false);
  std::vector<graph::NodeId> degree(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) degree[v] = g.degree(v);
  graph::NodeId reference_degeneracy = 0;
  for (graph::NodeId step = 0; step < n; ++step) {
    graph::NodeId best = graph::kUnreachable;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!removed[v] &&
          (best == graph::kUnreachable || degree[v] < degree[best])) {
        best = v;
      }
    }
    reference_degeneracy = std::max(reference_degeneracy, degree[best]);
    removed[best] = true;
    for (graph::NodeId w : g.neighbors(best)) {
      if (!removed[w]) --degree[w];
    }
  }
  EXPECT_EQ(graph::degeneracy(g), reference_degeneracy);
}

TEST_P(Fuzz, SubgraphOfSubgraphConsistent) {
  util::Rng rng(GetParam() + 200);
  const graph::Graph g = graph::gen::gnp(50, 0.15, rng);
  std::vector<std::uint8_t> mask1(50, 0);
  for (auto& b : mask1) b = rng.bernoulli(0.7) ? 1 : 0;
  const graph::Subgraph sub1 = graph::induced_subgraph(g, mask1);
  std::vector<std::uint8_t> mask2(sub1.graph.num_nodes(), 0);
  for (auto& b : mask2) b = rng.bernoulli(0.7) ? 1 : 0;
  const graph::Subgraph sub2 = graph::induced_subgraph(sub1.graph, mask2);
  // Edges of the nested subgraph are edges of the original graph.
  for (const graph::Edge& e : sub2.graph.edges()) {
    const graph::NodeId u = sub1.original(sub2.original(e.u));
    const graph::NodeId v = sub1.original(sub2.original(e.v));
    EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST_P(Fuzz, PipelineOnRandomStructures) {
  util::Rng rng(GetParam() + 300);
  // Random graph; alpha hint derived from its actual degeneracy.
  const graph::NodeId n = 100 + static_cast<graph::NodeId>(rng.below(400));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(4));
  const graph::Graph g = graph::gen::gnp(n, p, rng);
  const graph::NodeId alpha = std::max<graph::NodeId>(
      graph::degeneracy(g), 1);
  const core::ArbMisResult result =
      core::arb_mis(g, {.alpha = alpha}, GetParam());
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_FALSE(result.cleanup_used);
}

TEST_P(Fuzz, PipelineUnderRandomThreadCount) {
  // Randomized-schedule fuzz for the parallel round executor: a random
  // graph run with a random worker count must still produce a verified
  // MIS with the Invariant holding at every scale end — and must agree
  // exactly with the serial run, whatever the OS made of the schedule.
  util::Rng rng(GetParam() + 500);
  const graph::NodeId n = 80 + static_cast<graph::NodeId>(rng.below(300));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(3));
  const graph::Graph g = graph::gen::gnp(n, p, rng);
  const graph::NodeId alpha =
      std::max<graph::NodeId>(graph::degeneracy(g), 1);
  const std::uint32_t threads = 1 + static_cast<std::uint32_t>(rng.below(8));

  const core::ArbMisResult serial =
      core::arb_mis(g, {.alpha = alpha, .audit_invariant = true}, GetParam());
  core::ArbMisResult parallel;
  {
    const sim::ScopedNumThreads scoped(threads);
    parallel = core::arb_mis(g, {.alpha = alpha, .audit_invariant = true},
                             GetParam());
  }
  EXPECT_TRUE(mis::verify(g, parallel.mis).ok()) << "threads=" << threads;
  EXPECT_TRUE(parallel.invariant_held) << "threads=" << threads;
  EXPECT_EQ(serial.mis.state, parallel.mis.state) << "threads=" << threads;
  EXPECT_EQ(serial.mis.stats.rounds, parallel.mis.stats.rounds)
      << "threads=" << threads;
  EXPECT_EQ(serial.mis.stats.messages, parallel.mis.stats.messages)
      << "threads=" << threads;
}

TEST_P(Fuzz, ResilientMisSurvivesRandomAdversaries) {
  // Random-adversary fuzz for the fault subsystem: draw adversary
  // parameters (drop/duplicate/crash rates, recovery delay, adversary
  // family) from the seed, run the resilient driver, and assert the
  // safety property the subsystem exists for — a certified output is a
  // true MIS (independent, maximal, label-consistent) no matter what the
  // adversary did. Certification itself must always be reached because
  // the fault-free safety net kicks in after `fault_free_after` attempts.
  util::Rng rng(GetParam() + 600);
  const graph::NodeId n = 60 + static_cast<graph::NodeId>(rng.below(140));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(3));
  const graph::Graph g = graph::gen::gnp(n, p, rng);

  const double drop = rng.uniform01() * 0.6;
  const double dup = rng.uniform01() * 0.3;
  const double crash = rng.uniform01() * 0.05;
  const std::uint32_t delay = static_cast<std::uint32_t>(rng.below(4));

  fault::ResilientOptions options;
  options.max_rounds_per_attempt = 2048;
  fault::ResilientResult result;
  if (rng.bernoulli(0.5)) {
    fault::IidAdversary adversary({.drop_rate = drop,
                                   .duplicate_rate = dup,
                                   .crash_rate = crash,
                                   .recovery_delay = delay});
    result = fault::resilient_mis(g, GetParam(), adversary,
                                  fault::algorithm_driver<mis::MetivierMis>(),
                                  options);
  } else {
    fault::BurstyAdversary adversary({.base_drop_rate = drop / 4.0,
                                      .burst_drop_rate = drop,
                                      .period = 6,
                                      .burst_rounds = 2,
                                      .duplicate_rate = dup,
                                      .crash_rate = crash,
                                      .recovery_delay = delay});
    result = fault::resilient_mis(g, GetParam(), adversary,
                                  fault::shatter_driver(2), options);
  }

  ASSERT_TRUE(result.certified)
      << "drop=" << drop << " dup=" << dup << " crash=" << crash;
  mis::MisResult as_result;
  as_result.state = result.state;
  const mis::Verification verdict = mis::verify(g, as_result);
  EXPECT_TRUE(verdict.independent) << "certified output not independent";
  EXPECT_TRUE(verdict.maximal) << "certified output not maximal";
}

TEST_P(Fuzz, MisAndMatchingCoexistOnSameGraph) {
  util::Rng rng(GetParam() + 400);
  const graph::Graph g = graph::gen::k_degenerate(300, 3, rng);
  EXPECT_TRUE(
      mis::verify(g, mis::MetivierMis::run(g, GetParam())).ok());
  EXPECT_TRUE(mis::verify_maximal_matching(
      g, mis::IsraeliItaiMatching::run(g, GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace arbmis
