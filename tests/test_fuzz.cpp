// Randomized property tests ("fuzz"): differential checks of the graph
// substrate against naive reference implementations, and end-to-end
// pipeline runs on randomly generated structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/arb_mis.h"
#include "engine/engine.h"
#include "fault/adversary.h"
#include "fault/resilient_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "fault/fault_plan.h"
#include "graph/storage/convert.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"
#include "graph/subgraph.h"
#include "mis/luby.h"
#include "mis/matching.h"
#include "mis/metivier.h"
#include "mis/verifier.h"
#include "sim/network.h"
#include "util/rng.h"

namespace arbmis {
namespace {

/// Random simple graph as a set of edges (reference representation).
std::set<std::pair<graph::NodeId, graph::NodeId>> random_edge_set(
    graph::NodeId n, std::uint64_t edge_attempts, util::Rng& rng) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (std::uint64_t i = 0; i < edge_attempts; ++i) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  return edges;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, BuilderMatchesReferenceEdgeSet) {
  util::Rng rng(GetParam());
  const graph::NodeId n = 2 + static_cast<graph::NodeId>(rng.below(60));
  const auto reference = random_edge_set(n, 3 * n, rng);

  graph::Builder builder(n);
  // Insert in scrambled order with duplicates.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> inserts(
      reference.begin(), reference.end());
  for (const auto& e : inserts) builder.add_edge(e.second, e.first);
  for (std::size_t i = 0; i < inserts.size(); i += 2) {
    builder.add_edge(inserts[i].first, inserts[i].second);  // duplicate
  }
  const graph::Graph g = builder.build();

  EXPECT_EQ(g.num_edges(), reference.size());
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      EXPECT_EQ(g.has_edge(u, v), reference.count({u, v}) > 0)
          << u << "-" << v;
    }
  }
  // Degrees match reference counts.
  for (graph::NodeId v = 0; v < n; ++v) {
    graph::NodeId expected = 0;
    for (const auto& e : reference) {
      expected += (e.first == v || e.second == v);
    }
    EXPECT_EQ(g.degree(v), expected);
  }
}

TEST_P(Fuzz, DegeneracyMatchesBruteForceOnSmallGraphs) {
  util::Rng rng(GetParam() + 100);
  const graph::NodeId n = 2 + static_cast<graph::NodeId>(rng.below(14));
  const auto reference = random_edge_set(n, 2 * n, rng);
  graph::Builder builder(n);
  for (const auto& e : reference) builder.add_edge(e.first, e.second);
  const graph::Graph g = builder.build();

  // Brute-force degeneracy: repeatedly remove a minimum-degree node.
  std::vector<bool> removed(n, false);
  std::vector<graph::NodeId> degree(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) degree[v] = g.degree(v);
  graph::NodeId reference_degeneracy = 0;
  for (graph::NodeId step = 0; step < n; ++step) {
    graph::NodeId best = graph::kUnreachable;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!removed[v] &&
          (best == graph::kUnreachable || degree[v] < degree[best])) {
        best = v;
      }
    }
    reference_degeneracy = std::max(reference_degeneracy, degree[best]);
    removed[best] = true;
    for (graph::NodeId w : g.neighbors(best)) {
      if (!removed[w]) --degree[w];
    }
  }
  EXPECT_EQ(graph::degeneracy(g), reference_degeneracy);
}

TEST_P(Fuzz, SubgraphOfSubgraphConsistent) {
  util::Rng rng(GetParam() + 200);
  const graph::Graph g = graph::gen::gnp(50, 0.15, rng);
  std::vector<std::uint8_t> mask1(50, 0);
  for (auto& b : mask1) b = rng.bernoulli(0.7) ? 1 : 0;
  const graph::Subgraph sub1 = graph::induced_subgraph(g, mask1);
  std::vector<std::uint8_t> mask2(sub1.graph.num_nodes(), 0);
  for (auto& b : mask2) b = rng.bernoulli(0.7) ? 1 : 0;
  const graph::Subgraph sub2 = graph::induced_subgraph(sub1.graph, mask2);
  // Edges of the nested subgraph are edges of the original graph.
  for (const graph::Edge& e : sub2.graph.edges()) {
    const graph::NodeId u = sub1.original(sub2.original(e.u));
    const graph::NodeId v = sub1.original(sub2.original(e.v));
    EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST_P(Fuzz, PipelineOnRandomStructures) {
  util::Rng rng(GetParam() + 300);
  // Random graph; alpha hint derived from its actual degeneracy.
  const graph::NodeId n = 100 + static_cast<graph::NodeId>(rng.below(400));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(4));
  const graph::Graph g = graph::gen::gnp(n, p, rng);
  const graph::NodeId alpha = std::max<graph::NodeId>(
      graph::degeneracy(g), 1);
  const core::ArbMisResult result =
      core::arb_mis(g, {.alpha = alpha}, GetParam());
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_FALSE(result.cleanup_used);
}

TEST_P(Fuzz, PipelineUnderRandomThreadCount) {
  // Randomized-schedule fuzz for the parallel round executor: a random
  // graph run with a random worker count must still produce a verified
  // MIS with the Invariant holding at every scale end — and must agree
  // exactly with the serial run, whatever the OS made of the schedule.
  util::Rng rng(GetParam() + 500);
  const graph::NodeId n = 80 + static_cast<graph::NodeId>(rng.below(300));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(3));
  const graph::Graph g = graph::gen::gnp(n, p, rng);
  const graph::NodeId alpha =
      std::max<graph::NodeId>(graph::degeneracy(g), 1);
  const std::uint32_t threads = 1 + static_cast<std::uint32_t>(rng.below(8));

  const core::ArbMisResult serial =
      core::arb_mis(g, {.alpha = alpha, .audit_invariant = true}, GetParam());
  core::ArbMisResult parallel;
  {
    const sim::ScopedNumThreads scoped(threads);
    parallel = core::arb_mis(g, {.alpha = alpha, .audit_invariant = true},
                             GetParam());
  }
  EXPECT_TRUE(mis::verify(g, parallel.mis).ok()) << "threads=" << threads;
  EXPECT_TRUE(parallel.invariant_held) << "threads=" << threads;
  EXPECT_EQ(serial.mis.state, parallel.mis.state) << "threads=" << threads;
  EXPECT_EQ(serial.mis.stats.rounds, parallel.mis.stats.rounds)
      << "threads=" << threads;
  EXPECT_EQ(serial.mis.stats.messages, parallel.mis.stats.messages)
      << "threads=" << threads;
}

TEST_P(Fuzz, ResilientMisSurvivesRandomAdversaries) {
  // Random-adversary fuzz for the fault subsystem: draw adversary
  // parameters (drop/duplicate/crash rates, recovery delay, adversary
  // family) from the seed, run the resilient driver, and assert the
  // safety property the subsystem exists for — a certified output is a
  // true MIS (independent, maximal, label-consistent) no matter what the
  // adversary did. Certification itself must always be reached because
  // the fault-free safety net kicks in after `fault_free_after` attempts.
  util::Rng rng(GetParam() + 600);
  const graph::NodeId n = 60 + static_cast<graph::NodeId>(rng.below(140));
  const double p =
      2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(3));
  const graph::Graph g = graph::gen::gnp(n, p, rng);

  const double drop = rng.uniform01() * 0.6;
  const double dup = rng.uniform01() * 0.3;
  const double crash = rng.uniform01() * 0.05;
  const std::uint32_t delay = static_cast<std::uint32_t>(rng.below(4));

  fault::ResilientOptions options;
  options.max_rounds_per_attempt = 2048;
  fault::ResilientResult result;
  if (rng.bernoulli(0.5)) {
    fault::IidAdversary adversary({.drop_rate = drop,
                                   .duplicate_rate = dup,
                                   .crash_rate = crash,
                                   .recovery_delay = delay});
    result = fault::resilient_mis(g, GetParam(), adversary,
                                  fault::algorithm_driver<mis::MetivierMis>(),
                                  options);
  } else {
    fault::BurstyAdversary adversary({.base_drop_rate = drop / 4.0,
                                      .burst_drop_rate = drop,
                                      .period = 6,
                                      .burst_rounds = 2,
                                      .duplicate_rate = dup,
                                      .crash_rate = crash,
                                      .recovery_delay = delay});
    result = fault::resilient_mis(g, GetParam(), adversary,
                                  fault::shatter_driver(2), options);
  }

  ASSERT_TRUE(result.certified)
      << "drop=" << drop << " dup=" << dup << " crash=" << crash;
  mis::MisResult as_result;
  as_result.state = result.state;
  const mis::Verification verdict = mis::verify(g, as_result);
  EXPECT_TRUE(verdict.independent) << "certified output not independent";
  EXPECT_TRUE(verdict.maximal) << "certified output not maximal";
}

TEST_P(Fuzz, MisAndMatchingCoexistOnSameGraph) {
  util::Rng rng(GetParam() + 400);
  const graph::Graph g = graph::gen::k_degenerate(300, 3, rng);
  EXPECT_TRUE(
      mis::verify(g, mis::MetivierMis::run(g, GetParam())).ok());
  EXPECT_TRUE(mis::verify_maximal_matching(
      g, mis::IsraeliItaiMatching::run(g, GetParam())));
}

// ---------------------------------------------------------------------------
// Converter fuzz: random edge-list text — sparse out-of-order ids,
// duplicates in both orders, self-loops, '#'/'%' comments, blank lines,
// CRLF endings, erratic whitespace — through convert_edge_list and a full
// .gr disk round trip, differentially against an in-process reference
// adjacency built from the same lines. The stats struct must account for
// every input line exactly: edges are deduplicated and self-loops dropped
// *with a count*, never silently.
// ---------------------------------------------------------------------------

TEST_P(Fuzz, ConverterMatchesReferenceOnRandomEdgeListText) {
  util::Rng rng(GetParam() + 900);
  // Sparse id universe, including ids near the top of the 32-bit space.
  std::vector<graph::NodeId> universe;
  const std::uint64_t universe_size = 4 + rng.below(40);
  for (std::uint64_t i = 0; i < universe_size; ++i) {
    universe.push_back(rng.below(2) != 0
                           ? static_cast<graph::NodeId>(rng.below(1000))
                           : static_cast<graph::NodeId>(
                                 0xffffffffu - rng.below(1000)));
  }

  std::ostringstream text;
  std::set<std::pair<graph::NodeId, graph::NodeId>> reference;
  std::set<graph::NodeId> mentioned;
  std::uint64_t self_loops = 0;
  std::uint64_t edge_lines = 0;
  std::uint64_t comment_lines = 0;
  const std::uint64_t lines = 30 + rng.below(120);
  for (std::uint64_t i = 0; i < lines; ++i) {
    const std::string eol = rng.below(3) == 0 ? "\r\n" : "\n";
    const std::uint64_t kind = rng.below(10);
    if (kind == 0) {
      text << "# comment " << i << eol;
      ++comment_lines;
      continue;
    }
    if (kind == 1) {
      text << (rng.below(2) != 0 ? "% comment" : "   ") << eol;
      ++comment_lines;
      continue;
    }
    graph::NodeId u = universe[rng.below(universe.size())];
    graph::NodeId v = rng.below(4) == 0  // bias toward repeats
                          ? u
                          : universe[rng.below(universe.size())];
    if (rng.below(2) != 0) std::swap(u, v);  // both orders appear
    const std::string pad1 = rng.below(3) == 0 ? "  " : " ";
    const std::string lead = rng.below(4) == 0 ? "\t" : "";
    text << lead << u << pad1 << v << (rng.below(5) == 0 ? " " : "") << eol;
    ++edge_lines;
    mentioned.insert(u);
    mentioned.insert(v);
    if (u == v) {
      ++self_loops;
    } else {
      reference.insert({std::min(u, v), std::max(u, v)});
    }
  }

  std::istringstream in(text.str());
  const graph::storage::ConvertResult result =
      graph::storage::convert_edge_list(in);

  // Exact line accounting: nothing is silently dropped.
  EXPECT_EQ(result.stats.lines_total, lines);
  EXPECT_EQ(result.stats.lines_comment, comment_lines);
  EXPECT_EQ(result.stats.edges_input, edge_lines);
  EXPECT_EQ(result.stats.self_loops_dropped, self_loops);
  EXPECT_EQ(result.stats.edges_kept, reference.size());
  EXPECT_EQ(result.stats.duplicates_dropped,
            edge_lines - self_loops - reference.size());

  // Structural agreement with the reference adjacency, mapped back to
  // original ids (identity when the converter elides the permutation).
  ASSERT_EQ(result.graph.num_nodes(), mentioned.size());
  std::set<std::pair<graph::NodeId, graph::NodeId>> recovered;
  const auto original = [&](graph::NodeId v) {
    return result.new_to_old.empty() ? v : result.new_to_old[v];
  };
  for (const graph::Edge& e : result.graph.edges()) {
    const graph::NodeId u = original(e.u);
    const graph::NodeId v = original(e.v);
    recovered.insert({std::min(u, v), std::max(u, v)});
  }
  EXPECT_EQ(recovered, reference);

  // Disk round trip: written file reloads to the identical graph.
  const std::string path = ::testing::TempDir() + "arbmis_convfuzz_" +
                           std::to_string(GetParam()) + ".gr";
  graph::storage::GrWriteOptions write_options;
  write_options.new_to_old = result.new_to_old;
  write_options.degree_ordered = result.degree_ordered;
  graph::storage::write_gr(path, result.graph, write_options);
  const graph::storage::MappedGraph mapped =
      graph::storage::MappedGraph::open(path);
  ASSERT_EQ(mapped.num_nodes(), result.graph.num_nodes());
  ASSERT_EQ(mapped.num_edges(), result.graph.num_edges());
  for (graph::NodeId v = 0; v < result.graph.num_nodes(); ++v) {
    const auto want = result.graph.neighbors(v);
    const auto got = mapped.view().neighbors(v);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << "neighbor mismatch at node " << v;
  }
}

TEST_P(Fuzz, ConverterFailsLoudlyOnMalformedLines) {
  util::Rng rng(GetParam() + 1700);
  // A valid prefix...
  std::ostringstream text;
  const std::uint64_t good_lines = 1 + rng.below(20);
  for (std::uint64_t i = 0; i < good_lines; ++i) {
    text << rng.below(50) << ' ' << rng.below(50) << '\n';
  }
  // ...then one malformed line: the converter must throw an error naming
  // this exact 1-based line number, never silently drop or truncate it.
  const std::vector<std::string> malformed = {
      "1 2 3",           // extra token
      "7",               // missing endpoint
      "a b",             // non-numeric
      "3 4x",            // trailing junk inside a token
      "4294967296 0",    // id does not fit in 32 bits
      "99999999999999999999 1",  // overflows even uint64
      "5 -1",            // negative
  };
  const std::string& bad = malformed[rng.below(malformed.size())];
  text << bad << '\n';

  std::istringstream in(text.str());
  try {
    graph::storage::convert_edge_list(in);
    FAIL() << "converter accepted malformed line '" << bad << "'";
  } catch (const std::invalid_argument& e) {
    const std::string expected =
        "line " + std::to_string(good_lines + 1) + ":";
    EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
        << "error '" << e.what() << "' does not name line "
        << good_lines + 1;
  }
}

TEST_P(Fuzz, EngineRandomGraphSeedAndKind) {
  // Random graph x random seed x random engine: the result must verify,
  // hash identically across a second run AND across a random pair of
  // thread counts, and equal the sequential-greedy oracle over the same
  // priorities — the engine family's contract under arbitrary inputs.
  util::Rng rng(GetParam() + 1800);
  const graph::NodeId n = 2 + static_cast<graph::NodeId>(rng.below(300));
  const auto reference = random_edge_set(n, 4 * n, rng);
  graph::Builder builder(n);
  for (const auto& e : reference) builder.add_edge(e.first, e.second);
  const graph::Graph g = builder.build();

  const auto engines = engine::all_engines();
  const engine::EngineKind kind = engines[rng.below(engines.size())];
  engine::EngineOptions options;
  options.seed = rng.next();
  options.num_threads = static_cast<std::uint32_t>(rng.below(5));
  options.dense_phase = static_cast<std::uint32_t>(rng.below(3));

  const engine::EngineResult first = engine::solve(g, kind, options);
  const mis::Verification check = mis::verify_mask(g, first.in_mis);
  ASSERT_TRUE(check.independent && check.maximal)
      << "engine=" << engine::engine_name(kind) << " n=" << n << ": "
      << check.describe();

  // Stable across a repeat run and across a different thread count.
  EXPECT_EQ(engine::solve(g, kind, options).labels_hash(),
            first.labels_hash());
  engine::EngineOptions rethreaded = options;
  rethreaded.num_threads = static_cast<std::uint32_t>(rng.below(9));
  EXPECT_EQ(engine::solve(g, kind, rethreaded).labels_hash(),
            first.labels_hash())
      << "engine=" << engine::engine_name(kind) << " threads "
      << options.num_threads << " vs " << rethreaded.num_threads;

  // Oracle: sequential greedy over the same (priority, id) order.
  const engine::EngineResult oracle =
      engine::solve(g, engine::EngineKind::kSequentialGreedy, options);
  EXPECT_EQ(first.in_mis, oracle.in_mis)
      << "engine=" << engine::engine_name(kind)
      << " diverged from the greedy oracle";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Arena differential fuzz (slow tier: ctest -L slow; excluded from tier1).
// Random graph x random adversary x random thread count, message arena vs
// the retained vector-inbox reference implementation — agreeing not just
// on outputs but *message for message*: a wrapper algorithm hash-chains
// every delivered (src, tag, payload) triple into a per-node digest, so
// any divergence in inbox contents or order anywhere in the run flips a
// hash even if the final MIS happens to coincide.
// ---------------------------------------------------------------------------

/// Delegating wrapper that folds each node's inbox stream into a per-node
/// digest. Each callback touches only its own node's slot, so the wrapper
/// obeys the simulator's thread-safety contract.
class InboxHashingAlgorithm final : public sim::Algorithm {
 public:
  InboxHashingAlgorithm(sim::Algorithm& inner, graph::NodeId n)
      : inner_(&inner), digests_(n, 0x9e3779b97f4a7c15ULL) {}

  std::string_view name() const override { return inner_->name(); }
  bool is_reactive() const override { return inner_->is_reactive(); }

  void on_start(sim::NodeContext& ctx) override { inner_->on_start(ctx); }

  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override {
    std::uint64_t& digest = digests_[ctx.id()];
    for (const sim::Message& m : inbox) {
      digest = util::mix64(digest, m.src);
      digest = util::mix64(digest, m.tag);
      digest = util::mix64(digest, m.payload);
    }
    inner_->on_round(ctx, inbox);
  }

  const std::vector<std::uint64_t>& digests() const { return digests_; }

 private:
  sim::Algorithm* inner_;
  std::vector<std::uint64_t> digests_;
};

/// One observable snapshot of a fuzz run for exact comparison.
struct ArenaFuzzRun {
  std::vector<std::uint64_t> digests;
  std::vector<std::uint32_t> states;
  std::uint64_t rng_draws = 0;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint32_t max_edge_load = 0;

  bool operator==(const ArenaFuzzRun&) const = default;
};

class ArenaSlowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaSlowFuzz, ArenaAgreesWithReferenceMessageForMessage) {
  constexpr int kCasesPerSeed = 10;
  for (int c = 0; c < kCasesPerSeed; ++c) {
    const std::uint64_t case_seed = GetParam() * 1000 + std::uint64_t(c);
    util::Rng rng(case_seed + 700);
    const graph::NodeId n = 40 + static_cast<graph::NodeId>(rng.below(200));
    const double p =
        2.0 / static_cast<double>(n) * static_cast<double>(1 + rng.below(4));
    const graph::Graph g = graph::gen::gnp(n, p, rng);
    const auto threads = static_cast<std::uint32_t>(rng.below(9));  // 0..8
    const bool use_metivier = rng.bernoulli(0.5);
    const bool faulty = rng.bernoulli(0.5);
    const fault::IidOptions odds = {
        .drop_rate = faulty ? rng.uniform01() * 0.4 : 0.0,
        .duplicate_rate = faulty ? rng.uniform01() * 0.3 : 0.0,
        .crash_rate = faulty ? rng.uniform01() * 0.03 : 0.0,
        .recovery_delay = static_cast<std::uint32_t>(rng.below(4))};
    const std::string label = "case_seed=" + std::to_string(case_seed) +
                              " n=" + std::to_string(n) +
                              " threads=" + std::to_string(threads) +
                              (faulty ? " faulty" : " fault-free");

    const auto run_one = [&](sim::InboxImpl impl,
                             std::uint32_t num_threads) -> ArenaFuzzRun {
      const sim::ScopedInboxImpl inbox(impl);
      // A fresh plan per run: plans are stateful, determinism comes from
      // (graph, seed, adversary) being identical across runs.
      fault::IidAdversary adversary(odds);
      fault::FaultPlan plan(g, case_seed, adversary);
      sim::NetworkOptions options;
      options.num_threads = num_threads;
      options.fault = faulty ? &plan : nullptr;
      sim::Network net(g, case_seed, options);
      ArenaFuzzRun run;
      sim::RunStats stats;
      if (use_metivier) {
        mis::MetivierMis algo(g);
        InboxHashingAlgorithm wrapped(algo, n);
        stats = net.run(wrapped, 2048);
        run.digests = wrapped.digests();
        for (const auto s : algo.states()) {
          run.states.push_back(static_cast<std::uint32_t>(s));
        }
      } else {
        mis::LubyBMis algo(g);
        InboxHashingAlgorithm wrapped(algo, n);
        stats = net.run(wrapped, 2048);
        run.digests = wrapped.digests();
        for (const auto s : algo.states()) {
          run.states.push_back(static_cast<std::uint32_t>(s));
        }
      }
      run.rng_draws = net.total_rng_draws();
      run.rounds = stats.rounds;
      run.messages = stats.messages;
      run.max_edge_load = stats.max_edge_load;
      return run;
    };

    // Baseline: the reference implementation on the serial executor — the
    // seed (pre-arena) behavior. The arena must reproduce it at whatever
    // thread count the dice picked.
    const ArenaFuzzRun reference =
        run_one(sim::InboxImpl::kReferenceVectors, 0);
    const ArenaFuzzRun arena = run_one(sim::InboxImpl::kArena, threads);
    EXPECT_EQ(reference.digests, arena.digests) << label;
    EXPECT_EQ(reference.states, arena.states) << label;
    EXPECT_EQ(reference.rng_draws, arena.rng_draws) << label;
    EXPECT_EQ(reference.rounds, arena.rounds) << label;
    EXPECT_EQ(reference.messages, arena.messages) << label;
    EXPECT_EQ(reference.max_edge_load, arena.max_edge_load) << label;
  }
}

// 21 seeds x 10 cases each = 210 random cases per suite run.
INSTANTIATE_TEST_SUITE_P(Seeds, ArenaSlowFuzz,
                         ::testing::Range<std::uint64_t>(1, 22));

}  // namespace
}  // namespace arbmis
