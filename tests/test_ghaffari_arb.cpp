// Tests for the Ghaffari arboricity-corollary pipeline (paper §1.2).
#include <gtest/gtest.h>

#include "core/ghaffari_arb.h"
#include "graph/generators.h"
#include "mis/verifier.h"

namespace arbmis::core {
namespace {

class GhaffariArbSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GhaffariArbSweep, VerifiedOnBattery) {
  util::Rng rng(GetParam());
  for (const graph::Graph& g :
       {graph::gen::random_tree(500, rng),
        graph::gen::union_of_random_forests(500, 3, rng),
        graph::gen::hubbed_forest_union(800, 2, 8, rng),
        graph::gen::random_apollonian(500, rng),
        graph::gen::gnp(400, 0.03, rng)}) {
    const GhaffariArbResult result = ghaffari_arb_mis(g, GetParam());
    EXPECT_TRUE(mis::verify(g, result.mis).ok())
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GhaffariArbSweep,
                         ::testing::Values(1, 23, 456));

TEST(GhaffariArb, ReductionShrinksResidualDegree) {
  util::Rng rng(5);
  const graph::Graph g = graph::gen::hubbed_forest_union(5000, 2, 4, rng);
  const GhaffariArbResult result = ghaffari_arb_mis(g, 1);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_LT(result.residual_max_degree, g.max_degree());
  EXPECT_LT(result.residual_nodes, g.num_nodes());
}

TEST(GhaffariArb, SkipReductionAblation) {
  util::Rng rng(7);
  const graph::Graph g = graph::gen::union_of_random_forests(400, 2, rng);
  GhaffariArbOptions options;
  options.skip_reduction = true;
  const GhaffariArbResult result = ghaffari_arb_mis(g, 3, options);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  EXPECT_EQ(result.reduction_stats.rounds, 0u);
  EXPECT_EQ(result.residual_nodes, g.num_nodes());
}

TEST(GhaffariArb, StatsAdditive) {
  util::Rng rng(9);
  const graph::Graph g = graph::gen::union_of_random_forests(600, 2, rng);
  const GhaffariArbResult result = ghaffari_arb_mis(g, 5);
  EXPECT_EQ(result.mis.stats.rounds,
            result.reduction_stats.rounds + result.ghaffari_stats.rounds + 1);
}

TEST(GhaffariArb, TinyInputs) {
  for (graph::NodeId n : {0u, 1u, 3u}) {
    const graph::Graph g = graph::gen::path(n);
    const GhaffariArbResult result = ghaffari_arb_mis(g, 1);
    EXPECT_TRUE(mis::verify(g, result.mis).ok()) << "n=" << n;
  }
}

}  // namespace
}  // namespace arbmis::core
