// Exhaustive small-world verification: EVERY graph on up to 5 nodes (1024
// on exactly 5, plus all smaller ones) is run through every distributed
// MIS algorithm, the matching algorithm, and the full ArbMIS pipeline —
// and every structural routine is checked against brute force. Small
// exhaustive spaces catch edge-case logic that random sweeps miss.
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "graph/arboricity_exact.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/bit_metivier.h"
#include "mis/gather_solve.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/matching.h"
#include "mis/metivier.h"
#include "mis/slow_local.h"
#include "mis/verifier.h"

namespace arbmis {
namespace {

graph::Graph graph_from_bits(graph::NodeId n, std::uint32_t bits) {
  graph::Builder builder(n);
  std::uint32_t bit = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v, ++bit) {
      if (bits & (1u << bit)) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

std::uint32_t edge_slots(graph::NodeId n) { return n * (n - 1) / 2; }

TEST(Exhaustive, AllMisAlgorithmsOnAllGraphsUpTo5Nodes) {
  for (graph::NodeId n = 0; n <= 5; ++n) {
    const std::uint32_t graphs = 1u << edge_slots(n);
    for (std::uint32_t bits = 0; bits < graphs; ++bits) {
      const graph::Graph g = graph_from_bits(n, bits);
      const std::uint64_t seed = bits + 1;
      EXPECT_TRUE(mis::verify(g, mis::MetivierMis::run(g, seed)).ok())
          << "metivier n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify(g, mis::LubyBMis::run(g, seed)).ok())
          << "luby_b n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify(g, mis::GhaffariMis::run(g, seed)).ok())
          << "ghaffari n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify(g, mis::ElectionMis::run(g, seed)).ok())
          << "election n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify_maximal_matching(
          g, mis::IsraeliItaiMatching::run(g, seed)))
          << "matching n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify(g, mis::BitMetivierMis::run(g, seed).mis).ok())
          << "bit_metivier n=" << n << " bits=" << bits;
      EXPECT_TRUE(mis::verify(g, mis::GatherSolveMis::run(g, seed)).ok())
          << "gather n=" << n << " bits=" << bits;
    }
  }
}

TEST(Exhaustive, PipelineOnAllGraphsOn5Nodes) {
  const graph::NodeId n = 5;
  for (std::uint32_t bits = 0; bits < (1u << edge_slots(n)); ++bits) {
    const graph::Graph g = graph_from_bits(n, bits);
    const graph::NodeId alpha =
        std::max<graph::NodeId>(graph::degeneracy(g), 1);
    const core::ArbMisResult result = core::arb_mis(g, {.alpha = alpha}, bits);
    EXPECT_TRUE(mis::verify(g, result.mis).ok()) << "bits=" << bits;
  }
}

/// Brute-force Nash-Williams: max over all vertex subsets S (|S| >= 2) of
/// ceil(m_S / (|S| - 1)).
graph::NodeId nash_williams_brute_force(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  graph::NodeId best = g.num_edges() > 0 ? 1 : 0;
  for (std::uint32_t subset = 0; subset < (1u << n); ++subset) {
    graph::NodeId size = 0;
    for (graph::NodeId v = 0; v < n; ++v) size += (subset >> v) & 1;
    if (size < 2) continue;
    std::uint64_t edges = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      if (!((subset >> u) & 1)) continue;
      for (graph::NodeId v : g.neighbors(u)) {
        if (v > u && ((subset >> v) & 1)) ++edges;
      }
    }
    const auto denom = static_cast<std::uint64_t>(size - 1);
    const auto bound =
        static_cast<graph::NodeId>((edges + denom - 1) / denom);
    best = std::max(best, bound);
  }
  return best;
}

TEST(Exhaustive, ExactArboricityMatchesNashWilliamsOn5Nodes) {
  const graph::NodeId n = 5;
  for (std::uint32_t bits = 0; bits < (1u << edge_slots(n)); ++bits) {
    const graph::Graph g = graph_from_bits(n, bits);
    EXPECT_EQ(graph::exact_arboricity(g), nash_williams_brute_force(g))
        << "bits=" << bits;
  }
}

TEST(Exhaustive, ExactArboricityMatchesNashWilliamsOn6NodeSamples) {
  // 2^15 graphs on 6 nodes is feasible but slow with brute force inside;
  // sample a deterministic stride instead.
  const graph::NodeId n = 6;
  for (std::uint32_t bits = 0; bits < (1u << edge_slots(n)); bits += 13) {
    const graph::Graph g = graph_from_bits(n, bits);
    EXPECT_EQ(graph::exact_arboricity(g), nash_williams_brute_force(g))
        << "bits=" << bits;
  }
}

TEST(Exhaustive, DegeneracyNeverBelowArboricityOn5Nodes) {
  const graph::NodeId n = 5;
  for (std::uint32_t bits = 0; bits < (1u << edge_slots(n)); ++bits) {
    const graph::Graph g = graph_from_bits(n, bits);
    const graph::NodeId alpha = graph::exact_arboricity(g);
    EXPECT_GE(graph::degeneracy(g), alpha > 0 ? alpha : 0) << bits;
    if (alpha >= 1) {
      EXPECT_LE(graph::degeneracy(g), 2 * alpha - 1) << bits;
    }
  }
}

}  // namespace
}  // namespace arbmis
