// Tests for the MIS verifier and the sequential greedy reference.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/greedy.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

TEST(Verifier, AcceptsValidMis) {
  const graph::Graph g = graph::gen::path(5);
  std::vector<std::uint8_t> mask{1, 0, 1, 0, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_TRUE(v.independent);
  EXPECT_TRUE(v.maximal);
}

TEST(Verifier, RejectsDependentSet) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<std::uint8_t> mask{1, 1, 0};
  const Verification v = verify_mask(g, mask);
  EXPECT_FALSE(v.independent);
  EXPECT_FALSE(v.violations.empty());
}

TEST(Verifier, RejectsNonMaximalSet) {
  const graph::Graph g = graph::gen::path(5);
  std::vector<std::uint8_t> mask{1, 0, 0, 0, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_TRUE(v.independent);
  EXPECT_FALSE(v.maximal);
}

TEST(Verifier, ChecksLabels) {
  const graph::Graph g = graph::gen::path(3);
  MisResult result;
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kInMis};
  EXPECT_TRUE(verify(g, result).ok());

  result.state[2] = MisState::kUndecided;
  EXPECT_FALSE(verify(g, result).labels_consistent);

  // A "covered" node with no MIS neighbor is a lie.
  result.state = {MisState::kCovered, MisState::kInMis, MisState::kCovered};
  EXPECT_TRUE(verify(g, result).ok());
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kCovered};
  EXPECT_FALSE(verify(g, result).labels_consistent);
}

TEST(Verifier, DescribeMentionsViolations) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<std::uint8_t> mask{1, 1, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_NE(v.describe().find("violations"), std::string::npos);
}

TEST(Greedy, ProducesValidMisOnBattery) {
  util::Rng rng(61);
  const std::vector<graph::Graph> graphs{
      graph::gen::path(20),          graph::gen::cycle(21),
      graph::gen::star(15),          graph::gen::complete(8),
      graph::gen::grid(5, 7),        graph::gen::random_tree(64, rng),
      graph::gen::gnp(64, 0.1, rng), graph::gen::random_apollonian(64, rng),
  };
  for (const auto& g : graphs) {
    const MisResult result = greedy_mis(g);
    EXPECT_TRUE(verify(g, result).ok());
  }
}

TEST(Greedy, IdOrderPicksNodeZero) {
  const graph::Graph g = graph::gen::star(10);
  const MisResult result = greedy_mis(g);
  EXPECT_TRUE(result.in_mis(0));
  EXPECT_EQ(result.mis_size(), 1u);
}

TEST(Greedy, RandomOrderStillValid) {
  util::Rng rng(67);
  const graph::Graph g = graph::gen::random_apollonian(100, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const MisResult result = greedy_mis_random(g, rng);
    EXPECT_TRUE(verify(g, result).ok());
  }
}

TEST(Greedy, CustomOrderRespected) {
  const graph::Graph g = graph::gen::path(3);
  const std::vector<graph::NodeId> order{1, 0, 2};
  const MisResult result = greedy_mis(g, order);
  EXPECT_TRUE(result.in_mis(1));
  EXPECT_EQ(result.mis_size(), 1u);
}

TEST(Coloring, ProperColoringCheck) {
  const graph::Graph g = graph::gen::cycle(4);
  EXPECT_TRUE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 1, 0, 1}));
  EXPECT_FALSE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 0, 1, 1}));
  EXPECT_FALSE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 1}));
}

TEST(MisResult, Accessors) {
  MisResult result;
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kUndecided};
  EXPECT_EQ(result.mis_size(), 1u);
  EXPECT_EQ(result.undecided_count(), 1u);
  EXPECT_EQ(result.mis_nodes(), (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(result.mis_mask(), (std::vector<std::uint8_t>{1, 0, 0}));
}

}  // namespace
}  // namespace arbmis::mis
