// Tests for the MIS verifier and the sequential greedy reference.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/greedy.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

TEST(Verifier, AcceptsValidMis) {
  const graph::Graph g = graph::gen::path(5);
  std::vector<std::uint8_t> mask{1, 0, 1, 0, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_TRUE(v.independent);
  EXPECT_TRUE(v.maximal);
}

TEST(Verifier, RejectsDependentSet) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<std::uint8_t> mask{1, 1, 0};
  const Verification v = verify_mask(g, mask);
  EXPECT_FALSE(v.independent);
  EXPECT_FALSE(v.violations.empty());
}

TEST(Verifier, RejectsNonMaximalSet) {
  const graph::Graph g = graph::gen::path(5);
  std::vector<std::uint8_t> mask{1, 0, 0, 0, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_TRUE(v.independent);
  EXPECT_FALSE(v.maximal);
}

TEST(Verifier, ChecksLabels) {
  const graph::Graph g = graph::gen::path(3);
  MisResult result;
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kInMis};
  EXPECT_TRUE(verify(g, result).ok());

  result.state[2] = MisState::kUndecided;
  EXPECT_FALSE(verify(g, result).labels_consistent);

  // A "covered" node with no MIS neighbor is a lie.
  result.state = {MisState::kCovered, MisState::kInMis, MisState::kCovered};
  EXPECT_TRUE(verify(g, result).ok());
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kCovered};
  EXPECT_FALSE(verify(g, result).labels_consistent);
}

TEST(Verifier, DescribeMentionsViolations) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<std::uint8_t> mask{1, 1, 1};
  const Verification v = verify_mask(g, mask);
  EXPECT_NE(v.describe().find("violations"), std::string::npos);
}

// Adversarial battery: plant targeted corruptions in honest MIS outputs on
// each generator family and demand the verifier reject every one, naming a
// violator. The tiny hand-built cases above show each check can fire; this
// shows they fire on the graphs the experiments actually run, where a lazy
// verifier (sampling nodes, trusting labels, checking only members) would
// still pass honest outputs and slip planted defects through.
TEST(Verifier, AdversarialPlantedDefectsOnGeneratorBattery) {
  util::Rng rng(73);
  const std::vector<std::pair<const char*, graph::Graph>> graphs = [&] {
    std::vector<std::pair<const char*, graph::Graph>> out;
    out.emplace_back("random_tree", graph::gen::random_tree(200, rng));
    out.emplace_back("union_of_random_forests",
                     graph::gen::union_of_random_forests(200, 2, rng));
    out.emplace_back("random_apollonian",
                     graph::gen::random_apollonian(150, rng));
    out.emplace_back("gnp", graph::gen::gnp(200, 0.03, rng));
    return out;
  }();

  for (const auto& [name, g] : graphs) {
    const MisResult honest = greedy_mis(g);
    ASSERT_TRUE(verify(g, honest).ok()) << name;
    const std::vector<std::uint8_t> mask = honest.mis_mask();
    const std::vector<graph::NodeId> members = honest.mis_nodes();
    ASSERT_FALSE(members.empty()) << name;

    // Drop one member whose removal uncovers something: any member with a
    // neighbor covered only by it. Dropping an isolated-in-MIS member is
    // always non-maximal at the member itself.
    for (const graph::NodeId victim :
         {members.front(), members[members.size() / 2], members.back()}) {
      std::vector<std::uint8_t> planted = mask;
      planted[victim] = 0;
      const Verification v = verify_mask(g, planted);
      EXPECT_TRUE(v.independent) << name << " victim=" << victim;
      EXPECT_FALSE(v.maximal)
          << name << ": dropping member " << victim
          << " must leave an uncovered node";
      EXPECT_FALSE(v.violations.empty()) << name;
    }

    // Add a covered non-member: breaks independence (it has a member
    // neighbor by definition of covered).
    graph::NodeId covered = graph::kUnreachable;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (mask[v] == 0 && g.degree(v) > 0) {
        covered = v;
        break;
      }
    }
    if (covered != graph::kUnreachable) {
      std::vector<std::uint8_t> planted = mask;
      planted[covered] = 1;
      const Verification v = verify_mask(g, planted);
      EXPECT_FALSE(v.independent)
          << name << ": adding covered node " << covered
          << " must break independence";
      EXPECT_FALSE(v.violations.empty()) << name;

      // Both defects at once: neither flag may mask the other.
      planted[members.front()] = 0;
      if (members.front() != covered) {
        const Verification both = verify_mask(g, planted);
        EXPECT_FALSE(both.ok()) << name;
      }
    }

    // Label lies against the full verify(): an undecided node and a
    // "covered" claim with no member neighbor must each be caught.
    MisResult lying = honest;
    lying.state[members.front()] = MisState::kUndecided;
    EXPECT_FALSE(verify(g, lying).labels_consistent)
        << name << ": undecided member accepted";

    MisResult false_cover = honest;
    false_cover.state[members.front()] = MisState::kCovered;
    const Verification fc = verify(g, false_cover);
    EXPECT_FALSE(fc.ok())
        << name << ": relabeling a member as covered must fail "
        << "(false coverage or lost maximality)";
  }
}

TEST(Greedy, ProducesValidMisOnBattery) {
  util::Rng rng(61);
  const std::vector<graph::Graph> graphs{
      graph::gen::path(20),          graph::gen::cycle(21),
      graph::gen::star(15),          graph::gen::complete(8),
      graph::gen::grid(5, 7),        graph::gen::random_tree(64, rng),
      graph::gen::gnp(64, 0.1, rng), graph::gen::random_apollonian(64, rng),
  };
  for (const auto& g : graphs) {
    const MisResult result = greedy_mis(g);
    EXPECT_TRUE(verify(g, result).ok());
  }
}

TEST(Greedy, IdOrderPicksNodeZero) {
  const graph::Graph g = graph::gen::star(10);
  const MisResult result = greedy_mis(g);
  EXPECT_TRUE(result.in_mis(0));
  EXPECT_EQ(result.mis_size(), 1u);
}

TEST(Greedy, RandomOrderStillValid) {
  util::Rng rng(67);
  const graph::Graph g = graph::gen::random_apollonian(100, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const MisResult result = greedy_mis_random(g, rng);
    EXPECT_TRUE(verify(g, result).ok());
  }
}

TEST(Greedy, CustomOrderRespected) {
  const graph::Graph g = graph::gen::path(3);
  const std::vector<graph::NodeId> order{1, 0, 2};
  const MisResult result = greedy_mis(g, order);
  EXPECT_TRUE(result.in_mis(1));
  EXPECT_EQ(result.mis_size(), 1u);
}

TEST(Coloring, ProperColoringCheck) {
  const graph::Graph g = graph::gen::cycle(4);
  EXPECT_TRUE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 1, 0, 1}));
  EXPECT_FALSE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 0, 1, 1}));
  EXPECT_FALSE(is_proper_coloring(g, std::vector<std::uint64_t>{0, 1}));
}

TEST(MisResult, Accessors) {
  MisResult result;
  result.state = {MisState::kInMis, MisState::kCovered, MisState::kUndecided};
  EXPECT_EQ(result.mis_size(), 1u);
  EXPECT_EQ(result.undecided_count(), 1u);
  EXPECT_EQ(result.mis_nodes(), (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(result.mis_mask(), (std::vector<std::uint8_t>{1, 0, 0}));
}

}  // namespace
}  // namespace arbmis::mis
