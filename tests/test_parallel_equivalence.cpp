// Differential proof of the parallel round executor (sim/network.h): for a
// matrix of {graph generator} x {algorithm} x {seed} x {thread count}, a
// run under the staged parallel executor must be *byte-identical* to the
// serial executor — same RunStats, same per-node outputs, same per-node
// halt rounds, and the same ModelChecker report including the per-round
// series. This is the enforcement vehicle for the determinism-merge rule
// documented in sim/network.h and the thread-safety contract in
// sim/algorithm.h.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/arb_mis.h"
#include "core/bounded_arb.h"
#include "core/params.h"
#include "fault/adversary.h"
#include "fault/fault_plan.h"
#include "fault/resilient_mis.h"
#include "graph/generators.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"
#include "mis/ghaffari.h"
#include "mis/bit_metivier.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "obs/recorder.h"
#include "obs/sink.h"
#include "sim/bfs_rooting.h"
#include "sim/network.h"

namespace arbmis {
namespace {

constexpr std::uint32_t kNeverHalted =
    std::numeric_limits<std::uint32_t>::max();

// Thread counts to prove equivalent against the serial baseline (0).
constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8};

/// Everything observable about one run, flattened for comparison.
struct RunRecord {
  sim::RunStats stats;
  std::vector<std::uint32_t> output;      ///< per-node final states/outcomes
  std::vector<std::uint32_t> halt_round;  ///< first round seen halted
  std::uint64_t rng_draws = 0;            ///< run-wide logical RNG draws
  std::vector<sim::RoundDelta> deltas;    ///< per-round accounting series
  sim::ModelCheckReport report;
  /// Telemetry event stream captured under the default sink configuration
  /// (executor-internal kinds excluded), rendered as JSONL. Events carry
  /// logical time only, so the bytes must match across executors.
  std::string events;
};

/// Captures the telemetry event stream emitted while `fn` runs; the
/// stream lands in *events as JSONL.
template <typename Fn>
auto with_event_capture(std::string* events, Fn&& fn) {
  obs::VectorSink capture;
  auto result = [&] {
    const obs::ScopedSink scoped(&capture);
    return fn();
  }();
  *events = capture.to_jsonl();
  return result;
}

void expect_identical(const RunRecord& serial, const RunRecord& parallel,
                      const std::string& label) {
  EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds) << label;
  EXPECT_EQ(serial.stats.messages, parallel.stats.messages) << label;
  EXPECT_EQ(serial.stats.payload_bits, parallel.stats.payload_bits) << label;
  EXPECT_EQ(serial.stats.max_edge_load, parallel.stats.max_edge_load)
      << label;
  EXPECT_EQ(serial.stats.all_halted, parallel.stats.all_halted) << label;
  EXPECT_EQ(serial.output, parallel.output) << label;
  EXPECT_EQ(serial.halt_round, parallel.halt_round) << label;
  EXPECT_EQ(serial.rng_draws, parallel.rng_draws) << label;
  EXPECT_EQ(serial.deltas, parallel.deltas) << label;
  EXPECT_EQ(serial.events, parallel.events) << label;
  EXPECT_FALSE(serial.events.empty()) << label;

  const sim::ModelCheckReport& a = serial.report;
  const sim::ModelCheckReport& b = parallel.report;
  EXPECT_EQ(a.rounds_observed, b.rounds_observed) << label;
  EXPECT_EQ(a.edge_bit_budget, b.edge_bit_budget) << label;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << label;
  EXPECT_EQ(a.max_edge_bits_per_round, b.max_edge_bits_per_round) << label;
  EXPECT_EQ(a.max_rng_reads_per_round, b.max_rng_reads_per_round) << label;
  EXPECT_EQ(a.k, b.k) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.round_max_message_bits, b.round_max_message_bits) << label;
  EXPECT_EQ(a.round_k, b.round_k) << label;
  EXPECT_TRUE(a.faults == b.faults) << label;
}

/// Runs `algorithm` on a fresh network with the given worker count and
/// records stats, outputs, halt rounds, and the checker report.
template <typename Algo, typename Extract>
RunRecord run_case(graph::GraphView g, std::uint64_t seed,
                   std::uint32_t threads, Algo& algorithm,
                   std::uint32_t max_rounds, Extract&& extract,
                   sim::FaultInjector* fault = nullptr) {
  sim::NetworkOptions options;
  options.num_threads = threads;
  options.fault = fault;
  sim::Network net(g, seed, options);
  RunRecord record;
  record.halt_round.assign(g.num_nodes(), kNeverHalted);
  const auto observer = [&](const sim::Network& n, std::uint32_t round) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (n.halted(v) && record.halt_round[v] == kNeverHalted) {
        record.halt_round[v] = round;
      }
    }
    record.deltas.push_back(n.last_round());
  };
  // Telemetry rides along with the run under comparison: attaching a sink
  // must not perturb the run, and the captured stream must itself be
  // executor-independent, so both properties are checked at once.
  record.stats = with_event_capture(&record.events, [&] {
    return net.run(algorithm, max_rounds, observer);
  });
  record.rng_draws = net.total_rng_draws();
  record.report = net.model_check_report();
  for (auto value : extract(algorithm)) {
    record.output.push_back(static_cast<std::uint32_t>(value));
  }
  return record;
}

struct GraphCase {
  std::string name;
  graph::Graph g;
};

std::vector<GraphCase> test_graphs(std::uint64_t seed) {
  std::vector<GraphCase> graphs;
  graphs.push_back({"path", graph::gen::path(64)});
  {
    util::Rng rng(seed);
    graphs.push_back({"random_tree", graph::gen::random_tree(200, rng)});
  }
  {
    util::Rng rng(seed + 1);
    graphs.push_back({"gnp", graph::gen::gnp(150, 0.05, rng)});
  }
  {
    util::Rng rng(seed + 2);
    graphs.push_back(
        {"forest_union", graph::gen::union_of_random_forests(200, 2, rng)});
  }
  return graphs;
}

class ParallelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEquivalence, LubyMatchesSerialOnAllGraphs) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      mis::LubyBMis algorithm(gc.g);
      return run_case(gc.g, seed, threads, algorithm, 1 << 20,
                      [](const mis::LubyBMis& a) { return a.states(); });
    };
    const RunRecord serial = run_with(0);
    EXPECT_TRUE(serial.stats.all_halted) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      expect_identical(serial, run_with(threads),
                       "luby/" + gc.name + "/t" + std::to_string(threads));
    }
  }
}

TEST_P(ParallelEquivalence, MetivierMatchesSerialOnAllGraphs) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      mis::MetivierMis algorithm(gc.g);
      return run_case(gc.g, seed, threads, algorithm, 1 << 20,
                      [](const mis::MetivierMis& a) { return a.states(); });
    };
    const RunRecord serial = run_with(0);
    EXPECT_TRUE(serial.stats.all_halted) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      expect_identical(serial, run_with(threads),
                       "metivier/" + gc.name + "/t" + std::to_string(threads));
    }
  }
}

TEST_P(ParallelEquivalence, BoundedArbMatchesSerialOnAllGraphs) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const core::Params params = core::Params::practical(2, gc.g.max_degree());
    const auto run_with = [&](std::uint32_t threads) {
      core::BoundedArbIndependentSet algorithm(gc.g, params);
      RunRecord record =
          run_case(gc.g, seed, threads, algorithm, params.total_rounds(),
                   [](const core::BoundedArbIndependentSet& a) {
                     return a.outcomes();
                   });
      // Fold the recomputed per-scale aggregates into the comparison too.
      for (const auto& scale : algorithm.scale_stats()) {
        record.output.push_back(scale.scale);
        record.output.push_back(static_cast<std::uint32_t>(scale.joined));
        record.output.push_back(static_cast<std::uint32_t>(scale.covered));
        record.output.push_back(static_cast<std::uint32_t>(scale.bad));
        record.output.push_back(
            static_cast<std::uint32_t>(scale.active_after));
      }
      return record;
    };
    const RunRecord serial = run_with(0);
    EXPECT_TRUE(serial.stats.all_halted) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      expect_identical(
          serial, run_with(threads),
          "bounded_arb/" + gc.name + "/t" + std::to_string(threads));
    }
  }
}

TEST_P(ParallelEquivalence, BfsRootingMatchesSerialOnAllGraphs) {
  // Reactive algorithm: terminates via the quiescence cut, never halts,
  // and aggregates its quiescence round from per-node slots — the class
  // of algorithm where a shared-aggregate write in a callback would race
  // (regression for exactly such a bug found by TSan in BfsRooting).
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) -> sim::BfsRooting::Result {
      sim::ScopedNumThreads scoped(threads);
      return sim::BfsRooting::run(gc.g, seed, gc.g.num_nodes());
    };
    const sim::BfsRooting::Result serial = run_with(0);
    EXPECT_TRUE(serial.stabilized) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      const sim::BfsRooting::Result parallel = run_with(threads);
      const std::string label =
          "bfs_rooting/" + gc.name + "/t" + std::to_string(threads);
      EXPECT_EQ(serial.parent, parallel.parent) << label;
      EXPECT_EQ(serial.root, parallel.root) << label;
      EXPECT_EQ(serial.distance, parallel.distance) << label;
      EXPECT_EQ(serial.quiescence_round, parallel.quiescence_round) << label;
      EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds) << label;
      EXPECT_EQ(serial.stats.messages, parallel.stats.messages) << label;
    }
  }
}

TEST_P(ParallelEquivalence, BitMetivierMatchesSerialOnAllGraphs) {
  // Self-paced per-edge duels with buffered cross-phase messages — the
  // most delivery-order-sensitive algorithm in the tree, plus the
  // semantic-bits accounting that must sum per-node slots (regression
  // for a TSan-found shared-counter race).
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with =
        [&](std::uint32_t threads) -> mis::BitMetivierMis::Result {
      sim::ScopedNumThreads scoped(threads);
      return mis::BitMetivierMis::run(gc.g, seed);
    };
    const mis::BitMetivierMis::Result serial = run_with(0);
    EXPECT_TRUE(serial.mis.stats.all_halted) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      const mis::BitMetivierMis::Result parallel = run_with(threads);
      const std::string label =
          "bit_metivier/" + gc.name + "/t" + std::to_string(threads);
      EXPECT_EQ(serial.mis.state, parallel.mis.state) << label;
      EXPECT_EQ(serial.semantic_bits, parallel.semantic_bits) << label;
      EXPECT_EQ(serial.mis.stats.rounds, parallel.mis.stats.rounds) << label;
      EXPECT_EQ(serial.mis.stats.messages, parallel.mis.stats.messages)
          << label;
      EXPECT_EQ(serial.mis.stats.payload_bits, parallel.mis.stats.payload_bits)
          << label;
    }
  }
}

TEST_P(ParallelEquivalence, ArbMisPipelineMatchesSerialOnAllGraphs) {
  // The full pipeline constructs its own Networks internally, so the
  // worker count is injected via the process-wide ScopedNumThreads
  // override instead of NetworkOptions plumbing.
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      sim::ScopedNumThreads scoped(threads);
      std::string events;
      core::ArbMisResult result = with_event_capture(&events, [&] {
        return core::arb_mis(gc.g, {.alpha = 2}, seed);
      });
      return std::make_pair(std::move(result), std::move(events));
    };
    const auto [serial, serial_events] = run_with(0);
    EXPECT_TRUE(serial.mis.stats.all_halted) << gc.name;
    // The pipeline emits phase/scale/shatter driver events on top of the
    // per-stage network streams; all of it must be executor-independent.
    EXPECT_NE(serial_events.find("\"ev\":\"phase\""), std::string::npos)
        << gc.name;
    EXPECT_NE(serial_events.find("\"ev\":\"shatter\""), std::string::npos)
        << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      const auto [parallel, parallel_events] = run_with(threads);
      const std::string label =
          "arb_mis/" + gc.name + "/t" + std::to_string(threads);
      EXPECT_EQ(serial.mis.state, parallel.mis.state) << label;
      EXPECT_EQ(serial.mis.stats.rounds, parallel.mis.stats.rounds) << label;
      EXPECT_EQ(serial.mis.stats.messages, parallel.mis.stats.messages)
          << label;
      EXPECT_EQ(serial.mis.stats.payload_bits,
                parallel.mis.stats.payload_bits)
          << label;
      EXPECT_EQ(serial.mis.stats.max_edge_load,
                parallel.mis.stats.max_edge_load)
          << label;
      EXPECT_EQ(serial.mis.stats.all_halted, parallel.mis.stats.all_halted)
          << label;
      EXPECT_EQ(serial_events, parallel_events) << label;
    }
  }
}

TEST_P(ParallelEquivalence, FaultyLubyMatchesSerialOnAllGraphs) {
  // Fault injection must preserve the determinism-merge rule: with an
  // identically-constructed FaultPlan per run, every thread count must
  // reproduce the serial run byte-for-byte — outputs, stats, the checker
  // report (including fault totals), the per-round fault ledger, and the
  // final down mask. A fresh plan per run is required because plans are
  // stateful (down set, event stream); determinism comes from the plan
  // being a pure function of (graph, seed, adversary).
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      fault::IidAdversary adversary({.drop_rate = 0.2,
                                     .duplicate_rate = 0.05,
                                     .crash_rate = 0.01,
                                     .recovery_delay = 3});
      fault::FaultPlan plan(gc.g, seed, adversary);
      mis::LubyBMis algorithm(gc.g);
      RunRecord record = run_case(
          gc.g, seed, threads, algorithm, 512,
          [](const mis::LubyBMis& a) { return a.states(); }, &plan);
      std::vector<std::uint8_t> down;
      for (graph::NodeId v = 0; v < gc.g.num_nodes(); ++v) {
        down.push_back(plan.is_down(v) ? 1 : 0);
      }
      return std::make_tuple(std::move(record), plan.ledger(),
                             std::move(down));
    };
    const auto serial = run_with(0);
    EXPECT_FALSE(std::get<1>(serial).empty()) << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      const auto parallel = run_with(threads);
      const std::string label =
          "faulty_luby/" + gc.name + "/t" + std::to_string(threads);
      expect_identical(std::get<0>(serial), std::get<0>(parallel), label);
      EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel)) << label;
      EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel)) << label;
    }
  }
}

TEST_P(ParallelEquivalence, FaultyGhaffariUnderAdaptiveMatchesSerial) {
  // The adaptive adversary reads the halted/down masks at the round
  // barrier, so it is the most executor-coupled plan — if any staging
  // leaked across workers, its crash picks would diverge by thread count.
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      fault::AdaptiveAdversary adversary({.drop_rate = 0.3,
                                          .background_drop_rate = 0.05,
                                          .duplicate_rate = 0.05,
                                          .crash_period = 4,
                                          .max_crashes = 3,
                                          .recovery_delay = 0,
                                          .degree_fraction = 0.25});
      fault::FaultPlan plan(gc.g, seed, adversary);
      mis::GhaffariMis algorithm(gc.g);
      RunRecord record = run_case(
          gc.g, seed, threads, algorithm, 512,
          [](const mis::GhaffariMis& a) { return a.states(); }, &plan);
      return std::make_pair(std::move(record), plan.ledger());
    };
    const auto serial = run_with(0);
    for (const std::uint32_t threads : kThreadCounts) {
      const auto parallel = run_with(threads);
      const std::string label =
          "faulty_ghaffari/" + gc.name + "/t" + std::to_string(threads);
      expect_identical(serial.first, parallel.first, label);
      EXPECT_EQ(serial.second, parallel.second) << label;
    }
  }
}

TEST_P(ParallelEquivalence, ResilientMisMatchesSerialOnAllGraphs) {
  // End-to-end: the whole resilient retry loop (faulty attempts, residual
  // verification, recommits) must land on the same certified MIS and the
  // same attempt/fault accounting for every worker count.
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      fault::IidAdversary adversary({.drop_rate = 0.25,
                                     .duplicate_rate = 0.05,
                                     .crash_rate = 0.01,
                                     .recovery_delay = 0});
      fault::ResilientOptions options;
      options.max_rounds_per_attempt = 4096;
      options.num_threads = threads;
      std::string events;
      fault::ResilientResult result = with_event_capture(&events, [&] {
        return fault::resilient_mis(gc.g, seed, adversary,
                                    fault::algorithm_driver<mis::LubyBMis>(),
                                    options);
      });
      return std::make_pair(std::move(result), std::move(events));
    };
    const auto [serial, serial_events] = run_with(0);
    EXPECT_TRUE(serial.certified) << gc.name;
    // Attempt/certification driver events plus the per-attempt network and
    // fault-plan streams must all be executor-independent.
    EXPECT_NE(serial_events.find("\"ev\":\"attempt\""), std::string::npos)
        << gc.name;
    EXPECT_NE(serial_events.find("\"ev\":\"certified\""), std::string::npos)
        << gc.name;
    for (const std::uint32_t threads : kThreadCounts) {
      const auto [parallel, parallel_events] = run_with(threads);
      const std::string label =
          "resilient/" + gc.name + "/t" + std::to_string(threads);
      EXPECT_EQ(serial.state, parallel.state) << label;
      EXPECT_EQ(serial.certified, parallel.certified) << label;
      EXPECT_EQ(serial.attempts, parallel.attempts) << label;
      EXPECT_EQ(serial.rounds_to_recovery, parallel.rounds_to_recovery)
          << label;
      EXPECT_TRUE(serial.faults == parallel.faults) << label;
      EXPECT_EQ(serial_events, parallel_events) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence,
                         ::testing::Values(1, 7, 2024));

// ---------------------------------------------------------------------------
// Arena differential matrix: the message arena (sim/network.h, the default
// inbox implementation) against the retained pre-arena reference
// implementation (InboxImpl::kReferenceVectors — the seed behavior,
// verbatim). The baseline is a reference-inbox *serial* run; every arena
// run — serial and at each thread count — must reproduce it byte for
// byte: MIS outputs, halt rounds, RNG draw counts, the read-k ledger in
// the checker report, and the per-round RoundDelta series.
// ---------------------------------------------------------------------------

// Arena thread counts: 0 = serial executor, then the staged executor.
constexpr std::uint32_t kArenaThreadCounts[] = {0, 1, 2, 4, 8};

class ArenaEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

/// Runs `run_with(threads)` once under the reference inboxes (serial) and
/// then under the arena at every thread count, expecting byte-identity.
template <typename RunWith>
void expect_arena_matches_reference(const std::string& algo,
                                    const std::string& graph_name,
                                    RunWith&& run_with) {
  RunRecord reference;
  {
    const sim::ScopedInboxImpl inbox(sim::InboxImpl::kReferenceVectors);
    reference = run_with(0);
  }
  for (const std::uint32_t threads : kArenaThreadCounts) {
    const sim::ScopedInboxImpl inbox(sim::InboxImpl::kArena);
    expect_identical(reference, run_with(threads),
                     algo + "/" + graph_name + "/arena_t" +
                         std::to_string(threads));
  }
}

TEST_P(ArenaEquivalence, LubyMatchesReferenceInboxes) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    expect_arena_matches_reference(
        "luby", gc.name, [&](std::uint32_t threads) {
          mis::LubyBMis algorithm(gc.g);
          return run_case(gc.g, seed, threads, algorithm, 1 << 20,
                          [](const mis::LubyBMis& a) { return a.states(); });
        });
  }
}

TEST_P(ArenaEquivalence, MetivierMatchesReferenceInboxes) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    expect_arena_matches_reference(
        "metivier", gc.name, [&](std::uint32_t threads) {
          mis::MetivierMis algorithm(gc.g);
          return run_case(
              gc.g, seed, threads, algorithm, 1 << 20,
              [](const mis::MetivierMis& a) { return a.states(); });
        });
  }
}

TEST_P(ArenaEquivalence, GhaffariMatchesReferenceInboxes) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    expect_arena_matches_reference(
        "ghaffari", gc.name, [&](std::uint32_t threads) {
          mis::GhaffariMis algorithm(gc.g);
          return run_case(
              gc.g, seed, threads, algorithm, 1 << 20,
              [](const mis::GhaffariMis& a) { return a.states(); });
        });
  }
}

TEST_P(ArenaEquivalence, BoundedArbMatchesReferenceInboxes) {
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const core::Params params = core::Params::practical(2, gc.g.max_degree());
    expect_arena_matches_reference(
        "bounded_arb", gc.name, [&](std::uint32_t threads) {
          core::BoundedArbIndependentSet algorithm(gc.g, params);
          RunRecord record =
              run_case(gc.g, seed, threads, algorithm, params.total_rounds(),
                       [](const core::BoundedArbIndependentSet& a) {
                         return a.outcomes();
                       });
          for (const auto& scale : algorithm.scale_stats()) {
            record.output.push_back(scale.scale);
            record.output.push_back(static_cast<std::uint32_t>(scale.joined));
            record.output.push_back(
                static_cast<std::uint32_t>(scale.covered));
            record.output.push_back(static_cast<std::uint32_t>(scale.bad));
            record.output.push_back(
                static_cast<std::uint32_t>(scale.active_after));
          }
          return record;
        });
  }
}

TEST_P(ArenaEquivalence, BfsRootingMatchesReferenceInboxes) {
  // Reactive algorithm: terminates via the quiescence cut, which the
  // arena answers from its staged-message counter instead of scanning
  // per-node boxes — the cut must fire on exactly the same round.
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      sim::ScopedNumThreads scoped(threads);
      return sim::BfsRooting::run(gc.g, seed, gc.g.num_nodes());
    };
    sim::BfsRooting::Result reference;
    {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kReferenceVectors);
      reference = run_with(0);
    }
    EXPECT_TRUE(reference.stabilized) << gc.name;
    for (const std::uint32_t threads : kArenaThreadCounts) {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kArena);
      const sim::BfsRooting::Result arena = run_with(threads);
      const std::string label = "bfs_rooting/" + gc.name + "/arena_t" +
                                std::to_string(threads);
      EXPECT_EQ(reference.parent, arena.parent) << label;
      EXPECT_EQ(reference.root, arena.root) << label;
      EXPECT_EQ(reference.distance, arena.distance) << label;
      EXPECT_EQ(reference.quiescence_round, arena.quiescence_round) << label;
      EXPECT_EQ(reference.stats.rounds, arena.stats.rounds) << label;
      EXPECT_EQ(reference.stats.messages, arena.stats.messages) << label;
    }
  }
}

TEST_P(ArenaEquivalence, FaultyLubyMatchesReferenceInboxes) {
  // The faulty row of the matrix: duplicates overflow the arena's
  // per-directed-edge capacity into the side buffers, so this is the path
  // where a layout bug would first diverge from the reference bytes. The
  // fault ledger and final down mask ride along in the comparison.
  const std::uint64_t seed = GetParam();
  for (const GraphCase& gc : test_graphs(seed)) {
    const auto run_with = [&](std::uint32_t threads) {
      fault::IidAdversary adversary({.drop_rate = 0.2,
                                     .duplicate_rate = 0.1,
                                     .crash_rate = 0.01,
                                     .recovery_delay = 3});
      fault::FaultPlan plan(gc.g, seed, adversary);
      mis::LubyBMis algorithm(gc.g);
      RunRecord record = run_case(
          gc.g, seed, threads, algorithm, 512,
          [](const mis::LubyBMis& a) { return a.states(); }, &plan);
      std::vector<std::uint8_t> down;
      for (graph::NodeId v = 0; v < gc.g.num_nodes(); ++v) {
        down.push_back(plan.is_down(v) ? 1 : 0);
      }
      return std::make_tuple(std::move(record), plan.ledger(),
                             std::move(down));
    };
    std::tuple<RunRecord, std::vector<fault::LedgerEntry>,
               std::vector<std::uint8_t>>
        reference;
    {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kReferenceVectors);
      reference = run_with(0);
    }
    for (const std::uint32_t threads : kArenaThreadCounts) {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kArena);
      const auto arena = run_with(threads);
      const std::string label =
          "faulty_luby/" + gc.name + "/arena_t" + std::to_string(threads);
      expect_identical(std::get<0>(reference), std::get<0>(arena), label);
      EXPECT_EQ(std::get<1>(reference), std::get<1>(arena)) << label;
      EXPECT_EQ(std::get<2>(reference), std::get<2>(arena)) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaEquivalence,
                         ::testing::Values(1, 7, 2024));

// ---------------------------------------------------------------------------
// Storage differential matrix: every algorithm must be oblivious to whether
// its GraphView is backed by the in-memory Graph or by an mmap of the same
// graph written to a binary .gr file (graph/storage/). The baseline is the
// in-memory serial run; rows cover {in-memory, mapped} x threads {0, 2, 8},
// expecting byte-identity of MIS outputs, RNG draw counts, telemetry event
// streams, and the checker report — the same bar the executor matrix sets.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kStorageThreadCounts[] = {0, 2, 8};

/// The in-memory graph plus the same graph reloaded from disk. The .gr
/// write preserves node numbering and adjacency order exactly, so the two
/// views expose identical CSR bytes — any divergence below is a storage
/// bug, not a renumbering artifact.
struct StorageCase {
  graph::Graph memory;
  graph::storage::MappedGraph mapped;
};

StorageCase make_storage_case(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph g = graph::gen::hubbed_forest_union(300, 2, 4, rng);
  const std::string path = ::testing::TempDir() + "arbmis_equiv_" +
                           std::to_string(seed) + ".gr";
  graph::storage::write_gr(path, g);
  return {std::move(g), graph::storage::MappedGraph::open(path)};
}

class MappedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

/// Baseline: in-memory serial. Rows: both storages at every thread count.
template <typename RunWith>
void expect_storage_independent(const std::string& algo,
                                const StorageCase& sc, RunWith&& run_with) {
  const RunRecord baseline = run_with(graph::GraphView(sc.memory), 0);
  for (const std::uint32_t threads : kStorageThreadCounts) {
    expect_identical(baseline, run_with(graph::GraphView(sc.memory), threads),
                     algo + "/memory/t" + std::to_string(threads));
    expect_identical(baseline, run_with(sc.mapped.view(), threads),
                     algo + "/mapped/t" + std::to_string(threads));
  }
}

TEST_P(MappedEquivalence, LubyIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  expect_storage_independent(
      "luby", sc, [&](graph::GraphView g, std::uint32_t threads) {
        mis::LubyBMis algorithm(g);
        return run_case(g, GetParam(), threads, algorithm, 1 << 20,
                        [](const mis::LubyBMis& a) { return a.states(); });
      });
}

TEST_P(MappedEquivalence, MetivierIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  expect_storage_independent(
      "metivier", sc, [&](graph::GraphView g, std::uint32_t threads) {
        mis::MetivierMis algorithm(g);
        return run_case(g, GetParam(), threads, algorithm, 1 << 20,
                        [](const mis::MetivierMis& a) { return a.states(); });
      });
}

TEST_P(MappedEquivalence, GhaffariIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  expect_storage_independent(
      "ghaffari", sc, [&](graph::GraphView g, std::uint32_t threads) {
        mis::GhaffariMis algorithm(g);
        return run_case(g, GetParam(), threads, algorithm, 1 << 20,
                        [](const mis::GhaffariMis& a) { return a.states(); });
      });
}

TEST_P(MappedEquivalence, BoundedArbIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  const core::Params params =
      core::Params::practical(2, sc.memory.max_degree());
  expect_storage_independent(
      "bounded_arb", sc, [&](graph::GraphView g, std::uint32_t threads) {
        core::BoundedArbIndependentSet algorithm(g, params);
        RunRecord record =
            run_case(g, GetParam(), threads, algorithm, params.total_rounds(),
                     [](const core::BoundedArbIndependentSet& a) {
                       return a.outcomes();
                     });
        for (const auto& scale : algorithm.scale_stats()) {
          record.output.push_back(scale.scale);
          record.output.push_back(static_cast<std::uint32_t>(scale.joined));
          record.output.push_back(static_cast<std::uint32_t>(scale.covered));
          record.output.push_back(static_cast<std::uint32_t>(scale.bad));
          record.output.push_back(
              static_cast<std::uint32_t>(scale.active_after));
        }
        return record;
      });
}

TEST_P(MappedEquivalence, BitMetivierIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  const auto run_with = [&](graph::GraphView g, std::uint32_t threads) {
    sim::ScopedNumThreads scoped(threads);
    std::string events;
    mis::BitMetivierMis::Result result = with_event_capture(
        &events, [&] { return mis::BitMetivierMis::run(g, GetParam()); });
    return std::make_pair(std::move(result), std::move(events));
  };
  const auto [baseline, baseline_events] =
      run_with(graph::GraphView(sc.memory), 0);
  EXPECT_TRUE(baseline.mis.stats.all_halted);
  for (const std::uint32_t threads : kStorageThreadCounts) {
    for (const bool mapped : {false, true}) {
      const auto [row, row_events] = run_with(
          mapped ? sc.mapped.view() : graph::GraphView(sc.memory), threads);
      const std::string label = std::string("bit_metivier/") +
                                (mapped ? "mapped" : "memory") + "/t" +
                                std::to_string(threads);
      EXPECT_EQ(baseline.mis.state, row.mis.state) << label;
      EXPECT_EQ(baseline.semantic_bits, row.semantic_bits) << label;
      EXPECT_EQ(baseline.mis.stats.rounds, row.mis.stats.rounds) << label;
      EXPECT_EQ(baseline.mis.stats.messages, row.mis.stats.messages) << label;
      EXPECT_EQ(baseline_events, row_events) << label;
    }
  }
}

TEST_P(MappedEquivalence, ArbMisPipelineIsStorageIndependent) {
  const StorageCase sc = make_storage_case(GetParam());
  const auto run_with = [&](graph::GraphView g, std::uint32_t threads) {
    sim::ScopedNumThreads scoped(threads);
    std::string events;
    core::ArbMisResult result = with_event_capture(
        &events, [&] { return core::arb_mis(g, {.alpha = 2}, GetParam()); });
    return std::make_pair(std::move(result), std::move(events));
  };
  const auto [baseline, baseline_events] =
      run_with(graph::GraphView(sc.memory), 0);
  EXPECT_TRUE(baseline.mis.stats.all_halted);
  for (const std::uint32_t threads : kStorageThreadCounts) {
    for (const bool mapped : {false, true}) {
      const auto [row, row_events] = run_with(
          mapped ? sc.mapped.view() : graph::GraphView(sc.memory), threads);
      const std::string label = std::string("arb_mis/") +
                                (mapped ? "mapped" : "memory") + "/t" +
                                std::to_string(threads);
      EXPECT_EQ(baseline.mis.state, row.mis.state) << label;
      EXPECT_EQ(baseline.mis.stats.rounds, row.mis.stats.rounds) << label;
      EXPECT_EQ(baseline.mis.stats.messages, row.mis.stats.messages) << label;
      EXPECT_EQ(baseline.mis.stats.payload_bits, row.mis.stats.payload_bits)
          << label;
      EXPECT_EQ(baseline_events, row_events) << label;
    }
  }
}

TEST_P(MappedEquivalence, FaultyLubyIsStorageIndependent) {
  // The mapped+faulty row: fault plans are pure functions of
  // (graph, seed, adversary), so a plan built against the mapped view must
  // reproduce the in-memory run's ledger and down mask byte for byte.
  const StorageCase sc = make_storage_case(GetParam());
  const auto run_with = [&](graph::GraphView g, std::uint32_t threads) {
    fault::IidAdversary adversary({.drop_rate = 0.2,
                                   .duplicate_rate = 0.05,
                                   .crash_rate = 0.01,
                                   .recovery_delay = 3});
    fault::FaultPlan plan(g, GetParam(), adversary);
    mis::LubyBMis algorithm(g);
    RunRecord record = run_case(
        g, GetParam(), threads, algorithm, 512,
        [](const mis::LubyBMis& a) { return a.states(); }, &plan);
    std::vector<std::uint8_t> down;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      down.push_back(plan.is_down(v) ? 1 : 0);
    }
    return std::make_tuple(std::move(record), plan.ledger(), std::move(down));
  };
  const auto baseline = run_with(graph::GraphView(sc.memory), 0);
  EXPECT_FALSE(std::get<1>(baseline).empty());
  for (const std::uint32_t threads : kStorageThreadCounts) {
    for (const bool mapped : {false, true}) {
      const auto row = run_with(
          mapped ? sc.mapped.view() : graph::GraphView(sc.memory), threads);
      const std::string label = std::string("faulty_luby/") +
                                (mapped ? "mapped" : "memory") + "/t" +
                                std::to_string(threads);
      expect_identical(std::get<0>(baseline), std::get<0>(row), label);
      EXPECT_EQ(std::get<1>(baseline), std::get<1>(row)) << label;
      EXPECT_EQ(std::get<2>(baseline), std::get<2>(row)) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappedEquivalence, ::testing::Values(5, 99));

// ---------------------------------------------------------------------------
// Flight-recorder ring determinism (obs/recorder.h): the ring stores
// pre-encoded records carrying logical time only, so after identical runs —
// including wrap-around eviction churn in a deliberately tiny ring — the
// surviving record bytes must be identical across executor thread counts
// and inbox implementations. ring_bytes() (not snapshot()) is the
// comparison unit: a snapshot embeds the manifest, which carries
// thread/inbox provenance by design.
// ---------------------------------------------------------------------------

struct RecorderRun {
  std::string ring;
  obs::RecorderStats stats;
};

/// One Luby run with a 256-byte recorder attached — small enough that the
/// round events of every test graph overflow it and force evictions.
RecorderRun run_with_tiny_recorder(const graph::Graph& g, std::uint64_t seed,
                                   std::uint32_t threads) {
  obs::RecorderConfig config;
  config.max_bytes = 256;
  obs::FlightRecorder recorder(config);
  sim::NetworkOptions options;
  options.num_threads = threads;
  sim::Network net(g, seed, options);
  mis::LubyBMis algorithm(g);
  {
    const obs::ScopedRecorder attach(&recorder);
    net.run(algorithm, 1 << 20);
  }
  RecorderRun run;
  run.ring = recorder.ring_bytes();
  run.stats = recorder.stats();
  return run;
}

void expect_recorder_runs_identical(const RecorderRun& baseline,
                                    const RecorderRun& other,
                                    const std::string& label) {
  EXPECT_EQ(baseline.ring, other.ring) << label;
  EXPECT_EQ(baseline.stats.recorded_events, other.stats.recorded_events)
      << label;
  EXPECT_EQ(baseline.stats.buffered_events, other.stats.buffered_events)
      << label;
  EXPECT_EQ(baseline.stats.buffered_bytes, other.stats.buffered_bytes)
      << label;
  EXPECT_EQ(baseline.stats.evicted_events, other.stats.evicted_events)
      << label;
}

TEST_P(ParallelEquivalence, RecorderRingMatchesSerialAfterEviction) {
  const std::uint64_t seed = GetParam();
  // The smallest graphs can finish in so few rounds that even the tiny
  // ring never wraps, so the wrap requirement is aggregate: at least one
  // graph per seed must have forced evictions, or the rows below only
  // prove the no-eviction case.
  bool any_evicted = false;
  for (const GraphCase& gc : test_graphs(seed)) {
    const RecorderRun serial = run_with_tiny_recorder(gc.g, seed, 0);
    EXPECT_FALSE(serial.ring.empty()) << gc.name;
    any_evicted = any_evicted || serial.stats.evicted_events > 0;
    for (const std::uint32_t threads : {2u, 8u}) {
      expect_recorder_runs_identical(
          serial, run_with_tiny_recorder(gc.g, seed, threads),
          "recorder/" + gc.name + "/t" + std::to_string(threads));
    }
  }
  EXPECT_TRUE(any_evicted);
}

TEST_P(ArenaEquivalence, RecorderRingMatchesReferenceInboxes) {
  const std::uint64_t seed = GetParam();
  bool any_evicted = false;  // aggregate wrap requirement, as above
  for (const GraphCase& gc : test_graphs(seed)) {
    RecorderRun reference;
    {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kReferenceVectors);
      reference = run_with_tiny_recorder(gc.g, seed, 0);
    }
    any_evicted = any_evicted || reference.stats.evicted_events > 0;
    for (const std::uint32_t threads : {0u, 2u, 8u}) {
      const sim::ScopedInboxImpl inbox(sim::InboxImpl::kArena);
      expect_recorder_runs_identical(
          reference, run_with_tiny_recorder(gc.g, seed, threads),
          "recorder/" + gc.name + "/arena_t" + std::to_string(threads));
    }
  }
  EXPECT_TRUE(any_evicted);
}

}  // namespace
}  // namespace arbmis
