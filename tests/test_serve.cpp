// Tests for the serving layer (src/serve/): protocol framing and strict
// malformed-input rejection, dynamic-graph update semantics, the result
// cache's content-hash keying, and the incremental-repair differential
// suite — after a fuzzed update sequence the maintained MIS must verify
// independent+maximal on the final graph, and the full reply byte stream
// and telemetry event stream must be identical across simulator thread
// counts 0/2/8 and across storage backends. Also covers the live
// introspection surface: METRICS snapshots (which exclude their own
// request, keeping idle-daemon scrapes deterministic) and DUMP_RECORDER
// flight-recorder artifacts with clear-after-snapshot semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/resilient_mis.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"
#include "mis/verifier.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "serve/client.h"
#include "serve/dynamic_graph.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/rng.h"

namespace arbmis::serve {
namespace {

graph::Graph test_graph(graph::NodeId n, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::gen::union_of_random_forests(n, 2, rng);
}

/// Feeds encoded bytes through a FrameReader in two chunks (exercising
/// incremental reassembly) and returns the single decoded frame.
Frame reread(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  FrameReader reader;
  const std::size_t split = bytes.size() / 2;
  reader.feed(bytes.data(), split);
  Frame out;
  EXPECT_FALSE(reader.next(out)) << "half a frame decoded";
  reader.feed(bytes.data() + split, bytes.size() - split);
  EXPECT_TRUE(reader.next(out));
  EXPECT_EQ(reader.buffered(), 0u);
  return out;
}

TEST(ServeProtocol, FrameRoundTripAllTypes) {
  LoadGraphRequest load;
  load.graph_id = 7;
  load.num_nodes = 5;
  load.edges = {{0, 1}, {1, 2}, {3, 4}};
  {
    const Frame f = reread(make_frame(MsgType::kLoadGraph, 11, load));
    EXPECT_EQ(f.type, MsgType::kLoadGraph);
    EXPECT_EQ(f.request_id, 11u);
    const auto m = parse_payload<LoadGraphRequest>(f);
    EXPECT_EQ(m.graph_id, 7u);
    EXPECT_FALSE(m.from_path);
    EXPECT_EQ(m.num_nodes, 5u);
    ASSERT_EQ(m.edges.size(), 3u);
    EXPECT_EQ(m.edges[2].u, 3u);
    EXPECT_EQ(m.edges[2].v, 4u);
  }
  {
    LoadGraphRequest by_path;
    by_path.graph_id = 9;
    by_path.from_path = true;
    by_path.path = "/tmp/some graph.gr";
    const auto m = parse_payload<LoadGraphRequest>(
        reread(make_frame(MsgType::kLoadGraph, 12, by_path)));
    EXPECT_TRUE(m.from_path);
    EXPECT_EQ(m.path, "/tmp/some graph.gr");
  }
  {
    ComputeMisRequest req{42, {3, 999}};
    const auto m = parse_payload<ComputeMisRequest>(
        reread(make_frame(MsgType::kComputeMis, 13, req)));
    EXPECT_EQ(m.graph_id, 42u);
    EXPECT_EQ(m.params.alpha, 3u);
    EXPECT_EQ(m.params.seed, 999u);
  }
  {
    ComputeMisReply reply{10, 0xabcd, 0x1234, 1, 1, 2, 17};
    const auto m = parse_payload<ComputeMisReply>(
        reread(make_frame(MsgType::kReplyComputeMis, 13, reply)));
    EXPECT_EQ(m.mis_size, 10u);
    EXPECT_EQ(m.labels_hash, 0xabcdu);
    EXPECT_EQ(m.cache_hit, 1u);
    EXPECT_EQ(m.rounds, 17u);
  }
  {
    QueryRequest req{5, {2, 3}, {0, 2, 4}};
    const auto m = parse_payload<QueryRequest>(
        reread(make_frame(MsgType::kQuery, 14, req)));
    EXPECT_EQ(m.nodes, (std::vector<graph::NodeId>{0, 2, 4}));
  }
  {
    UpdateEdgesRequest req;
    req.graph_id = 5;
    req.ops = {{UpdateOp::kInsertEdge, 1, 2},
               {UpdateOp::kAddVertex, 0, 0},
               {UpdateOp::kDetachVertex, 3, 0}};
    const auto m = parse_payload<UpdateEdgesRequest>(
        reread(make_frame(MsgType::kUpdateEdges, 15, req)));
    ASSERT_EQ(m.ops.size(), 3u);
    EXPECT_EQ(m.ops[1].op, UpdateOp::kAddVertex);
    EXPECT_EQ(m.ops[2].u, 3u);
  }
  {
    StatsReply stats;
    stats.requests_total = 100;
    stats.cache_evictions = 3;
    const auto m = parse_payload<StatsReply>(
        reread(make_frame(MsgType::kReplyStats, 16, stats)));
    EXPECT_EQ(m, stats);
  }
  {
    ErrorReply err{static_cast<std::uint32_t>(ErrorCode::kUnknownGraph),
                   "no such graph"};
    const auto m = parse_payload<ErrorReply>(
        reread(make_frame(MsgType::kError, 17, err)));
    EXPECT_EQ(m.code, 2u);
    EXPECT_EQ(m.message, "no such graph");
  }
  {
    const auto m = parse_payload<MetricsRequest>(
        reread(make_frame(MsgType::kMetrics, 18, MetricsRequest{})));
    EXPECT_EQ(m.version, kMetricsPayloadVersion);
  }
  {
    MetricsReply reply;
    reply.json = "{\"schema\":\"arbmis.metrics.v1\",\"counters\":{}}";
    const auto m = parse_payload<MetricsReply>(
        reread(make_frame(MsgType::kReplyMetrics, 18, reply)));
    EXPECT_EQ(m.version, kMetricsPayloadVersion);
    EXPECT_EQ(m.json, reply.json);
  }
  {
    DumpRecorderRequest req;
    req.clear_after = 1;
    const auto m = parse_payload<DumpRecorderRequest>(
        reread(make_frame(MsgType::kDumpRecorder, 19, req)));
    EXPECT_EQ(m.clear_after, 1u);
  }
  {
    DumpRecorderReply reply;
    reply.recorder_attached = 1;
    reply.buffered_events = 42;
    reply.evicted_events = 7;
    reply.artifact = std::string("ARBMISEV\x01 binary bytes \x00 ok", 26);
    const auto m = parse_payload<DumpRecorderReply>(
        reread(make_frame(MsgType::kReplyDumpRecorder, 19, reply)));
    EXPECT_EQ(m.recorder_attached, 1u);
    EXPECT_EQ(m.buffered_events, 42u);
    EXPECT_EQ(m.evicted_events, 7u);
    EXPECT_EQ(m.artifact, reply.artifact);  // embedded NUL survives
  }
}

TEST(ServeProtocol, RejectsMalformedFrames) {
  const Frame good = make_frame(MsgType::kStats, 1, StatsReply{});
  std::vector<std::uint8_t> bytes = encode_frame(Frame{MsgType::kStats, 1, {}});

  {
    // Bad magic — detected from the first 4 bytes, before a full header.
    auto bad = bytes;
    bad[0] ^= 0xff;
    FrameReader reader;
    Frame out;
    reader.feed(bad.data(), 4);
    EXPECT_THROW(reader.next(out), ProtocolError);
  }
  {
    // Bad version.
    auto bad = bytes;
    bad[4] = 0x7f;
    FrameReader reader;
    Frame out;
    reader.feed(bad.data(), bad.size());
    EXPECT_THROW(reader.next(out), ProtocolError);
  }
  {
    // Unknown message type.
    auto bad = bytes;
    bad[6] = 99;
    FrameReader reader;
    Frame out;
    reader.feed(bad.data(), bad.size());
    EXPECT_THROW(reader.next(out), ProtocolError);
  }
  {
    // Oversized payload length.
    auto bad = bytes;
    bad[16] = 0xff;
    bad[17] = 0xff;
    bad[18] = 0xff;
    bad[19] = 0xff;
    FrameReader reader;
    Frame out;
    reader.feed(bad.data(), bad.size());
    EXPECT_THROW(reader.next(out), ProtocolError);
  }
  {
    // Truncated: header promises more payload than arrives — no frame,
    // no throw (the stream may simply still be in flight).
    const std::vector<std::uint8_t> full =
        encode_frame(make_frame(MsgType::kComputeMis, 2,
                                ComputeMisRequest{1, {2, 3}}));
    FrameReader reader;
    Frame out;
    reader.feed(full.data(), full.size() - 4);
    EXPECT_FALSE(reader.next(out));
  }
  {
    // Trailing payload bytes: framing accepts, strict parse rejects.
    Frame padded = good;
    padded.type = MsgType::kComputeMis;
    padded.payload = make_frame(MsgType::kComputeMis, 3,
                                ComputeMisRequest{1, {2, 3}})
                         .payload;
    padded.payload.push_back(0);
    EXPECT_THROW(parse_payload<ComputeMisRequest>(padded), ProtocolError);
  }
  {
    // Payload underflow inside a decoder.
    Frame short_frame{MsgType::kComputeMis, 4, {1, 2, 3}};
    EXPECT_THROW(parse_payload<ComputeMisRequest>(short_frame),
                 ProtocolError);
  }
  {
    // A huge element count prefix must be rejected before any allocation.
    Frame bad{MsgType::kQuery, 5, {}};
    PayloadWriter w(bad.payload);
    w.u64(1);          // graph_id
    w.u32(2);          // alpha
    w.u64(3);          // seed
    w.u32(0xffffffff); // node count with no bytes behind it
    EXPECT_THROW(parse_payload<QueryRequest>(bad), ProtocolError);
  }
  {
    // Unknown metrics payload version: strict decoders refuse rather
    // than guess at a future exposition format.
    Frame bad{MsgType::kMetrics, 6, {}};
    PayloadWriter w(bad.payload);
    w.u16(2);  // only version 1 is defined
    EXPECT_THROW(parse_payload<MetricsRequest>(bad), ProtocolError);
  }
  {
    // clear_after is a strict boolean on the wire.
    Frame bad{MsgType::kDumpRecorder, 7, {}};
    PayloadWriter w(bad.payload);
    w.u8(2);
    EXPECT_THROW(parse_payload<DumpRecorderRequest>(bad), ProtocolError);
  }
}

TEST(ServeDynamicGraph, UpdateSemanticsAndAtomicity) {
  DynamicGraph g(graph::from_edges(4, std::vector<graph::Edge>{{0, 1},
                                                               {1, 2}}));
  const std::uint64_t base_hash = g.content_hash();

  // No-ops: inserting an existing edge (either orientation) and removing
  // a non-edge apply zero ops and keep the content hash.
  const std::vector<EdgeUpdate> noops = {{UpdateOp::kInsertEdge, 1, 0},
                                         {UpdateOp::kRemoveEdge, 0, 3}};
  EXPECT_EQ(g.apply(noops), 0u);
  EXPECT_EQ(g.content_hash(), base_hash);

  // Add a vertex, connect it, detach an old hub.
  const std::vector<EdgeUpdate> batch = {{UpdateOp::kAddVertex, 0, 0},
                                         {UpdateOp::kInsertEdge, 4, 0},
                                         {UpdateOp::kDetachVertex, 1, 0}};
  EXPECT_EQ(g.apply(batch), 3u);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 1u);  // {0,4} only; 1's edges detached
  EXPECT_NE(g.content_hash(), base_hash);

  // Atomicity: an invalid op anywhere rejects the whole batch.
  const std::uint64_t pre = g.content_hash();
  const std::vector<EdgeUpdate> poisoned = {{UpdateOp::kInsertEdge, 0, 2},
                                            {UpdateOp::kInsertEdge, 3, 3}};
  EXPECT_THROW(g.apply(poisoned), ServeError);
  EXPECT_EQ(g.content_hash(), pre);
  EXPECT_EQ(g.num_edges(), 1u);

  const std::vector<EdgeUpdate> out_of_range = {{UpdateOp::kInsertEdge, 0,
                                                 99}};
  EXPECT_THROW(g.apply(out_of_range), ServeError);
  const std::vector<EdgeUpdate> detach_oob = {{UpdateOp::kDetachVertex, 99,
                                               0}};
  EXPECT_THROW(g.apply(detach_oob), ServeError);
}

TEST(ServeContentHash, TracksStructureNotIdentity) {
  const graph::Graph a = test_graph(120, 5);
  const graph::Graph b = test_graph(120, 5);
  const graph::Graph c = test_graph(120, 6);
  EXPECT_EQ(graph::content_hash(a), graph::content_hash(b));
  EXPECT_NE(graph::content_hash(a), graph::content_hash(c));

  // An update that round-trips the structure restores the hash.
  DynamicGraph d{test_graph(120, 5)};
  const std::uint64_t before = d.content_hash();
  const std::vector<EdgeUpdate> there = {{UpdateOp::kInsertEdge, 3, 99}};
  const std::vector<EdgeUpdate> back = {{UpdateOp::kRemoveEdge, 3, 99}};
  if (d.apply(there) == 1) {
    (void)d.apply(back);
    EXPECT_EQ(d.content_hash(), before);
  }
}

TEST(ServeService, CacheHitsByContentNotId) {
  MisService service;
  const graph::Graph g = test_graph(150, 21);
  const ComputeParams params{2, 77};

  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  const LoadGraphReply loaded = service.load_graph(load);
  EXPECT_EQ(loaded.content_hash, graph::content_hash(g));

  const ComputeMisReply first = service.compute_mis({1, params});
  EXPECT_EQ(first.cache_hit, 0u);
  EXPECT_EQ(first.certified, 1u);
  const ComputeMisReply second = service.compute_mis({1, params});
  EXPECT_EQ(second.cache_hit, 1u);
  EXPECT_EQ(second.labels_hash, first.labels_hash);
  EXPECT_EQ(second.mis_size, first.mis_size);

  // Same content under a different id shares the cache entry.
  load.graph_id = 2;
  service.load_graph(load);
  const ComputeMisReply other_id = service.compute_mis({2, params});
  EXPECT_EQ(other_id.cache_hit, 1u);
  EXPECT_EQ(other_id.labels_hash, first.labels_hash);

  // A different seed is a different key.
  const ComputeMisReply other_seed = service.compute_mis({1, {2, 78}});
  EXPECT_EQ(other_seed.cache_hit, 0u);

  const StatsReply stats = service.stats();
  EXPECT_EQ(stats.computes, 4u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.graphs_loaded, 2u);
}

TEST(ServeService, CacheEvictsFifoAndCounts) {
  ServiceOptions options;
  options.max_cache_entries = 1;
  MisService service(options);
  const graph::Graph g = test_graph(100, 3);
  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  service.load_graph(load);

  EXPECT_EQ(service.compute_mis({1, {2, 1}}).cache_hit, 0u);
  EXPECT_EQ(service.compute_mis({1, {2, 2}}).cache_hit, 0u);  // evicts seed 1
  EXPECT_EQ(service.compute_mis({1, {2, 1}}).cache_hit, 0u);  // gone again
  EXPECT_GE(service.stats().cache_evictions, 2u);
}

TEST(ServeService, ErrorsCarryCodes) {
  MisService service;  // no gr_loader
  try {
    service.compute_mis({99, {2, 1}});
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownGraph);
  }
  LoadGraphRequest by_path;
  by_path.graph_id = 1;
  by_path.from_path = true;
  by_path.path = "/nonexistent.gr";
  try {
    service.load_graph(by_path);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
  }
  // Stats requests must carry an empty payload.
  Frame stats_with_junk{MsgType::kStats, 1, {0}};
  const Frame reply = service.handle(stats_with_junk);
  ASSERT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(parse_payload<ErrorReply>(reply).code,
            static_cast<std::uint32_t>(ErrorCode::kBadRequest));
}

// --- Live introspection (METRICS / DUMP_RECORDER) -------------------------

TEST(ServeService, MetricsWithoutRegistryIsEmptyDocument) {
  MisService service;
  const Frame reply =
      service.handle(make_frame(MsgType::kMetrics, 1, MetricsRequest{}));
  ASSERT_EQ(reply.type, MsgType::kReplyMetrics);
  const auto m = parse_payload<MetricsReply>(reply);
  EXPECT_EQ(m.version, kMetricsPayloadVersion);
  EXPECT_NE(m.json.find("\"arbmis.metrics.v1\""), std::string::npos);
  EXPECT_NE(m.json.find("\"counters\":{}"), std::string::npos);
}

TEST(ServeService, MetricsSnapshotExcludesItsOwnRequest) {
  obs::Registry registry;
  const obs::ScopedRegistry attach(&registry);
  MisService service;
  const graph::Graph g = test_graph(80, 9);
  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  service.handle(make_frame(MsgType::kLoadGraph, 1, load));
  service.handle(
      make_frame(MsgType::kComputeMis, 2, ComputeMisRequest{1, {2, 5}}));

  const Frame reply =
      service.handle(make_frame(MsgType::kMetrics, 3, MetricsRequest{}));
  const auto m = parse_payload<MetricsReply>(reply);
  // The reply is built before the end-of-handle registry feed, so a
  // snapshot reflects exactly the PRIOR workload and never its own
  // request — that makes a scrape of an idle daemon deterministic, which
  // the serve-smoke CI gate relies on (exact-equality counter diffs).
  EXPECT_NE(m.json.find("\"serve.requests\":2"), std::string::npos) << m.json;
  EXPECT_NE(m.json.find("\"serve.req.load_graph\":1"), std::string::npos);
  EXPECT_NE(m.json.find("\"serve.req.compute_mis\":1"), std::string::npos);
  EXPECT_EQ(m.json.find("\"serve.req.metrics\""), std::string::npos);
  // No embedded manifest either: thread/inbox provenance would break the
  // snapshot's determinism across executors.
  EXPECT_NE(m.json.find("\"manifest\":null"), std::string::npos);
  // The registry itself HAS now metered the metrics request.
  EXPECT_EQ(registry.counter("serve.requests"), 3u);
  EXPECT_EQ(registry.counter("serve.req.metrics"), 1u);
}

TEST(ServeService, DumpRecorderReportsDetachedWithoutRecorder) {
  MisService service;
  const Frame reply = service.handle(
      make_frame(MsgType::kDumpRecorder, 1, DumpRecorderRequest{}));
  ASSERT_EQ(reply.type, MsgType::kReplyDumpRecorder);
  const auto m = parse_payload<DumpRecorderReply>(reply);
  EXPECT_EQ(m.recorder_attached, 0u);
  EXPECT_EQ(m.buffered_events, 0u);
  EXPECT_TRUE(m.artifact.empty());
}

TEST(ServeService, DumpRecorderSnapshotsRingAndClearsOnRequest) {
  obs::RecorderConfig config;
  config.max_bytes = std::size_t{1} << 16;
  obs::FlightRecorder recorder(config);
  const obs::ScopedRecorder attach(&recorder);
  MisService service;
  const graph::Graph g = test_graph(80, 9);
  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  service.handle(make_frame(MsgType::kLoadGraph, 1, load));
  service.handle(
      make_frame(MsgType::kComputeMis, 2, ComputeMisRequest{1, {2, 5}}));

  const auto first = parse_payload<DumpRecorderReply>(service.handle(
      make_frame(MsgType::kDumpRecorder, 3, DumpRecorderRequest{})));
  EXPECT_EQ(first.recorder_attached, 1u);
  EXPECT_GT(first.buffered_events, 0u);
  // The artifact is a complete ARBMISEV stream (magic + version byte),
  // consumable by tools/trace_inspect.py like any on-disk dump. Artifacts
  // embed the recorder's manifest (thread provenance), so tests compare
  // ring_bytes()/decoded events across executors, never artifact bytes.
  ASSERT_GE(first.artifact.size(), 9u);
  EXPECT_EQ(first.artifact.substr(0, 8), "ARBMISEV");
  EXPECT_EQ(static_cast<std::uint8_t>(first.artifact[8]), 0x01);

  // clear_after=1 snapshots, then resets the ring so a scraper can
  // collect disjoint windows. Events emitted after the clear (the tail
  // of the clearing request itself) are all that remains buffered.
  DumpRecorderRequest clear_req;
  clear_req.clear_after = 1;
  const auto cleared = parse_payload<DumpRecorderReply>(
      service.handle(make_frame(MsgType::kDumpRecorder, 4, clear_req)));
  EXPECT_EQ(cleared.recorder_attached, 1u);
  EXPECT_GE(cleared.buffered_events, first.buffered_events);

  const auto after = parse_payload<DumpRecorderReply>(service.handle(
      make_frame(MsgType::kDumpRecorder, 5, DumpRecorderRequest{})));
  EXPECT_LT(after.buffered_events, first.buffered_events);
  EXPECT_GT(after.buffered_events, 0u);  // the clearing request's tail
}

// --- Differential incremental-repair suite --------------------------------

/// Local mirror of the service's dynamic-graph semantics, used to verify
/// final labelings with mis::verify_mask against an independently
/// maintained edge set.
struct MirrorGraph {
  graph::NodeId n = 0;
  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;

  void apply(const EdgeUpdate& op) {
    auto key = [](graph::NodeId a, graph::NodeId b) {
      return std::make_pair(std::min(a, b), std::max(a, b));
    };
    switch (op.op) {
      case UpdateOp::kInsertEdge:
        edges.insert(key(op.u, op.v));
        break;
      case UpdateOp::kRemoveEdge:
        edges.erase(key(op.u, op.v));
        break;
      case UpdateOp::kAddVertex:
        ++n;
        break;
      case UpdateOp::kDetachVertex:
        std::erase_if(edges, [&](const auto& e) {
          return e.first == op.u || e.second == op.u;
        });
        break;
    }
  }

  graph::Graph build() const {
    std::vector<graph::Edge> list;
    for (const auto& [u, v] : edges) list.push_back({u, v});
    return graph::from_edges(n, list);
  }
};

/// The fuzzed request sequence: LOAD, COMPUTE, `updates` mixed batches,
/// VERIFY, QUERY(all nodes), STATS — returned as encoded frames together
/// with the mirror applying the same ops.
std::vector<Frame> fuzzed_sequence(std::uint64_t seed, std::uint32_t updates,
                                   MirrorGraph* mirror) {
  util::Rng rng(seed);
  const graph::Graph g = test_graph(160, seed);
  mirror->n = g.num_nodes();
  for (const graph::Edge e : g.edges()) {
    mirror->edges.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }

  const ComputeParams params{2, seed};
  std::vector<Frame> frames;
  std::uint64_t rid = 1;
  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  frames.push_back(make_frame(MsgType::kLoadGraph, rid++, load));
  frames.push_back(
      make_frame(MsgType::kComputeMis, rid++, ComputeMisRequest{1, params}));

  graph::NodeId n = g.num_nodes();
  for (std::uint32_t b = 0; b < updates; ++b) {
    UpdateEdgesRequest req;
    req.graph_id = 1;
    req.params = params;
    for (std::uint32_t j = 0; j < 3; ++j) {
      const std::uint64_t kind = rng.below(10);
      EdgeUpdate op;
      if (kind < 4) {
        op.op = UpdateOp::kInsertEdge;
        op.u = static_cast<graph::NodeId>(rng.below(n));
        do {
          op.v = static_cast<graph::NodeId>(rng.below(n));
        } while (op.v == op.u);
      } else if (kind < 8) {
        op.op = UpdateOp::kRemoveEdge;
        op.u = static_cast<graph::NodeId>(rng.below(n));
        do {
          op.v = static_cast<graph::NodeId>(rng.below(n));
        } while (op.v == op.u);
      } else if (kind == 8) {
        op.op = UpdateOp::kAddVertex;
        ++n;
      } else {
        op.op = UpdateOp::kDetachVertex;
        op.u = static_cast<graph::NodeId>(rng.below(n));
      }
      req.ops.push_back(op);
      mirror->apply(op);
    }
    frames.push_back(make_frame(MsgType::kUpdateEdges, rid++, req));
  }

  frames.push_back(
      make_frame(MsgType::kVerify, rid++, VerifyRequest{1, params}));
  QueryRequest query;
  query.graph_id = 1;
  query.params = params;
  for (graph::NodeId v = 0; v < n; ++v) query.nodes.push_back(v);
  frames.push_back(make_frame(MsgType::kQuery, rid++, query));
  frames.push_back(Frame{MsgType::kStats, rid++, {}});
  return frames;
}

struct SequenceResult {
  std::vector<std::vector<std::uint8_t>> reply_bytes;
  std::string events_jsonl;
  std::uint32_t updates_total = 0;
  std::uint32_t updates_certified = 0;
  std::uint32_t repairs_incremental = 0;
  QueryReply final_query;
  VerifyReply verify;
};

SequenceResult run_sequence(const std::vector<Frame>& frames,
                            std::uint32_t num_threads) {
  ServiceOptions options;
  options.num_threads = num_threads;
  MisService service(options);
  obs::VectorSink sink;
  SequenceResult result;
  {
    obs::ScopedSink scope(&sink);
    for (const Frame& f : frames) {
      const Frame reply = service.handle(f);
      EXPECT_NE(reply.type, MsgType::kError)
          << "request " << f.request_id << ": "
          << parse_payload<ErrorReply>(reply).message;
      result.reply_bytes.push_back(encode_frame(reply));
      if (reply.type == MsgType::kReplyUpdateEdges) {
        const auto m = parse_payload<UpdateEdgesReply>(reply);
        ++result.updates_total;
        if (m.certified != 0) ++result.updates_certified;
        if (m.incremental != 0) ++result.repairs_incremental;
      } else if (reply.type == MsgType::kReplyQuery) {
        result.final_query = parse_payload<QueryReply>(reply);
      } else if (reply.type == MsgType::kReplyVerify) {
        result.verify = parse_payload<VerifyReply>(reply);
      }
    }
  }
  result.events_jsonl = sink.to_jsonl();
  return result;
}

TEST(ServeDifferential, FuzzedUpdatesRepairCertifyAndMatchAcrossThreads) {
  MirrorGraph mirror;
  const std::vector<Frame> frames = fuzzed_sequence(2026, 100, &mirror);

  const SequenceResult serial = run_sequence(frames, 0);
  EXPECT_EQ(serial.updates_total, 100u);
  EXPECT_EQ(serial.updates_certified, 100u) << "an update failed to certify";
  EXPECT_GT(serial.repairs_incremental, 0u)
      << "no update took the incremental path";
  EXPECT_EQ(serial.verify.ok, 1u);

  // Independent verification: rebuild the final graph from the mirror and
  // check the served labels are a genuine MIS of it.
  const graph::Graph final_graph = mirror.build();
  ASSERT_EQ(serial.final_query.states.size(), final_graph.num_nodes());
  std::vector<std::uint8_t> in_mis(final_graph.num_nodes(), 0);
  for (graph::NodeId v = 0; v < final_graph.num_nodes(); ++v) {
    if (serial.final_query.states[v] ==
        static_cast<std::uint8_t>(mis::MisState::kInMis)) {
      in_mis[v] = 1;
    }
  }
  const mis::Verification verification =
      mis::verify_mask(final_graph, in_mis);
  EXPECT_TRUE(verification.ok()) << verification.describe();

  // Byte-identical replies AND identical telemetry across thread counts.
  for (const std::uint32_t threads : {2u, 8u}) {
    const SequenceResult parallel = run_sequence(frames, threads);
    ASSERT_EQ(parallel.reply_bytes.size(), serial.reply_bytes.size());
    for (std::size_t i = 0; i < serial.reply_bytes.size(); ++i) {
      ASSERT_EQ(parallel.reply_bytes[i], serial.reply_bytes[i])
          << "reply " << i << " differs at threads=" << threads;
    }
    EXPECT_EQ(parallel.events_jsonl, serial.events_jsonl)
        << "event stream differs at threads=" << threads;
  }
}

TEST(ServeDifferential, StorageBackendsProduceIdenticalResults) {
  const graph::Graph g = test_graph(140, 9);
  const std::string path = ::testing::TempDir() + "arbmis_serve_backend.gr";
  graph::storage::write_gr(path, g);

  ServiceOptions options;
  options.gr_loader = [](const std::string& p) -> LoadedGraph {
    auto mapped = std::make_shared<graph::storage::MappedGraph>(
        graph::storage::MappedGraph::open(p));
    const graph::GraphView view = mapped->view();
    return {std::move(mapped), view};
  };
  MisService service(options);

  LoadGraphRequest inline_load;
  inline_load.graph_id = 1;
  inline_load.num_nodes = g.num_nodes();
  inline_load.edges = g.edges();
  const LoadGraphReply from_memory = service.load_graph(inline_load);

  LoadGraphRequest path_load;
  path_load.graph_id = 2;
  path_load.from_path = true;
  path_load.path = path;
  const LoadGraphReply from_disk = service.load_graph(path_load);

  EXPECT_EQ(from_disk.num_nodes, from_memory.num_nodes);
  EXPECT_EQ(from_disk.num_edges, from_memory.num_edges);
  EXPECT_EQ(from_disk.content_hash, from_memory.content_hash);

  const ComputeParams params{2, 5};
  const ComputeMisReply memory_mis = service.compute_mis({1, params});
  const ComputeMisReply disk_mis = service.compute_mis({2, params});
  EXPECT_EQ(memory_mis.cache_hit, 0u);
  EXPECT_EQ(disk_mis.cache_hit, 1u)  // same content hash -> shared entry
      << "mapped backend produced a different cache key";
  EXPECT_EQ(disk_mis.labels_hash, memory_mis.labels_hash);

  // Updates work on mapped-backed graphs too (materialize-on-write).
  const UpdateEdgesReply updated = service.update_edges(
      {2, params, {{UpdateOp::kAddVertex, 0, 0}}});
  EXPECT_EQ(updated.certified, 1u);
  std::remove(path.c_str());
}

// --- TCP end-to-end -------------------------------------------------------

TEST(ServeServer, EndToEndOverLoopback) {
  MisService service;
  Server server(service, {});
  server.start();

  Client client("127.0.0.1", server.port());
  const graph::Graph g = test_graph(120, 31);
  const ComputeParams params{2, 8};
  const LoadGraphReply loaded =
      client.load_inline(1, g.num_nodes(), g.edges());
  EXPECT_EQ(loaded.num_nodes, g.num_nodes());

  const ComputeMisReply computed = client.compute(1, params);
  EXPECT_EQ(computed.certified, 1u);
  EXPECT_GT(computed.mis_size, 0u);

  const QueryReply queried = client.query(1, params, {0, 1, 2});
  ASSERT_EQ(queried.states.size(), 3u);

  const UpdateEdgesReply updated =
      client.update(1, params, {{UpdateOp::kDetachVertex, 0, 0}});
  EXPECT_EQ(updated.certified, 1u);
  EXPECT_EQ(updated.epoch, 1u);

  const VerifyReply verified = client.verify(1, params);
  EXPECT_EQ(verified.ok, 1u);

  const StatsReply stats = client.stats();
  EXPECT_EQ(stats.requests_total, 6u);  // the stats request counts itself
  EXPECT_EQ(stats.errors, 0u);

  // Request-level errors come back as typed ServeError, connection intact.
  EXPECT_THROW(client.compute(99, params), ServeError);
  EXPECT_EQ(client.stats().errors, 1u);

  server.stop();
}

TEST(ServeServer, MalformedBytesGetErrorFrameThenHangup) {
  MisService service;
  Server server(service, {});
  server.start();

  {
    // Garbage magic: the server answers one kError frame and drops the
    // connection (the reader is poisoned; resynchronization is impossible).
    Client client("127.0.0.1", server.port());
    const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00,
                                               0x01, 0x02, 0x03, 0x04, 0x05};
    const Frame reply = client.roundtrip_raw(garbage);
    EXPECT_EQ(reply.type, MsgType::kError);
    EXPECT_EQ(parse_payload<ErrorReply>(reply).code,
              static_cast<std::uint32_t>(ErrorCode::kBadRequest));
  }
  {
    // Valid framing, unparseable payload: error reply, connection stays up.
    Client client("127.0.0.1", server.port());
    Frame bad{MsgType::kComputeMis, 0, {1, 2, 3}};
    const Frame reply = client.roundtrip_raw(encode_frame(bad));
    EXPECT_EQ(reply.type, MsgType::kError);
    const graph::Graph g = test_graph(60, 1);
    const LoadGraphReply loaded =
        client.load_inline(1, g.num_nodes(), g.edges());
    EXPECT_EQ(loaded.num_nodes, g.num_nodes());
  }
  server.stop();
}

TEST(ServeFault, CertifyLabelsAcceptsGoodRejectsCorrupt) {
  const graph::Graph g = test_graph(100, 13);
  MisService service;
  LoadGraphRequest load;
  load.graph_id = 1;
  load.num_nodes = g.num_nodes();
  load.edges = g.edges();
  service.load_graph(load);
  service.compute_mis({1, {2, 4}});

  QueryRequest all;
  all.graph_id = 1;
  all.params = {2, 4};
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) all.nodes.push_back(v);
  const QueryReply reply = service.query(all);
  std::vector<mis::MisState> state;
  for (const std::uint8_t s : reply.states) {
    state.push_back(static_cast<mis::MisState>(s));
  }

  const fault::CertifyReport good = fault::certify_labels(g, state, 99);
  EXPECT_TRUE(good.certified);
  EXPECT_GT(good.rounds, 0u);

  // Flip one member out of the set: coverage breaks somewhere.
  std::vector<mis::MisState> corrupt = state;
  for (mis::MisState& s : corrupt) {
    if (s == mis::MisState::kInMis) {
      s = mis::MisState::kCovered;
      break;
    }
  }
  EXPECT_FALSE(fault::certify_labels(g, corrupt, 99).certified);

  // Undecided labels can never certify.
  std::vector<mis::MisState> undecided = state;
  undecided[0] = mis::MisState::kUndecided;
  EXPECT_FALSE(fault::certify_labels(g, undecided, 99).certified);
}

}  // namespace
}  // namespace arbmis::serve
