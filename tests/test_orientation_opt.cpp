// Tests for max-flow based optimal orientations and exact
// pseudoarboricity (the tight sandwich around the paper's α).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/orientation_opt.h"
#include "graph/properties.h"

namespace arbmis::graph {
namespace {

TEST(Pseudoarboricity, KnownValues) {
  EXPECT_EQ(pseudoarboricity(Graph(5)), 0u);
  EXPECT_EQ(pseudoarboricity(gen::path(10)), 1u);
  EXPECT_EQ(pseudoarboricity(gen::cycle(10)), 1u);  // m/n = 1
  EXPECT_EQ(pseudoarboricity(gen::star(20)), 1u);
  // K4: max density 6/4 -> 2; K5: 10/5 -> 2; K6: 15/6 -> 3.
  EXPECT_EQ(pseudoarboricity(gen::complete(4)), 2u);
  EXPECT_EQ(pseudoarboricity(gen::complete(5)), 2u);
  EXPECT_EQ(pseudoarboricity(gen::complete(6)), 3u);
  // 4x4 torus is 4-regular: density 2.
  EXPECT_EQ(pseudoarboricity(gen::torus(4, 4)), 2u);
}

TEST(Pseudoarboricity, FeasibilityMonotone) {
  util::Rng rng(3);
  const Graph g = gen::gnp(40, 0.2, rng);
  const NodeId p = pseudoarboricity(g);
  ASSERT_GE(p, 1u);
  EXPECT_FALSE(has_orientation_with_outdegree(g, p - 1));
  EXPECT_TRUE(has_orientation_with_outdegree(g, p));
  EXPECT_TRUE(has_orientation_with_outdegree(g, p + 1));
}

TEST(MinOutdegreeOrientation, AchievesTheOptimum) {
  util::Rng rng(5);
  for (const Graph& g :
       {gen::complete(6), gen::random_apollonian(60, rng),
        gen::union_of_random_forests(60, 3, rng), gen::gnp(60, 0.15, rng),
        gen::hubbed_forest_union(100, 2, 4, rng)}) {
    const NodeId p = pseudoarboricity(g);
    const Orientation orientation = min_outdegree_orientation(g);
    EXPECT_EQ(orientation.max_out_degree(), p);
    // Every edge oriented exactly once.
    std::uint64_t oriented = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId parent : orientation.parents(v)) {
        EXPECT_TRUE(g.has_edge(v, parent));
        ++oriented;
      }
    }
    EXPECT_EQ(oriented, g.num_edges());
  }
}

TEST(MinOutdegreeOrientation, NeverWorseThanDegeneracy) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::gnp(50, 0.1 + 0.02 * trial, rng);
    EXPECT_LE(min_outdegree_orientation(g).max_out_degree(),
              degeneracy_orientation(g).max_out_degree());
  }
}

TEST(TightBounds, SandwichValidAndOftenExact) {
  util::Rng rng(9);
  // Families with known arboricity.
  struct Case {
    Graph g;
    NodeId alpha;
  };
  std::vector<Case> cases;
  cases.push_back({gen::complete(6), 3});            // K6: ceil(15/5)
  cases.push_back({gen::complete(4), 2});            // K4: ceil(6/3)
  cases.push_back({gen::random_tree(100, rng), 1});  // forest
  cases.push_back({gen::cycle(9), 2});               // cycle: 2 forests
  for (const Case& c : cases) {
    const TightArboricityBounds bounds = tight_arboricity_bounds(c.g);
    EXPECT_LE(bounds.lower, c.alpha);
    EXPECT_GE(bounds.upper, c.alpha);
    EXPECT_LE(bounds.lower, bounds.upper);
  }
  // Exactness where the sandwich closes: forests give p = α = 1 with a
  // matching density bound. Cliques keep the p vs p+1 ambiguity — K4 is
  // [2, 3] and K6 is [3, 4]; their true arboricities (2 and 3) sit at the
  // lower ends, which is exactly the sandwich's residual uncertainty.
  EXPECT_TRUE(tight_arboricity_bounds(gen::random_tree(50, rng)).exact());
  const TightArboricityBounds k4 = tight_arboricity_bounds(gen::complete(4));
  EXPECT_EQ(k4.lower, 2u);
  EXPECT_EQ(k4.upper, 3u);
  const TightArboricityBounds k6 = tight_arboricity_bounds(gen::complete(6));
  EXPECT_EQ(k6.lower, 3u);
  EXPECT_EQ(k6.upper, 4u);
}

TEST(TightBounds, ForestUnionCertificates) {
  util::Rng rng(11);
  for (NodeId k : {1u, 2u, 3u}) {
    const Graph g = gen::union_of_random_forests(80, k, rng);
    const TightArboricityBounds bounds = tight_arboricity_bounds(g);
    EXPECT_LE(bounds.upper, k + 1);  // alpha <= k, so upper <= p+1 <= k+1
    EXPECT_GE(bounds.lower, 1u);
  }
}

TEST(Pseudoarboricity, EdgelessAndTiny) {
  EXPECT_EQ(pseudoarboricity(Graph(0)), 0u);
  EXPECT_EQ(pseudoarboricity(gen::path(2)), 1u);
  const TightArboricityBounds empty = tight_arboricity_bounds(Graph(3));
  EXPECT_EQ(empty.lower, 0u);
  EXPECT_EQ(empty.upper, 0u);
}

}  // namespace
}  // namespace arbmis::graph
