// Unit tests for the CSR Graph and Builder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.h"

namespace arbmis::graph {
namespace {

TEST(Builder, RejectsSelfLoop) {
  Builder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(Builder, RejectsOutOfRange) {
  Builder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(7, 1), std::invalid_argument);
}

TEST(Builder, DeduplicatesParallelEdges) {
  Builder b(3);
  b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, IsolatedNodes) {
  const Graph g = Builder(5).build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, TriangleBasics) {
  Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, NeighborsAreSorted) {
  Builder b(6);
  b.add_edge(3, 5).add_edge(3, 0).add_edge(3, 4).add_edge(3, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i], nbrs[i + 1]);
  }
}

TEST(Graph, PortOfRoundTrips) {
  Builder b(6);
  b.add_edge(2, 0).add_edge(2, 4).add_edge(2, 5);
  const Graph g = b.build();
  for (NodeId w : g.neighbors(2)) {
    const NodeId port = g.port_of(2, w);
    EXPECT_EQ(g.neighbors(2)[port], w);
  }
  EXPECT_THROW(g.port_of(2, 1), std::invalid_argument);
}

TEST(Graph, EdgesReportsEachOnce) {
  Builder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 0);
  const Graph g = b.build();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(Graph, FromEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, MaxDegreeMatchesStar) {
  Builder b(10);
  for (NodeId i = 1; i < 10; ++i) b.add_edge(0, i);
  EXPECT_EQ(b.build().max_degree(), 9u);
}

}  // namespace
}  // namespace arbmis::graph
