// Tests for the Barenboim–Elkin H-partition forest decomposition.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/forest_decomposition.h"

namespace arbmis::mis {
namespace {

class ForestDecompSweep
    : public ::testing::TestWithParam<std::tuple<graph::NodeId, std::uint64_t>> {
};

TEST_P(ForestDecompSweep, DecomposesUnionOfForests) {
  const auto [alpha, seed] = GetParam();
  util::Rng rng(seed);
  const graph::Graph g =
      graph::gen::union_of_random_forests(200, alpha, rng);
  const auto result =
      ForestDecomposition::run(g, {.alpha = alpha, .eps = 2.0});
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.stats.all_halted);
  // (2+eps)·α forests at most.
  EXPECT_LE(result.forests.num_forests(), 4 * alpha);
  EXPECT_TRUE(graph::valid_forest_partition(g, result.forests));
  EXPECT_TRUE(result.orientation.is_acyclic());
  EXPECT_LE(result.orientation.max_out_degree(), 4 * alpha);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSeeds, ForestDecompSweep,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(3, 91, 512)));

TEST(ForestDecomposition, TreeNeedsFewForests) {
  util::Rng rng(5);
  const graph::Graph t = graph::gen::random_tree(300, rng);
  const auto result = ForestDecomposition::run(t, {.alpha = 1, .eps = 2.0});
  ASSERT_TRUE(result.complete);
  EXPECT_LE(result.forests.num_forests(), 4u);
  EXPECT_TRUE(graph::valid_forest_partition(t, result.forests));
}

TEST(ForestDecomposition, ApollonianWithAlpha3) {
  util::Rng rng(9);
  const graph::Graph g = graph::gen::random_apollonian(300, rng);
  const auto result = ForestDecomposition::run(g, {.alpha = 3, .eps = 2.0});
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(graph::valid_forest_partition(g, result.forests));
}

TEST(ForestDecomposition, LevelsRespectThreshold) {
  util::Rng rng(13);
  const graph::Graph g = graph::gen::k_degenerate(200, 2, rng);
  ForestDecomposition algorithm(g, {.alpha = 2, .eps = 2.0});
  sim::Network net(g, 1);
  net.run(algorithm, 1 << 20);
  const auto& levels = algorithm.levels();
  // Every node assigned, and counting same-or-later-level neighbors
  // bounds out-degree by the threshold.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NE(levels[v], ForestDecomposition::kUnassigned);
    graph::NodeId later = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      later += (levels[w] > levels[v] || (levels[w] == levels[v] && w > v));
    }
    EXPECT_LE(later, algorithm.threshold());
  }
}

TEST(ForestDecomposition, StallsGracefullyWhenAlphaTooSmall) {
  // K_8 has arboricity 4; alpha = 1 gives threshold 3 < min degree 7,
  // so no node is ever assigned.
  const graph::Graph g = graph::gen::complete(8);
  const auto result =
      ForestDecomposition::run(g, {.alpha = 1, .eps = 1.0}, 1, 50);
  EXPECT_FALSE(result.complete);
}

TEST(ForestDecomposition, RoundsLogarithmic) {
  util::Rng rng(17);
  const graph::Graph small = graph::gen::union_of_random_forests(128, 2, rng);
  const graph::Graph large =
      graph::gen::union_of_random_forests(4096, 2, rng);
  const auto rs = ForestDecomposition::run(small, {.alpha = 2, .eps = 2.0});
  const auto rl = ForestDecomposition::run(large, {.alpha = 2, .eps = 2.0});
  ASSERT_TRUE(rs.complete);
  ASSERT_TRUE(rl.complete);
  // 32x nodes should cost only a few extra rounds (O(log n) levels).
  EXPECT_LE(rl.stats.rounds, rs.stats.rounds + 24);
}

TEST(ForestDecomposition, IsolatedNodesGetLevelZero) {
  const graph::Graph g = graph::Builder(4).build();
  const auto result = ForestDecomposition::run(g, {.alpha = 1, .eps = 2.0});
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.forests.num_forests(), 0u);
}

}  // namespace
}  // namespace arbmis::mis
