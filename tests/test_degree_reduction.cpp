// Tests for the degree-reduction pre-phase and partial-result flushing.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/degree_reduction.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

TEST(FinalizePartial, FlushesUnprocessedJoins) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<MisState> state{MisState::kInMis, MisState::kUndecided,
                              MisState::kUndecided};
  const std::uint64_t flushed = finalize_partial(g, state);
  EXPECT_EQ(flushed, 1u);
  EXPECT_EQ(state[1], MisState::kCovered);
  EXPECT_EQ(state[2], MisState::kUndecided);
}

TEST(FinalizePartial, NoopOnConsistentState) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<MisState> state{MisState::kInMis, MisState::kCovered,
                              MisState::kInMis};
  EXPECT_EQ(finalize_partial(g, state), 0u);
}

TEST(DegreeReduction, PartialResultIsConsistent) {
  util::Rng rng(13);
  const graph::Graph g = graph::gen::gnp(400, 0.05, rng);
  const DegreeReductionResult result = degree_reduction(g, 4, 1);
  // Joined nodes are independent.
  std::vector<std::uint8_t> mask(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    mask[v] = (result.state[v] == MisState::kInMis) ? 1 : 0;
  }
  EXPECT_TRUE(is_independent(g, mask));
  // Covered nodes have an MIS neighbor; undecided ones have none.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bool has_mis_neighbor = false;
    for (graph::NodeId w : g.neighbors(v)) {
      has_mis_neighbor |= (mask[w] != 0);
    }
    if (result.state[v] == MisState::kCovered) {
      EXPECT_TRUE(has_mis_neighbor);
    }
    if (result.state[v] == MisState::kUndecided) {
      EXPECT_FALSE(has_mis_neighbor);
    }
  }
}

TEST(DegreeReduction, ResidualMaskMatchesStates) {
  util::Rng rng(17);
  const graph::Graph g = graph::gen::gnp(200, 0.05, rng);
  const DegreeReductionResult result = degree_reduction(g, 3, 2);
  std::uint64_t undecided = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.residual_mask[v] != 0,
              result.state[v] == MisState::kUndecided);
    undecided += result.residual_mask[v];
  }
  EXPECT_EQ(undecided, result.residual_nodes);
}

TEST(DegreeReduction, MoreRoundsShrinkResidual) {
  util::Rng rng(19);
  const graph::Graph g = graph::gen::gnp(500, 0.04, rng);
  const auto few = degree_reduction(g, 2, 3);
  const auto many = degree_reduction(g, 40, 3);
  EXPECT_LE(many.residual_nodes, few.residual_nodes);
  EXPECT_EQ(many.residual_nodes, 0u);  // 40 rounds finishes this graph whp
}

TEST(DegreeReduction, BudgetFormulaGrowsSlowly) {
  const auto small = degree_reduction_budget(1 << 10);
  const auto large = degree_reduction_budget(1 << 20);
  EXPECT_GT(small, 0u);
  EXPECT_LT(large, 2 * small);  // sqrt(log n · log log n) growth
}

TEST(DegreeReduction, ReportsResidualDegree) {
  // A star survives few rounds badly for the center; residual degree is
  // always <= its true degree and 0 when nothing is left.
  const graph::Graph g = graph::gen::star(50);
  const auto result = degree_reduction(g, 50, 1);
  EXPECT_EQ(result.residual_nodes, 0u);
  EXPECT_EQ(result.residual_max_degree, 0u);
}

}  // namespace
}  // namespace arbmis::mis
