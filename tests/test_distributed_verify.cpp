// Tests for the 2-round distributed MIS self-check.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/distributed_verify.h"
#include "mis/verifier.h"
#include "mis/metivier.h"

namespace arbmis::mis {
namespace {

TEST(DistributedVerify, AcceptsRealMis) {
  util::Rng rng(3);
  const graph::Graph g = graph::gen::gnp(300, 0.04, rng);
  const MisResult mis = MetivierMis::run(g, 1);
  const auto check = DistributedMisCheck::run(g, mis.state);
  EXPECT_TRUE(check.all_ok);
  EXPECT_EQ(check.stats.rounds, 1u);
}

TEST(DistributedVerify, FlagsIndependenceViolationLocally) {
  const graph::Graph g = graph::gen::path(4);
  std::vector<MisState> state{MisState::kInMis, MisState::kInMis,
                              MisState::kCovered, MisState::kInMis};
  const auto check = DistributedMisCheck::run(g, state);
  EXPECT_FALSE(check.all_ok);
  // Both endpoints of the violating edge flag it; the others are fine.
  EXPECT_EQ(check.local_ok[0], 0);
  EXPECT_EQ(check.local_ok[1], 0);
  EXPECT_EQ(check.local_ok[2], 1);
  EXPECT_EQ(check.local_ok[3], 1);
}

TEST(DistributedVerify, FlagsFalseCoverage) {
  const graph::Graph g = graph::gen::path(3);
  std::vector<MisState> state{MisState::kInMis, MisState::kCovered,
                              MisState::kCovered};
  const auto check = DistributedMisCheck::run(g, state);
  EXPECT_FALSE(check.all_ok);
  EXPECT_EQ(check.local_ok[1], 1);
  EXPECT_EQ(check.local_ok[2], 0);  // claims coverage, has no member
}

TEST(DistributedVerify, FlagsUndecidedNodes) {
  const graph::Graph g = graph::gen::path(2);
  std::vector<MisState> state{MisState::kInMis, MisState::kUndecided};
  const auto check = DistributedMisCheck::run(g, state);
  EXPECT_FALSE(check.all_ok);
  EXPECT_EQ(check.local_ok[0], 1);
  EXPECT_EQ(check.local_ok[1], 0);
}

TEST(DistributedVerify, AgreesWithCentralVerifierOnFuzz) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::Graph g = graph::gen::gnp(60, 0.08, rng);
    // Random (mostly invalid) labelings.
    std::vector<MisState> state(g.num_nodes());
    for (auto& s : state) {
      const auto r = rng.below(3);
      s = r == 0 ? MisState::kInMis
                 : (r == 1 ? MisState::kCovered : MisState::kUndecided);
    }
    MisResult as_result;
    as_result.state = state;
    const bool central = verify(g, as_result).ok();
    const bool distributed = DistributedMisCheck::run(g, state).all_ok;
    EXPECT_EQ(central, distributed) << "trial " << trial;
  }
}

TEST(DistributedVerify, RejectsSizeMismatch) {
  const graph::Graph g = graph::gen::path(3);
  EXPECT_THROW(DistributedMisCheck(g, {MisState::kInMis}),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbmis::mis
