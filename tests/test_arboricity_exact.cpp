// Tests for exact arboricity (matroid-union partition).
#include <gtest/gtest.h>

#include "graph/arboricity_exact.h"
#include "graph/generators.h"
#include "graph/orientation_opt.h"
#include "graph/properties.h"

namespace arbmis::graph {
namespace {

TEST(ExactArboricity, KnownValues) {
  EXPECT_EQ(exact_arboricity(Graph(4)), 0u);
  EXPECT_EQ(exact_arboricity(gen::path(10)), 1u);
  EXPECT_EQ(exact_arboricity(gen::star(10)), 1u);
  EXPECT_EQ(exact_arboricity(gen::cycle(8)), 2u);  // one cycle needs 2
  // Nash-Williams on cliques: ceil(n/2).
  EXPECT_EQ(exact_arboricity(gen::complete(4)), 2u);
  EXPECT_EQ(exact_arboricity(gen::complete(5)), 3u);
  EXPECT_EQ(exact_arboricity(gen::complete(6)), 3u);
  EXPECT_EQ(exact_arboricity(gen::complete(7)), 4u);
  // Complete bipartite K_{3,3}: ceil(9/5) = 2.
  EXPECT_EQ(exact_arboricity(gen::complete_bipartite(3, 3)), 2u);
  // Grid (planar, has cycles): 2.
  EXPECT_EQ(exact_arboricity(gen::grid(5, 5)), 2u);
}

TEST(ExactArboricity, ApollonianIsThree) {
  util::Rng rng(3);
  // Maximal planar with n >= 5: m = 3n-6 > 2(n-1), so alpha = 3 exactly.
  EXPECT_EQ(exact_arboricity(gen::random_apollonian(40, rng)), 3u);
}

TEST(ExactArboricity, WithinSandwichAlways) {
  util::Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = gen::gnp(36, 0.08 + 0.03 * trial, rng);
    const NodeId alpha = exact_arboricity(g);
    const TightArboricityBounds bounds = tight_arboricity_bounds(g);
    EXPECT_GE(alpha, bounds.lower) << "trial " << trial;
    EXPECT_LE(alpha, bounds.upper) << "trial " << trial;
  }
}

TEST(ExactArboricity, ForestUnionsAtMostK) {
  util::Rng rng(7);
  for (NodeId k : {1u, 2u, 3u, 4u}) {
    const Graph g = gen::union_of_random_forests(60, k, rng);
    EXPECT_LE(exact_arboricity(g), k);
  }
}

TEST(PartitionIntoForests, ProducesValidPartitions) {
  util::Rng rng(9);
  for (const Graph& g :
       {gen::complete(7), gen::random_apollonian(50, rng),
        gen::gnp(40, 0.2, rng), gen::hubbed_forest_union(80, 3, 4, rng)}) {
    const NodeId alpha = exact_arboricity(g);
    const auto partition = partition_into_forests(g, alpha);
    ASSERT_TRUE(partition.has_value());
    EXPECT_TRUE(valid_forest_partition(g, *partition));
    EXPECT_EQ(partition->num_forests(), alpha);
    // One fewer forest must fail.
    if (alpha > 1) {
      EXPECT_FALSE(partition_into_forests(g, alpha - 1).has_value());
    }
  }
}

TEST(PartitionIntoForests, ZeroForestsOnlyForEdgeless) {
  EXPECT_TRUE(partition_into_forests(Graph(5), 0).has_value());
  EXPECT_FALSE(partition_into_forests(gen::path(3), 0).has_value());
}

TEST(ExactArboricity, CertificateMatches) {
  util::Rng rng(11);
  const Graph g = gen::gnp(40, 0.15, rng);
  const ArboricityCertificate certificate = exact_arboricity_certified(g);
  EXPECT_EQ(certificate.arboricity, exact_arboricity(g));
  if (certificate.arboricity > 0) {
    EXPECT_TRUE(valid_forest_partition(g, certificate.forests));
  }
}

TEST(ExactArboricity, AgreesWithPseudoarboricitySandwich) {
  // p <= alpha <= p+1 on a battery of random graphs.
  util::Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::gnm(30, 60 + 10 * trial, rng);
    const NodeId p = pseudoarboricity(g);
    const NodeId alpha = exact_arboricity(g);
    EXPECT_GE(alpha, p);
    EXPECT_LE(alpha, p + 1);
  }
}

}  // namespace
}  // namespace arbmis::graph
