// Tests for Israeli–Itai maximal matching.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/matching.h"

namespace arbmis::mis {
namespace {

class MatchingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingSweep, MaximalOnBattery) {
  util::Rng rng(GetParam());
  const std::vector<graph::Graph> graphs{
      graph::gen::path(30),
      graph::gen::cycle(31),
      graph::gen::star(40),
      graph::gen::complete(9),
      graph::gen::complete_bipartite(5, 8),
      graph::gen::grid(6, 8),
      graph::gen::random_tree(200, rng),
      graph::gen::gnp(200, 0.04, rng),
      graph::gen::random_apollonian(200, rng),
      graph::gen::hubbed_forest_union(300, 2, 4, rng),
  };
  for (const auto& g : graphs) {
    const MatchingResult result =
        IsraeliItaiMatching::run(g, GetParam() + 17);
    EXPECT_TRUE(verify_maximal_matching(g, result))
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
    EXPECT_TRUE(result.stats.all_halted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingSweep,
                         ::testing::Values(1, 7, 42, 512));

TEST(Matching, EmptyAndTinyGraphs) {
  for (graph::NodeId n : {0u, 1u, 2u}) {
    const graph::Graph g = graph::gen::path(n);
    const MatchingResult result = IsraeliItaiMatching::run(g, 1);
    EXPECT_TRUE(verify_maximal_matching(g, result));
  }
  // Single edge: the two endpoints must match each other.
  const graph::Graph edge = graph::gen::path(2);
  const MatchingResult result = IsraeliItaiMatching::run(edge, 3);
  EXPECT_EQ(result.partner[0], 1u);
  EXPECT_EQ(result.partner[1], 0u);
  EXPECT_EQ(result.num_matched_edges(), 1u);
}

TEST(Matching, IsolatedNodesStayUnmatched) {
  const graph::Graph g = graph::Builder(5).build();
  const MatchingResult result = IsraeliItaiMatching::run(g, 1);
  for (graph::NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.partner[v], kUnmatched);
  }
  EXPECT_TRUE(verify_maximal_matching(g, result));
}

TEST(Matching, DeterministicGivenSeed) {
  util::Rng rng(11);
  const graph::Graph g = graph::gen::gnp(150, 0.05, rng);
  const MatchingResult a = IsraeliItaiMatching::run(g, 5);
  const MatchingResult b = IsraeliItaiMatching::run(g, 5);
  EXPECT_EQ(a.partner, b.partner);
}

TEST(Matching, LogarithmicRounds) {
  util::Rng rng(13);
  const graph::Graph g = graph::gen::gnp(4000, 0.002, rng);
  const MatchingResult result = IsraeliItaiMatching::run(g, 7);
  EXPECT_TRUE(verify_maximal_matching(g, result));
  EXPECT_LT(result.stats.rounds, 150u);
}

TEST(Matching, VerifierCatchesBadMatchings) {
  const graph::Graph g = graph::gen::path(4);
  MatchingResult result;
  // Non-symmetric.
  result.partner = {1, kUnmatched, kUnmatched, kUnmatched};
  EXPECT_FALSE(verify_maximal_matching(g, result));
  // Non-edge pair.
  result.partner = {2, kUnmatched, 0, kUnmatched};
  EXPECT_FALSE(verify_maximal_matching(g, result));
  // Valid but not maximal (edge 2-3 unmatched on both sides).
  result.partner = {1, 0, kUnmatched, kUnmatched};
  EXPECT_FALSE(verify_maximal_matching(g, result));
  // Proper maximal matching.
  result.partner = {1, 0, 3, 2};
  EXPECT_TRUE(verify_maximal_matching(g, result));
}

TEST(Matching, CongestCompliant) {
  util::Rng rng(17);
  const graph::Graph g = graph::gen::hubbed_forest_union(1000, 2, 4, rng);
  const MatchingResult result = IsraeliItaiMatching::run(g, 9);
  EXPECT_EQ(result.stats.max_edge_load, 1u);
}

}  // namespace
}  // namespace arbmis::mis
