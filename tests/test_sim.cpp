// Tests for the CONGEST simulator: delivery timing, halting, CONGEST
// enforcement, determinism, and accounting.
#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>

#include "graph/generators.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace arbmis::sim {
namespace {

/// Floods a counter: each node broadcasts its round number every round and
/// halts after `rounds_to_run` rounds, recording everything it heard.
class FloodAlgorithm : public Algorithm {
 public:
  explicit FloodAlgorithm(graph::NodeId n, std::uint32_t rounds_to_run)
      : rounds_to_run_(rounds_to_run), received_(n) {}

  std::string_view name() const override { return "flood"; }

  void on_start(NodeContext& ctx) override { ctx.broadcast(1, 0); }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) received_[ctx.id()].push_back(m);
    if (ctx.round() >= rounds_to_run_) {
      ctx.halt();
      return;
    }
    ctx.broadcast(1, ctx.round());
  }

  std::uint32_t rounds_to_run_;
  std::vector<std::vector<Message>> received_;
};

TEST(Network, DeliversToNeighborsNextRound) {
  const graph::Graph g = graph::gen::path(3);
  Network net(g, 1);
  FloodAlgorithm algorithm(3, 1);
  const RunStats stats = net.run(algorithm, 10);
  EXPECT_TRUE(stats.all_halted);
  EXPECT_EQ(stats.rounds, 1u);
  // Node 1 hears both neighbors' round-0 broadcasts; ends hear one each.
  EXPECT_EQ(algorithm.received_[1].size(), 2u);
  EXPECT_EQ(algorithm.received_[0].size(), 1u);
  EXPECT_EQ(algorithm.received_[0][0].src, 1u);
}

TEST(Network, MessageCountsAccumulate) {
  const graph::Graph g = graph::gen::cycle(4);
  Network net(g, 1);
  FloodAlgorithm algorithm(4, 3);
  const RunStats stats = net.run(algorithm, 10);
  EXPECT_EQ(stats.rounds, 3u);
  // Rounds 1..3 each deliver 8 messages (2 per node).
  EXPECT_EQ(stats.messages, 24u);
  EXPECT_EQ(stats.payload_bits, 24u * kBitsPerMessage);
  EXPECT_EQ(stats.max_edge_load, 1u);
}

/// Sends two messages down the same port in one round.
class CongestViolator : public Algorithm {
 public:
  std::string_view name() const override { return "violator"; }
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0 && ctx.degree() > 0) {
      ctx.send(0, 1, 1);
      ctx.send(0, 1, 2);
    }
  }
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    ctx.halt();
  }
};

TEST(Network, EnforcesCongestBudget) {
  const graph::Graph g = graph::gen::path(2);
  Network net(g, 1);
  CongestViolator algorithm;
  EXPECT_THROW(net.run(algorithm, 4), std::logic_error);
}

TEST(Network, CongestBudgetCanBeRelaxed) {
  const graph::Graph g = graph::gen::path(2);
  NetworkOptions options;
  options.max_messages_per_edge_per_round = 2;
  Network net(g, 1, options);
  CongestViolator algorithm;
  RunStats stats;
  EXPECT_NO_THROW(stats = net.run(algorithm, 4));
  EXPECT_EQ(stats.max_edge_load, 2u);
}

TEST(Network, PortOutOfRangeThrows) {
  class BadPort : public Algorithm {
   public:
    std::string_view name() const override { return "bad_port"; }
    void on_start(NodeContext& ctx) override { ctx.send(5, 1, 0); }
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ctx.halt();
    }
  };
  const graph::Graph g = graph::gen::path(2);
  Network net(g, 1);
  BadPort algorithm;
  EXPECT_THROW(net.run(algorithm, 2), std::logic_error);
}

/// Each node draws one random number at start and reports it.
class RngProbe : public Algorithm {
 public:
  explicit RngProbe(graph::NodeId n) : draws(n) {}
  std::string_view name() const override { return "rng_probe"; }
  void on_start(NodeContext& ctx) override {
    draws[ctx.id()] = ctx.rng().next();
    ctx.halt();
  }
  void on_round(NodeContext&, std::span<const Message>) override {}
  std::vector<std::uint64_t> draws;
};

TEST(Network, RngDeterministicPerSeedAndNode) {
  const graph::Graph g = graph::gen::cycle(8);
  RngProbe a(8), b(8), c(8);
  Network(g, 99).run(a, 1);
  Network(g, 99).run(b, 1);
  Network(g, 100).run(c, 1);
  EXPECT_EQ(a.draws, b.draws);
  EXPECT_NE(a.draws, c.draws);
  // Distinct nodes get distinct streams.
  for (graph::NodeId v = 1; v < 8; ++v) EXPECT_NE(a.draws[0], a.draws[v]);
}

TEST(Network, RoundBudgetStopsRun) {
  class Forever : public Algorithm {
   public:
    std::string_view name() const override { return "forever"; }
    void on_start(NodeContext&) override {}
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  const graph::Graph g = graph::gen::path(3);
  Network net(g, 1);
  Forever algorithm;
  const RunStats stats = net.run(algorithm, 5);
  EXPECT_FALSE(stats.all_halted);
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(Network, HaltedNodesReceiveNothing) {
  class HaltEarly : public Algorithm {
   public:
    explicit HaltEarly(graph::NodeId n) : rounds_seen(n, 0) {}
    std::string_view name() const override { return "halt_early"; }
    void on_start(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.halt();
      ctx.broadcast(1, 0);
    }
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ++rounds_seen[ctx.id()];
      if (ctx.round() >= 2) ctx.halt();
      ctx.broadcast(1, 0);
    }
    std::vector<int> rounds_seen;
  };
  const graph::Graph g = graph::gen::path(3);
  Network net(g, 1);
  HaltEarly algorithm(3);
  net.run(algorithm, 10);
  EXPECT_EQ(algorithm.rounds_seen[0], 0);
  EXPECT_EQ(algorithm.rounds_seen[1], 2);
}

TEST(Network, RunResetsStateBetweenRuns) {
  const graph::Graph g = graph::gen::cycle(5);
  Network net(g, 7);
  FloodAlgorithm first(5, 2);
  const RunStats s1 = net.run(first, 10);
  FloodAlgorithm second(5, 2);
  const RunStats s2 = net.run(second, 10);
  EXPECT_TRUE(s1.all_halted);
  EXPECT_TRUE(s2.all_halted);
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.messages, s2.messages);
}

TEST(Network, ObserverSeesEveryRound) {
  const graph::Graph g = graph::gen::path(4);
  Network net(g, 3);
  FloodAlgorithm algorithm(4, 3);
  std::vector<std::uint32_t> rounds;
  net.run(algorithm, 10, [&rounds](const Network&, std::uint32_t round) {
    rounds.push_back(round);
  });
  EXPECT_EQ(rounds, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Trace, RecordsHaltProgress) {
  const graph::Graph g = graph::gen::path(4);
  Network net(g, 3);
  FloodAlgorithm algorithm(4, 3);
  Trace trace;
  net.run(algorithm, 10, trace.observer());
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.records().back().halted, 4u);
  EXPECT_EQ(trace.round_reaching_halted_fraction(1.0, 4), 3u);
}

TEST(Trace, RecordsPerRoundMessagesAndPayload) {
  // On cycle(4) every node broadcasts each round, so rounds 1..3 each
  // deliver exactly 8 messages. The trace must carry the per-round
  // message and payload deltas (not cumulative totals), and all fault
  // counters must stay zero on a fault-free run.
  const graph::Graph g = graph::gen::cycle(4);
  Network net(g, 1);
  FloodAlgorithm algorithm(4, 3);
  Trace trace;
  const RunStats stats = net.run(algorithm, 10, trace.observer());
  ASSERT_EQ(trace.records().size(), 3u);
  std::uint64_t traced_messages = 0;
  for (const Trace::RoundRecord& r : trace.records()) {
    EXPECT_EQ(r.messages, 8u) << "round " << r.round;
    // Actual widths, not the nominal kBitsPerMessage: round r consumes
    // the payload broadcast in round r - 1 (0, 1, 2), so each message is
    // kTagBits + bit_width(r - 1) bits wide.
    const std::uint64_t width =
        kTagBits + std::bit_width(std::uint64_t{r.round} - 1);
    EXPECT_EQ(r.payload_bits, 8u * width) << "round " << r.round;
    EXPECT_EQ(r.fault_drops, 0u);
    EXPECT_EQ(r.fault_duplicates, 0u);
    EXPECT_EQ(r.fault_crashes, 0u);
    EXPECT_EQ(r.fault_recoveries, 0u);
    traced_messages += r.messages;
  }
  EXPECT_EQ(traced_messages, stats.messages);
  // The run-wide total keeps the nominal full-word charge.
  EXPECT_EQ(stats.payload_bits, stats.messages * kBitsPerMessage);
}

TEST(Trace, HaltedFractionBoundaries) {
  // Pin the documented edge cases of round_reaching_halted_fraction.
  const Trace empty;
  // An empty target is met before any round — even with no records.
  EXPECT_EQ(empty.round_reaching_halted_fraction(0.0, 4), 0u);
  EXPECT_EQ(empty.round_reaching_halted_fraction(-0.5, 4), 0u);
  EXPECT_EQ(empty.round_reaching_halted_fraction(1.0, 0), 0u);
  // A positive target can never be met with no records.
  EXPECT_EQ(empty.round_reaching_halted_fraction(0.5, 4),
            Trace::kNeverReached);

  // path(4) under FloodAlgorithm(4, 3): all 4 nodes halt in round 3.
  const graph::Graph g = graph::gen::path(4);
  Network net(g, 3);
  FloodAlgorithm algorithm(4, 3);
  Trace trace;
  net.run(algorithm, 10, trace.observer());
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.records().back().halted, 4u);
  EXPECT_EQ(trace.round_reaching_halted_fraction(0.0, 4), 0u);
  EXPECT_EQ(trace.round_reaching_halted_fraction(1.0, 4), 3u);
  // fraction > 1 asks for more nodes than exist.
  EXPECT_EQ(trace.round_reaching_halted_fraction(1.5, 4),
            Trace::kNeverReached);
  // Nobody halts before round 3, so any positive fraction resolves there.
  EXPECT_EQ(trace.round_reaching_halted_fraction(0.25, 4), 3u);
}

TEST(RunStats, AbsorbAddsRoundsAndMessages) {
  RunStats a{.rounds = 3, .messages = 10, .payload_bits = 720,
             .max_edge_load = 1, .all_halted = true};
  RunStats b{.rounds = 2, .messages = 5, .payload_bits = 360,
             .max_edge_load = 2, .all_halted = true};
  a.absorb(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.messages, 15u);
  EXPECT_EQ(a.max_edge_load, 2u);
  EXPECT_TRUE(a.all_halted);
}

TEST(RunStats, AbsorbAccumulatesAllHaltedConjunctively) {
  // A pipeline halted iff every stage halted: one incomplete stage must
  // poison the composition no matter where it sits, and in particular a
  // complete *last* stage must not launder an earlier timeout (the old
  // behavior was last-stage-wins).
  const RunStats complete{.rounds = 1, .messages = 0, .payload_bits = 0,
                          .max_edge_load = 0, .all_halted = true};
  const RunStats timed_out{.rounds = 1, .messages = 0, .payload_bits = 0,
                           .max_edge_load = 0, .all_halted = false};

  RunStats pipeline = complete;
  pipeline.absorb(timed_out);
  EXPECT_FALSE(pipeline.all_halted);
  pipeline.absorb(complete);
  EXPECT_FALSE(pipeline.all_halted) << "a later complete stage must not "
                                       "clear an earlier stage's timeout";

  RunStats ok = complete;
  ok.absorb(complete);
  EXPECT_TRUE(ok.all_halted);
}

}  // namespace
}  // namespace arbmis::sim
