// Determinism meta-test: every randomized algorithm is a pure function of
// (graph, seed) — two runs with the same seed must agree bit-for-bit on
// the outputs and the round counts; different seeds must (overwhelmingly
// likely) differ somewhere. This is what makes every experiment in
// bench/ reproducible from the seed it prints.
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "core/ghaffari_arb.h"
#include "core/lw_tree_mis.h"
#include "graph/generators.h"
#include "mis/bit_metivier.h"
#include "mis/gather_solve.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/matching.h"
#include "mis/metivier.h"

namespace arbmis {
namespace {

TEST(Determinism, EveryAlgorithmIsAPureFunctionOfGraphAndSeed) {
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);

  auto expect_same = [&](auto run) {
    const auto a = run(11);
    const auto b = run(11);
    EXPECT_EQ(a, b);
  };

  expect_same([&](std::uint64_t s) { return mis::MetivierMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::LubyBMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::GhaffariMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::BitMetivierMis::run(g, s).mis.state; });
  expect_same([&](std::uint64_t s) { return mis::GatherSolveMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::IsraeliItaiMatching::run(g, s).partner; });
  expect_same([&](std::uint64_t s) { return core::arb_mis(g, {.alpha = 2}, s).mis.state; });
  expect_same([&](std::uint64_t s) { return core::ghaffari_arb_mis(g, s).mis.state; });
  expect_same([&](std::uint64_t s) {
    return core::lw_tree_mis(g, s, {.alpha = 2}).mis.state;
  });
}

TEST(Determinism, SeedsActuallyMatter) {
  util::Rng rng(2025);
  const graph::Graph g = graph::gen::gnp(300, 0.04, rng);
  // At least one of the randomized algorithms must differ across seeds
  // (all of them, in practice; require all to be safe against freak ties).
  EXPECT_NE(mis::MetivierMis::run(g, 1).state,
            mis::MetivierMis::run(g, 2).state);
  EXPECT_NE(mis::LubyBMis::run(g, 1).state, mis::LubyBMis::run(g, 2).state);
  EXPECT_NE(mis::BitMetivierMis::run(g, 1).mis.state,
            mis::BitMetivierMis::run(g, 2).mis.state);
  EXPECT_NE(mis::IsraeliItaiMatching::run(g, 1).partner,
            mis::IsraeliItaiMatching::run(g, 2).partner);
}

TEST(Determinism, RoundCountsReproduce) {
  util::Rng rng(2026);
  const graph::Graph g = graph::gen::random_apollonian(500, rng);
  EXPECT_EQ(mis::MetivierMis::run(g, 7).stats.rounds,
            mis::MetivierMis::run(g, 7).stats.rounds);
  EXPECT_EQ(core::arb_mis(g, {.alpha = 3}, 7).mis.stats.rounds,
            core::arb_mis(g, {.alpha = 3}, 7).mis.stats.rounds);
}

}  // namespace
}  // namespace arbmis
