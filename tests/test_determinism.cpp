// Determinism meta-test: every randomized algorithm is a pure function of
// (graph, seed) — two runs with the same seed must agree bit-for-bit on
// the outputs and the round counts; different seeds must (overwhelmingly
// likely) differ somewhere. This is what makes every experiment in
// bench/ reproducible from the seed it prints.
#include <gtest/gtest.h>

#include <string>

#include "core/arb_mis.h"
#include "core/ghaffari_arb.h"
#include "core/lw_tree_mis.h"
#include "engine/engine.h"
#include "fault/adversary.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"
#include "mis/bit_metivier.h"
#include "mis/gather_solve.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/matching.h"
#include "mis/metivier.h"
#include "sim/network.h"

namespace arbmis {
namespace {

/// FNV-1a over the per-node MIS states: collision-safe enough to pin a
/// whole output vector as a single golden constant.
std::uint64_t state_hash(const std::vector<mis::MisState>& state) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const mis::MisState s : state) {
    h ^= static_cast<std::uint64_t>(s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Golden hash for the faulty Luby-B run in
/// GoldenFaultyPinAcrossExecutorsAndInboxes (graph hubbed_forest_union(400,
/// 2, 4, rng(2024)), network seed 11, fault seed 11).
constexpr std::uint64_t kGoldenFaultyLubyPin = 0x307006cb35222906ULL;

// Golden pins: the exact output words of the generator for fixed seeds.
// These lock the SplitMix64 seeding and xoshiro256** step across platforms
// and compilers — any drift in util/rng.h breaks every experiment's
// reproducibility-from-seed story, so it must break the build first.
TEST(Determinism, GoldenRngOutputWords) {
  util::Rng rng(42);
  EXPECT_EQ(rng.next(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(rng.next(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(rng.next(), 0xae17533239e499a1ULL);
  EXPECT_EQ(rng.next(), 0xecb8ad4703b360a1ULL);
}

TEST(Determinism, GoldenChildStreamDerivation) {
  // child(id) must hash (state, id) identically everywhere; ids 7 and 8
  // land in unrelated streams.
  const util::Rng parent(2016);
  EXPECT_EQ(parent.child(7).next(), 0x5ada46e29936522bULL);
  EXPECT_EQ(parent.child(8).next(), 0x99c73f74581aaae1ULL);
}

TEST(Determinism, GoldenBoundedDraws) {
  // below() (Lemire rejection) and uniform01() are part of the pinned
  // surface: algorithms consume these, not raw words.
  util::Rng rng(7);
  EXPECT_EQ(rng.below(1000), 700u);
  EXPECT_EQ(rng.below(1000), 278u);
  EXPECT_EQ(rng.below(1000), 839u);
  util::Rng dbl(9);
  EXPECT_DOUBLE_EQ(dbl.uniform01(), 0.0025834396857136177);
  EXPECT_DOUBLE_EQ(dbl.uniform01(), 0.25148937241585745);
}

TEST(Determinism, GoldenPerSeedMisOutputs) {
  // End-to-end pins: full MIS output vectors (as FNV-1a hashes) for fixed
  // (generator graph, seed) pairs. If any layer between the seed and the
  // final states — graph generation, per-node stream split, message
  // schedule, tie-breaking — changes behavior, these catch it.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);

  const auto met1 = mis::MetivierMis::run(g, 1);
  EXPECT_EQ(state_hash(met1.state), 0x87b54202a38a4860ULL);
  EXPECT_EQ(met1.stats.rounds, 5u);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 2).state),
            0x36af02129ce25543ULL);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 3).state),
            0xe1e2f725bdbeab0dULL);

  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 1).state),
            0xa70b8bcaaed6cc82ULL);
  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 2).state),
            0x83842878ad8031d8ULL);

  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 1).mis.state),
            0xe1e2f725bdbeab0dULL);
  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 2).mis.state),
            0x2ad32695e98905c0ULL);

  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 1).mis.state),
            0xe8f3f3171e775bd3ULL);
  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 2).mis.state),
            0xa05a05940c3562fdULL);
}

TEST(Determinism, GoldenPerSeedEngineLabels) {
  // Golden labels-hash pins for the shared-memory engine family
  // (src/engine/). One constant per seed, asserted for all THREE engines:
  // the family's contract is that they compute the same set — the
  // lexicographically-first MIS w.r.t. (priority, id) — so distinct pins
  // per engine would be a bug, not extra coverage. Any drift in
  // util::mix64, the priority domain constant, or any engine's decision
  // rule breaks these before it can corrupt a benchmark.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
  constexpr std::uint64_t kEnginePinSeed1 = 0x82dd5c1ca73589a5ULL;
  constexpr std::uint64_t kEnginePinSeed2 = 0x838643010311e327ULL;

  for (const engine::EngineKind kind : engine::all_engines()) {
    engine::EngineOptions options;
    options.seed = 1;
    EXPECT_EQ(engine::solve(g, kind, options).labels_hash(), kEnginePinSeed1)
        << "seed=1 engine=" << engine::engine_name(kind);
    options.seed = 2;
    EXPECT_EQ(engine::solve(g, kind, options).labels_hash(), kEnginePinSeed2)
        << "seed=2 engine=" << engine::engine_name(kind);
  }

  // Round counts are part of the pinned surface for the fixpoint engines.
  engine::EngineOptions options;
  options.seed = 1;
  EXPECT_EQ(
      engine::solve(g, engine::EngineKind::kTestAndSet, options).rounds, 3u);
  EXPECT_EQ(
      engine::solve(g, engine::EngineKind::kPrefixGreedy, options).rounds,
      3u);
}

TEST(Determinism, GoldenPinsHoldUnderTheParallelExecutor) {
  // The same golden constants as GoldenPerSeedMisOutputs, re-checked with
  // every internally constructed Network routed through the 4-worker
  // parallel executor. No separate parallel goldens exist on purpose: the
  // executor's determinism-merge rule (sim/network.h) promises the serial
  // bytes, so the serial pins are the parallel pins.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
  const sim::ScopedNumThreads scoped(4);

  const auto met1 = mis::MetivierMis::run(g, 1);
  EXPECT_EQ(state_hash(met1.state), 0x87b54202a38a4860ULL);
  EXPECT_EQ(met1.stats.rounds, 5u);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 2).state),
            0x36af02129ce25543ULL);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 3).state),
            0xe1e2f725bdbeab0dULL);

  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 1).state),
            0xa70b8bcaaed6cc82ULL);
  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 2).state),
            0x83842878ad8031d8ULL);

  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 1).mis.state),
            0xe1e2f725bdbeab0dULL);
  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 2).mis.state),
            0x2ad32695e98905c0ULL);

  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 1).mis.state),
            0xe8f3f3171e775bd3ULL);
  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 2).mis.state),
            0xa05a05940c3562fdULL);
}

TEST(Determinism, GoldenPinsHoldUnderReferenceInboxes) {
  // Same constants once more, with every Network forced onto the pre-arena
  // vector-of-vectors inbox path. The arena's byte-identity promise
  // (sim/network.h) says both implementations produce the same delivery
  // bytes, so the serial pins are also the reference-inbox pins. If this
  // test disagrees with GoldenPerSeedMisOutputs, the arena drifted.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
  const sim::ScopedInboxImpl scoped(sim::InboxImpl::kReferenceVectors);

  const auto met1 = mis::MetivierMis::run(g, 1);
  EXPECT_EQ(state_hash(met1.state), 0x87b54202a38a4860ULL);
  EXPECT_EQ(met1.stats.rounds, 5u);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 2).state),
            0x36af02129ce25543ULL);
  EXPECT_EQ(state_hash(mis::MetivierMis::run(g, 3).state),
            0xe1e2f725bdbeab0dULL);

  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 1).state),
            0xa70b8bcaaed6cc82ULL);
  EXPECT_EQ(state_hash(mis::LubyBMis::run(g, 2).state),
            0x83842878ad8031d8ULL);

  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 1).mis.state),
            0xe1e2f725bdbeab0dULL);
  EXPECT_EQ(state_hash(core::arb_mis(g, {.alpha = 2}, 2).mis.state),
            0x2ad32695e98905c0ULL);

  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 1).mis.state),
            0xe8f3f3171e775bd3ULL);
  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(g, 2).mis.state),
            0xa05a05940c3562fdULL);
}

TEST(Determinism, GoldenFaultyPinAcrossExecutorsAndInboxes) {
  // One pinned constant for a lossy run: Luby-B under an i.i.d. adversary
  // (drops, duplicates, crash/recover) must hash identically through all
  // four (inbox implementation x executor) combinations. Duplicates are
  // the interesting part — they are exactly what spills into the arena's
  // overflow side buffer, so this pin covers the overflow delivery order.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);

  const auto run_faulty = [&](sim::InboxImpl impl, std::uint32_t threads) {
    const sim::ScopedInboxImpl inbox(impl);
    fault::IidAdversary adversary({.drop_rate = 0.2,
                                   .duplicate_rate = 0.1,
                                   .crash_rate = 0.01,
                                   .recovery_delay = 3});
    fault::FaultPlan plan(g, 11, adversary);
    sim::NetworkOptions options;
    options.num_threads = threads;
    options.fault = &plan;
    sim::Network net(g, 11, options);
    mis::LubyBMis algo(g);
    net.run(algo, 4096);
    return state_hash(algo.states());
  };

  const std::uint64_t pin = run_faulty(sim::InboxImpl::kArena, 0);
  EXPECT_EQ(run_faulty(sim::InboxImpl::kArena, 4), pin);
  EXPECT_EQ(run_faulty(sim::InboxImpl::kReferenceVectors, 0), pin);
  EXPECT_EQ(run_faulty(sim::InboxImpl::kReferenceVectors, 4), pin);
  // The absolute value is pinned too, so the faulty schedule itself is
  // locked against drift in FaultPlan / Rng, not just cross-impl agreement.
  EXPECT_EQ(pin, kGoldenFaultyLubyPin);
}

TEST(Determinism, GoldenGatherSolvePins) {
  // Full-output pins for GatherSolveMis, recorded BEFORE solve_locally's
  // hashed containers were replaced with dense index vectors: the greedy
  // sweep iterates the sorted node list either way, so the rewrite must
  // reproduce these bytes exactly. They also lock the BFS-rooting +
  // up/down schedule the decisions ride on (rounds included).
  {
    util::Rng rng(2024);
    const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
    const auto r = mis::GatherSolveMis::run(g, 1);
    EXPECT_EQ(state_hash(r.state), 0xbc00a096849bbff5ULL);
    EXPECT_EQ(r.stats.rounds, 593u);
  }
  {
    util::Rng rng(2026);
    const graph::Graph g = graph::gen::random_apollonian(500, rng);
    const auto r = mis::GatherSolveMis::run(g, 9);
    EXPECT_EQ(state_hash(r.state), 0x450b7af232782908ULL);
    EXPECT_EQ(r.stats.rounds, 1222u);
  }
}

TEST(Determinism, GoldenPinsHoldOffTheMappedStorage) {
  // The golden constants from GoldenPerSeedMisOutputs, re-checked with the
  // graph written to a binary .gr file and reloaded through the mmap
  // loader: storage backend joins executor and inbox implementation in the
  // set of axes the pins are invariant over.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
  const std::string path = ::testing::TempDir() + "arbmis_det_pin.gr";
  graph::storage::write_gr(path, g);
  const graph::storage::MappedGraph mapped =
      graph::storage::MappedGraph::open(path);
  const graph::GraphView view = mapped;

  const auto met1 = mis::MetivierMis::run(view, 1);
  EXPECT_EQ(state_hash(met1.state), 0x87b54202a38a4860ULL);
  EXPECT_EQ(met1.stats.rounds, 5u);
  EXPECT_EQ(state_hash(mis::LubyBMis::run(view, 1).state),
            0xa70b8bcaaed6cc82ULL);
  EXPECT_EQ(state_hash(core::arb_mis(view, {.alpha = 2}, 1).mis.state),
            0xe1e2f725bdbeab0dULL);
  EXPECT_EQ(state_hash(core::arb_mis(view, {.alpha = 2}, 2).mis.state),
            0x2ad32695e98905c0ULL);
  EXPECT_EQ(state_hash(mis::BitMetivierMis::run(view, 1).mis.state),
            0xe8f3f3171e775bd3ULL);
}

TEST(Determinism, MappedMillionEdgeArbMisMatchesInMemory) {
  // Out-of-core at scale: a ~10^6-edge hubbed forest union is written to
  // .gr, reloaded via mmap, and run through the full arb_mis pipeline. The
  // mapped run must be byte-identical to the in-memory run — same MIS
  // state vector, same round/message accounting — proving the storage seam
  // holds at the graph sizes it exists for, not just on test toys.
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(520'001, 2, 64, rng);
  ASSERT_GE(g.num_edges(), 1'000'000u);

  const std::string path = ::testing::TempDir() + "arbmis_det_million.gr";
  graph::storage::write_gr(path, g);
  const graph::storage::MappedGraph mapped =
      graph::storage::MappedGraph::open(path);
  ASSERT_EQ(mapped.num_edges(), g.num_edges());

  const core::ArbMisResult memory = core::arb_mis(g, {.alpha = 2}, 7);
  const core::ArbMisResult disk = core::arb_mis(mapped, {.alpha = 2}, 7);
  EXPECT_EQ(state_hash(memory.mis.state), state_hash(disk.mis.state));
  EXPECT_EQ(memory.mis.state, disk.mis.state);
  EXPECT_EQ(memory.mis.stats.rounds, disk.mis.stats.rounds);
  EXPECT_EQ(memory.mis.stats.messages, disk.mis.stats.messages);
  EXPECT_EQ(memory.mis.stats.payload_bits, disk.mis.stats.payload_bits);
  EXPECT_TRUE(memory.mis.stats.all_halted);
}

TEST(Determinism, EveryAlgorithmIsAPureFunctionOfGraphAndSeed) {
  util::Rng rng(2024);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);

  auto expect_same = [&](auto run) {
    const auto a = run(11);
    const auto b = run(11);
    EXPECT_EQ(a, b);
  };

  expect_same([&](std::uint64_t s) { return mis::MetivierMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::LubyBMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::GhaffariMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::BitMetivierMis::run(g, s).mis.state; });
  expect_same([&](std::uint64_t s) { return mis::GatherSolveMis::run(g, s).state; });
  expect_same([&](std::uint64_t s) { return mis::IsraeliItaiMatching::run(g, s).partner; });
  expect_same([&](std::uint64_t s) { return core::arb_mis(g, {.alpha = 2}, s).mis.state; });
  expect_same([&](std::uint64_t s) { return core::ghaffari_arb_mis(g, s).mis.state; });
  expect_same([&](std::uint64_t s) {
    return core::lw_tree_mis(g, s, {.alpha = 2}).mis.state;
  });
}

TEST(Determinism, SeedsActuallyMatter) {
  util::Rng rng(2025);
  const graph::Graph g = graph::gen::gnp(300, 0.04, rng);
  // At least one of the randomized algorithms must differ across seeds
  // (all of them, in practice; require all to be safe against freak ties).
  EXPECT_NE(mis::MetivierMis::run(g, 1).state,
            mis::MetivierMis::run(g, 2).state);
  EXPECT_NE(mis::LubyBMis::run(g, 1).state, mis::LubyBMis::run(g, 2).state);
  EXPECT_NE(mis::BitMetivierMis::run(g, 1).mis.state,
            mis::BitMetivierMis::run(g, 2).mis.state);
  EXPECT_NE(mis::IsraeliItaiMatching::run(g, 1).partner,
            mis::IsraeliItaiMatching::run(g, 2).partner);
}

TEST(Determinism, RoundCountsReproduce) {
  util::Rng rng(2026);
  const graph::Graph g = graph::gen::random_apollonian(500, rng);
  EXPECT_EQ(mis::MetivierMis::run(g, 7).stats.rounds,
            mis::MetivierMis::run(g, 7).stats.rounds);
  EXPECT_EQ(core::arb_mis(g, {.alpha = 3}, 7).mis.stats.rounds,
            core::arb_mis(g, {.alpha = 3}, 7).mis.stats.rounds);
}

}  // namespace
}  // namespace arbmis
