// Tests of the flat message arena backing the simulator inboxes
// (sim/network.h, "Message arena" section): CSR slot indexing against
// first/last ports and isolated nodes, occupancy reset across rounds and
// across run() calls, the duplicate-overflow side buffer, the enforced
// <= 1-message-per-directed-edge violation path, and the InboxImpl
// selection machinery (NetworkOptions::inbox beats ScopedInboxImpl beats
// the process default).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/adversary.h"
#include "fault/fault_plan.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/network.h"

namespace arbmis {
namespace {

/// (src, tag, payload) triple recorded per delivered message, so tests can
/// assert the exact inbox byte sequence, not just its length.
struct Recorded {
  graph::NodeId src;
  std::uint32_t tag;
  std::uint64_t payload;

  bool operator==(const Recorded&) const = default;
};

/// Broadcasts `copies_per_port` messages per port per round for `rounds`
/// rounds and records every node's inbox contents in delivery order.
class RecordingBroadcast final : public sim::Algorithm {
 public:
  RecordingBroadcast(graph::NodeId n, std::uint32_t rounds,
                     std::uint32_t copies_per_port = 1)
      : rounds_(rounds), copies_per_port_(copies_per_port), inboxes_(n) {}

  std::string_view name() const override { return "recording_broadcast"; }

  void on_start(sim::NodeContext& ctx) override {
    inboxes_[ctx.id()].clear();
    send_all(ctx);
  }

  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override {
    auto& record = inboxes_[ctx.id()];
    for (const sim::Message& m : inbox) {
      record.push_back({m.src, m.tag, m.payload});
    }
    // Send even in the halting round: those messages are staged but never
    // delivered, which is exactly the leftover state the cross-run
    // occupancy-reset test needs to exist.
    send_all(ctx);
    if (ctx.round() >= rounds_) ctx.halt();
  }

  /// Messages node v received, in delivery order, across the whole run.
  const std::vector<Recorded>& inbox(graph::NodeId v) const {
    return inboxes_[v];
  }

 private:
  void send_all(sim::NodeContext& ctx) {
    for (graph::NodeId port = 0; port < ctx.degree(); ++port) {
      for (std::uint32_t c = 0; c < copies_per_port_; ++c) {
        ctx.send(port, c, ctx.id());
      }
    }
  }

  std::uint32_t rounds_;
  std::uint32_t copies_per_port_;
  std::vector<std::vector<Recorded>> inboxes_;
};

/// Broadcasts only in even rounds; odd-round inboxes must come back empty,
/// which fails unless the occupancy counts really reset between rounds.
class AlternatingBroadcast final : public sim::Algorithm {
 public:
  AlternatingBroadcast(graph::NodeId n, std::uint32_t rounds)
      : rounds_(rounds), inbox_sizes_(n) {}

  std::string_view name() const override { return "alternating_broadcast"; }

  void on_start(sim::NodeContext& ctx) override {
    inbox_sizes_[ctx.id()].clear();
    ctx.broadcast(0, ctx.id());
  }

  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override {
    inbox_sizes_[ctx.id()].push_back(
        static_cast<std::uint32_t>(inbox.size()));
    if (ctx.round() >= rounds_) {
      ctx.halt();
      return;
    }
    if (ctx.round() % 2 == 0) ctx.broadcast(0, ctx.id());
  }

  const std::vector<std::uint32_t>& sizes(graph::NodeId v) const {
    return inbox_sizes_[v];
  }

 private:
  std::uint32_t rounds_;
  std::vector<std::vector<std::uint32_t>> inbox_sizes_;
};

/// Sends twice down port 0 in one round — the <= 1 per directed edge
/// violation the network must reject while enforcement is on.
class DoubleSender final : public sim::Algorithm {
 public:
  std::string_view name() const override { return "double_sender"; }
  void on_start(sim::NodeContext& ctx) override {
    if (ctx.id() == 0 && ctx.degree() > 0) {
      ctx.send(0, 0, 1);
      ctx.send(0, 0, 2);
    }
    ctx.halt();
  }
  void on_round(sim::NodeContext&, std::span<const sim::Message>) override {}
};

TEST(MessageArena, SlotLayoutMatchesCsrAndInboxIsPortOrdered) {
  // Path 0-1-2-3: interior nodes receive on both their first and last
  // ports, the endpoints only on their single port.
  const graph::Graph g = graph::gen::path(4);
  sim::Network net(g, /*seed=*/1);
  ASSERT_TRUE(net.uses_arena());
  // One slot per directed edge: 2 * |E| = 2 * 3.
  EXPECT_EQ(net.arena_slots(), 6u);

  RecordingBroadcast algo(4, /*rounds=*/1);
  net.run(algo, /*max_rounds=*/2);

  // Ascending-sender == port order for sorted adjacency.
  EXPECT_EQ(algo.inbox(0), (std::vector<Recorded>{{1, 0, 1}}));
  EXPECT_EQ(algo.inbox(1), (std::vector<Recorded>{{0, 0, 0}, {2, 0, 2}}));
  EXPECT_EQ(algo.inbox(2), (std::vector<Recorded>{{1, 0, 1}, {3, 0, 3}}));
  EXPECT_EQ(algo.inbox(3), (std::vector<Recorded>{{2, 0, 2}}));
}

TEST(MessageArena, IsolatedNodesGetEmptyRegions) {
  // Nodes 3 and 4 have no edges: their arena regions are empty and their
  // inboxes stay empty, but they still receive callbacks and halt.
  const std::vector<graph::Edge> edges = {{0, 1}, {1, 2}};
  const graph::Graph g = graph::from_edges(5, edges);
  sim::Network net(g, 2);
  EXPECT_EQ(net.arena_slots(), 4u);

  RecordingBroadcast algo(5, 1);
  const sim::RunStats stats = net.run(algo, 4);
  EXPECT_TRUE(stats.all_halted);
  EXPECT_TRUE(algo.inbox(3).empty());
  EXPECT_TRUE(algo.inbox(4).empty());
  EXPECT_EQ(algo.inbox(1),
            (std::vector<Recorded>{{0, 0, 0}, {2, 0, 2}}));
}

TEST(MessageArena, SelfLoopsAreRejectedAtGraphConstruction) {
  // The arena assumes no (v, v) slot exists; the graph builder upholds
  // that by refusing self-loops outright.
  const std::vector<graph::Edge> loop = {{1, 1}};
  EXPECT_THROW(graph::from_edges(4, loop), std::invalid_argument);
}

TEST(MessageArena, OccupancyResetsBetweenRounds) {
  const graph::Graph g = graph::gen::path(6);
  sim::Network net(g, 3);
  AlternatingBroadcast algo(6, /*rounds=*/5);
  net.run(algo, 8);
  // Sends happen in rounds 0, 2, 4 => inboxes are non-empty in rounds
  // 1, 3, 5 and empty in rounds 2, 4. A stale occupancy count would
  // resurrect the previous round's messages in the empty rounds.
  const std::vector<std::uint32_t> interior = {2, 0, 2, 0, 2};
  const std::vector<std::uint32_t> endpoint = {1, 0, 1, 0, 1};
  EXPECT_EQ(algo.sizes(0), endpoint);
  EXPECT_EQ(algo.sizes(2), interior);
  EXPECT_EQ(algo.sizes(5), endpoint);
}

TEST(MessageArena, OccupancyResetsBetweenRuns) {
  // Two runs on one Network: the second must start from clean inboxes
  // (RNG streams persist by contract, but these algorithms draw none).
  const graph::Graph g = graph::gen::path(5);
  sim::Network net(g, 4);

  RecordingBroadcast first(5, 2);
  net.run(first, 4);
  // The final round's sends were staged but never delivered (every node
  // halts right after sending); a run-reset bug would leak them into the
  // next run's round 1.
  EXPECT_GT(net.in_flight(), 0u);
  RecordingBroadcast second(5, 2);
  net.run(second, 4);
  for (graph::NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(first.inbox(v), second.inbox(v)) << "node " << v;
  }
}

TEST(MessageArena, DuplicateStormOverflowsIntoSideBuffer) {
  // duplicate_rate = 1.0: every send is delivered twice, so every node
  // receives 2 * degree copies — degree of them past its arena region, in
  // the side buffer. Delivery order duplicates each sender in place.
  const graph::Graph g = graph::gen::path(4);
  fault::IidAdversary adversary({.duplicate_rate = 1.0});
  fault::FaultPlan plan(g, 5, adversary);
  sim::NetworkOptions options;
  options.fault = &plan;
  sim::Network net(g, 5, options);

  std::vector<std::uint32_t> staged(4, 0);
  std::vector<std::uint32_t> overflowed(4, 0);
  RecordingBroadcast algo(4, 1);
  net.run(algo, 2, [&](const sim::Network& n, std::uint32_t round) {
    if (round != 1) return;
    for (graph::NodeId v = 0; v < 4; ++v) {
      staged[v] = n.staged_inbox_size(v);
      overflowed[v] = n.staged_overflow_size(v);
    }
  });

  EXPECT_EQ(algo.inbox(1),
            (std::vector<Recorded>{{0, 0, 0}, {0, 0, 0}, {2, 0, 2},
                                   {2, 0, 2}}));
  EXPECT_EQ(algo.inbox(0), (std::vector<Recorded>{{1, 0, 1}, {1, 0, 1}}));
  // The round-1 observer sees round 2's staging: every copy doubled, the
  // excess past one-slot-per-edge capacity sitting in the side buffer.
  EXPECT_EQ(staged[1], 4u);
  EXPECT_EQ(overflowed[1], 2u);
  EXPECT_EQ(staged[0], 2u);
  EXPECT_EQ(overflowed[0], 1u);
}

TEST(MessageArena, RelaxedCapOverflowsInDeliveryOrder) {
  // With the per-edge cap raised to 2 the arena region (one slot per
  // directed edge) cannot hold everything; the overflow suffix must
  // preserve the exact delivery order: both copies of sender u before any
  // copy of sender w > u.
  const graph::Graph g = graph::gen::path(3);
  sim::NetworkOptions options;
  options.max_messages_per_edge_per_round = 2;
  sim::Network net(g, 6, options);

  RecordingBroadcast algo(3, 1, /*copies_per_port=*/2);
  net.run(algo, 2);
  EXPECT_EQ(algo.inbox(1),
            (std::vector<Recorded>{{0, 0, 0}, {0, 1, 0}, {2, 0, 2},
                                   {2, 1, 2}}));
  EXPECT_EQ(algo.inbox(0), (std::vector<Recorded>{{1, 0, 1}, {1, 1, 1}}));
}

TEST(MessageArena, EnforcedPerEdgeCapStillThrows) {
  // The overflow side buffer must not soften enforcement: with the
  // default cap of one message per directed edge per round, a second send
  // on the same port aborts the run at send time.
  const graph::Graph g = graph::gen::path(3);
  sim::Network net(g, 7);
  DoubleSender algo;
  EXPECT_THROW(net.run(algo, 2), std::logic_error);
}

TEST(MessageArena, ReferenceImplementationIsByteIdentical) {
  // The retained vector-inbox implementation must deliver the identical
  // byte sequence — the differential anchor the fuzz and equivalence
  // suites build on.
  const graph::Graph g = [] {
    util::Rng rng(8);
    return graph::gen::gnp(40, 0.1, rng);
  }();

  sim::NetworkOptions arena_options;
  arena_options.inbox = sim::InboxImpl::kArena;
  sim::Network arena_net(g, 9, arena_options);
  RecordingBroadcast arena_algo(40, 3);
  const sim::RunStats arena_stats = arena_net.run(arena_algo, 5);

  sim::NetworkOptions reference_options;
  reference_options.inbox = sim::InboxImpl::kReferenceVectors;
  sim::Network reference_net(g, 9, reference_options);
  ASSERT_FALSE(reference_net.uses_arena());
  RecordingBroadcast reference_algo(40, 3);
  const sim::RunStats reference_stats = reference_net.run(reference_algo, 5);

  EXPECT_EQ(arena_stats.messages, reference_stats.messages);
  EXPECT_EQ(arena_stats.rounds, reference_stats.rounds);
  for (graph::NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(arena_algo.inbox(v), reference_algo.inbox(v)) << "node " << v;
  }
}

TEST(MessageArena, InboxImplSelectionPrecedence) {
  const graph::Graph g = graph::gen::path(3);
  // Process default is the arena.
  EXPECT_EQ(sim::default_inbox_impl(), sim::InboxImpl::kArena);
  EXPECT_TRUE(sim::Network(g, 1).uses_arena());
  {
    const sim::ScopedInboxImpl scoped(sim::InboxImpl::kReferenceVectors);
    EXPECT_EQ(sim::default_inbox_impl(), sim::InboxImpl::kReferenceVectors);
    // kProcessDefault resolves through the override...
    EXPECT_FALSE(sim::Network(g, 1).uses_arena());
    // ...but an explicit per-network choice beats it.
    sim::NetworkOptions options;
    options.inbox = sim::InboxImpl::kArena;
    EXPECT_TRUE(sim::Network(g, 1, options).uses_arena());
    {
      // kProcessDefault in a scope restores the built-in default (arena).
      const sim::ScopedInboxImpl inner(sim::InboxImpl::kProcessDefault);
      EXPECT_EQ(sim::default_inbox_impl(), sim::InboxImpl::kArena);
    }
    EXPECT_EQ(sim::default_inbox_impl(), sim::InboxImpl::kReferenceVectors);
  }
  EXPECT_EQ(sim::default_inbox_impl(), sim::InboxImpl::kArena);
}

}  // namespace
}  // namespace arbmis
