// Tests for the SparseMis pipeline (Lemma 3.8 machinery) and the color
// sweep it is built on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "mis/color_sweep.h"
#include "mis/sparse_mis.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

TEST(ColorSweep, TurnsProperColoringIntoMis) {
  const graph::Graph g = graph::gen::cycle(9);
  // 3-color the C9 by hand.
  std::vector<std::uint64_t> colors{0, 1, 2, 0, 1, 2, 0, 1, 2};
  ColorSweepMis sweep(g, colors, 3);
  sim::Network net(g, 1);
  const sim::RunStats stats = net.run(sweep, sweep.total_rounds() + 1);
  EXPECT_TRUE(stats.all_halted);
  MisResult result;
  result.state = sweep.states();
  EXPECT_TRUE(verify(g, result).ok());
  // Class 0 has priority: all color-0 nodes should be in.
  EXPECT_TRUE(result.in_mis(0));
  EXPECT_TRUE(result.in_mis(3));
  EXPECT_TRUE(result.in_mis(6));
}

TEST(ColorSweep, RejectsBadInput) {
  const graph::Graph g = graph::gen::path(3);
  EXPECT_THROW(ColorSweepMis(g, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(ColorSweepMis(g, {0, 5, 1}, 3), std::invalid_argument);
}

class SparseSweep
    : public ::testing::TestWithParam<std::tuple<graph::NodeId, std::uint64_t>> {
};

TEST_P(SparseSweep, ProducesVerifiedMis) {
  const auto [alpha, seed] = GetParam();
  util::Rng rng(seed);
  const graph::Graph g =
      graph::gen::union_of_random_forests(150, alpha, rng);
  const SparseMisResult result = sparse_mis(g, {.alpha = alpha}, seed);
  EXPECT_TRUE(verify(g, result.mis).ok());
  EXPECT_LE(result.num_forests, 4 * alpha);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSeeds, SparseSweep,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2),
                       ::testing::Values<std::uint64_t>(2, 47, 1001)));

TEST(SparseMis, TreeUsesCompositePath) {
  util::Rng rng(3);
  const graph::Graph t = graph::gen::random_tree(200, rng);
  const SparseMisResult result = sparse_mis(t, {.alpha = 1}, 1);
  EXPECT_FALSE(result.used_fallback);
  EXPECT_LE(result.composite_classes, 81u);  // <= 4 forests
  EXPECT_TRUE(verify(t, result.mis).ok());
}

TEST(SparseMis, FallsBackWhenClassesExplode) {
  util::Rng rng(5);
  const graph::Graph g = graph::gen::union_of_random_forests(120, 4, rng);
  SparseMisOptions options;
  options.alpha = 4;
  options.composite_class_budget = 100;  // force the fallback
  const SparseMisResult result = sparse_mis(g, options, 1);
  EXPECT_TRUE(result.used_fallback);
  EXPECT_TRUE(verify(g, result.mis).ok());
}

TEST(SparseMis, ThrowsWhenAlphaTooSmall) {
  const graph::Graph g = graph::gen::complete(10);
  EXPECT_THROW(sparse_mis(g, {.alpha = 1}, 1), std::invalid_argument);
}

TEST(SparseMis, ApollonianPlanar) {
  util::Rng rng(7);
  const graph::Graph g = graph::gen::random_apollonian(150, rng);
  const SparseMisResult result = sparse_mis(g, {.alpha = 3}, 2);
  EXPECT_TRUE(verify(g, result.mis).ok());
}

TEST(SparseMis, DeterministicGivenSeed) {
  util::Rng rng(11);
  const graph::Graph g = graph::gen::union_of_random_forests(80, 2, rng);
  const SparseMisResult a = sparse_mis(g, {.alpha = 2}, 5);
  const SparseMisResult b = sparse_mis(g, {.alpha = 2}, 5);
  EXPECT_EQ(a.mis.state, b.mis.state);
}

}  // namespace
}  // namespace arbmis::mis
