// Tests for the Cole–Vishkin forest coloring and forest MIS.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/properties.h"
#include "mis/cole_vishkin.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

/// Builds the parent array of a tree/forest rooted by BFS from each
/// component's smallest node.
std::vector<graph::NodeId> root_forest(const graph::Graph& g) {
  std::vector<graph::NodeId> parent(g.num_nodes(), graph::kNoParent);
  std::vector<bool> visited(g.num_nodes(), false);
  for (graph::NodeId root = 0; root < g.num_nodes(); ++root) {
    if (visited[root]) continue;
    std::vector<graph::NodeId> stack{root};
    visited[root] = true;
    while (!stack.empty()) {
      const graph::NodeId v = stack.back();
      stack.pop_back();
      for (graph::NodeId w : g.neighbors(v)) {
        if (visited[w]) continue;
        visited[w] = true;
        parent[w] = v;
        stack.push_back(w);
      }
    }
  }
  return parent;
}

void expect_proper_3_coloring(const graph::Graph& g,
                              const std::vector<graph::NodeId>& parent,
                              const std::vector<std::uint8_t>& colors) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(colors[v], 3u);
    if (parent[v] != graph::kNoParent) {
      EXPECT_NE(colors[v], colors[parent[v]]) << "edge " << v << "-"
                                              << parent[v];
    }
  }
}

class ColeVishkinTrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColeVishkinTrees, ColorsRandomTreeProperly) {
  util::Rng rng(GetParam());
  const graph::Graph t = graph::gen::random_tree(300, rng);
  const auto parent = root_forest(t);
  const auto result =
      ColeVishkin::run(t, parent, ColeVishkin::Mode::kColorOnly);
  expect_proper_3_coloring(t, parent, result.colors);
}

TEST_P(ColeVishkinTrees, TreeMisIsVerified) {
  util::Rng rng(GetParam() + 100);
  const graph::Graph t = graph::gen::random_tree(300, rng);
  const auto parent = root_forest(t);
  const auto result =
      ColeVishkin::run(t, parent, ColeVishkin::Mode::kForestMis);
  MisResult mis;
  mis.state = result.state;
  mis.stats = result.stats;
  EXPECT_TRUE(verify(t, mis).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColeVishkinTrees,
                         ::testing::Values(1, 17, 303, 9999));

TEST(ColeVishkin, WorksOnPathAndStar) {
  for (const graph::Graph& g :
       {graph::gen::path(64), graph::gen::star(64),
        graph::gen::balanced_tree(64, 2), graph::gen::caterpillar(10, 4)}) {
    const auto parent = root_forest(g);
    const auto result =
        ColeVishkin::run(g, parent, ColeVishkin::Mode::kForestMis);
    expect_proper_3_coloring(g, parent, result.colors);
    MisResult mis;
    mis.state = result.state;
    EXPECT_TRUE(verify(g, mis).ok());
  }
}

TEST(ColeVishkin, WorksOnDisconnectedForest) {
  graph::Builder b(9);
  b.add_edge(0, 1).add_edge(1, 2);  // path
  b.add_edge(3, 4).add_edge(3, 5).add_edge(3, 6);  // star
  // 7, 8 isolated
  const graph::Graph g = b.build();
  const auto parent = root_forest(g);
  const auto result =
      ColeVishkin::run(g, parent, ColeVishkin::Mode::kForestMis);
  expect_proper_3_coloring(g, parent, result.colors);
  MisResult mis;
  mis.state = result.state;
  EXPECT_TRUE(verify(g, mis).ok());
}

TEST(ColeVishkin, PartialForestColorsForestEdgesOnly) {
  // A cycle with a spanning-path forest: coloring must be proper on the
  // path edges (the chord is not the algorithm's responsibility).
  const graph::Graph g = graph::gen::cycle(10);
  std::vector<graph::NodeId> parent(10, graph::kNoParent);
  for (graph::NodeId v = 1; v < 10; ++v) parent[v] = v - 1;
  const auto result =
      ColeVishkin::run(g, parent, ColeVishkin::Mode::kColorOnly);
  expect_proper_3_coloring(g, parent, result.colors);
}

TEST(ColeVishkin, RejectsNonEdgeParent) {
  const graph::Graph g = graph::gen::path(4);
  std::vector<graph::NodeId> parent{graph::kNoParent, 0, 1, 0};  // 3-0 not an edge
  EXPECT_THROW(ColeVishkin(g, parent, ColeVishkin::Mode::kColorOnly),
               std::invalid_argument);
}

TEST(ColeVishkin, RejectsCyclicParents) {
  const graph::Graph g = graph::gen::cycle(3);
  std::vector<graph::NodeId> parent{1, 2, 0};
  EXPECT_THROW(ColeVishkin(g, parent, ColeVishkin::Mode::kColorOnly),
               std::invalid_argument);
}

TEST(ColeVishkin, RejectsSizeMismatch) {
  const graph::Graph g = graph::gen::path(4);
  std::vector<graph::NodeId> parent{graph::kNoParent, 0};
  EXPECT_THROW(ColeVishkin(g, parent, ColeVishkin::Mode::kColorOnly),
               std::invalid_argument);
}

TEST(ColeVishkin, ReductionIterationsAreLogStar) {
  EXPECT_EQ(ColeVishkin::reduction_iterations(6), 0u);
  EXPECT_GE(ColeVishkin::reduction_iterations(1 << 20), 2u);
  EXPECT_LE(ColeVishkin::reduction_iterations(1 << 30), 6u);
  // log* growth: doubling n rarely adds rounds.
  EXPECT_LE(ColeVishkin::reduction_iterations(1u << 30),
            ColeVishkin::reduction_iterations(1u << 15) + 1);
}

TEST(ColeVishkin, RoundsMatchSchedule) {
  util::Rng rng(7);
  const graph::Graph t = graph::gen::random_tree(200, rng);
  const auto parent = root_forest(t);
  const auto result =
      ColeVishkin::run(t, parent, ColeVishkin::Mode::kForestMis);
  EXPECT_EQ(result.stats.rounds,
            ColeVishkin::total_rounds(200, ColeVishkin::Mode::kForestMis));
  EXPECT_TRUE(result.stats.all_halted);
}

TEST(ColeVishkin, DeterministicSchedule) {
  // The algorithm is deterministic: same input, same colors, any seed.
  util::Rng rng(11);
  const graph::Graph t = graph::gen::random_tree(100, rng);
  const auto parent = root_forest(t);
  const auto a = ColeVishkin::run(t, parent, ColeVishkin::Mode::kColorOnly, 1);
  const auto b =
      ColeVishkin::run(t, parent, ColeVishkin::Mode::kColorOnly, 999);
  EXPECT_EQ(a.colors, b.colors);
}

}  // namespace
}  // namespace arbmis::mis
