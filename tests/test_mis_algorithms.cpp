// Parameterized correctness battery: every distributed MIS baseline ×
// every graph family × several seeds must produce a verified MIS, plus
// algorithm-specific behavior tests.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "graph/generators.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "mis/slow_local.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

struct GraphCase {
  std::string name;
  std::function<graph::Graph(util::Rng&)> make;
};

std::vector<GraphCase> graph_battery() {
  return {
      {"empty", [](util::Rng&) { return graph::Graph(0); }},
      {"single", [](util::Rng&) { return graph::Graph(1); }},
      {"isolated", [](util::Rng&) { return graph::Builder(7).build(); }},
      {"edge", [](util::Rng&) { return graph::gen::path(2); }},
      {"path", [](util::Rng&) { return graph::gen::path(33); }},
      {"cycle", [](util::Rng&) { return graph::gen::cycle(40); }},
      {"star", [](util::Rng&) { return graph::gen::star(50); }},
      {"complete", [](util::Rng&) { return graph::gen::complete(12); }},
      {"bipartite",
       [](util::Rng&) { return graph::gen::complete_bipartite(6, 9); }},
      {"grid", [](util::Rng&) { return graph::gen::grid(7, 9); }},
      {"hypercube", [](util::Rng&) { return graph::gen::hypercube(5); }},
      {"random_tree",
       [](util::Rng& rng) { return graph::gen::random_tree(120, rng); }},
      {"pa_tree",
       [](util::Rng& rng) {
         return graph::gen::preferential_attachment_tree(120, rng);
       }},
      {"gnp", [](util::Rng& rng) { return graph::gen::gnp(120, 0.06, rng); }},
      {"apollonian",
       [](util::Rng& rng) { return graph::gen::random_apollonian(120, rng); }},
      {"forest_union_3",
       [](util::Rng& rng) {
         return graph::gen::union_of_random_forests(120, 3, rng);
       }},
      {"k_tree_2",
       [](util::Rng& rng) { return graph::gen::k_tree(120, 2, rng); }},
  };
}

struct AlgorithmCase {
  std::string name;
  std::function<MisResult(const graph::Graph&, std::uint64_t)> run;
};

std::vector<AlgorithmCase> algorithm_battery() {
  return {
      {"metivier",
       [](const graph::Graph& g, std::uint64_t seed) {
         return MetivierMis::run(g, seed);
       }},
      {"luby_a",
       [](const graph::Graph& g, std::uint64_t seed) {
         return luby_a_mis(g, seed);
       }},
      {"luby_b",
       [](const graph::Graph& g, std::uint64_t seed) {
         return LubyBMis::run(g, seed);
       }},
      {"ghaffari",
       [](const graph::Graph& g, std::uint64_t seed) {
         return GhaffariMis::run(g, seed);
       }},
      {"election",
       [](const graph::Graph& g, std::uint64_t seed) {
         return ElectionMis::run(g, seed);
       }},
  };
}

using SweepParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class MisSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MisSweep, ProducesVerifiedMis) {
  const auto [graph_index, algorithm_index, seed] = GetParam();
  const GraphCase graph_case = graph_battery()[graph_index];
  const AlgorithmCase algorithm_case = algorithm_battery()[algorithm_index];
  util::Rng rng(seed * 7919 + graph_index);
  const graph::Graph g = graph_case.make(rng);
  const MisResult result = algorithm_case.run(g, seed);
  const Verification v = verify(g, result);
  EXPECT_TRUE(v.ok()) << algorithm_case.name << " on " << graph_case.name
                      << " seed " << seed << ": " << v.describe();
  EXPECT_TRUE(result.stats.all_halted)
      << algorithm_case.name << " on " << graph_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, MisSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 17),
                       ::testing::Range<std::size_t>(0, 5),
                       ::testing::Values(1, 42, 2026)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      const std::size_t g = std::get<0>(param_info.param);
      const std::size_t a = std::get<1>(param_info.param);
      const std::uint64_t s = std::get<2>(param_info.param);
      return graph_battery()[g].name + "_" + algorithm_battery()[a].name +
             "_s" + std::to_string(s);
    });

TEST(Metivier, DeterministicGivenSeed) {
  util::Rng rng(71);
  const graph::Graph g = graph::gen::gnp(80, 0.08, rng);
  const MisResult a = MetivierMis::run(g, 5);
  const MisResult b = MetivierMis::run(g, 5);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Metivier, DifferentSeedsUsuallyDiffer) {
  util::Rng rng(73);
  const graph::Graph g = graph::gen::gnp(80, 0.08, rng);
  const MisResult a = MetivierMis::run(g, 1);
  const MisResult b = MetivierMis::run(g, 2);
  EXPECT_NE(a.state, b.state);  // overwhelmingly likely
}

TEST(Metivier, LogarithmicRoundGrowth) {
  // Rounds should grow slowly (O(log n) whp): a 16x larger graph should
  // take far less than 16x the rounds.
  util::Rng rng(79);
  const graph::Graph small = graph::gen::gnp(256, 0.02, rng);
  const graph::Graph large = graph::gen::gnp(4096, 0.02 / 16, rng);
  const auto small_rounds = MetivierMis::run(small, 3).stats.rounds;
  const auto large_rounds = MetivierMis::run(large, 3).stats.rounds;
  EXPECT_LT(large_rounds, small_rounds * 8);
}

TEST(LubyA, PriorityRangeIsNFourth) {
  const graph::Graph g = graph::gen::path(4);
  const MisResult result = luby_a_mis(g, 1);
  EXPECT_TRUE(verify(g, result).ok());
}

TEST(LubyA, PriorityRangeSaturatesAtHugeN) {
  // Regression: n = 2^16 makes n^4 = 2^64 wrap to zero with plain
  // multiplication, collapsing all priorities to one value and spinning
  // the competition forever. The range must saturate instead.
  const graph::Graph g = graph::gen::path(1 << 16);
  const MisResult result = luby_a_mis(g, 1, /*max_rounds=*/4000);
  EXPECT_TRUE(result.stats.all_halted);
  EXPECT_TRUE(verify(g, result).ok());
}

TEST(Election, DeterministicAndSeedIndependent) {
  util::Rng rng(83);
  const graph::Graph g = graph::gen::gnp(60, 0.1, rng);
  const MisResult a = ElectionMis::run(g, 1);
  const MisResult b = ElectionMis::run(g, 999);
  EXPECT_EQ(a.state, b.state);  // the election never consults the RNG
}

TEST(Election, PicksLocalMaxima) {
  const graph::Graph g = graph::gen::path(3);
  const MisResult result = ElectionMis::run(g, 0);
  EXPECT_TRUE(result.in_mis(2));
  EXPECT_TRUE(result.in_mis(0));
}

TEST(Ghaffari, DesiresStayInRange) {
  // Indirect check: the algorithm terminates quickly on a dense graph,
  // which requires the desire dynamics to function.
  util::Rng rng(89);
  const graph::Graph g = graph::gen::gnp(200, 0.2, rng);
  const MisResult result = GhaffariMis::run(g, 4);
  EXPECT_TRUE(verify(g, result).ok());
  EXPECT_LT(result.stats.rounds, 400u);
}

TEST(AllAlgorithms, MisSizesWithinRange) {
  // On a star only two MIS shapes exist: {center} or all leaves.
  const graph::Graph g = graph::gen::star(30);
  for (const auto& algorithm : algorithm_battery()) {
    const MisResult result = algorithm.run(g, 11);
    const auto size = result.mis_size();
    EXPECT_TRUE(size == 1 || size == 29) << algorithm.name;
  }
}

}  // namespace
}  // namespace arbmis::mis
