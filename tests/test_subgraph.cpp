// Tests for induced subgraph extraction and id mapping.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/subgraph.h"

namespace arbmis::graph {
namespace {

TEST(Subgraph, MaskExtraction) {
  const Graph g = gen::cycle(6);
  const std::vector<std::uint8_t> mask{1, 1, 1, 0, 0, 1};
  const Subgraph sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  // Edges kept: 0-1, 1-2, 5-0.
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_TRUE(sub.contains(0));
  EXPECT_FALSE(sub.contains(3));
}

TEST(Subgraph, MappingRoundTrips) {
  util::Rng rng(53);
  const Graph g = gen::gnp(40, 0.15, rng);
  std::vector<std::uint8_t> mask(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); v += 2) mask[v] = 1;
  const Subgraph sub = induced_subgraph(g, mask);
  for (NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
    const NodeId original = sub.original(local);
    EXPECT_TRUE(mask[original]);
    EXPECT_EQ(sub.to_local[original], local);
  }
}

TEST(Subgraph, EdgesMatchOriginal) {
  util::Rng rng(59);
  const Graph g = gen::random_apollonian(30, rng);
  std::vector<NodeId> nodes{0, 3, 5, 7, 11, 13, 20};
  const Subgraph sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.num_nodes(), nodes.size());
  for (NodeId a = 0; a < sub.graph.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < sub.graph.num_nodes(); ++b) {
      EXPECT_EQ(sub.graph.has_edge(a, b),
                g.has_edge(sub.original(a), sub.original(b)));
    }
  }
}

TEST(Subgraph, EmptyMask) {
  const Graph g = gen::path(5);
  const std::vector<std::uint8_t> mask(5, 0);
  const Subgraph sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(Subgraph, FullMaskIsIsomorphic) {
  const Graph g = gen::cycle(8);
  const std::vector<std::uint8_t> mask(8, 1);
  const Subgraph sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(sub.original(v), v);
}

}  // namespace
}  // namespace arbmis::graph
