// CONGEST compliance meta-test: every distributed algorithm in the
// repository must stay within one message per directed edge per round
// (the simulator aborts otherwise — this test proves nothing aborted and
// the recorded max edge load is 1 across a workload battery).
//
// Beyond the per-edge message count checked here, every one of these runs
// also passes through the full runtime model checker (sim/model_check.h,
// on by default): per-edge bit budgets, cross-node state-read isolation,
// and per-round randomness budgets are enforced on this whole battery,
// with fail_fast=true — a violation anywhere would throw and fail the
// test. Checker-specific behavior is covered in test_model_check.cpp.
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "core/bounded_arb.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/cole_vishkin.h"
#include "mis/forest_decomposition.h"
#include "mis/ghaffari.h"
#include "mis/linial.h"
#include "mis/luby.h"
#include "mis/matching.h"
#include "mis/metivier.h"
#include "mis/slow_local.h"
#include "sim/bfs_rooting.h"

namespace arbmis {
namespace {

graph::Graph battery_graph(std::size_t index, util::Rng& rng) {
  switch (index % 4) {
    case 0: return graph::gen::random_tree(300, rng);
    case 1: return graph::gen::hubbed_forest_union(300, 2, 4, rng);
    case 2: return graph::gen::random_apollonian(300, rng);
    default: return graph::gen::gnp(300, 0.04, rng);
  }
}

TEST(CongestCompliance, AllSimulatedAlgorithmsRespectEdgeBudget) {
  util::Rng rng(55);
  for (std::size_t i = 0; i < 4; ++i) {
    const graph::Graph g = battery_graph(i, rng);
    EXPECT_LE(mis::MetivierMis::run(g, i).stats.max_edge_load, 1u);
    EXPECT_LE(mis::LubyBMis::run(g, i).stats.max_edge_load, 1u);
    EXPECT_LE(mis::GhaffariMis::run(g, i).stats.max_edge_load, 1u);
    EXPECT_LE(mis::ElectionMis::run(g, i).stats.max_edge_load, 1u);
    EXPECT_LE(mis::IsraeliItaiMatching::run(g, i).stats.max_edge_load, 1u);
    EXPECT_LE(mis::LinialMis::run(g, g.max_degree(), i).stats.max_edge_load,
              1u);
    EXPECT_LE(sim::BfsRooting::run(g, i, g.num_nodes()).stats.max_edge_load,
              1u);
    const auto fd = mis::ForestDecomposition::run(
        g, {.alpha = std::max<graph::NodeId>(graph::degeneracy(g), 1),
            .eps = 2.0});
    EXPECT_LE(fd.stats.max_edge_load, 1u);
    const core::Params params = core::Params::practical(2, g.max_degree());
    EXPECT_LE(core::BoundedArbIndependentSet::run(g, params, i)
                  .stats.max_edge_load,
              1u);
  }
}

TEST(CongestCompliance, ColeVishkinRespectsEdgeBudget) {
  util::Rng rng(77);
  const graph::Graph t = graph::gen::random_tree(400, rng);
  const auto rooting = sim::BfsRooting::run(t, 1, t.num_nodes());
  ASSERT_TRUE(rooting.stabilized);
  const auto cv = mis::ColeVishkin::run(t, rooting.parent,
                                        mis::ColeVishkin::Mode::kForestMis);
  EXPECT_LE(cv.stats.max_edge_load, 1u);
}

TEST(CongestCompliance, MessagesAreOneWordWide) {
  // Structural: the Message type physically cannot carry more than one
  // 64-bit payload word, so O(log n) bits per message holds for any graph
  // this simulator can represent. Pin the accounting constant.
  static_assert(sizeof(sim::Message::payload) == 8);
  EXPECT_EQ(sim::kBitsPerMessage, 72u);
}

}  // namespace
}  // namespace arbmis
