// Monte-Carlo engine tests: estimates match closed forms on analyzable
// families, and the paper's bounds hold empirically (Theorems 1.1, 1.2).
#include <gtest/gtest.h>

#include <cmath>

#include "readk/bounds.h"
#include "readk/family.h"
#include "readk/montecarlo.h"

namespace arbmis::readk {
namespace {

constexpr std::uint64_t kTrials = 20000;

TEST(Conjunction, IndependentFamilyMatchesClosedForm) {
  util::Rng rng(1);
  const ReadKFamily family = independent_family(8, 0.8);
  const ConjunctionEstimate estimate =
      estimate_conjunction(family, kTrials, rng);
  const double truth = std::pow(0.8, 8);  // ~0.168
  EXPECT_TRUE(estimate.ci.contains(truth))
      << estimate.probability << " vs " << truth;
  EXPECT_NEAR(estimate.mean_indicator, 0.8, 0.01);
}

TEST(Conjunction, SharedBlockIsExactlyTheTheorem11Bound) {
  // For the block family P(all) = p^(n/k) exactly — the bound is tight.
  util::Rng rng(2);
  const std::uint32_t n = 12, k = 4;
  const double p = 0.7;
  const ReadKFamily family = shared_block_family(n, k, p);
  const ConjunctionEstimate estimate =
      estimate_conjunction(family, kTrials, rng);
  const double bound = conjunction_bound(p, n, k);
  EXPECT_TRUE(estimate.ci.contains(bound))
      << estimate.probability << " vs " << bound;
}

TEST(Conjunction, Theorem11HoldsAcrossFamilies) {
  util::Rng rng(3);
  for (std::uint32_t k : {1u, 2u, 4u}) {
    for (double p : {0.5, 0.8}) {
      const ReadKFamily family = shared_block_family(16, k, p);
      const ConjunctionEstimate estimate =
          estimate_conjunction(family, kTrials, rng);
      const double bound = conjunction_bound(p, 16, family.read_k());
      // The bound must not be violated beyond CI noise.
      EXPECT_LE(estimate.ci.lo, bound + 1e-9)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(LowerTail, ExpectedSumMatches) {
  util::Rng rng(4);
  const ReadKFamily family = independent_family(64, 0.25);
  const std::vector<double> deltas{0.5};
  const TailEstimate estimate =
      estimate_lower_tail(family, kTrials, deltas, rng);
  EXPECT_NEAR(estimate.expected_sum, 16.0, 0.5);
}

TEST(LowerTail, Theorem12HoldsOnBlockFamily) {
  util::Rng rng(5);
  const std::uint32_t n = 64, k = 4;
  const double p = 0.5;
  const ReadKFamily family = shared_block_family(n, k, p);
  const std::vector<double> deltas{0.25, 0.5, 0.75};
  const TailEstimate estimate =
      estimate_lower_tail(family, kTrials, deltas, rng);
  for (const auto& point : estimate.points) {
    const double bound =
        lower_tail_form2(point.delta, estimate.expected_sum, k);
    EXPECT_LE(point.ci.lo, bound + 1e-9) << "delta=" << point.delta;
  }
}

TEST(LowerTail, BlockFamilyBeatsChernoffDemonstration) {
  // The point of read-k bounds: with k-correlated blocks the lower tail
  // is genuinely fatter than Chernoff allows for independent variables —
  // the empirical tail must exceed the k=1 Chernoff bound somewhere.
  util::Rng rng(6);
  const std::uint32_t n = 60, k = 6;
  const ReadKFamily family = shared_block_family(n, k, 0.5);
  const std::vector<double> deltas{0.6};
  const TailEstimate estimate =
      estimate_lower_tail(family, 50000, deltas, rng);
  const double chernoff =
      chernoff_lower_tail(0.6, estimate.expected_sum);
  EXPECT_GT(estimate.points[0].probability, chernoff)
      << "correlated family should violate the independent-case bound";
  // ...while the read-k bound still holds.
  const double readk_bound =
      lower_tail_form2(0.6, estimate.expected_sum, k);
  EXPECT_LE(estimate.points[0].ci.lo, readk_bound + 1e-9);
}

TEST(LowerTail, IndependentFamilyWithinChernoff) {
  util::Rng rng(7);
  const ReadKFamily family = independent_family(80, 0.5);
  const std::vector<double> deltas{0.3, 0.5};
  const TailEstimate estimate =
      estimate_lower_tail(family, kTrials, deltas, rng);
  for (const auto& point : estimate.points) {
    const double bound =
        chernoff_lower_tail(point.delta, estimate.expected_sum);
    EXPECT_LE(point.ci.lo, bound + 1e-9);
  }
}

TEST(MonteCarlo, ParallelSamplerIsThreadCountInvariant) {
  // The block-parallel sampler partitions trials into fixed-size blocks
  // with per-block child streams, so the estimate is a pure function of
  // the seed: any worker count must reproduce the 1-worker result draw
  // for draw, including a ragged final block.
  const ReadKFamily family = shared_block_family(16, 4, 0.8);
  const std::uint64_t trials = 10000;  // not a block_size multiple
  const McOptions one{.num_threads = 1, .block_size = 1024};

  util::Rng base_rng(42);
  const ConjunctionEstimate base =
      estimate_conjunction(family, trials, base_rng, one);
  for (const std::uint32_t workers : {2u, 3u, 8u}) {
    util::Rng rng(42);
    const ConjunctionEstimate estimate = estimate_conjunction(
        family, trials, rng, {.num_threads = workers, .block_size = 1024});
    EXPECT_EQ(estimate.all_ones, base.all_ones) << "workers=" << workers;
    EXPECT_EQ(estimate.mean_indicator, base.mean_indicator)
        << "workers=" << workers;
  }

  const std::vector<double> deltas{0.25, 0.5};
  util::Rng tail_base_rng(43);
  const TailEstimate tail_base =
      estimate_lower_tail(family, trials, deltas, tail_base_rng, one);
  for (const std::uint32_t workers : {2u, 5u}) {
    util::Rng rng(43);
    const TailEstimate tail = estimate_lower_tail(
        family, trials, deltas, rng,
        {.num_threads = workers, .block_size = 1024});
    EXPECT_EQ(tail.expected_sum, tail_base.expected_sum)
        << "workers=" << workers;
    ASSERT_EQ(tail.points.size(), tail_base.points.size());
    for (std::size_t i = 0; i < tail.points.size(); ++i) {
      EXPECT_EQ(tail.points[i].probability, tail_base.points[i].probability)
          << "workers=" << workers << " delta=" << tail.points[i].delta;
    }
    EXPECT_EQ(tail.sum_stats.mean(), tail_base.sum_stats.mean())
        << "workers=" << workers;
  }
}

TEST(MonteCarlo, ParallelSamplerAgreesStatisticallyWithLegacy) {
  // The parallel stream decomposition is deliberately different from the
  // legacy sequential draw order, so results are not bit-identical — but
  // both sample the same distribution, so the closed form must sit inside
  // both confidence intervals.
  const ReadKFamily family = shared_block_family(12, 4, 0.7);
  const double truth = std::pow(0.7, 3);
  util::Rng serial_rng(9);
  const ConjunctionEstimate serial =
      estimate_conjunction(family, kTrials, serial_rng);
  util::Rng parallel_rng(9);
  const ConjunctionEstimate parallel = estimate_conjunction(
      family, kTrials, parallel_rng, {.num_threads = 4});
  EXPECT_TRUE(serial.ci.contains(truth));
  EXPECT_TRUE(parallel.ci.contains(truth))
      << parallel.probability << " vs " << truth;
}

TEST(MonteCarlo, ZeroTrials) {
  util::Rng rng(8);
  const ReadKFamily family = independent_family(4, 0.5);
  const ConjunctionEstimate estimate = estimate_conjunction(family, 0, rng);
  EXPECT_EQ(estimate.probability, 0.0);
  EXPECT_EQ(estimate.trials, 0u);
}

}  // namespace
}  // namespace arbmis::readk
