// Tests pinning the read-k closed-form bounds (paper Theorems 1.1, 1.2
// and the Event bounds of §3.1).
#include <gtest/gtest.h>

#include <cmath>

#include "readk/bounds.h"

namespace arbmis::readk {
namespace {

TEST(ConjunctionBound, MatchesFormula) {
  EXPECT_NEAR(conjunction_bound(0.5, 10, 1), std::pow(0.5, 10), 1e-12);
  EXPECT_NEAR(conjunction_bound(0.5, 10, 2), std::pow(0.5, 5), 1e-12);
  EXPECT_NEAR(conjunction_bound(0.9, 100, 4), std::pow(0.9, 25), 1e-12);
}

TEST(ConjunctionBound, WeakensWithK) {
  for (std::uint64_t k = 1; k < 16; ++k) {
    EXPECT_LE(conjunction_bound(0.3, 64, k), conjunction_bound(0.3, 64, k + 1));
  }
}

TEST(ConjunctionBound, IndependentCaseIsKEqualsOne) {
  EXPECT_DOUBLE_EQ(conjunction_bound(0.7, 20, 1),
                   independent_conjunction(0.7, 20));
}

TEST(ConjunctionBound, Extremes) {
  EXPECT_DOUBLE_EQ(conjunction_bound(0.0, 5, 2), 0.0);
  EXPECT_DOUBLE_EQ(conjunction_bound(1.0, 5, 2), 1.0);
  EXPECT_DOUBLE_EQ(conjunction_bound(0.5, 8, 0), 1.0);  // degenerate k
}

TEST(LowerTailForm1, MatchesFormulaAndMonotonicity) {
  EXPECT_NEAR(lower_tail_form1(0.1, 100, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(lower_tail_form1(0.1, 100, 4), std::exp(-0.5), 1e-12);
  // Larger deviations are less likely; larger k weakens the bound.
  EXPECT_LT(lower_tail_form1(0.2, 100, 2), lower_tail_form1(0.1, 100, 2));
  EXPECT_LT(lower_tail_form1(0.1, 100, 2), lower_tail_form1(0.1, 100, 8));
}

TEST(LowerTailForm2, MatchesFormula) {
  EXPECT_NEAR(lower_tail_form2(0.5, 40.0, 2), std::exp(-0.25 * 40.0 / 4.0),
              1e-12);
}

TEST(LowerTailForm2, ChernoffIsKEqualsOne) {
  EXPECT_DOUBLE_EQ(lower_tail_form2(0.3, 50.0, 1),
                   chernoff_lower_tail(0.3, 50.0));
  // Read-k is exactly an exponential factor 1/k weaker.
  const double k4 = lower_tail_form2(0.3, 50.0, 4);
  const double chernoff = chernoff_lower_tail(0.3, 50.0);
  EXPECT_NEAR(std::log(k4), std::log(chernoff) / 4.0, 1e-12);
}

TEST(UpperTail, MatchesLowerTailBySymmetry) {
  EXPECT_DOUBLE_EQ(upper_tail_form1(0.1, 100, 4),
                   lower_tail_form1(0.1, 100, 4));
  EXPECT_LT(upper_tail_form1(0.2, 100, 2), upper_tail_form1(0.1, 100, 2));
}

TEST(Event1Bound, GrowsWithMAndShrinksWithAlpha) {
  EXPECT_LT(event1_bound(10, 16, 1), event1_bound(100, 16, 1));
  EXPECT_GT(event1_bound(100, 16, 1), event1_bound(100, 16, 2));
  EXPECT_GE(event1_bound(100, 16, 1), 0.0);
  EXPECT_LE(event1_bound(100, 16, 1), 1.0);
}

TEST(Event1Bound, MatchesFormula) {
  // 1 - (1 - 1/16)^(64/(2·1)) for m=64, Δ=16, α=1.
  EXPECT_NEAR(event1_bound(64, 16, 1), 1.0 - std::pow(15.0 / 16.0, 32.0),
              1e-12);
}

TEST(Event2Bound, MatchesFormula) {
  // exp(-2·(1/4)·m/ρ) for α = 1.
  EXPECT_NEAR(event2_failure_bound(200, 10, 1),
              std::exp(-2.0 * 0.25 * 200.0 / 10.0), 1e-12);
  // Bigger M -> smaller failure probability.
  EXPECT_LT(event2_failure_bound(400, 10, 1),
            event2_failure_bound(200, 10, 1));
}

TEST(Event3Fraction, MatchesFormula) {
  // α = 1: 1/(8·33) = 1/264.
  EXPECT_NEAR(event3_elimination_fraction(1), 1.0 / 264.0, 1e-12);
  // α = 2: 1/(8·4·(32·64+1)) = 1/(32·2049).
  EXPECT_NEAR(event3_elimination_fraction(2), 1.0 / (32.0 * 2049.0), 1e-12);
  EXPECT_GT(event3_elimination_fraction(1), event3_elimination_fraction(2));
}

}  // namespace
}  // namespace arbmis::readk
