// Tests for the Lenzen–Wattenhofer shattering architecture.
#include <gtest/gtest.h>

#include "core/lw_tree_mis.h"
#include "mis/degree_reduction.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/verifier.h"

namespace arbmis::core {
namespace {

class LwSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LwSweep, VerifiedOnTrees) {
  util::Rng rng(GetParam());
  for (const graph::Graph& t :
       {graph::gen::random_tree(2000, rng),
        graph::gen::preferential_attachment_tree(2000, rng),
        graph::gen::balanced_tree(2000, 2), graph::gen::path(1000),
        graph::gen::star(1000)}) {
    const LwTreeMisResult result = lw_tree_mis(t, GetParam());
    EXPECT_TRUE(mis::verify(t, result.mis).ok())
        << "n=" << t.num_nodes() << " Δ=" << t.max_degree();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LwSweep, ::testing::Values(1, 31, 979));

TEST(LwTreeMis, ShatteringLeavesSmallComponents) {
  // The LW claim: after O(√(log n)·log log n) competition rounds, the
  // residual components of a tree are far smaller than the tree.
  util::Rng rng(5);
  const graph::Graph t = graph::gen::random_tree(50000, rng);
  const LwTreeMisResult result = lw_tree_mis(t, 3);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
  if (result.residual_components.set_size > 0) {
    EXPECT_LT(result.residual_components.largest_component,
              t.num_nodes() / 100);
  }
}

TEST(LwTreeMis, WorksOnBoundedArbGraphsToo) {
  util::Rng rng(7);
  const graph::Graph g = graph::gen::union_of_random_forests(1500, 2, rng);
  LwTreeMisOptions options;
  options.alpha = 2;
  const LwTreeMisResult result = lw_tree_mis(g, 9, options);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
}

TEST(LwTreeMis, ElectionFinishOption) {
  util::Rng rng(11);
  const graph::Graph t = graph::gen::random_tree(1000, rng);
  LwTreeMisOptions options;
  options.sparse_finish = false;
  const LwTreeMisResult result = lw_tree_mis(t, 13, options);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
}

TEST(LwTreeMis, StatsAdditiveAndBudgetedPhaseBounded) {
  util::Rng rng(13);
  const graph::Graph t = graph::gen::random_tree(4000, rng);
  const LwTreeMisResult result = lw_tree_mis(t, 15);
  EXPECT_EQ(result.mis.stats.rounds,
            result.shatter_stats.rounds + result.finish_stats.rounds + 1);
  // The shattering phase obeys its budget (+1 flush round).
  const std::uint32_t budget = mis::degree_reduction_budget(4000, 3.0);
  EXPECT_LE(result.shatter_stats.rounds, budget + 1);
}

TEST(LwTreeMis, TinyInputs) {
  for (graph::NodeId n : {0u, 1u, 2u}) {
    const graph::Graph g = graph::gen::path(n);
    EXPECT_TRUE(mis::verify(g, lw_tree_mis(g, 1).mis).ok()) << n;
  }
}

}  // namespace
}  // namespace arbmis::core
