// Tests for the leader-gather component MIS (§2.1's "deterministic
// algorithm for small components", taken literally).
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/gather_solve.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

class GatherSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatherSweep, VerifiedOnBattery) {
  util::Rng rng(GetParam());
  for (const graph::Graph& g :
       {graph::gen::path(40), graph::gen::cycle(33), graph::gen::star(25),
        graph::gen::complete(8), graph::gen::random_tree(120, rng),
        graph::gen::gnp(120, 0.05, rng),
        graph::gen::random_apollonian(100, rng)}) {
    const MisResult result = GatherSolveMis::run(g, GetParam());
    EXPECT_TRUE(verify(g, result).ok())
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
    EXPECT_TRUE(result.stats.all_halted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherSweep, ::testing::Values(1, 13, 444));

TEST(GatherSolve, DeterministicResultMatchesGreedyOrder) {
  // The leader solves greedily by ascending id; on a path rooted at 0 the
  // result must equal the sequential greedy MIS.
  const graph::Graph g = graph::gen::path(9);
  const MisResult result = GatherSolveMis::run(g, 1);
  for (graph::NodeId v = 0; v < 9; ++v) {
    EXPECT_EQ(result.in_mis(v), v % 2 == 0) << v;
  }
}

TEST(GatherSolve, HandlesManyComponentsInParallel) {
  graph::Builder b(30);
  for (graph::NodeId base = 0; base < 30; base += 5) {
    b.add_edge(base, base + 1).add_edge(base + 1, base + 2);
    b.add_edge(base + 2, base + 3).add_edge(base + 3, base + 4);
  }
  const graph::Graph g = b.build();
  const MisResult result = GatherSolveMis::run(g, 1);
  EXPECT_TRUE(verify(g, result).ok());
  // 6 path components of 5 -> MIS size 3 each.
  EXPECT_EQ(result.mis_size(), 18u);
}

TEST(GatherSolve, IsolatedAndTinyInputs) {
  for (graph::NodeId n : {0u, 1u, 2u, 3u}) {
    const graph::Graph g = graph::gen::path(n);
    EXPECT_TRUE(verify(g, GatherSolveMis::run(g, 1)).ok()) << n;
  }
  const graph::Graph isolated = graph::Builder(4).build();
  const MisResult result = GatherSolveMis::run(isolated, 1);
  EXPECT_EQ(result.mis_size(), 4u);
}

TEST(GatherSolve, RoundsScaleWithComponentEdges) {
  // One big component: rounds ~ O(m + diameter); a shattered graph of the
  // same total size finishes much faster (components run in parallel).
  util::Rng rng(7);
  const graph::Graph big = graph::gen::random_tree(600, rng);
  graph::Builder b(600);
  for (graph::NodeId base = 0; base < 600; base += 20) {
    util::Rng component_rng(base + 1);
    const graph::Graph piece = graph::gen::random_tree(20, component_rng);
    for (const graph::Edge& e : piece.edges()) {
      b.add_edge(base + e.u, base + e.v);
    }
  }
  const graph::Graph shattered = b.build();
  const auto big_rounds = GatherSolveMis::run(big, 1).stats.rounds;
  const auto small_rounds =
      GatherSolveMis::run(shattered, 1, /*rooting_budget=*/25).stats.rounds;
  EXPECT_LT(small_rounds, big_rounds / 4);
}

TEST(GatherSolve, CongestCompliant) {
  util::Rng rng(11);
  const graph::Graph g = graph::gen::gnp(150, 0.05, rng);
  const MisResult result = GatherSolveMis::run(g, 3);
  EXPECT_EQ(result.stats.max_edge_load, 1u);
}

TEST(GatherSolve, WorksAsArbMisBadFinisher) {
  util::Rng rng(13);
  const graph::Graph g = graph::gen::hubbed_forest_union(800, 2, 8, rng);
  core::ArbMisOptions options;
  options.alpha = 2;
  options.low_finisher = core::Finisher::kGather;
  options.high_finisher = core::Finisher::kGather;
  options.bad_finisher = core::Finisher::kGather;
  const core::ArbMisResult result = core::arb_mis(g, options, 5);
  EXPECT_TRUE(verify(g, result.mis).ok());
}

TEST(GatherSolve, InsufficientRootingBudgetThrows) {
  const graph::Graph g = graph::gen::path(200);
  EXPECT_THROW(GatherSolveMis::run(g, 1, /*rooting_budget=*/3),
               std::invalid_argument);
}

}  // namespace
}  // namespace arbmis::mis
