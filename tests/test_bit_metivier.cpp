// Tests for the bit-complexity Métivier MIS (paper reference [11]).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "mis/bit_metivier.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

class BitMetivierSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitMetivierSweep, VerifiedOnBattery) {
  util::Rng rng(GetParam());
  for (const graph::Graph& g :
       {graph::gen::path(50), graph::gen::cycle(51), graph::gen::star(40),
        graph::gen::complete(10), graph::gen::grid(7, 7),
        graph::gen::random_tree(200, rng), graph::gen::gnp(200, 0.04, rng),
        graph::gen::random_apollonian(150, rng),
        graph::gen::hubbed_forest_union(300, 2, 4, rng)}) {
    const BitMetivierMis::Result result = BitMetivierMis::run(g, GetParam());
    EXPECT_TRUE(verify(g, result.mis).ok())
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
    EXPECT_TRUE(result.mis.stats.all_halted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitMetivierSweep,
                         ::testing::Values(1, 7, 42, 1001, 31337));

TEST(BitMetivier, TinyInputs) {
  for (graph::NodeId n : {0u, 1u, 2u, 3u}) {
    const graph::Graph g = graph::gen::path(n);
    EXPECT_TRUE(verify(g, BitMetivierMis::run(g, 1).mis).ok()) << n;
  }
  const graph::Graph isolated = graph::Builder(3).build();
  EXPECT_EQ(BitMetivierMis::run(isolated, 1).mis.mis_size(), 3u);
}

TEST(BitMetivier, DeterministicGivenSeed) {
  util::Rng rng(3);
  const graph::Graph g = graph::gen::gnp(120, 0.06, rng);
  const auto a = BitMetivierMis::run(g, 9);
  const auto b = BitMetivierMis::run(g, 9);
  EXPECT_EQ(a.mis.state, b.mis.state);
  EXPECT_EQ(a.semantic_bits, b.semantic_bits);
}

TEST(BitMetivier, BitComplexityIsLogarithmicPerChannel) {
  // The headline claim of [11]: O(log n) bits per channel whp. Compare
  // bits/channel at two sizes — the growth should be ~additive in log n,
  // nowhere near linear, and tiny in absolute terms versus shipping
  // 64-bit priorities every iteration.
  util::Rng rng(5);
  const graph::Graph small = graph::gen::random_tree(500, rng);
  const graph::Graph large = graph::gen::random_tree(8000, rng);
  const auto rs = BitMetivierMis::run(small, 1);
  const auto rl = BitMetivierMis::run(large, 1);
  EXPECT_LT(rs.bits_per_channel, 64.0);
  EXPECT_LT(rl.bits_per_channel, 64.0);
  // 16x nodes: bits/channel grows by far less than 2x.
  EXPECT_LT(rl.bits_per_channel, rs.bits_per_channel * 2.0);
}

TEST(BitMetivier, CongestCompliant) {
  util::Rng rng(7);
  const graph::Graph g = graph::gen::gnp(200, 0.05, rng);
  const auto result = BitMetivierMis::run(g, 3);
  EXPECT_EQ(result.mis.stats.max_edge_load, 1u);
}

TEST(BitMetivier, SemanticBitsCounted) {
  const graph::Graph g = graph::gen::path(2);
  const auto result = BitMetivierMis::run(g, 1);
  // At minimum one bit exchange each way plus the join/cover control.
  EXPECT_GE(result.semantic_bits, 6u);
  EXPECT_GT(result.bits_per_channel, 0.0);
}

TEST(BitMetivier, RoundsReasonable) {
  // Duels are paced (2 rounds per exchanged bit), so rounds are a small
  // multiple of Métivier's iteration count — still O(log n)-ish, not O(n).
  util::Rng rng(9);
  const graph::Graph g = graph::gen::gnp(2000, 0.004, rng);
  const auto result = BitMetivierMis::run(g, 11);
  EXPECT_TRUE(verify(g, result.mis).ok());
  EXPECT_LT(result.mis.stats.rounds, 300u);
}

}  // namespace
}  // namespace arbmis::mis
