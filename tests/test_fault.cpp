// Tests of the fault-injection subsystem (src/fault/): FaultPlan
// determinism and ledger accounting, the edge cases the issue calls out
// (crash-at-round-0, crash-all-neighbors, 100% drop, duplicate storm),
// zero-cost-when-off equivalence, and ResilientMis certification on the
// standard test graphs under every adversary.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/adversary.h"
#include "fault/fault_plan.h"
#include "fault/resilient_mis.h"
#include "graph/generators.h"
#include "mis/distributed_verify.h"
#include "mis/ghaffari.h"
#include "mis/luby.h"
#include "mis/verifier.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace arbmis {
namespace {

/// Test-only adversary with an explicit crash schedule (round -> nodes)
/// and fixed message odds.
class ScriptedAdversary final : public fault::Adversary {
 public:
  ScriptedAdversary(fault::MessageOdds odds,
                    std::map<std::uint32_t, std::vector<graph::NodeId>> crashes,
                    std::uint32_t recovery_delay = 0)
      : odds_(odds),
        crashes_(std::move(crashes)),
        recovery_delay_(recovery_delay) {}

  std::string_view name() const override { return "scripted"; }
  fault::MessageOdds message_odds(graph::NodeId, graph::NodeId,
                                  std::uint32_t) const override {
    return odds_;
  }
  void pick_crashes(std::uint32_t round, const fault::AdversaryView&,
                    util::Rng&, std::vector<graph::NodeId>& out) override {
    const auto it = crashes_.find(round);
    if (it == crashes_.end()) return;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::uint32_t recovery_delay() const override { return recovery_delay_; }

 private:
  fault::MessageOdds odds_;
  std::map<std::uint32_t, std::vector<graph::NodeId>> crashes_;
  std::uint32_t recovery_delay_;
};

std::vector<std::pair<std::string, graph::Graph>> standard_graphs(
    std::uint64_t seed) {
  std::vector<std::pair<std::string, graph::Graph>> graphs;
  graphs.emplace_back("path", graph::gen::path(64));
  {
    util::Rng rng(seed);
    graphs.emplace_back("random_tree", graph::gen::random_tree(200, rng));
  }
  {
    util::Rng rng(seed + 1);
    graphs.emplace_back("gnp", graph::gen::gnp(150, 0.05, rng));
  }
  {
    util::Rng rng(seed + 2);
    graphs.emplace_back("forest_union",
                        graph::gen::union_of_random_forests(200, 2, rng));
  }
  return graphs;
}

mis::MisResult run_luby_with_plan(const graph::Graph& g, std::uint64_t seed,
                                  fault::FaultPlan* plan,
                                  std::uint32_t max_rounds = 4096) {
  sim::NetworkOptions options;
  options.fault = plan;
  sim::Network net(g, seed, options);
  mis::LubyBMis algo(g);
  mis::MisResult result;
  result.stats = net.run(algo, max_rounds);
  result.state = algo.states();
  return result;
}

TEST(FaultPlan, NoOpPlanIsByteIdenticalToFaultFreeRun) {
  // All-zero rates: every message fate is "deliver once", no crashes. The
  // run must be byte-identical to one with no injector attached at all —
  // the zero-cost-when-off property from the other side of the seam.
  const graph::Graph g = graph::gen::path(32);
  fault::IidAdversary idle({});
  fault::FaultPlan plan(g, 99, idle);
  const mis::MisResult with_plan = run_luby_with_plan(g, 99, &plan);
  const mis::MisResult without = run_luby_with_plan(g, 99, nullptr);
  EXPECT_EQ(with_plan.state, without.state);
  EXPECT_EQ(with_plan.stats.rounds, without.stats.rounds);
  EXPECT_EQ(with_plan.stats.messages, without.stats.messages);
  EXPECT_EQ(with_plan.stats.payload_bits, without.stats.payload_bits);
  EXPECT_EQ(plan.totals(), sim::FaultTotals{});
  for (const fault::LedgerEntry& entry : plan.ledger()) {
    EXPECT_EQ(entry.drops, 0u);
    EXPECT_EQ(entry.duplicates, 0u);
    EXPECT_EQ(entry.crashes, 0u);
  }
}

TEST(FaultPlan, PlanIsAPureFunctionOfGraphSeedAdversary) {
  util::Rng rng(5);
  const graph::Graph g = graph::gen::gnp(80, 0.08, rng);
  const auto run = [&g]() {
    fault::IidAdversary adversary(
        {.drop_rate = 0.2, .duplicate_rate = 0.1, .crash_rate = 0.02,
         .recovery_delay = 3});
    fault::FaultPlan plan(g, 7, adversary);
    mis::MisResult result = run_luby_with_plan(g, 7, &plan);
    return std::make_tuple(result.state, result.stats.messages,
                           plan.ledger(), plan.totals());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  EXPECT_TRUE(std::get<3>(first) == std::get<3>(second));
}

TEST(FaultPlan, LedgerSumsToTotalsAndReachesTheReport) {
  util::Rng rng(11);
  const graph::Graph g = graph::gen::gnp(60, 0.1, rng);
  fault::IidAdversary adversary(
      {.drop_rate = 0.3, .duplicate_rate = 0.15, .crash_rate = 0.01});
  fault::FaultPlan plan(g, 3, adversary);
  sim::NetworkOptions options;
  options.fault = &plan;
  sim::Network net(g, 3, options);
  sim::Trace trace;
  mis::LubyBMis algo(g);
  net.run(algo, 2048, trace.observer());

  sim::FaultTotals summed;
  for (const fault::LedgerEntry& entry : plan.ledger()) {
    summed.drops += entry.drops;
    summed.duplicates += entry.duplicates;
    summed.crashes += entry.crashes;
    summed.recoveries += entry.recoveries;
  }
  EXPECT_EQ(summed, plan.totals());
  EXPECT_GT(summed.drops, 0u);
  EXPECT_GT(summed.duplicates, 0u);
  // The same totals surface through the model-check report ...
  EXPECT_EQ(net.model_check_report().faults, plan.totals());
  // ... and per round through the trace (skipping round 0, which the
  // observer does not see).
  sim::FaultTotals traced;
  for (const sim::Trace::RoundRecord& rec : trace.records()) {
    traced.drops += rec.fault_drops;
    traced.duplicates += rec.fault_duplicates;
    traced.crashes += rec.fault_crashes;
    traced.recoveries += rec.fault_recoveries;
  }
  ASSERT_FALSE(plan.ledger().empty());
  const fault::LedgerEntry& round0 = plan.ledger().front();
  EXPECT_EQ(traced.drops + round0.drops, summed.drops);
  EXPECT_EQ(traced.duplicates + round0.duplicates, summed.duplicates);
  EXPECT_EQ(traced.crashes + round0.crashes, summed.crashes);
  EXPECT_EQ(traced.recoveries + round0.recoveries, summed.recoveries);
}

TEST(FaultPlan, CrashAtRoundZeroSilencesTheNodeForGood) {
  const graph::Graph g = graph::gen::path(8);
  ScriptedAdversary adversary({}, {{0, {3}}});
  fault::FaultPlan plan(g, 1, adversary);
  const mis::MisResult result = run_luby_with_plan(g, 1, &plan);
  // Node 3 never ran (not even on_start): no label, still down.
  EXPECT_EQ(result.state[3], mis::MisState::kUndecided);
  EXPECT_TRUE(plan.is_down(3));
  EXPECT_EQ(plan.num_down(), 1u);
  // Exactly one crash; the only drops are the neighbors' messages into
  // the dead node (sends to a down node are lost in transit).
  EXPECT_EQ(plan.totals().crashes, 1u);
  EXPECT_EQ(plan.totals().recoveries, 0u);
  EXPECT_EQ(plan.totals().duplicates, 0u);
  EXPECT_GT(plan.totals().drops, 0u);
  // The survivors still settle a valid MIS of the residual path.
  std::vector<std::uint8_t> in_mis(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    in_mis[v] = (result.state[v] == mis::MisState::kInMis) ? 1 : 0;
  }
  EXPECT_TRUE(mis::is_independent(g, in_mis));
}

TEST(FaultPlan, CrashAllNeighborsLeavesTheCenterSelfSufficient) {
  // Star: crash every leaf at round 0; the center sees an empty
  // neighborhood and must still decide (Luby joins outright).
  const graph::Graph g = graph::gen::star(9);  // node 0 = center
  std::vector<graph::NodeId> leaves;
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) leaves.push_back(v);
  ScriptedAdversary adversary({}, {{0, leaves}});
  fault::FaultPlan plan(g, 2, adversary);
  const mis::MisResult result = run_luby_with_plan(g, 2, &plan);
  EXPECT_EQ(result.state[0], mis::MisState::kInMis);
  EXPECT_EQ(plan.num_down(), g.num_nodes() - 1);
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.state[v], mis::MisState::kUndecided) << v;
  }
}

TEST(FaultPlan, HundredPercentDropDeliversNothing) {
  const graph::Graph g = graph::gen::cycle(16);
  fault::IidAdversary adversary({.drop_rate = 1.0});
  fault::FaultPlan plan(g, 4, adversary);
  const mis::MisResult result = run_luby_with_plan(g, 4, &plan, 256);
  // Every send was eaten: nothing was ever consumed, everything dropped.
  EXPECT_EQ(result.stats.messages, 0u);
  EXPECT_GT(plan.totals().drops, 0u);
  EXPECT_EQ(plan.totals().duplicates, 0u);
  // Under total blackout every Luby node sees an empty neighborhood and
  // joins — the canonical safety violation ResilientMis exists to catch.
  std::vector<std::uint8_t> in_mis(g.num_nodes(), 1);
  EXPECT_FALSE(mis::is_independent(g, in_mis));
}

TEST(FaultPlan, DuplicateStormDeliversEveryMessageTwice) {
  const graph::Graph g = graph::gen::cycle(12);
  fault::IidAdversary adversary({.duplicate_rate = 1.0});
  fault::FaultPlan plan(g, 6, adversary);
  const mis::MisResult result = run_luby_with_plan(g, 6, &plan, 1024);
  // Every message is delivered exactly twice (delivered = 2 x sent =
  // 2 x duplicates). Consumed counts can fall short — messages landing on
  // an already-halted node are never read — but they always come in pairs.
  EXPECT_GT(plan.totals().duplicates, 0u);
  EXPECT_GT(result.stats.messages, 0u);
  EXPECT_LE(result.stats.messages, 2 * plan.totals().duplicates);
  EXPECT_EQ(result.stats.messages % 2, 0u);
  EXPECT_EQ(plan.totals().drops, 0u);
}

TEST(FaultPlan, RecoveryBringsCrashedNodesBack) {
  const graph::Graph g = graph::gen::path(10);
  ScriptedAdversary adversary({}, {{1, {4, 5}}}, /*recovery_delay=*/2);
  fault::FaultPlan plan(g, 8, adversary);
  const mis::MisResult result = run_luby_with_plan(g, 8, &plan);
  EXPECT_EQ(plan.totals().crashes, 2u);
  EXPECT_EQ(plan.totals().recoveries, 2u);
  EXPECT_EQ(plan.num_down(), 0u);
  EXPECT_FALSE(plan.recovery_pending());
  // Recovered nodes resume with state intact and eventually decide.
  EXPECT_TRUE(result.stats.all_halted);
  EXPECT_NE(result.state[4], mis::MisState::kUndecided);
  EXPECT_NE(result.state[5], mis::MisState::kUndecided);
}

TEST(Adversary, AdaptiveTargetsHighDegreeActiveNodes) {
  const graph::Graph g = graph::gen::star(16);  // center has degree 15
  fault::AdaptiveAdversary adversary(
      {.drop_rate = 0.9, .crash_period = 2, .max_crashes = 1,
       .degree_fraction = 0.1});
  fault::FaultPlan plan(g, 5, adversary);
  EXPECT_TRUE(adversary.targeted(0));
  EXPECT_FALSE(adversary.targeted(1));
  run_luby_with_plan(g, 5, &plan);
  // The single crash of the budget lands on the center (highest degree).
  EXPECT_TRUE(plan.is_down(0));
  EXPECT_EQ(plan.totals().crashes, 1u);
}

TEST(Adversary, BurstyAlternatesCalmAndLossyRounds) {
  fault::BurstyAdversary adversary({.base_drop_rate = 0.0,
                                    .burst_drop_rate = 0.8,
                                    .period = 6,
                                    .burst_rounds = 2});
  EXPECT_TRUE(adversary.in_burst(0));
  EXPECT_TRUE(adversary.in_burst(1));
  EXPECT_FALSE(adversary.in_burst(2));
  EXPECT_FALSE(adversary.in_burst(5));
  EXPECT_TRUE(adversary.in_burst(6));
  EXPECT_DOUBLE_EQ(adversary.message_odds(0, 1, 1).drop, 0.8);
  EXPECT_DOUBLE_EQ(adversary.message_odds(0, 1, 3).drop, 0.0);
}

class ResilientMisCertification
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResilientMisCertification, CertifiesLubyOnAllStandardGraphs) {
  const std::uint64_t seed = GetParam();
  for (const auto& [name, g] : standard_graphs(seed)) {
    fault::IidAdversary adversary(
        {.drop_rate = 0.25, .duplicate_rate = 0.05, .crash_rate = 0.01});
    fault::ResilientOptions options;
    options.max_rounds_per_attempt = 4096;
    const fault::ResilientResult result = fault::resilient_mis(
        g, seed, adversary, fault::algorithm_driver<mis::LubyBMis>(),
        options);
    EXPECT_TRUE(result.certified) << name;
    EXPECT_GT(result.faults.drops, 0u) << name;
    mis::MisResult as_result;
    as_result.state = result.state;
    EXPECT_TRUE(mis::verify(g, as_result).ok()) << name;
  }
}

TEST_P(ResilientMisCertification, CertifiesGhaffariUnderBurstyLoss) {
  const std::uint64_t seed = GetParam();
  for (const auto& [name, g] : standard_graphs(seed)) {
    fault::BurstyAdversary adversary({.base_drop_rate = 0.05,
                                      .burst_drop_rate = 0.6,
                                      .period = 5,
                                      .burst_rounds = 2,
                                      .crash_rate = 0.02,
                                      .recovery_delay = 4});
    fault::ResilientOptions options;
    options.max_rounds_per_attempt = 4096;
    const fault::ResilientResult result = fault::resilient_mis(
        g, seed, adversary, fault::algorithm_driver<mis::GhaffariMis>(),
        options);
    EXPECT_TRUE(result.certified) << name;
    mis::MisResult as_result;
    as_result.state = result.state;
    EXPECT_TRUE(mis::verify(g, as_result).ok()) << name;
  }
}

TEST_P(ResilientMisCertification, CertifiesShatterDriverUnderAdaptiveFaults) {
  const std::uint64_t seed = GetParam();
  for (const auto& [name, g] : standard_graphs(seed)) {
    fault::AdaptiveAdversary adversary({.drop_rate = 0.4,
                                        .background_drop_rate = 0.05,
                                        .crash_period = 4,
                                        .max_crashes = 3});
    fault::ResilientOptions options;
    options.max_rounds_per_attempt = 4096;
    const fault::ResilientResult result = fault::resilient_mis(
        g, seed, adversary, fault::shatter_driver(2), options);
    EXPECT_TRUE(result.certified) << name;
    mis::MisResult as_result;
    as_result.state = result.state;
    EXPECT_TRUE(mis::verify(g, as_result).ok()) << name;
  }
}

TEST_P(ResilientMisCertification, RecoversFromTotalBlackout) {
  // 100% drop: no faulty attempt can certify anything beyond isolated
  // nodes, so the fault-free safety net must finish the job.
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const graph::Graph g = graph::gen::gnp(80, 0.06, rng);
  fault::IidAdversary adversary({.drop_rate = 1.0});
  fault::ResilientOptions options;
  options.max_rounds_per_attempt = 512;
  options.fault_free_after = 2;
  options.max_attempts = 4;
  const fault::ResilientResult result = fault::resilient_mis(
      g, seed, adversary, fault::algorithm_driver<mis::LubyBMis>(), options);
  EXPECT_TRUE(result.certified);
  mis::MisResult as_result;
  as_result.state = result.state;
  EXPECT_TRUE(mis::verify(g, as_result).ok());
  // At least one faulty attempt ran and failed to finish the job.
  ASSERT_GE(result.attempt_log.size(), 2u);
  EXPECT_TRUE(result.attempt_log.front().faulty);
  EXPECT_LT(result.attempt_log.front().committed +
                result.attempt_log.front().covered,
            g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilientMisCertification,
                         ::testing::Values(1, 7, 2024));

}  // namespace
}  // namespace arbmis
