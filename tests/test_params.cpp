// Tests pinning the paper's parameter formulas (Θ, Λ, ρ_k and the derived
// thresholds) and the practical preset's shape.
#include <gtest/gtest.h>

#include <cmath>

#include "core/params.h"

namespace arbmis::core {
namespace {

TEST(PaperParams, FormulasMatchPrintedText) {
  const graph::NodeId alpha = 2;
  const graph::NodeId delta = 1 << 16;
  const Params params = Params::paper_faithful(alpha, delta, /*p=*/1);

  const double ln_delta = std::log(static_cast<double>(delta));
  const double ln2 = ln_delta * ln_delta;

  // Θ = floor(log2(Δ / (1176·16·α^10·ln²Δ))), clamped at 0.
  const double theta_arg =
      static_cast<double>(delta) / (1176.0 * 16.0 * std::pow(2.0, 10) * ln2);
  const double expected_theta = std::floor(std::log2(theta_arg));
  EXPECT_EQ(params.num_scales,
            expected_theta < 0 ? 0u
                               : static_cast<std::uint32_t>(expected_theta));

  // Λ = ceil(8·α²·(32·α^6+1)·ln(260·α^4·ln²Δ)).
  const double lambda =
      8.0 * 4.0 * (32.0 * 64.0 + 1.0) * std::log(260.0 * 16.0 * ln2);
  EXPECT_EQ(params.iterations_per_scale,
            static_cast<std::uint32_t>(std::ceil(lambda)));

  // ρ_1 = 8·lnΔ·Δ/4.
  EXPECT_EQ(params.rho(1),
            static_cast<std::uint64_t>(
                std::ceil(8.0 * ln_delta * delta / 4.0)));
}

TEST(PaperParams, ThetaDegeneratesToZeroForFeasibleGraphs) {
  // The headline fact the practical preset exists for: with α >= 2 the
  // printed constants give zero scales for any graph that fits in memory.
  for (graph::NodeId delta : {1u << 10, 1u << 20, 1u << 30}) {
    EXPECT_EQ(Params::paper_faithful(2, delta).num_scales, 0u);
  }
  // For α = 1 and astronomically large Δ the formula does go positive.
  EXPECT_GT(Params::paper_faithful(1, ~graph::NodeId{0}).num_scales, 0u);
}

TEST(PaperParams, LambdaScalesAsAlphaToTheEighth) {
  const auto l2 = Params::paper_faithful(2, 1 << 20).iterations_per_scale;
  const auto l4 = Params::paper_faithful(4, 1 << 20).iterations_per_scale;
  // α^8 scaling: doubling α multiplies Λ by ~2^8 (log factor drifts a bit).
  const double ratio = static_cast<double>(l4) / static_cast<double>(l2);
  EXPECT_GT(ratio, 150.0);
  EXPECT_LT(ratio, 400.0);
}

TEST(Thresholds, HalveEachScale) {
  Params params = Params::practical(2, 1 << 12);
  ASSERT_GE(params.num_scales, 2u);
  for (std::uint32_t k = 1; k < params.num_scales; ++k) {
    // Δ/2^k halves; the +α offset is constant.
    EXPECT_EQ(params.high_degree_threshold(k) - params.alpha,
              2 * (params.high_degree_threshold(k + 1) - params.alpha));
    EXPECT_EQ(params.bad_threshold(k), 2 * params.bad_threshold(k + 1));
    EXPECT_GE(params.rho(k), params.rho(k + 1));
  }
}

TEST(Thresholds, BadIsQuarterOfHigh) {
  const Params params = Params::practical(1, 1 << 10);
  for (std::uint32_t k = 1; k <= params.num_scales; ++k) {
    // Δ/2^(k+2) = (Δ/2^k)/4.
    EXPECT_EQ(params.bad_threshold(k),
              (params.high_degree_threshold(k) - params.alpha) / 4);
  }
}

TEST(PracticalParams, ScalesExecuteOnFeasibleGraphs) {
  for (graph::NodeId alpha : {1u, 2u, 3u}) {
    const Params params = Params::practical(alpha, 1 << 12);
    EXPECT_GE(params.num_scales, 1u) << "alpha=" << alpha;
    EXPECT_GE(params.iterations_per_scale, 1u);
    EXPECT_LT(params.iterations_per_scale, 500u);
  }
}

TEST(PracticalParams, ZeroScalesForTinyDegree) {
  const Params params = Params::practical(2, 8);
  EXPECT_EQ(params.num_scales, 0u);
  EXPECT_EQ(params.total_rounds(), 1u);
}

TEST(PracticalParams, TuningKnobsWork) {
  PracticalTuning aggressive;
  aggressive.shatter_constant = 0.5;
  const Params more = Params::practical(2, 1 << 12, aggressive);
  const Params base = Params::practical(2, 1 << 12);
  EXPECT_GT(more.num_scales, base.num_scales);
}

TEST(Params, TotalRoundsFormula) {
  Params params;
  params.num_scales = 3;
  params.iterations_per_scale = 10;
  EXPECT_EQ(params.total_rounds(), 1u + 3u * 32u);
}

TEST(Params, ResidualCutsDeriveFromFinalScale) {
  const Params params = Params::practical(2, 1 << 12);
  EXPECT_EQ(params.residual_degree_cut(),
            params.high_degree_threshold(params.num_scales));
  EXPECT_EQ(params.vhi_internal_degree_bound(),
            params.bad_threshold(params.num_scales));
}

}  // namespace
}  // namespace arbmis::core
