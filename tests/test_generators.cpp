// Generator guarantees: sizes, degrees, and the constructive arboricity /
// degeneracy / planarity certificates each family promises (DESIGN.md §2).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"

namespace arbmis::graph {
namespace {

TEST(Deterministic, PathCycleStar) {
  const Graph p = gen::path(5);
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_TRUE(is_forest(p));

  const Graph c = gen::cycle(5);
  EXPECT_EQ(c.num_edges(), 5u);
  EXPECT_FALSE(is_forest(c));
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);

  const Graph s = gen::star(6);
  EXPECT_EQ(s.degree(0), 5u);
  EXPECT_TRUE(is_forest(s));
}

TEST(Deterministic, TinyCycleDegradesToPath) {
  EXPECT_EQ(gen::cycle(2).num_edges(), 1u);
}

TEST(Deterministic, CompleteAndBipartite) {
  const Graph k5 = gen::complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);

  const Graph k23 = gen::complete_bipartite(2, 3);
  EXPECT_EQ(k23.num_edges(), 6u);
  EXPECT_EQ(k23.num_nodes(), 5u);
}

TEST(Deterministic, BalancedTreeIsTree) {
  const Graph t = gen::balanced_tree(100, 3);
  EXPECT_EQ(t.num_edges(), 99u);
  EXPECT_TRUE(is_forest(t));
  EXPECT_EQ(connected_components(t).count, 1u);
}

TEST(Deterministic, CaterpillarShape) {
  const Graph t = gen::caterpillar(5, 3);
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_TRUE(is_forest(t));
  EXPECT_EQ(connected_components(t).count, 1u);
}

TEST(Deterministic, GridPlanarEdgeCount) {
  const Graph g = gen::grid(4, 6);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.num_edges(), 4u * 5 + 6u * 3);
  EXPECT_LE(degeneracy(g), 2u);  // grids are 2-degenerate
}

TEST(Deterministic, TorusIsRegular) {
  const Graph g = gen::torus(4, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Deterministic, TriangularGridPlanarBound) {
  const Graph g = gen::triangular_grid(6, 6);
  // planar: m <= 3n - 6
  EXPECT_LE(g.num_edges(), 3u * g.num_nodes() - 6);
  EXPECT_LE(degeneracy(g), 3u);
}

TEST(Deterministic, Hypercube) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(connected_components(g).count, 1u);
}

class RandomGenerators : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGenerators, RandomTreeIsUniformTree) {
  util::Rng rng(GetParam());
  for (NodeId n : {1u, 2u, 3u, 10u, 257u}) {
    const Graph t = gen::random_tree(n, rng);
    EXPECT_EQ(t.num_nodes(), n);
    if (n > 0) {
      EXPECT_EQ(t.num_edges(), n - 1u);
    }
    EXPECT_TRUE(is_forest(t));
    EXPECT_EQ(connected_components(t).count, n > 0 ? 1u : 0u);
  }
}

TEST_P(RandomGenerators, RecursiveAndPreferentialTrees) {
  util::Rng rng(GetParam());
  const Graph r = gen::random_recursive_tree(200, rng);
  EXPECT_TRUE(is_forest(r));
  EXPECT_EQ(connected_components(r).count, 1u);

  const Graph p = gen::preferential_attachment_tree(200, rng);
  EXPECT_TRUE(is_forest(p));
  EXPECT_EQ(connected_components(p).count, 1u);
}

TEST_P(RandomGenerators, GnpEdgeCountNearExpectation) {
  util::Rng rng(GetParam());
  const NodeId n = 300;
  const double p = 0.05;
  const Graph g = gen::gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST_P(RandomGenerators, GnpExtremes) {
  util::Rng rng(GetParam());
  EXPECT_EQ(gen::gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST_P(RandomGenerators, GnmExactEdgeCount) {
  util::Rng rng(GetParam());
  const Graph g = gen::gnm(100, 321, rng);
  EXPECT_EQ(g.num_edges(), 321u);
  // m capped at C(n,2)
  EXPECT_EQ(gen::gnm(5, 1000, rng).num_edges(), 10u);
}

TEST_P(RandomGenerators, ForestUnionHasBoundedArboricity) {
  util::Rng rng(GetParam());
  for (NodeId k : {1u, 2u, 4u}) {
    const Graph g = gen::union_of_random_forests(128, k, rng);
    // Degeneracy <= 2·arboricity - 1 <= 2k - 1.
    EXPECT_LE(degeneracy(g), 2 * k - 1);
    EXPECT_GE(density_lower_bound(g), 1u);
    if (k == 1) {
      EXPECT_TRUE(is_forest(g));
    }
  }
}

TEST_P(RandomGenerators, ApollonianIsMaximalPlanar) {
  util::Rng rng(GetParam());
  const Graph g = gen::random_apollonian(100, rng);
  EXPECT_EQ(g.num_edges(), 3u * 100 - 6);
  EXPECT_EQ(degeneracy(g), 3u);
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST_P(RandomGenerators, KTreeDegeneracy) {
  util::Rng rng(GetParam());
  for (NodeId k : {1u, 2u, 3u}) {
    const Graph g = gen::k_tree(64, k, rng);
    EXPECT_EQ(degeneracy(g), k);
    // k-tree edge count: C(k+1,2) + (n-k-1)·k
    EXPECT_EQ(g.num_edges(),
              static_cast<std::uint64_t>(k) * (k + 1) / 2 +
                  static_cast<std::uint64_t>(64 - k - 1) * k);
  }
}

TEST_P(RandomGenerators, KDegenerateBound) {
  util::Rng rng(GetParam());
  for (NodeId k : {1u, 2u, 5u}) {
    const Graph g = gen::k_degenerate(200, k, rng);
    EXPECT_LE(degeneracy(g), k);
    EXPECT_EQ(g.num_edges(),
              static_cast<std::uint64_t>(k) * (200 - k) +
                  static_cast<std::uint64_t>(k) * (k - 1) / 2);
  }
}

TEST_P(RandomGenerators, HubbedForestUnionCertificates) {
  util::Rng rng(GetParam());
  for (NodeId k : {1u, 2u, 4u}) {
    for (NodeId hubs : {2u, 8u}) {
      const Graph g = gen::hubbed_forest_union(1000, k, hubs, rng);
      // Star forest + (k-1) spanning trees: arboricity <= k, so
      // degeneracy <= 2k - 1.
      EXPECT_LE(degeneracy(g), 2 * k - 1) << "k=" << k << " hubs=" << hubs;
      // Hubs give the high-degree regime the paper targets.
      EXPECT_GE(g.max_degree(), 1000u / hubs - 2) << "k=" << k;
      EXPECT_EQ(g.num_nodes(), 1000u);
    }
  }
  // Degenerate parameters.
  EXPECT_EQ(gen::hubbed_forest_union(0, 2, 4, rng).num_nodes(), 0u);
  EXPECT_EQ(gen::hubbed_forest_union(5, 1, 100, rng).num_nodes(), 5u);
}

TEST_P(RandomGenerators, ChungLuPowerLawShape) {
  util::Rng rng(GetParam());
  const NodeId n = 2000;
  const Graph g = gen::chung_lu_power_law(n, 2.5, 6.0, rng);
  // Average degree near target.
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(n);
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 12.0);
  // Heavy tail: the max degree dwarfs the average...
  EXPECT_GT(g.max_degree(), 8 * static_cast<NodeId>(avg));
  // ...while the degeneracy (and hence arboricity) stays small.
  EXPECT_LT(degeneracy(g), 20u);
}

TEST_P(RandomGenerators, SameSeedReproduces) {
  util::Rng a(GetParam());
  util::Rng b(GetParam());
  const Graph ga = gen::random_apollonian(50, a);
  const Graph gb = gen::random_apollonian(50, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGenerators,
                         ::testing::Values(1, 7, 1234, 99991));

TEST(Deterministic, OversizedRequestsThrowInsteadOfWrapping) {
  // NodeId is 32-bit; these size expressions exceed it and must fail
  // loudly rather than wrap to a small graph.
  EXPECT_THROW(gen::grid(NodeId{1} << 16, NodeId{1} << 16),
               std::length_error);
  EXPECT_THROW(gen::hypercube(32), std::length_error);
  EXPECT_THROW(gen::caterpillar(NodeId{1} << 30, 8), std::length_error);
  EXPECT_THROW(gen::complete_bipartite(~NodeId{0}, 1), std::length_error);
}

}  // namespace
}  // namespace arbmis::graph
