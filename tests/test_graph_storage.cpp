// Tests for the binary .gr on-disk format (src/graph/storage/): writer ↔
// mmap-loader round trips across generator families, both load backends,
// the header/corruption rejection surface, and permutation semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/storage/convert.h"
#include "graph/storage/gr_format.h"
#include "graph/storage/gr_writer.h"
#include "graph/storage/mapped_graph.h"

namespace arbmis::graph::storage {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "arbmis_" + name + ".gr";
}

/// Full structural equality between the original graph and a loaded view.
void expect_same_graph(GraphView expected, GraphView actual) {
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes());
  ASSERT_EQ(actual.num_edges(), expected.num_edges());
  EXPECT_EQ(actual.max_degree(), expected.max_degree());
  for (NodeId v = 0; v < expected.num_nodes(); ++v) {
    const auto want = expected.neighbors(v);
    const auto got = actual.neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "degree mismatch at node " << v;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "neighbor " << i << " of node " << v;
    }
  }
}

TEST(GraphStorage, RoundTripMatrix) {
  // 4 generator families x 3 seeds; every graph goes disk -> mmap -> view
  // and must come back structurally identical under BOTH load backends.
  using Family = std::function<Graph(std::uint64_t)>;
  const std::vector<std::pair<std::string, Family>> families = {
      {"gnp",
       [](std::uint64_t seed) {
         util::Rng rng(seed);
         return gen::gnp(300, 0.02, rng);
       }},
      {"hubbed_forest",
       [](std::uint64_t seed) {
         util::Rng rng(seed);
         return gen::hubbed_forest_union(400, 2, 4, rng);
       }},
      {"power_law",
       [](std::uint64_t seed) {
         util::Rng rng(seed);
         return gen::chung_lu_power_law(300, 2.5, 4.0, rng);
       }},
      {"random_tree",
       [](std::uint64_t seed) {
         util::Rng rng(seed);
         return gen::random_tree(500, rng);
       }},
  };
  for (const auto& [name, make] : families) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      SCOPED_TRACE(name + " seed " + std::to_string(seed));
      const Graph g = make(seed);
      const std::string path =
          temp_path(name + "_" + std::to_string(seed));
      write_gr(path, g);

      const MappedGraph mapped = MappedGraph::open(path);
      expect_same_graph(g, mapped);
      EXPECT_FALSE(mapped.degree_ordered());
      EXPECT_TRUE(mapped.permutation().empty());

      GrMapOptions buffered;
      buffered.mode = GrMapMode::kBuffered;
      const MappedGraph fallback = MappedGraph::open(path, buffered);
      EXPECT_FALSE(fallback.mmap_backed());
      expect_same_graph(g, fallback);
    }
  }
}

TEST(GraphStorage, EmptyGraphRoundTrips) {
  const std::string path = temp_path("empty");
  write_gr(path, Graph(0));
  const MappedGraph mapped = MappedGraph::open(path);
  EXPECT_EQ(mapped.num_nodes(), 0u);
  EXPECT_EQ(mapped.num_edges(), 0u);
  EXPECT_EQ(mapped.max_degree(), 0u);
  EXPECT_EQ(mapped.view().num_edges(), 0u);
}

TEST(GraphStorage, SingleNodeRoundTrips) {
  const std::string path = temp_path("single");
  write_gr(path, Graph(1));
  const MappedGraph mapped = MappedGraph::open(path);
  EXPECT_EQ(mapped.num_nodes(), 1u);
  EXPECT_EQ(mapped.num_edges(), 0u);
  EXPECT_TRUE(mapped.view().neighbors(0).empty());
}

TEST(GraphStorage, PermutationSectionRoundTrips) {
  const Graph g = gen::star(5);  // node 0 is the hub
  const std::vector<NodeId> new_to_old = {40, 10, 20, 30, 0};
  const std::string path = temp_path("perm");
  GrWriteOptions options;
  options.new_to_old = new_to_old;
  options.degree_ordered = true;
  write_gr(path, g, options);

  const MappedGraph mapped = MappedGraph::open(path);
  EXPECT_TRUE(mapped.degree_ordered());
  const auto perm = mapped.permutation();
  ASSERT_EQ(perm.size(), new_to_old.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], new_to_old[i]);
  }
  expect_same_graph(g, mapped);
}

TEST(GraphStorage, WriterRejectsInconsistentOptions) {
  const Graph g = gen::path(4);
  const std::string path = temp_path("badopts");
  {
    GrWriteOptions options;  // degree_ordered without a permutation
    options.degree_ordered = true;
    EXPECT_THROW(write_gr(path, g, options), std::runtime_error);
  }
  {
    GrWriteOptions options;  // permutation of the wrong size
    const std::vector<NodeId> wrong = {0, 1};
    options.new_to_old = wrong;
    EXPECT_THROW(write_gr(path, g, options), std::runtime_error);
  }
}

// --- corruption / rejection surface ---------------------------------------

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// EXPECT that open() throws and that the message mentions `needle`.
void expect_open_fails(const std::string& path, const std::string& needle) {
  try {
    const MappedGraph mapped = MappedGraph::open(path);
    FAIL() << "open() accepted " << path << " (wanted error containing '"
           << needle << "')";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(GraphStorage, RejectsTruncatedFile) {
  util::Rng rng(3);
  const Graph g = gen::gnp(100, 0.05, rng);
  const std::string path = temp_path("trunc");
  write_gr(path, g);
  auto bytes = read_file(path);

  // Truncated mid-adjacency: header parses, size check must catch it.
  auto cut = bytes;
  cut.resize(bytes.size() - 17);
  write_file(path, cut);
  expect_open_fails(path, "truncated");

  // Shorter than the header itself.
  cut.resize(kGrHeaderBytes - 1);
  write_file(path, cut);
  expect_open_fails(path, "truncated");

  // Trailing garbage is corruption too, not slack.
  auto padded = bytes;
  padded.push_back('\0');
  write_file(path, padded);
  expect_open_fails(path, "trailing");
}

TEST(GraphStorage, RejectsWrongMagicAndVersion) {
  const std::string path = temp_path("magic");
  write_gr(path, gen::path(4));
  auto bytes = read_file(path);

  auto wrong_magic = bytes;
  wrong_magic[0] = 'X';
  write_file(path, wrong_magic);
  expect_open_fails(path, "magic");

  auto wrong_version = bytes;
  wrong_version[8] = 99;  // version u32 LE at offset 8
  write_file(path, wrong_version);
  expect_open_fails(path, "version");

  auto unknown_flags = bytes;
  unknown_flags[12] = 0x40;  // flags u32 LE at offset 12
  write_file(path, unknown_flags);
  expect_open_fails(path, "flag");

  auto bad_reserved = bytes;
  bad_reserved[40] = 1;
  write_file(path, bad_reserved);
  expect_open_fails(path, "reserved");
}

TEST(GraphStorage, RejectsCorruptBody) {
  const std::string path = temp_path("body");
  write_gr(path, gen::cycle(6));
  const auto bytes = read_file(path);

  // Flip one adjacency entry (offset 48 + 7*8 = offsets end) to an
  // out-of-range id: structural verification must refuse it.
  auto corrupt = bytes;
  const std::size_t adjacency_start = kGrHeaderBytes + 7 * 8;
  corrupt[adjacency_start] = 0x77;
  corrupt[adjacency_start + 1] = 0x77;
  write_file(path, corrupt);
  expect_open_fails(path, "out of range");

  // Break offsets monotonicity.
  auto bad_offsets = bytes;
  bad_offsets[kGrHeaderBytes + 8] = '\xff';  // offsets[1] low byte
  write_file(path, bad_offsets);
  EXPECT_THROW(MappedGraph::open(path), std::runtime_error);

  // Introduce a self-loop: adjacency[0] (neighbor list of node 0) <- 0.
  // cycle(6): node 0's neighbors are {1, 5}.
  auto self_loop = bytes;
  self_loop[adjacency_start] = 0;
  write_file(path, self_loop);
  expect_open_fails(path, "self-loop");
}

TEST(GraphStorage, RejectsMissingFile) {
  expect_open_fails(::testing::TempDir() + "arbmis_does_not_exist.gr",
                    "cannot open");
}

TEST(GraphStorage, ConverterMatchesIoReader) {
  // The converter and the storage round trip agree with the plain-text
  // io.cpp path on a shared workload.
  util::Rng rng(9);
  const Graph g = gen::hubbed_forest_union(200, 2, 4, rng);
  std::stringstream text;
  text << "# comment\n";
  for (const Edge& e : g.edges()) text << e.u << ' ' << e.v << '\n';

  const ConvertResult result = convert_edge_list(text);
  expect_same_graph(g, result.graph);
  EXPECT_TRUE(result.new_to_old.empty());  // dense input, identity mapping
  EXPECT_EQ(result.stats.edges_kept, g.num_edges());
  EXPECT_EQ(result.stats.self_loops_dropped, 0u);
  EXPECT_EQ(result.stats.duplicates_dropped, 0u);

  const std::string path = temp_path("converter");
  write_gr(path, result.graph);
  const MappedGraph mapped = MappedGraph::open(path);
  expect_same_graph(g, mapped);
}

TEST(GraphStorage, DegreeOrderConversionIsConsistent) {
  // Degree-ordered output: degrees are non-increasing in the new numbering
  // and mapping every edge through new_to_old recovers the original edges.
  // Spanning-forest union: no isolated nodes, so every node appears in the
  // edge-list text and the converter preserves n exactly.
  util::Rng rng(11);
  const Graph g = gen::union_of_random_forests(150, 2, rng);
  std::stringstream text;
  for (const Edge& e : g.edges()) text << e.u << ' ' << e.v << '\n';

  ConvertOptions options;
  options.degree_order = true;
  const ConvertResult result = convert_edge_list(text, options);
  ASSERT_EQ(result.graph.num_nodes(), g.num_nodes());
  ASSERT_EQ(result.graph.num_edges(), g.num_edges());
  EXPECT_TRUE(result.degree_ordered);
  ASSERT_EQ(result.new_to_old.size(), g.num_nodes());

  for (NodeId v = 1; v < result.graph.num_nodes(); ++v) {
    EXPECT_GE(result.graph.degree(v - 1), result.graph.degree(v))
        << "degrees not non-increasing at " << v;
  }
  std::vector<Edge> recovered;
  for (const Edge& e : result.graph.edges()) {
    const NodeId u = result.new_to_old[e.u];
    const NodeId v = result.new_to_old[e.v];
    recovered.push_back({std::min(u, v), std::max(u, v)});
  }
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, g.edges());
}

}  // namespace
}  // namespace arbmis::graph::storage
