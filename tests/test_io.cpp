// Tests for graph serialization.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"

namespace arbmis::graph {
namespace {

TEST(Io, RoundTripPreservesGraph) {
  util::Rng rng(3);
  for (const Graph& g :
       {gen::random_apollonian(100, rng), gen::path(5), Graph(0),
        Builder(4).build(), gen::hubbed_forest_union(200, 2, 4, rng)}) {
    std::stringstream buffer;
    write_edge_list(buffer, g);
    const Graph loaded = read_edge_list(buffer);
    EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
    EXPECT_EQ(loaded.num_edges(), g.num_edges());
    EXPECT_EQ(loaded.edges(), g.edges());
  }
}

TEST(Io, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# header comment\n\n3 2\n# edge comment\n0 1\n\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Io, RejectsMalformedInput) {
  {
    std::stringstream in("");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("abc\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("3 2\n0 1\n");  // promised 2 edges, gave 1
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("3 1\n0 7\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("3 1\n1 1\n");  // self-loop
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("3 1\nx y\n");  // garbage edge
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
}

TEST(Io, RejectsNodeCountBeyondNodeIdSpace) {
  // 2^32 does not fit in the 32-bit NodeId; the reader must reject it, not
  // truncate it (the old `n > ~NodeId{0}` check promoted to int and never
  // fired, silently wrapping n to 0).
  {
    std::stringstream in("4294967296 1\n0 1\n");
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  {
    std::stringstream in("18446744073709551615 0\n");  // 2^64 - 1
    EXPECT_THROW(read_edge_list(in), std::invalid_argument);
  }
  // In-range counts still parse (guard against an over-eager fix).
  {
    std::stringstream in("1000 0\n");
    const Graph g = read_edge_list(in);
    EXPECT_EQ(g.num_nodes(), 1000u);
    EXPECT_EQ(g.num_edges(), 0u);
  }
}

TEST(Io, FileSaveLoad) {
  util::Rng rng(5);
  const Graph g = gen::union_of_random_forests(60, 2, rng);
  const std::string path = "/tmp/arbmis_io_test.txt";
  save_graph(path, g);
  const Graph loaded = load_graph(path);
  EXPECT_EQ(loaded.edges(), g.edges());
  EXPECT_THROW(load_graph("/nonexistent/dir/graph.txt"), std::runtime_error);
}

TEST(Io, DotExport) {
  const Graph g = gen::path(3);
  std::ostringstream out;
  const std::vector<std::uint8_t> highlight{1, 0, 1};
  write_dot(out, g, highlight);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph arbmis {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("0 [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("1 [style=filled"), std::string::npos);
}

}  // namespace
}  // namespace arbmis::graph
