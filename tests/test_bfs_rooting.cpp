// Tests for distributed BFS rooting, including the fully distributed
// tree-MIS composition (rooting + Cole–Vishkin) from the paper's §1.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/cole_vishkin.h"
#include "mis/verifier.h"
#include "sim/bfs_rooting.h"

namespace arbmis::sim {
namespace {

class BfsRootingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsRootingSweep, StabilizesOnConnectedGraphs) {
  util::Rng rng(GetParam());
  for (const graph::Graph& g :
       {graph::gen::path(100), graph::gen::cycle(101),
        graph::gen::random_tree(300, rng), graph::gen::gnp(200, 0.05, rng),
        graph::gen::grid(10, 12)}) {
    const auto result = BfsRooting::run(g, GetParam(), g.num_nodes() + 2);
    EXPECT_TRUE(result.stabilized)
        << "n=" << g.num_nodes() << " m=" << g.num_edges();
    // Connected graph: everyone agrees on root 0 (the minimum id).
    if (graph::connected_components(g).count == 1 && g.num_nodes() > 0) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(result.root[v], 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsRootingSweep, ::testing::Values(1, 5, 99));

TEST(BfsRooting, DistancesMatchBfs) {
  util::Rng rng(7);
  const graph::Graph g = graph::gen::gnp(150, 0.06, rng);
  const auto result = BfsRooting::run(g, 1, g.num_nodes() + 2);
  ASSERT_TRUE(result.stabilized);
  // Distance to the elected root equals the true BFS distance.
  const auto comps = graph::connected_components(g);
  std::vector<std::vector<graph::NodeId>> reference;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.root[v] == v) {
      const auto dist = graph::bfs_distances(g, v);
      for (graph::NodeId w = 0; w < g.num_nodes(); ++w) {
        if (comps.label[w] == comps.label[v]) {
          EXPECT_EQ(result.distance[w], dist[w]) << "node " << w;
        }
      }
    }
  }
}

TEST(BfsRooting, HandlesDisconnectedComponents) {
  graph::Builder b(10);
  b.add_edge(3, 4).add_edge(4, 5);  // component with min id 3
  b.add_edge(7, 8);                 // component with min id 7
  const graph::Graph g = b.build();
  const auto result = BfsRooting::run(g, 1, 12);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.root[5], 3u);
  EXPECT_EQ(result.root[8], 7u);
  // Isolated nodes root themselves.
  EXPECT_EQ(result.root[0], 0u);
  EXPECT_EQ(result.parent[0], graph::kNoParent);
}

TEST(BfsRooting, InsufficientBudgetDetected) {
  // A path needs ~diameter rounds; 3 rounds cannot stabilize a 100-path.
  const graph::Graph g = graph::gen::path(100);
  const auto result = BfsRooting::run(g, 1, 3);
  EXPECT_FALSE(result.stabilized);
}

TEST(BfsRooting, StabilizesWithinDiameterPlusOne) {
  util::Rng rng(11);
  const graph::Graph t = graph::gen::random_tree(200, rng);
  const graph::NodeId diameter = graph::diameter(t).value();
  const auto result = BfsRooting::run(t, 1, diameter + 2);
  EXPECT_TRUE(result.stabilized);
}

TEST(BfsRooting, ComposesWithColeVishkinIntoDistributedTreeMis) {
  // The fully distributed tree MIS of the paper's §1: O(diameter) rooting
  // + O(log* n) Cole–Vishkin, no central orientation anywhere.
  util::Rng rng(13);
  const graph::Graph t = graph::gen::random_tree(500, rng);
  const auto rooting = BfsRooting::run(t, 1, t.num_nodes());
  ASSERT_TRUE(rooting.stabilized);
  const auto cv = mis::ColeVishkin::run(t, rooting.parent,
                                        mis::ColeVishkin::Mode::kForestMis);
  mis::MisResult result;
  result.state = cv.state;
  EXPECT_TRUE(mis::verify(t, result).ok());
}

TEST(BfsRooting, ForestConsistencyAuditCatchesLies) {
  const graph::Graph g = graph::gen::path(3);
  // Claim node 2 is the root of everything: wrong minimum.
  std::vector<graph::NodeId> parent{1, 2, graph::kNoParent};
  std::vector<graph::NodeId> root{2, 2, 2};
  std::vector<graph::NodeId> distance{2, 1, 0};
  EXPECT_FALSE(bfs_forest_consistent(g, parent, root, distance));
  // Correct forest.
  parent = {graph::kNoParent, 0, 1};
  root = {0, 0, 0};
  distance = {0, 1, 2};
  EXPECT_TRUE(bfs_forest_consistent(g, parent, root, distance));
  // Wrong distance.
  distance = {0, 1, 1};
  EXPECT_FALSE(bfs_forest_consistent(g, parent, root, distance));
}

}  // namespace
}  // namespace arbmis::sim
