// The EngineEquivalence matrix — the contract of the shared-memory engine
// family (src/engine/): every engine, on every generator family, for every
// seed and every thread count, must produce (1) an independent and maximal
// set by the centralized verifier, (2) a set the 2-round distributed
// protocol also accepts, (3) byte-identical labels across thread counts
// {0, 1, 2, 4, 8}, and (4) the *same* set as every other engine — the
// lexicographically-first MIS w.r.t. (priority, id). The differential rows
// tie the family to the CONGEST side: with id priorities every engine
// reproduces mis::greedy_mis(g) exactly, and the sequential-greedy engine
// matches mis::greedy_mis over the explicit priority order label for
// label. Tuning knobs (dense_phase, prefix_size) must never move a byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mis/distributed_verify.h"
#include "mis/greedy.h"
#include "mis/verifier.h"
#include "util/rng.h"

namespace arbmis {
namespace {

constexpr std::uint32_t kThreadCounts[] = {0, 1, 2, 4, 8};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

struct Family {
  const char* name;
  graph::Graph (*make)(std::uint64_t seed);
};

// Four families spanning the workload spectrum: α = 1 trees, bounded-α
// forest unions (the paper's regime), planar 3-degenerate triangulations,
// and an unbounded-α G(n, p) control.
const Family kFamilies[] = {
    {"random_tree",
     [](std::uint64_t seed) {
       util::Rng rng(seed);
       return graph::gen::random_tree(500, rng);
     }},
    {"union_of_random_forests",
     [](std::uint64_t seed) {
       util::Rng rng(seed);
       return graph::gen::union_of_random_forests(400, 2, rng);
     }},
    {"random_apollonian",
     [](std::uint64_t seed) {
       util::Rng rng(seed);
       return graph::gen::random_apollonian(300, rng);
     }},
    {"gnp",
     [](std::uint64_t seed) {
       util::Rng rng(seed);
       return graph::gen::gnp(400, 0.02, rng);
     }},
};

std::vector<mis::MisState> mask_to_state(
    const std::vector<std::uint8_t>& mask) {
  std::vector<mis::MisState> state(mask.size());
  for (std::size_t v = 0; v < mask.size(); ++v) {
    state[v] = mask[v] != 0 ? mis::MisState::kInMis : mis::MisState::kCovered;
  }
  return state;
}

TEST(EngineEquivalence, MatrixEnginesByFamiliesBySeedsByThreads) {
  for (const Family& family : kFamilies) {
    for (const std::uint64_t seed : kSeeds) {
      const graph::Graph g = family.make(seed);
      // The set every engine must land on, filled by the first engine.
      std::optional<std::vector<std::uint8_t>> expected_mask;
      for (const engine::EngineKind kind : engine::all_engines()) {
        std::optional<std::uint64_t> pinned_hash;
        engine::EngineResult last;
        for (const std::uint32_t threads : kThreadCounts) {
          engine::EngineOptions options;
          options.seed = seed;
          options.num_threads = threads;
          last = engine::solve(g, kind, options);
          const mis::Verification check = mis::verify_mask(g, last.in_mis);
          ASSERT_TRUE(check.independent && check.maximal)
              << family.name << " seed=" << seed << " engine="
              << engine::engine_name(kind) << " threads=" << threads << ": "
              << check.describe();
          if (pinned_hash.has_value()) {
            ASSERT_EQ(last.labels_hash(), *pinned_hash)
                << family.name << " seed=" << seed << " engine="
                << engine::engine_name(kind) << ": threads=" << threads
                << " changed the output bytes";
          } else {
            pinned_hash = last.labels_hash();
          }
        }
        // The distributed protocol must accept the same labeling (one run
        // per engine/graph/seed; the mask is thread-invariant by the pins
        // above).
        const auto dist = mis::DistributedMisCheck::run(
            g, mask_to_state(last.in_mis), seed);
        EXPECT_TRUE(dist.all_ok)
            << family.name << " seed=" << seed
            << " engine=" << engine::engine_name(kind)
            << ": distributed verifier rejected the labeling";
        if (expected_mask.has_value()) {
          EXPECT_EQ(last.in_mis, *expected_mask)
              << family.name << " seed=" << seed << ": engine "
              << engine::engine_name(kind)
              << " disagrees with the first engine's set";
        } else {
          expected_mask = last.in_mis;
        }
      }
    }
  }
}

// Differential vs the CONGEST-side reference: id priorities make every
// engine a drop-in for mis::greedy_mis(g) — label for label, not just
// hash for hash.
TEST(EngineEquivalence, IdPrioritiesMatchSequentialGreedyExactly) {
  for (const Family& family : kFamilies) {
    const graph::Graph g = family.make(7);
    const std::vector<std::uint8_t> reference = mis::greedy_mis(g).mis_mask();
    for (const engine::EngineKind kind : engine::all_engines()) {
      engine::EngineOptions options;
      options.id_priorities = true;
      options.num_threads = 4;
      const engine::EngineResult got = engine::solve(g, kind, options);
      EXPECT_EQ(got.in_mis, reference)
          << family.name << ": engine " << engine::engine_name(kind)
          << " with id priorities diverged from mis::greedy_mis";
    }
  }
}

// With seeded priorities the family equals mis::greedy_mis over the
// explicit (priority, id) order — the permutation priority_order() exposes.
TEST(EngineEquivalence, SeededPrioritiesMatchGreedyOverPriorityOrder) {
  for (const Family& family : kFamilies) {
    const graph::Graph g = family.make(11);
    for (const std::uint64_t seed : kSeeds) {
      const std::vector<std::uint64_t> priority =
          engine::node_priorities(seed, g.num_nodes());
      const std::vector<graph::NodeId> order =
          engine::priority_order(priority);
      const std::vector<std::uint8_t> reference =
          mis::greedy_mis(g, order).mis_mask();
      engine::EngineOptions options;
      options.seed = seed;
      const engine::EngineResult got =
          engine::solve(g, engine::EngineKind::kSequentialGreedy, options);
      EXPECT_EQ(got.in_mis, reference)
          << family.name << " seed=" << seed
          << ": greedy engine diverged from mis::greedy_mis(g, order)";
    }
  }
}

// Priorities are a pure function of (seed, node): batch draws are
// position-independent and two seeds give unrelated streams.
TEST(EngineEquivalence, PrioritiesArePureAndSeedSeparated) {
  const std::vector<std::uint64_t> a = engine::node_priorities(42, 1000);
  const std::vector<std::uint64_t> b = engine::node_priorities(42, 500);
  ASSERT_EQ(std::vector<std::uint64_t>(a.begin(), a.begin() + 500), b);
  const std::vector<std::uint64_t> c = engine::node_priorities(43, 1000);
  std::size_t same = 0;
  for (std::size_t v = 0; v < a.size(); ++v) same += (a[v] == c[v]);
  EXPECT_EQ(same, 0u);
}

// Tuning knobs must not move a byte: dense phase off / forced / auto and
// degenerate prefix windows all land on the canonical set.
TEST(EngineEquivalence, TuningKnobsDoNotChangeTheSet) {
  util::Rng rng(5);
  const graph::Graph g = graph::gen::hubbed_forest_union(400, 2, 4, rng);
  engine::EngineOptions base;
  base.seed = 99;
  const std::uint64_t canonical =
      engine::solve(g, engine::EngineKind::kTestAndSet, base).labels_hash();

  for (const std::uint32_t dense : {0u, 1u, 2u}) {
    engine::EngineOptions options = base;
    options.dense_phase = dense;
    options.num_threads = 2;
    EXPECT_EQ(
        engine::solve(g, engine::EngineKind::kTestAndSet, options)
            .labels_hash(),
        canonical)
        << "dense_phase=" << dense;
  }
  const std::uint64_t prefix_canonical =
      engine::solve(g, engine::EngineKind::kPrefixGreedy, base).labels_hash();
  EXPECT_EQ(prefix_canonical, canonical);
  for (const std::uint32_t prefix : {1u, 2u, 64u, 400u, 100000u}) {
    engine::EngineOptions options = base;
    options.prefix_size = prefix;
    options.num_threads = 2;
    EXPECT_EQ(
        engine::solve(g, engine::EngineKind::kPrefixGreedy, options)
            .labels_hash(),
        prefix_canonical)
        << "prefix_size=" << prefix;
  }
}

TEST(EngineEquivalence, EdgeCaseGraphs) {
  const graph::Graph empty(0);
  const graph::Graph isolated(5);
  const graph::Graph star = graph::gen::star(64);
  const graph::Graph complete = graph::gen::complete(16);
  for (const engine::EngineKind kind : engine::all_engines()) {
    engine::EngineOptions options;
    options.num_threads = 4;

    const engine::EngineResult on_empty = engine::solve(empty, kind, options);
    EXPECT_EQ(on_empty.mis_size(), 0u);

    const engine::EngineResult on_isolated =
        engine::solve(isolated, kind, options);
    EXPECT_EQ(on_isolated.mis_size(), 5u);

    const engine::EngineResult on_star = engine::solve(star, kind, options);
    EXPECT_TRUE(mis::verify_mask(star, on_star.in_mis).ok());

    const engine::EngineResult on_complete =
        engine::solve(complete, kind, options);
    EXPECT_EQ(on_complete.mis_size(), 1u);
    EXPECT_TRUE(mis::verify_mask(complete, on_complete.in_mis).ok());
  }
}

// Round counts: sequential greedy is one pass by definition; the parallel
// engines' fixpoint loops must report at least one round on any non-empty
// graph and must be thread-invariant like the labels.
TEST(EngineEquivalence, RoundAccounting) {
  util::Rng rng(3);
  const graph::Graph g = graph::gen::union_of_random_forests(400, 2, rng);
  engine::EngineOptions serial;
  EXPECT_EQ(engine::solve(g, engine::EngineKind::kSequentialGreedy, serial)
                .rounds,
            1u);
  for (const engine::EngineKind kind :
       {engine::EngineKind::kTestAndSet, engine::EngineKind::kPrefixGreedy}) {
    const std::uint64_t serial_rounds = engine::solve(g, kind, serial).rounds;
    EXPECT_GE(serial_rounds, 1u);
    engine::EngineOptions parallel;
    parallel.num_threads = 4;
    EXPECT_EQ(engine::solve(g, kind, parallel).rounds, serial_rounds)
        << engine::engine_name(kind);
  }
}

}  // namespace
}  // namespace arbmis
