// Tests for shattering statistics (Lemma 3.7 measurement machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "core/shattering.h"
#include "graph/generators.h"

namespace arbmis::core {
namespace {

TEST(Shattering, EmptySet) {
  const graph::Graph g = graph::gen::path(10);
  const std::vector<std::uint8_t> mask(10, 0);
  const ShatteringStats stats = shattering_stats(g, mask);
  EXPECT_EQ(stats.set_size, 0u);
  EXPECT_EQ(stats.num_components, 0u);
  EXPECT_EQ(stats.largest_component, 0u);
}

TEST(Shattering, CountsInducedComponents) {
  const graph::Graph g = graph::gen::path(10);
  // Nodes {0,1}, {4}, {7,8,9} -> components of sizes 2, 1, 3.
  std::vector<std::uint8_t> mask(10, 0);
  for (graph::NodeId v : {0u, 1u, 4u, 7u, 8u, 9u}) mask[v] = 1;
  const ShatteringStats stats = shattering_stats(g, mask);
  EXPECT_EQ(stats.set_size, 6u);
  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.largest_component, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_component, 2.0);
  EXPECT_EQ(stats.component_sizes,
            (std::vector<graph::NodeId>{1, 2, 3}));
}

TEST(Shattering, FullSetIsOneComponentOnConnectedGraph) {
  const graph::Graph g = graph::gen::cycle(12);
  const std::vector<std::uint8_t> mask(12, 1);
  const ShatteringStats stats = shattering_stats(g, mask);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component, 12u);
}

TEST(Shattering, LogDeltaNComputed) {
  const graph::Graph g = graph::gen::star(17);  // Δ = 16, n = 17
  const std::vector<std::uint8_t> mask(17, 1);
  const ShatteringStats stats = shattering_stats(g, mask);
  EXPECT_NEAR(stats.log_delta_n, std::log(17.0) / std::log(16.0), 1e-9);
}

}  // namespace
}  // namespace arbmis::core
