// Tests for the TreeIndependentSet specialization (paper §1 / BEPS §8).
#include <gtest/gtest.h>

#include "core/tree_mis.h"
#include "graph/generators.h"
#include "mis/verifier.h"

namespace arbmis::core {
namespace {

class TreeMisSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeMisSweep, VerifiedOnTreeFamilies) {
  util::Rng rng(GetParam());
  const std::vector<graph::Graph> trees{
      graph::gen::path(500),
      graph::gen::star(500),
      graph::gen::balanced_tree(500, 3),
      graph::gen::caterpillar(50, 9),
      graph::gen::random_tree(500, rng),
      graph::gen::random_recursive_tree(500, rng),
      graph::gen::preferential_attachment_tree(500, rng),
  };
  for (const auto& t : trees) {
    const ArbMisResult result = tree_independent_set(t, GetParam());
    EXPECT_TRUE(mis::verify(t, result.mis).ok())
        << "n=" << t.num_nodes() << " Δ=" << t.max_degree();
    EXPECT_FALSE(result.cleanup_used);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeMisSweep, ::testing::Values(1, 9, 77));

TEST(TreeMis, WorksOnDisconnectedForests) {
  util::Rng rng(5);
  graph::Builder b(60);
  // Three separate trees.
  for (graph::NodeId base : {0u, 20u, 40u}) {
    for (graph::NodeId i = 1; i < 20; ++i) {
      b.add_edge(base + i, base + (i - 1) / 2);
    }
  }
  const graph::Graph forest = b.build();
  const ArbMisResult result = tree_independent_set(forest, 3);
  EXPECT_TRUE(mis::verify(forest, result.mis).ok());
}

TEST(TreeMis, RejectsGraphsWithCycles) {
  EXPECT_THROW(tree_independent_set(graph::gen::cycle(10), 1),
               std::invalid_argument);
  util::Rng rng(7);
  EXPECT_THROW(
      tree_independent_set(graph::gen::random_apollonian(30, rng), 1),
      std::invalid_argument);
}

TEST(TreeMis, HubTreesEngageScales) {
  // Preferential-attachment trees at scale have Δ large enough that the
  // shattering scales execute; the pipeline stays verified.
  util::Rng rng(11);
  const graph::Graph t = graph::gen::preferential_attachment_tree(30000, rng);
  const ArbMisResult result = tree_independent_set(t, 5);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
  EXPECT_GE(result.params.num_scales, 1u);
}

TEST(TreeMis, PaperFaithfulParamsStillCorrect) {
  util::Rng rng(13);
  const graph::Graph t = graph::gen::random_tree(1000, rng);
  TreeMisOptions options;
  options.paper_faithful_params = true;
  const ArbMisResult result = tree_independent_set(t, 7, options);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
}

TEST(TreeMis, DeterministicGivenSeed) {
  util::Rng rng(17);
  const graph::Graph t = graph::gen::random_tree(400, rng);
  const ArbMisResult a = tree_independent_set(t, 9);
  const ArbMisResult b = tree_independent_set(t, 9);
  EXPECT_EQ(a.mis.state, b.mis.state);
}

}  // namespace
}  // namespace arbmis::core
