// Tests for the §3.1 event kernels (Events (1)–(3)) on real oriented
// graphs: empirical probabilities respect the paper's bounds.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "readk/events.h"

namespace arbmis::readk {
namespace {

constexpr std::uint64_t kTrials = 2000;

struct Workload {
  graph::Graph g{0};
  std::uint64_t alpha = 1;
};

Workload make_setup(graph::NodeId n, graph::NodeId alpha, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload setup;
  setup.g = graph::gen::union_of_random_forests(n, alpha, rng);
  setup.alpha = graph::degeneracy(setup.g);  // orientation out-degree bound
  return setup;
}

TEST(Event1, BoundHoldsOnForestUnions) {
  for (std::uint64_t seed : {1ULL, 9ULL}) {
    const Workload setup = make_setup(300, 2, seed);
    const graph::Orientation orientation =
        graph::degeneracy_orientation(setup.g);
    const auto members = nodes_with_children(orientation);
    ASSERT_GT(members.size(), 10u);
    util::Rng rng(seed + 100);
    const EventEstimate estimate = estimate_event1(
        setup.g, orientation, members, setup.alpha, kTrials, rng);
    // Theorem 3.1 is a lower bound on the success probability.
    EXPECT_GE(estimate.ci.hi, estimate.paper_bound - 1e-9)
        << "empirical " << estimate.probability << " vs bound "
        << estimate.paper_bound;
    EXPECT_GT(estimate.probability, 0.9);  // large M: near-certain event
  }
}

TEST(Event1, MeanMetricPositive) {
  const Workload setup = make_setup(200, 1, 3);
  const graph::Orientation orientation =
      graph::degeneracy_orientation(setup.g);
  const auto members = nodes_with_children(orientation);
  util::Rng rng(5);
  const EventEstimate estimate = estimate_event1(
      setup.g, orientation, members, setup.alpha, 500, rng);
  EXPECT_GT(estimate.mean_metric, 0.0);
}

TEST(Event2, MostTrialsBeatTheHalfOverAlphaTarget) {
  for (std::uint64_t seed : {2ULL, 11ULL}) {
    const Workload setup = make_setup(400, 2, seed);
    const graph::Orientation orientation =
        graph::degeneracy_orientation(setup.g);
    const auto members = nodes_with_parents(orientation);
    ASSERT_GT(members.size(), 50u);
    util::Rng rng(seed + 200);
    const EventEstimate estimate = estimate_event2(
        setup.g, orientation, members, setup.alpha, kTrials, rng);
    // A node beats its <= α parents with probability >= 1/(α+1), so the
    // |M|/(2α) target is comfortably exceeded with high probability.
    EXPECT_GT(estimate.probability, 0.95);
    // Mean fraction of members beating parents is at least 1/(2α).
    EXPECT_GT(estimate.mean_metric,
              1.0 / (2.0 * static_cast<double>(setup.alpha)));
  }
}

TEST(Event3, EliminationFractionExceedsPaperTarget) {
  // The paper's per-iteration elimination fraction 1/(8α²(32α⁶+1)) is
  // tiny; actual Métivier iterations eliminate far more. Check both the
  // success probability and the headroom.
  const Workload setup = make_setup(400, 2, 7);
  std::vector<graph::NodeId> members;
  for (graph::NodeId v = 0; v < setup.g.num_nodes(); ++v) {
    if (setup.g.degree(v) >= 2) members.push_back(v);
  }
  ASSERT_GT(members.size(), 50u);
  util::Rng rng(13);
  const EventEstimate estimate =
      estimate_event3(setup.g, members, setup.alpha, kTrials, rng);
  EXPECT_EQ(estimate.probability, 1.0);
  EXPECT_GT(estimate.mean_metric, estimate.paper_bound);
  EXPECT_GT(estimate.mean_metric, 0.1);  // competitions clear whole swaths
}

TEST(Events, HelpersSelectCorrectNodes) {
  const graph::Graph g = graph::gen::star(5);
  std::vector<std::vector<graph::NodeId>> parents(5);
  for (graph::NodeId leaf = 1; leaf < 5; ++leaf) parents[leaf] = {0};
  const graph::Orientation orientation(g, std::move(parents));
  EXPECT_EQ(nodes_with_children(orientation),
            (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(nodes_with_parents(orientation),
            (std::vector<graph::NodeId>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace arbmis::readk
