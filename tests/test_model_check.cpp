// Tests for the runtime CONGEST model checker (sim/model_check.h):
// negative tests prove each violation class is actually detected, and the
// read-multiplicity ledger is cross-checked against the declared read_k of
// the paper's event families on a BoundedArbIndependentSet run.
#include <gtest/gtest.h>

#include <optional>

#include "core/bounded_arb.h"
#include "core/params.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "mis/metivier.h"
#include "readk/family.h"
#include "sim/contract.h"
#include "sim/model_check.h"
#include "sim/network.h"

namespace arbmis::sim {
namespace {

/// Sends one message with an arbitrary payload from node 0, then halts.
class WidePayloadSender : public Algorithm {
 public:
  explicit WidePayloadSender(std::uint64_t payload) : payload_(payload) {}
  std::string_view name() const override { return "wide_payload"; }
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(0, 1, payload_);
  }
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    ctx.halt();
  }

 private:
  std::uint64_t payload_;
};

TEST(ModelCheck, OverWideMessageIsCaught) {
  const graph::Graph g = graph::gen::path(2);
  NetworkOptions options;
  options.model_check.min_edge_bits = 16;
  options.model_check.log_n_factor = 1;
  Network net(g, 1, options);
  // 32 significant payload bits + 8 tag bits = 40 > 16.
  WidePayloadSender algorithm(0xFFFFFFFFULL);
  EXPECT_THROW(net.run(algorithm, 4), CongestViolation);
}

TEST(ModelCheck, OverWideMessageIsCountedWhenNotFailFast) {
  const graph::Graph g = graph::gen::path(2);
  NetworkOptions options;
  options.model_check.min_edge_bits = 16;
  options.model_check.log_n_factor = 1;
  options.model_check.fail_fast = false;
  Network net(g, 1, options);
  WidePayloadSender algorithm(0xFFFFFFFFULL);
  EXPECT_NO_THROW(net.run(algorithm, 4));
  EXPECT_EQ(net.model_check_report().violations, 1u);
  EXPECT_EQ(net.model_check_report().max_message_bits, 40u);
}

TEST(ModelCheck, NarrowMessageWithinBudgetPasses) {
  const graph::Graph g = graph::gen::path(2);
  NetworkOptions options;
  options.model_check.min_edge_bits = 16;
  options.model_check.log_n_factor = 1;
  Network net(g, 1, options);
  WidePayloadSender algorithm(0x3F);  // 6 + 8 = 14 bits <= 16
  EXPECT_NO_THROW(net.run(algorithm, 4));
  EXPECT_EQ(net.model_check_report().violations, 0u);
}

/// Stashes node 0's context in on_start and abuses it from node 1's
/// callback: a cross-node state read outside message delivery.
class ContextStasher : public Algorithm {
 public:
  std::string_view name() const override { return "context_stasher"; }
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) stashed_ = ctx;
  }
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    if (ctx.id() == 1 && stashed_) {
      (void)stashed_->rng().next();  // node 1 reads node 0's stream
    }
    ctx.halt();
  }

 private:
  std::optional<NodeContext> stashed_;
};

TEST(ModelCheck, CrossNodeStateReadIsCaught) {
  const graph::Graph g = graph::gen::path(3);
  Network net(g, 1);
  ContextStasher algorithm;
  EXPECT_THROW(net.run(algorithm, 4), CongestViolation);
}

TEST(ModelCheck, OutOfRoundStateReadIsCaught) {
  // Using a stashed context after the run — outside any callback window —
  // is a state access outside message delivery and must be flagged too.
  class Stash : public Algorithm {
   public:
    std::string_view name() const override { return "stash"; }
    void on_start(NodeContext& ctx) override { stashed = ctx; }
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ctx.halt();
    }
    std::optional<NodeContext> stashed;
  };
  const graph::Graph g = graph::gen::path(2);
  Network net(g, 1);
  Stash algorithm;
  EXPECT_NO_THROW(net.run(algorithm, 4));
  EXPECT_THROW((void)algorithm.stashed->rng().next(), CongestViolation);
}

TEST(ModelCheck, RandomnessBudgetIsEnforced) {
  class GreedyDrawer : public Algorithm {
   public:
    std::string_view name() const override { return "greedy_drawer"; }
    void on_start(NodeContext& ctx) override {
      (void)ctx.rng().next();
      (void)ctx.rng().next();
      (void)ctx.rng().next();  // third draw busts the default budget of 2
    }
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ctx.halt();
    }
  };
  const graph::Graph g = graph::gen::path(2);
  Network net(g, 1);
  GreedyDrawer algorithm;
  EXPECT_THROW(net.run(algorithm, 4), CongestViolation);
}

TEST(ModelCheck, DisabledCheckerEnforcesNothing) {
  const graph::Graph g = graph::gen::path(2);
  NetworkOptions options;
  options.model_check.enabled = false;
  options.model_check.min_edge_bits = 1;
  Network net(g, 1, options);
  WidePayloadSender algorithm(~std::uint64_t{0});
  EXPECT_NO_THROW(net.run(algorithm, 4));
  EXPECT_EQ(net.model_check_report().max_message_bits, 0u);
}

TEST(ModelCheck, DefaultBudgetFloorsAtOneCongestWord) {
  // Small n: the word floor dominates; large n: 8 * ceil(log2(n+1)) does.
  Network small(graph::gen::path(16), 1);
  EXPECT_EQ(small.model_check_report().edge_bit_budget, 72u);
  Network large(graph::gen::path(1000), 1);
  EXPECT_EQ(large.model_check_report().edge_bit_budget, 80u);
}

TEST(ModelCheck, RuntimeChargesMatchCompileTimeContract) {
  // The nominal widths pinned at compile time by src/sim/contract.h are
  // the numbers the runtime checker actually charges: a full CONGEST word
  // costs exactly kNominalMessageBits, an empty payload costs exactly the
  // tag, and the default per-edge budget floors at one full message on any
  // graph small enough for the log-n term to lose. If either side moves
  // without the other, this test (or contract.h's static_asserts) fails.
  const graph::Graph g = graph::gen::path(2);
  {
    Network net(g, 1);
    WidePayloadSender algorithm(~std::uint64_t{0});
    net.run(algorithm, 4);
    EXPECT_EQ(net.model_check_report().max_message_bits,
              contract::kNominalMessageBits);
    EXPECT_EQ(net.model_check_report().edge_bit_budget,
              contract::kNominalMessageBits);
  }
  {
    Network net(g, 1);
    WidePayloadSender algorithm(0);
    net.run(algorithm, 4);
    EXPECT_EQ(net.model_check_report().max_message_bits,
              contract::kNominalTagBits);
  }
  EXPECT_EQ(ModelCheckOptions{}.tag_bits, contract::kNominalTagBits);
  EXPECT_EQ(ModelCheckOptions{}.min_edge_bits, contract::kNominalMessageBits);
}

/// One scale, one iteration, every node competitive: in the single kPrio
/// round all nodes draw and broadcast their priorities, which every
/// neighbor reads in the kResolve round.
core::Params one_iteration_params(const graph::Graph& g) {
  core::Params params;
  params.alpha = 1;
  params.max_degree = g.max_degree();
  params.num_scales = 1;
  params.iterations_per_scale = 1;
  params.rho_factor = 100.0;  // rho_1 >> max degree: everyone competes
  return params;
}

TEST(ModelCheck, ReportKMatchesDeclaredReadKOnCompleteGraph) {
  // K_m with ids oriented small -> large: node m-1 has m-1 parents, so the
  // paper's Event (2) family reads its priority m-1 times plus once by the
  // node itself — read_k == m. On the simulator, the same priority is
  // consumed by all m-1 neighbors plus the drawing node: k == m.
  const graph::NodeId m = 8;
  const graph::Graph g = graph::gen::complete(m);
  std::vector<graph::NodeId> members(m);
  for (graph::NodeId v = 0; v < m; ++v) members[v] = v;
  const readk::ReadKFamily family =
      readk::parent_max_family(graph::id_orientation(g), members);
  ASSERT_EQ(family.read_k(), m);

  const core::Params params = one_iteration_params(g);
  core::BoundedArbIndependentSet algorithm(g, params);
  Network net(g, 7);
  const RunStats stats = net.run(algorithm, params.total_rounds());
  EXPECT_TRUE(stats.all_halted);
  const ModelCheckReport& report = net.model_check_report();
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.k, family.read_k());
  // Algorithm 1 draws exactly one priority per round.
  EXPECT_EQ(report.max_rng_reads_per_round, 1u);
  // Priorities are one CONGEST word: 64 payload bits + 8 tag bits.
  EXPECT_EQ(report.max_message_bits, 72u);
  // The draws happen in the kPrio round (round 1).
  ASSERT_GT(report.round_k.size(), 1u);
  EXPECT_EQ(report.round_k[1], m);
}

TEST(ModelCheck, ReportKMatchesDeclaredReadKOnStar) {
  // Star with the hub as the highest id: every leaf's out-edge points at
  // the hub, whose priority feeds all d leaf indicators plus its own.
  const graph::NodeId leaves = 6;
  graph::Builder b(leaves + 1);
  for (graph::NodeId v = 0; v < leaves; ++v) b.add_edge(v, leaves);
  const graph::Graph g = b.build();
  std::vector<graph::NodeId> members(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) members[v] = v;
  const readk::ReadKFamily family =
      readk::parent_max_family(graph::id_orientation(g), members);
  ASSERT_EQ(family.read_k(), leaves + 1);

  const core::Params params = one_iteration_params(g);
  core::BoundedArbIndependentSet algorithm(g, params);
  Network net(g, 3);
  net.run(algorithm, params.total_rounds());
  EXPECT_EQ(net.model_check_report().k, family.read_k());
  EXPECT_EQ(net.model_check_report().violations, 0u);
}

TEST(ModelCheck, MetivierStaysWithinAllBudgets) {
  // The competition engine under full enforcement on a non-trivial graph:
  // no violations, and the read multiplicity never exceeds Delta + 1 (a
  // priority is read by its drawer and at most all its neighbors).
  util::Rng rng(11);
  const graph::Graph g = graph::gen::gnp(200, 0.05, rng);
  mis::MetivierMis algorithm(g);
  Network net(g, 5);
  const RunStats stats = net.run(algorithm, 1 << 12);
  EXPECT_TRUE(stats.all_halted);
  const ModelCheckReport& report = net.model_check_report();
  EXPECT_EQ(report.violations, 0u);
  EXPECT_GE(report.k, 1u);
  EXPECT_LE(report.k, g.max_degree() + 1);
  EXPECT_LE(report.max_edge_bits_per_round, report.edge_bit_budget);
}

TEST(ModelCheckReport, SummaryMentionsKeyFields) {
  ModelCheckReport report;
  report.k = 7;
  report.violations = 2;
  const std::string s = report.summary();
  EXPECT_NE(s.find("k=7"), std::string::npos);
  EXPECT_NE(s.find("violations=2"), std::string::npos);
}

}  // namespace
}  // namespace arbmis::sim
