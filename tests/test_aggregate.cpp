// Tests for the BFS-tree global aggregation — the protocol that justifies
// the "nodes know n and Δ" assumption of the paper's model.
#include <gtest/gtest.h>

#include "core/params.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/properties.h"
#include "sim/aggregate.h"

namespace arbmis::sim {
namespace {

class AggregateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateSweep, ComputesComponentCountAndMax) {
  util::Rng rng(GetParam());
  for (const graph::Graph& g :
       {graph::gen::random_tree(200, rng), graph::gen::gnp(200, 0.04, rng),
        graph::gen::grid(8, 9), graph::gen::star(60)}) {
    // Count nodes: every node contributes 1; each node must learn its
    // component size.
    const auto count = GlobalAggregate::run(
        g, std::vector<std::uint64_t>(g.num_nodes(), 1),
        AggregateOp::kSum, GetParam());
    const graph::Components comps = graph::connected_components(g);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(count.value[v], comps.sizes[comps.label[v]]) << "node " << v;
    }
    // Max degree per component.
    std::vector<std::uint64_t> degrees(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      degrees[v] = g.degree(v);
    }
    const auto max_degree = GlobalAggregate::run(g, degrees,
                                                 AggregateOp::kMax,
                                                 GetParam() + 1);
    std::vector<std::uint64_t> reference(comps.count, 0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      reference[comps.label[v]] =
          std::max<std::uint64_t>(reference[comps.label[v]], g.degree(v));
    }
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(max_degree.value[v], reference[comps.label[v]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateSweep, ::testing::Values(1, 7, 99));

TEST(Aggregate, MinOp) {
  const graph::Graph g = graph::gen::path(5);
  std::vector<std::uint64_t> values{7, 3, 9, 1, 5};
  const auto result =
      GlobalAggregate::run(g, values, AggregateOp::kMin, 1);
  for (graph::NodeId v = 0; v < 5; ++v) EXPECT_EQ(result.value[v], 1u);
}

TEST(Aggregate, DisconnectedComponentsIndependent) {
  graph::Builder b(7);
  b.add_edge(0, 1).add_edge(1, 2);  // component A
  b.add_edge(4, 5);                 // component B; 3 and 6 isolated
  const graph::Graph g = b.build();
  const auto result = GlobalAggregate::run(
      g, std::vector<std::uint64_t>(7, 1), AggregateOp::kSum, 3);
  EXPECT_EQ(result.value[0], 3u);
  EXPECT_EQ(result.value[2], 3u);
  EXPECT_EQ(result.value[4], 2u);
  EXPECT_EQ(result.value[3], 1u);  // isolated: its own value
  EXPECT_EQ(result.value[6], 1u);
}

TEST(Aggregate, RoundsScaleWithDiameter) {
  const graph::Graph path = graph::gen::path(300);
  const graph::Graph star = graph::gen::star(300);
  // Aggregation itself is O(depth): compare the post-rooting phases by
  // giving both the same rooting budget.
  const auto slow = GlobalAggregate::run(
      path, std::vector<std::uint64_t>(300, 1), AggregateOp::kSum, 1, 302);
  const auto fast = GlobalAggregate::run(
      star, std::vector<std::uint64_t>(300, 1), AggregateOp::kSum, 1, 302);
  // Same budgets for rooting; the difference is the tree depth.
  EXPECT_GT(slow.stats.rounds, fast.stats.rounds);
}

TEST(Aggregate, DischargesTheKnownDeltaAssumption) {
  // Compute Δ distributedly, then build the paper's Params from it — the
  // result must match the centrally computed parameters.
  util::Rng rng(5);
  const graph::Graph g = graph::gen::hubbed_forest_union(500, 2, 4, rng);
  std::vector<std::uint64_t> degrees(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  const auto result =
      GlobalAggregate::run(g, degrees, AggregateOp::kMax, 7);
  // Connected graph: every node learned the true Δ.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(result.value[v], g.max_degree());
  }
  const core::Params distributed = core::Params::practical(
      2, static_cast<graph::NodeId>(result.value[0]));
  const core::Params central = core::Params::practical(2, g.max_degree());
  EXPECT_EQ(distributed.num_scales, central.num_scales);
  EXPECT_EQ(distributed.iterations_per_scale, central.iterations_per_scale);
}

TEST(Aggregate, RejectsBadInput) {
  const graph::Graph g = graph::gen::path(3);
  EXPECT_THROW(
      GlobalAggregate(g, std::vector<graph::NodeId>{graph::kNoParent},
                      std::vector<std::uint64_t>{1, 1, 1},
                      AggregateOp::kSum),
      std::invalid_argument);
}

}  // namespace
}  // namespace arbmis::sim
