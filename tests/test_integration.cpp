// End-to-end integration: cross-algorithm agreement on MIS validity,
// pipeline composition at scale, and the headline qualitative claims.
#include <gtest/gtest.h>

#include "core/arb_mis.h"
#include "core/bounded_arb.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/ghaffari.h"
#include "mis/greedy.h"
#include "mis/luby.h"
#include "mis/metivier.h"
#include "mis/verifier.h"

namespace arbmis {
namespace {

TEST(Integration, AllAlgorithmsAgreeOnValidityAtScale) {
  util::Rng rng(101);
  const graph::Graph g = graph::gen::union_of_random_forests(3000, 2, rng);
  const auto greedy = mis::greedy_mis(g);
  const auto metivier = mis::MetivierMis::run(g, 1);
  const auto luby = mis::LubyBMis::run(g, 2);
  const auto ghaffari = mis::GhaffariMis::run(g, 3);
  const auto pipeline = core::arb_mis(g, {.alpha = 2}, 4);
  for (const auto* result :
       {&greedy, &metivier, &luby, &ghaffari, &pipeline.mis}) {
    EXPECT_TRUE(mis::verify(g, *result).ok());
  }
  // MIS sizes on the same graph are within a small factor of each other.
  const double base = static_cast<double>(greedy.mis_size());
  for (const auto* result : {&metivier, &luby, &ghaffari, &pipeline.mis}) {
    const double size = static_cast<double>(result->mis_size());
    EXPECT_GT(size, base * 0.5);
    EXPECT_LT(size, base * 2.0);
  }
}

TEST(Integration, LargeTreePipeline) {
  util::Rng rng(103);
  const graph::Graph t = graph::gen::random_tree(20000, rng);
  const auto result = core::arb_mis(t, {.alpha = 1}, 9);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
  EXPECT_FALSE(result.cleanup_used);
}

TEST(Integration, LargePlanarPipeline) {
  util::Rng rng(107);
  const graph::Graph g = graph::gen::random_apollonian(20000, rng);
  const auto result = core::arb_mis(g, {.alpha = 3}, 10);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
}

TEST(Integration, ShatteringLeavesSmallBadComponents) {
  // Lemma 3.7's qualitative content: bad components are tiny relative to
  // the graph.
  util::Rng rng(109);
  const graph::Graph g = graph::gen::union_of_random_forests(8000, 3, rng);
  const auto result = core::arb_mis(g, {.alpha = 3}, 11);
  EXPECT_TRUE(mis::verify(g, result.mis).ok());
  if (result.bad_components.set_size > 0) {
    EXPECT_LT(result.bad_components.largest_component, g.num_nodes() / 50);
  }
}

TEST(Integration, HighDegreeHubsHandled) {
  // Preferential-attachment trees have huge hubs (Δ up to ~n^(1/2)); the
  // scale machinery must still terminate and verify.
  util::Rng rng(113);
  const graph::Graph t = graph::gen::preferential_attachment_tree(10000, rng);
  const auto result = core::arb_mis(t, {.alpha = 1}, 12);
  EXPECT_TRUE(mis::verify(t, result.mis).ok());
}

TEST(Integration, MessageComplexityIsPerEdgeBounded) {
  util::Rng rng(127);
  const graph::Graph g = graph::gen::union_of_random_forests(2000, 2, rng);
  const auto result = mis::MetivierMis::run(g, 13);
  // CONGEST normalization: never more than one message per directed edge
  // per round.
  EXPECT_EQ(result.stats.max_edge_load, 1u);
  EXPECT_LE(result.stats.messages,
            static_cast<std::uint64_t>(result.stats.rounds) * 2 *
                g.num_edges());
}

TEST(Integration, SublogarithmicShatteringRoundsAreNIndependent) {
  // The shattering phase's round count depends on Δ and α only — two
  // graphs with similar Δ but 16x different n should give near-identical
  // shattering rounds.
  util::Rng rng(131);
  const graph::Graph small = graph::gen::union_of_random_forests(1000, 2, rng);
  const graph::Graph large =
      graph::gen::union_of_random_forests(16000, 2, rng);
  const core::Params params_small =
      core::Params::practical(2, small.max_degree());
  const core::Params params_large =
      core::Params::practical(2, large.max_degree());
  const auto rs =
      core::BoundedArbIndependentSet::run(small, params_small, 1).stats.rounds;
  const auto rl =
      core::BoundedArbIndependentSet::run(large, params_large, 1).stats.rounds;
  // Rounds are a function of (Δ, α); Δ differs a little between draws, so
  // allow slack but demand far sub-linear growth.
  EXPECT_LT(rl, 3 * rs + 50);
}

}  // namespace
}  // namespace arbmis
