// Tests for connectivity, BFS, degeneracy cores, and arboricity bounds.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"

namespace arbmis::graph {
namespace {

TEST(Components, CountsAndSizes) {
  Builder b(7);
  b.add_edge(0, 1).add_edge(1, 2);  // component of 3
  b.add_edge(3, 4);                 // component of 2
  // 5 and 6 isolated
  const Components comps = connected_components(b.build());
  EXPECT_EQ(comps.count, 4u);
  EXPECT_EQ(comps.largest(), 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[0], comps.label[3]);
}

TEST(Components, InducedRespectsMask) {
  const Graph g = gen::path(6);  // 0-1-2-3-4-5
  std::vector<std::uint8_t> mask{1, 1, 0, 1, 1, 1};
  const Components comps = induced_components(g, mask);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_EQ(comps.label[2], kNoComponent);
  EXPECT_EQ(comps.largest(), 3u);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Builder b(4);
  b.add_edge(0, 1);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Forest, DetectsCycles) {
  EXPECT_TRUE(is_forest(gen::path(10)));
  EXPECT_TRUE(is_forest(gen::star(10)));
  EXPECT_FALSE(is_forest(gen::cycle(10)));
  EXPECT_FALSE(is_forest(gen::complete(4)));
  EXPECT_TRUE(is_forest(Builder(5).build()));  // isolated nodes
}

TEST(CoreDecomposition, TreeIsOneDegenerate) {
  util::Rng rng(5);
  const Graph t = gen::random_tree(200, rng);
  const CoreDecomposition cores = core_decomposition(t);
  EXPECT_EQ(cores.degeneracy, 1u);
  for (NodeId v = 0; v < t.num_nodes(); ++v) EXPECT_LE(cores.core[v], 1u);
}

TEST(CoreDecomposition, CompleteGraph) {
  const CoreDecomposition cores = core_decomposition(gen::complete(6));
  EXPECT_EQ(cores.degeneracy, 5u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(cores.core[v], 5u);
}

TEST(CoreDecomposition, OrderIsDegenerate) {
  util::Rng rng(17);
  const Graph g = gen::gnp(120, 0.08, rng);
  const CoreDecomposition cores = core_decomposition(g);
  // Every node has at most `degeneracy` neighbors later in the order.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeId later = 0;
    for (NodeId w : g.neighbors(v)) {
      later += (cores.position[w] > cores.position[v]);
    }
    EXPECT_LE(later, cores.degeneracy);
  }
}

TEST(CoreDecomposition, CoreNumbersAreCorrectOnKnownGraph) {
  // Triangle with a pendant: triangle nodes have core 2, pendant core 1.
  Builder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).add_edge(2, 3);
  const CoreDecomposition cores = core_decomposition(b.build());
  EXPECT_EQ(cores.core[3], 1u);
  EXPECT_EQ(cores.core[0], 2u);
  EXPECT_EQ(cores.core[1], 2u);
  EXPECT_EQ(cores.core[2], 2u);
  EXPECT_EQ(cores.degeneracy, 2u);
}

TEST(Arboricity, SandwichHolds) {
  util::Rng rng(23);
  for (NodeId k : {1u, 2u, 3u}) {
    const Graph g = gen::union_of_random_forests(128, k, rng);
    const ArboricityBounds bounds = arboricity_bounds(g);
    EXPECT_LE(bounds.lower, k);          // true arboricity <= k
    EXPECT_LE(bounds.lower, bounds.upper);
    EXPECT_LE(bounds.upper, 2 * k - 1);  // degeneracy <= 2α-1
  }
}

TEST(Arboricity, DensityOfCompleteGraph) {
  // K_6: m = 15, n-1 = 5 -> density bound 3 (true arboricity 3).
  EXPECT_EQ(density_lower_bound(gen::complete(6)), 3u);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(gen::path(10)).value(), 9u);
  EXPECT_EQ(diameter(gen::cycle(10)).value(), 5u);
  EXPECT_EQ(diameter(gen::complete(5)).value(), 1u);
  EXPECT_FALSE(diameter(Graph(0)).has_value());
}

TEST(Eccentricity, CenterOfPath) {
  const Graph g = gen::path(9);
  EXPECT_EQ(eccentricity(g, 4), 4u);
  EXPECT_EQ(eccentricity(g, 0), 8u);
}

}  // namespace
}  // namespace arbmis::graph
