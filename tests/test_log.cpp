// Tests for the leveled logger.
#include <gtest/gtest.h>

#include <sstream>

#include "util/log.h"

namespace arbmis::util {
namespace {

/// RAII guard restoring the log level and capturing std::clog.
class LogCapture {
 public:
  LogCapture() : previous_level_(log_level()), old_buffer_(std::clog.rdbuf()) {
    std::clog.rdbuf(captured_.rdbuf());
  }
  ~LogCapture() {
    std::clog.rdbuf(old_buffer_);
    set_log_level(previous_level_);
  }
  std::string text() const { return captured_.str(); }

 private:
  LogLevel previous_level_;
  std::streambuf* old_buffer_;
  std::ostringstream captured_;
};

TEST(Log, RespectsThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  ARBMIS_LOG(Info) << "should not appear";
  ARBMIS_LOG(Warn) << "warning line";
  ARBMIS_LOG(Error) << "error line";
  const std::string text = capture.text();
  EXPECT_EQ(text.find("should not appear"), std::string::npos);
  EXPECT_NE(text.find("warning line"), std::string::npos);
  EXPECT_NE(text.find("error line"), std::string::npos);
  EXPECT_NE(text.find("[WARN ]"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  set_log_level(LogLevel::kOff);
  ARBMIS_LOG(Error) << "silent";
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, StreamsValues) {
  LogCapture capture;
  set_log_level(LogLevel::kDebug);
  ARBMIS_LOG(Debug) << "x=" << 42 << " y=" << 2.5;
  EXPECT_NE(capture.text().find("x=42 y=2.5"), std::string::npos);
}

TEST(Log, DisabledSideIsNotEvaluated) {
  LogCapture capture;
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("value");
  };
  // operator<< arguments are evaluated by C++ semantics, but the statement
  // checks enabled() before streaming; verify the stream is not emitted
  // and the logger cheaply skips formatting work it controls.
  ARBMIS_LOG(Info) << expensive();
  EXPECT_TRUE(capture.text().empty());
  EXPECT_EQ(evaluations, 1);  // documented: args ARE evaluated
}

TEST(Log, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

}  // namespace
}  // namespace arbmis::util
