// Tests for the telemetry subsystem (src/obs): event schemas and JSON
// rendering, sink filtering/sampling/rotation, the binary wire format,
// the util/log → event bridge, the flight-recorder ring, the metrics
// registry, profiling scopes, and the simulator's emission contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "mis/luby.h"
#include "obs/events.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "sim/network.h"
#include "util/log.h"

namespace arbmis {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII guard restoring the log level and capturing std::clog, so the
/// log-bridge tests do not spam test output (mirrors test_log.cpp).
class LogCapture {
 public:
  LogCapture()
      : previous_level_(util::log_level()), old_buffer_(std::clog.rdbuf()) {
    std::clog.rdbuf(captured_.rdbuf());
  }
  ~LogCapture() {
    std::clog.rdbuf(old_buffer_);
    util::set_log_level(previous_level_);
  }
  std::string text() const { return captured_.str(); }

 private:
  util::LogLevel previous_level_;
  std::streambuf* old_buffer_;
  std::ostringstream captured_;
};

// ---------------------------------------------------------------------------
// Events: schema table and JSON rendering.
// ---------------------------------------------------------------------------

TEST(ObsEvents, EveryKindHasASchema) {
  for (std::uint8_t k = 0;
       k < static_cast<std::uint8_t>(obs::EventKind::kCount); ++k) {
    const obs::EventSchema& schema =
        obs::event_schema(static_cast<obs::EventKind>(k));
    EXPECT_NE(schema.name, nullptr) << "kind " << static_cast<int>(k);
    EXPECT_LE(schema.num_fields, obs::kMaxEventValues);
    for (std::uint32_t i = 0; i < schema.num_fields; ++i) {
      EXPECT_NE(schema.fields[i], nullptr)
          << schema.name << " field " << i;
    }
  }
}

TEST(ObsEvents, CategoryPartition) {
  EXPECT_EQ(obs::event_category(obs::EventKind::kRound),
            obs::EventCategory::kSemantic);
  EXPECT_EQ(obs::event_category(obs::EventKind::kPhase),
            obs::EventCategory::kSemantic);
  EXPECT_EQ(obs::event_category(obs::EventKind::kLog),
            obs::EventCategory::kLogText);
  EXPECT_EQ(obs::event_category(obs::EventKind::kLaneMerge),
            obs::EventCategory::kExec);
}

TEST(ObsEvents, JsonLineMatchesSchemaFieldOrder) {
  const obs::Event recovery =
      obs::make_event(obs::EventKind::kFaultRecovery, 2, {}, 7);
  EXPECT_EQ(obs::to_json_line(recovery),
            "{\"ev\":\"fault_recovery\",\"round\":2,\"node\":7}");

  const obs::Event phase =
      obs::make_event(obs::EventKind::kPhase, 0, "vlo", 2, 10, 3, 5);
  EXPECT_EQ(obs::to_json_line(phase),
            "{\"ev\":\"phase\",\"round\":0,\"index\":2,\"set_size\":10,"
            "\"rounds\":3,\"messages\":5,\"name\":\"vlo\"}");
}

TEST(ObsEvents, EscapesJsonText) {
  std::string out;
  obs::append_json_escaped(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

// ---------------------------------------------------------------------------
// Sinks: filtering, sampling, rotation, binary round-trip, log bridge.
// ---------------------------------------------------------------------------

TEST(ObsSink, DefaultConfigExcludesExecutorKinds) {
  obs::VectorSink capture;
  capture.emit(obs::make_event(obs::EventKind::kRound, 1, {}, 0, 4));
  capture.emit(
      obs::make_event(obs::EventKind::kLaneMerge, 1, {}, 0, 2, 2, 0));
  ASSERT_EQ(capture.size(), 1u);
  EXPECT_EQ(capture.events()[0].kind, obs::EventKind::kRound);

  obs::SinkConfig exec_on;
  exec_on.exec = true;
  obs::VectorSink full(exec_on);
  full.emit(obs::make_event(obs::EventKind::kLaneMerge, 1, {}, 0, 2, 2, 0));
  EXPECT_EQ(full.size(), 1u);
}

TEST(ObsSink, RoundSamplingKeepsBoundaries) {
  obs::SinkConfig config;
  config.round_sample = 3;
  obs::VectorSink capture(config);
  capture.emit(obs::make_event(obs::EventKind::kRunBegin, 0, "x", 8, 7, 1,
                               100, 1));
  for (std::uint32_t r = 1; r <= 9; ++r) {
    capture.emit(obs::make_event(obs::EventKind::kRound, r, {}, 0, 1));
  }
  capture.emit(
      obs::make_event(obs::EventKind::kRunEnd, 9, {}, 9, 9, 72, 1, 1, 0));
  // Kept: run_begin, rounds 3/6/9, run_end — boundaries always pass.
  const std::vector<obs::OwnedEvent> events = capture.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().kind, obs::EventKind::kRunBegin);
  EXPECT_EQ(events[1].round, 3u);
  EXPECT_EQ(events[2].round, 6u);
  EXPECT_EQ(events[3].round, 9u);
  EXPECT_EQ(events.back().kind, obs::EventKind::kRunEnd);
}

TEST(ObsSink, ScopedSinkInstallsAndRestores) {
  EXPECT_EQ(obs::sink(), nullptr);
  obs::VectorSink outer;
  {
    const obs::ScopedSink attach_outer(&outer);
    EXPECT_EQ(obs::sink(), &outer);
    obs::VectorSink inner;
    {
      const obs::ScopedSink attach_inner(&inner);
      EXPECT_EQ(obs::sink(), &inner);
      obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 3));
    }
    EXPECT_EQ(obs::sink(), &outer);
    EXPECT_EQ(inner.size(), 1u);
    EXPECT_EQ(outer.size(), 0u);
  }
  EXPECT_EQ(obs::sink(), nullptr);
  // Detached emission is a no-op, not a crash.
  obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 3));
}

TEST(ObsSink, LogLinesBecomeEventsWhileAttached) {
  LogCapture quiet;
  util::set_log_level(util::LogLevel::kInfo);
  obs::VectorSink capture;
  {
    const obs::ScopedSink attach(&capture);
    ARBMIS_LOG(Warn) << "telemetry bridge check " << 42;
  }
  ARBMIS_LOG(Warn) << "after detach";  // must NOT land in the sink

  const std::vector<obs::OwnedEvent> events = capture.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kLog);
  EXPECT_EQ(events[0].values[0],
            static_cast<std::uint64_t>(util::LogLevel::kWarn));
  EXPECT_NE(events[0].text.find("telemetry bridge check 42"),
            std::string::npos);
  // The clog line still goes out — the bridge tees, it does not reroute.
  EXPECT_NE(quiet.text().find("telemetry bridge check 42"),
            std::string::npos);
}

TEST(ObsSink, LogTextCategoryCanBeDisabled) {
  LogCapture quiet;
  util::set_log_level(util::LogLevel::kInfo);
  obs::SinkConfig config;
  config.log_text = false;
  obs::VectorSink capture(config);
  {
    const obs::ScopedSink attach(&capture);
    ARBMIS_LOG(Warn) << "should be filtered";
  }
  EXPECT_EQ(capture.size(), 0u);
}

TEST(ObsSink, JsonlWriterRotatesWithManifestHeader) {
  const std::string path_a = tmp_path("obs_rotate_a.jsonl");
  const std::string path_b = tmp_path("obs_rotate_b.jsonl");
  {
    obs::JsonlWriter writer(path_a);
    obs::Manifest m = obs::make_manifest("test_obs");
    m.workload = "rotation";
    m.seed = 7;
    writer.attach_manifest(m);
    writer.emit(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 3));
    writer.rotate(path_b);
    EXPECT_EQ(writer.path(), path_b);
    writer.emit(obs::make_event(obs::EventKind::kFaultRecovery, 2, {}, 4));
    writer.flush();
  }
  const std::string file_a = read_file(path_a);
  const std::string file_b = read_file(path_b);
  // Both files are self-describing: manifest first, then events.
  EXPECT_EQ(file_a.rfind("{\"manifest\":{\"schema\":\"arbmis.obs.v1\"", 0),
            0u);
  EXPECT_EQ(file_b.rfind("{\"manifest\":{\"schema\":\"arbmis.obs.v1\"", 0),
            0u);
  EXPECT_NE(file_a.find("\"ev\":\"fault_recovery\",\"round\":1"),
            std::string::npos);
  EXPECT_EQ(file_a.find("\"round\":2,"), std::string::npos);
  EXPECT_NE(file_b.find("\"ev\":\"fault_recovery\",\"round\":2"),
            std::string::npos);
}

namespace binary {

std::uint64_t read_varint(const std::string& buf, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    const auto byte = static_cast<unsigned char>(buf.at(pos++));
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) break;
    shift += 7;
  }
  return value;
}

}  // namespace binary

TEST(ObsSink, BinaryWriterRoundTrips) {
  const std::string path = tmp_path("obs_roundtrip.bin");
  const obs::Event phase =
      obs::make_event(obs::EventKind::kPhase, 0, "shatter", 1, 200, 31, 4096);
  const obs::Event round = obs::make_event(obs::EventKind::kRound, 300, {},
                                           12, 345, 6789, 0, 24, 18, 2);
  {
    obs::BinaryWriter writer(path);
    obs::Manifest m = obs::make_manifest("test_obs");
    m.seed = 99;
    writer.attach_manifest(m);
    writer.emit(phase);
    writer.emit(round);
    writer.flush();
  }
  const std::string buf = read_file(path);
  ASSERT_GE(buf.size(), 9u);
  EXPECT_EQ(buf.substr(0, 8), "ARBMISEV");
  EXPECT_EQ(buf[8], '\x01');

  std::size_t pos = 9;
  // Manifest record.
  ASSERT_EQ(buf.at(pos++), '\x00');
  const std::uint64_t manifest_len = binary::read_varint(buf, pos);
  const std::string manifest_json =
      buf.substr(pos, static_cast<std::size_t>(manifest_len));
  pos += static_cast<std::size_t>(manifest_len);
  EXPECT_EQ(manifest_json.rfind("{\"manifest\":", 0), 0u);
  EXPECT_NE(manifest_json.find("\"seed\":99"), std::string::npos);

  // Event records, decoded back into Events.
  for (const obs::Event& expected : {phase, round}) {
    ASSERT_EQ(buf.at(pos++), '\x01');
    const auto kind = static_cast<obs::EventKind>(
        static_cast<unsigned char>(buf.at(pos++)));
    const auto round_no =
        static_cast<std::uint32_t>(binary::read_varint(buf, pos));
    const std::uint64_t num_values = binary::read_varint(buf, pos);
    EXPECT_EQ(kind, expected.kind);
    EXPECT_EQ(round_no, expected.round);
    ASSERT_EQ(num_values, expected.num_values);
    for (std::uint32_t i = 0; i < expected.num_values; ++i) {
      EXPECT_EQ(binary::read_varint(buf, pos), expected.values[i]) << i;
    }
    const std::uint64_t text_len = binary::read_varint(buf, pos);
    EXPECT_EQ(buf.substr(pos, static_cast<std::size_t>(text_len)),
              expected.text);
    pos += static_cast<std::size_t>(text_len);
  }
  EXPECT_EQ(pos, buf.size());
}

// ---------------------------------------------------------------------------
// Flight recorder: ring eviction, truncation, dumps (obs/recorder.h).
// ---------------------------------------------------------------------------

struct DecodedRecord {
  obs::EventKind kind;
  std::uint32_t round;
  std::vector<std::uint64_t> values;
  std::string text;
};

/// Decodes concatenated ARBMISEV 0x01 event records starting at `pos`.
std::vector<DecodedRecord> decode_records(const std::string& buf,
                                          std::size_t pos = 0) {
  std::vector<DecodedRecord> out;
  while (pos < buf.size()) {
    EXPECT_EQ(buf.at(pos), '\x01');
    ++pos;
    DecodedRecord rec;
    rec.kind = static_cast<obs::EventKind>(
        static_cast<unsigned char>(buf.at(pos++)));
    rec.round = static_cast<std::uint32_t>(binary::read_varint(buf, pos));
    const std::uint64_t num_values = binary::read_varint(buf, pos);
    for (std::uint64_t i = 0; i < num_values; ++i) {
      rec.values.push_back(binary::read_varint(buf, pos));
    }
    const std::uint64_t text_len = binary::read_varint(buf, pos);
    rec.text = buf.substr(pos, static_cast<std::size_t>(text_len));
    pos += static_cast<std::size_t>(text_len);
    out.push_back(std::move(rec));
  }
  return out;
}

/// Checks the artifact header (magic, version, manifest record) and
/// returns the offset of the first event record.
std::size_t skip_header(const std::string& buf) {
  EXPECT_GE(buf.size(), 10u);
  EXPECT_EQ(buf.substr(0, 8), "ARBMISEV");
  EXPECT_EQ(buf[8], '\x01');
  std::size_t pos = 9;
  EXPECT_EQ(buf.at(pos++), '\x00');
  const std::uint64_t manifest_len = binary::read_varint(buf, pos);
  EXPECT_EQ(buf.substr(pos, 12), "{\"manifest\":");
  return pos + static_cast<std::size_t>(manifest_len);
}

TEST(ObsRecorder, ScopedRecorderReceivesEmitsAlongsideSink) {
  EXPECT_EQ(obs::recorder(), nullptr);
  EXPECT_FALSE(obs::telemetry_attached());
  obs::FlightRecorder recorder;
  obs::VectorSink sink_capture;
  {
    const obs::ScopedRecorder attach(&recorder);
    EXPECT_EQ(obs::recorder(), &recorder);
    // Recorder-only attachment still counts as telemetry: the simulator's
    // emission guards must not skip event assembly.
    EXPECT_TRUE(obs::telemetry_attached());
    const obs::ScopedSink attach_sink(&sink_capture);
    obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 3));
  }
  EXPECT_EQ(obs::recorder(), nullptr);
  EXPECT_EQ(recorder.stats().recorded_events, 1u);
  EXPECT_EQ(sink_capture.size(), 1u);  // emit() fans out to both globals
}

TEST(ObsRecorder, WrapAroundEvictsOldestFirst) {
  obs::RecorderConfig config;
  config.max_bytes = 64;  // each fault_recovery record is 6 + 4 bytes
  obs::FlightRecorder recorder(config);
  for (std::uint32_t r = 1; r <= 20; ++r) {
    recorder.record(obs::make_event(obs::EventKind::kFaultRecovery, r, {}, 2));
  }
  const obs::RecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.recorded_events, 20u);
  EXPECT_EQ(stats.buffered_events, 6u);
  EXPECT_EQ(stats.evicted_events, 14u);
  EXPECT_EQ(stats.buffered_bytes, 36u);
  EXPECT_EQ(stats.evicted_bytes, 84u);
  EXPECT_EQ(stats.dropped_oversized, 0u);

  // Only the newest six survive, in emission order.
  const std::vector<DecodedRecord> records =
      decode_records(recorder.ring_bytes());
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].kind, obs::EventKind::kFaultRecovery);
    EXPECT_EQ(records[i].round, 15u + i);
  }
}

TEST(ObsRecorder, OversizedEventIsDroppedNotBuffered) {
  obs::RecorderConfig config;
  config.max_bytes = 64;
  obs::FlightRecorder recorder(config);
  recorder.record(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 2));
  recorder.record(obs::make_event(obs::EventKind::kLog, 0,
                                  std::string(100, 'x'), 2));
  const obs::RecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.recorded_events, 2u);
  EXPECT_EQ(stats.dropped_oversized, 1u);
  // The oversized record neither lands nor evicts what was already there.
  EXPECT_EQ(stats.buffered_events, 1u);
  EXPECT_EQ(stats.evicted_events, 0u);
  const std::vector<DecodedRecord> records =
      decode_records(recorder.ring_bytes());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, obs::EventKind::kFaultRecovery);
}

TEST(ObsRecorder, PathologicalLogTextIsTruncated) {
  obs::RecorderConfig config;
  config.max_bytes = 16u << 10;
  obs::FlightRecorder recorder(config);
  recorder.record(obs::make_event(obs::EventKind::kLog, 0,
                                  std::string(5000, 'y'), 1));
  const std::vector<DecodedRecord> records =
      decode_records(recorder.ring_bytes());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].text.size(), obs::kMaxRecorderText);
}

TEST(ObsRecorder, DumpWhileAttachedIsAValidArtifactWithTrailer) {
  const std::string path = tmp_path("obs_recorder_dump.flightrec");
  obs::FlightRecorder recorder;
  {
    const obs::ScopedRecorder attach(&recorder);
    obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 3));
    obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 2, {}, 4));
    // Dumping while attached must not disturb recording.
    ASSERT_TRUE(recorder.dump(path, "unit_test"));
    obs::emit(obs::make_event(obs::EventKind::kFaultRecovery, 3, {}, 5));
  }
  EXPECT_EQ(recorder.stats().dumps, 1u);
  EXPECT_EQ(recorder.stats().buffered_events, 3u);

  const std::string buf = read_file(path);
  const std::vector<DecodedRecord> records =
      decode_records(buf, skip_header(buf));
  ASSERT_EQ(records.size(), 3u);  // two events + the kRecorderDump trailer
  EXPECT_EQ(records[0].round, 1u);
  EXPECT_EQ(records[1].round, 2u);
  const DecodedRecord& trailer = records.back();
  EXPECT_EQ(trailer.kind, obs::EventKind::kRecorderDump);
  EXPECT_EQ(trailer.text, "unit_test");
  ASSERT_EQ(trailer.values.size(), 4u);
  EXPECT_EQ(trailer.values[0], 2u);  // buffered events at dump time
  EXPECT_EQ(trailer.values[2], 0u);  // nothing evicted
}

TEST(ObsRecorder, ClearDropsBufferedButKeepsCumulativeCounters) {
  obs::FlightRecorder recorder;
  recorder.record(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 2));
  recorder.clear();
  const obs::RecorderStats stats = recorder.stats();
  EXPECT_EQ(stats.buffered_events, 0u);
  EXPECT_EQ(stats.buffered_bytes, 0u);
  EXPECT_EQ(stats.recorded_events, 1u);
  EXPECT_TRUE(recorder.ring_bytes().empty());
  // The ring keeps working after a clear.
  recorder.record(obs::make_event(obs::EventKind::kFaultRecovery, 2, {}, 2));
  EXPECT_EQ(recorder.stats().buffered_events, 1u);
}

TEST(ObsRecorder, AutoDumpWithoutPathIsANoOp) {
  obs::FlightRecorder recorder;  // default config: no dump_path
  recorder.record(obs::make_event(obs::EventKind::kFaultRecovery, 1, {}, 2));
  EXPECT_FALSE(recorder.auto_dump("nowhere"));
  EXPECT_EQ(recorder.stats().dumps, 0u);
  // Detached helper is a safe no-op too.
  EXPECT_FALSE(obs::recorder_auto_dump("nobody_attached"));
}

// ---------------------------------------------------------------------------
// Registry: counters, gauges, histograms, round series, JSON stability.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CountersGaugesAndHistograms) {
  obs::Registry reg;
  reg.add("sim.messages", 5);
  reg.add("sim.messages", 2);
  reg.add("sim.runs");
  reg.set("sim.model.k", -3);
  reg.observe("sim.message_bits", 9);
  reg.observe("sim.message_bits", 1024);
  reg.observe_linear("core.balance", 0.0, 1.0, 4, 0.3);

  EXPECT_EQ(reg.counter("sim.messages"), 7u);
  EXPECT_EQ(reg.counter("sim.runs"), 1u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_EQ(reg.gauge("sim.model.k"), -3);

  const std::string json = reg.to_json();
  EXPECT_EQ(json.rfind("{\"schema\":\"arbmis.metrics.v1\"", 0), 0u);
  EXPECT_NE(json.find("\"manifest\":null"), std::string::npos);
  EXPECT_NE(json.find("\"sim.messages\":7"), std::string::npos);
  EXPECT_NE(json.find("\"sim.model.k\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"log2\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"linear\""), std::string::npos);
  // map storage ⇒ byte-stable key order regardless of insertion order.
  obs::Registry mirrored;
  mirrored.observe_linear("core.balance", 0.0, 1.0, 4, 0.3);
  mirrored.observe("sim.message_bits", 9);
  mirrored.observe("sim.message_bits", 1024);
  mirrored.set("sim.model.k", -3);
  mirrored.add("sim.runs");
  mirrored.add("sim.messages", 7);
  EXPECT_EQ(mirrored.to_json(), json);
}

TEST(ObsRegistry, RoundSeriesRespectsSampling) {
  obs::Registry reg(/*round_sample=*/2);
  reg.track_round_series("sim.messages");
  reg.add("sim.messages", 5);
  reg.snapshot_round(1);  // skipped: 1 % 2 != 0
  reg.add("sim.messages", 3);
  reg.snapshot_round(2);  // delta since start: 8
  reg.add("sim.messages", 2);
  reg.snapshot_round(3);  // skipped
  reg.add("sim.messages", 1);
  reg.snapshot_round(4);  // delta since round 2: 3

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"sample\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":[2,4]"), std::string::npos);
  EXPECT_NE(json.find("\"sim.messages\":[8,3]"), std::string::npos);
}

TEST(ObsRegistry, ScopedRegistryInstallsAndRestores) {
  EXPECT_EQ(obs::registry(), nullptr);
  obs::Registry reg;
  {
    const obs::ScopedRegistry attach(&reg);
    EXPECT_EQ(obs::registry(), &reg);
  }
  EXPECT_EQ(obs::registry(), nullptr);
}

TEST(ObsRegistry, EmbedsManifestWhenGiven) {
  obs::Registry reg;
  reg.add("sim.runs");
  obs::Manifest m = obs::make_manifest("test_obs");
  m.workload = "gnp(150,0.05)";
  const std::string json = reg.to_json(&m);
  EXPECT_NE(json.find("\"manifest\":{\"schema\":\"arbmis.obs.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"gnp(150,0.05)\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

TEST(ObsManifest, JsonShapes) {
  obs::Manifest m = obs::make_manifest("test_obs");
  m.workload = "path(64)";
  m.seed = 7;
  m.nodes = 64;
  m.edges = 63;
  m.threads = 4;
  m.inbox = "arena";
  EXPECT_EQ(m.schema, std::string(obs::kSchemaVersion));
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_EQ(m.tool, "test_obs");

  const std::string object = obs::to_json_object(m);
  EXPECT_EQ(object.front(), '{');
  EXPECT_EQ(object.back(), '}');
  EXPECT_NE(object.find("\"tool\":\"test_obs\""), std::string::npos);
  EXPECT_NE(object.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(object.find("\"inbox\":\"arena\""), std::string::npos);
  EXPECT_EQ(obs::to_json_line(m), "{\"manifest\":" + object + "}");
}

// ---------------------------------------------------------------------------
// Profiler.
// ---------------------------------------------------------------------------

TEST(ObsProfiler, RecordsScopesAndExportsChromeTrace) {
  obs::Profiler profiler;
  EXPECT_EQ(obs::Profiler::active(), nullptr);
  {
    const obs::ScopedProfiler attach(&profiler);
    ASSERT_EQ(obs::Profiler::active(), &profiler);
    OBS_SCOPE("outer");
    { OBS_SCOPE("inner"); }
  }
  EXPECT_EQ(obs::Profiler::active(), nullptr);
  EXPECT_EQ(profiler.span_count(), 2u);

  const std::string json = profiler.to_chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ObsProfiler, ScopeStraddlingDetachDropsItsSpan) {
  obs::Profiler profiler;
  auto attach = std::make_unique<obs::ScopedProfiler>(&profiler);
  {
    const obs::ProfileScope straddler("straddle");
    attach.reset();  // detach before the scope closes
  }
  EXPECT_EQ(profiler.span_count(), 0u);
}

TEST(ObsProfiler, DisabledScopeIsANoOp) {
  ASSERT_EQ(obs::Profiler::active(), nullptr);
  OBS_SCOPE("no profiler attached");
}

// ---------------------------------------------------------------------------
// Simulator emission contract.
// ---------------------------------------------------------------------------

TEST(ObsNetwork, EmitsRunEventsIdenticallyAcrossThreadCounts) {
  const graph::Graph g = graph::gen::path(32);
  const auto run_with = [&](std::uint32_t threads) {
    const sim::ScopedNumThreads scoped(threads);
    obs::VectorSink capture;
    sim::RunStats stats;
    {
      const obs::ScopedSink attach(&capture);
      mis::LubyBMis algorithm(g);
      sim::Network net(g, /*seed=*/11);
      stats = net.run(algorithm, 1u << 12);
    }
    return std::make_pair(stats, capture.to_jsonl());
  };

  const auto [stats, serial] = run_with(0);
  EXPECT_TRUE(stats.all_halted);
  EXPECT_EQ(serial.rfind("{\"ev\":\"run_begin\"", 0), 0u);
  EXPECT_NE(serial.find("\"ev\":\"run_end\""), std::string::npos);
  EXPECT_NE(serial.find("\"ev\":\"model_check\""), std::string::npos);
  // One round event per round barrier: the on_start flush (round 0) plus
  // one per counted round.
  std::size_t rounds_seen = 0;
  for (std::size_t at = serial.find("{\"ev\":\"round\"");
       at != std::string::npos;
       at = serial.find("{\"ev\":\"round\"", at + 1)) {
    ++rounds_seen;
  }
  EXPECT_EQ(rounds_seen, stats.rounds + 1);
  for (const std::uint32_t threads : {1u, 4u}) {
    EXPECT_EQ(serial, run_with(threads).second) << threads;
  }
}

TEST(ObsNetwork, FeedsAttachedRegistry) {
  const graph::Graph g = graph::gen::path(24);
  obs::Registry reg;
  sim::RunStats stats;
  {
    const obs::ScopedRegistry attach(&reg);
    mis::LubyBMis algorithm(g);
    sim::Network net(g, /*seed=*/5);
    stats = net.run(algorithm, 1u << 12);
  }
  EXPECT_EQ(reg.counter("sim.runs"), 1u);
  EXPECT_EQ(reg.counter("sim.rounds"), stats.rounds);
  EXPECT_EQ(reg.counter("sim.messages"), stats.messages);
  // The counter sums actual per-message widths, which are bounded by the
  // nominal per-message budget RunStats charges.
  EXPECT_GT(reg.counter("sim.payload_bits"), 0u);
  EXPECT_LE(reg.counter("sim.payload_bits"), stats.payload_bits);
  EXPECT_NE(reg.to_json().find("\"sim.message_bits\""), std::string::npos);
}

}  // namespace
}  // namespace arbmis
