// Tests for Linial's color reduction and the bounded-degree MIS.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "graph/generators.h"
#include "mis/linial.h"
#include "mis/verifier.h"

namespace arbmis::mis {
namespace {

TEST(LinialSchedule, ReachesDegreeSquaredColors) {
  for (std::uint64_t n : {100ULL, 10000ULL, 1ULL << 20}) {
    for (std::uint64_t d : {2ULL, 4ULL, 8ULL}) {
      const LinialSchedule schedule = LinialSchedule::compute(n, d);
      EXPECT_LE(schedule.final_colors, (2 * d + 10) * (2 * d + 10))
          << "n=" << n << " d=" << d;
      EXPECT_LE(schedule.steps.size(), 6u);  // log* behavior
      // The schedule strictly decreases.
      std::uint64_t m = n;
      for (const auto& step : schedule.steps) {
        EXPECT_EQ(step.colors_in, m);
        EXPECT_LT(step.colors_out, m);
        EXPECT_GT(step.prime_q, step.degree_k * d);
        m = step.colors_out;
      }
      EXPECT_EQ(schedule.final_colors, m);
    }
  }
}

TEST(LinialSchedule, LogStarGrowth) {
  const auto small = LinialSchedule::compute(1 << 10, 4).steps.size();
  const auto large = LinialSchedule::compute(1 << 26, 4).steps.size();
  EXPECT_LE(large, small + 2);
}

class LinialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinialSweep, ColoringIsProper) {
  util::Rng rng(GetParam());
  const graph::Graph g = graph::gen::gnp(150, 0.04, rng);
  LinialMis algorithm(g, {.max_degree = g.max_degree(), .color_only = true});
  sim::Network net(g, GetParam());
  const sim::RunStats stats = net.run(algorithm, 1 << 20);
  EXPECT_TRUE(stats.all_halted);
  const auto& colors = algorithm.final_colors();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LT(colors[v], algorithm.schedule().final_colors);
    for (graph::NodeId w : g.neighbors(v)) {
      EXPECT_NE(colors[v], colors[w]) << "edge " << v << "-" << w;
    }
  }
}

TEST_P(LinialSweep, MisIsVerified) {
  util::Rng rng(GetParam() + 7);
  for (const graph::Graph& g :
       {graph::gen::grid(8, 8), graph::gen::cycle(50),
        graph::gen::random_tree(100, rng),
        graph::gen::union_of_random_forests(100, 2, rng)}) {
    const MisResult result = LinialMis::run(g, g.max_degree(), GetParam());
    EXPECT_TRUE(verify(g, result).ok());
    EXPECT_TRUE(result.stats.all_halted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinialSweep, ::testing::Values(1, 55, 777));

TEST(Linial, RoundsIndependentOfN) {
  // Same degree bound, 16x nodes: rounds should grow by at most the log*
  // term (a couple of reduction steps), not with n. Sizes chosen large
  // enough that both schedules bottom out at the same O(D²) fixed point.
  const graph::Graph small = graph::gen::grid(32, 32);
  const graph::Graph large = graph::gen::grid(128, 128);
  const auto rs = LinialMis::run(small, 4, 1).stats.rounds;
  const auto rl = LinialMis::run(large, 4, 1).stats.rounds;
  EXPECT_LE(rl, rs + 3);
}

TEST(Linial, ThrowsWhenDegreeBoundWrong) {
  // Star with 199 leaves, claimed max degree 2: the center has far more
  // distinct neighbor colors than a GF(q) for q ~ k·2 can separate, so it
  // must fail to find an evaluation point (which is the designed failure
  // mode certifying a wrong degree bound).
  const graph::Graph g = graph::gen::star(200);
  EXPECT_THROW(LinialMis::run(g, 2, 1), std::logic_error);
}

TEST(Linial, HandlesTinyGraphs) {
  for (graph::NodeId n : {0u, 1u, 2u, 3u}) {
    const graph::Graph g = graph::gen::path(n);
    const MisResult result =
        LinialMis::run(g, std::max<graph::NodeId>(g.max_degree(), 1), 1);
    EXPECT_TRUE(verify(g, result).ok()) << "n=" << n;
  }
}

TEST(Linial, DeterministicAcrossSeeds) {
  const graph::Graph g = graph::gen::grid(6, 6);
  const MisResult a = LinialMis::run(g, 4, 1);
  const MisResult b = LinialMis::run(g, 4, 31337);
  EXPECT_EQ(a.state, b.state);  // fully deterministic algorithm
}

}  // namespace
}  // namespace arbmis::mis
