// Tests for the read-k family constructions and read-value computation.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "graph/generators.h"
#include "readk/family.h"

namespace arbmis::readk {
namespace {

TEST(Family, IndependentFamilyIsReadOne) {
  const ReadKFamily family = independent_family(32, 0.5);
  EXPECT_EQ(family.read_k(), 1u);
  EXPECT_EQ(family.num_indicators(), 32u);
  EXPECT_EQ(family.num_base(), 32u);
}

TEST(Family, SharedBlockReadValue) {
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    const ReadKFamily family = shared_block_family(32, k, 0.5);
    EXPECT_EQ(family.read_k(), k);
    EXPECT_EQ(family.num_base(), (32 + k - 1) / k);
  }
}

TEST(Family, SharedBlockPartialLastBlock) {
  const ReadKFamily family = shared_block_family(10, 4, 0.5);
  EXPECT_EQ(family.num_base(), 3u);
  EXPECT_EQ(family.read_k(), 4u);
}

TEST(Family, SharedBlockEvaluationIsBlockwiseEqual) {
  const ReadKFamily family = shared_block_family(8, 4, 0.5);
  std::vector<double> base{0.3, 0.9};
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(family.evaluate(j, base));
  }
  for (std::uint32_t j = 4; j < 8; ++j) {
    EXPECT_FALSE(family.evaluate(j, base));
  }
}

TEST(Family, RejectsOutOfRangeDeps) {
  EXPECT_THROW(ReadKFamily(2, {{0, 5}}, [](std::uint32_t,
                                           std::span<const double>) {
                 return true;
               }),
               std::invalid_argument);
}

TEST(Family, ZeroKThrows) {
  EXPECT_THROW(shared_block_family(8, 0, 0.5), std::invalid_argument);
}

TEST(Family, ChildMaxFamilyReadValueOnStar) {
  // Star oriented leaves -> center: center is the only parent; for the
  // member set = {leaves}, each leaf's indicator touches only itself and
  // its children (none), so read is 1. For member set = {center}, the
  // indicator touches all leaves once: read 1 as well.
  const graph::Graph g = graph::gen::star(6);
  std::vector<std::vector<graph::NodeId>> parents(6);
  for (graph::NodeId leaf = 1; leaf < 6; ++leaf) parents[leaf] = {0};
  const graph::Orientation orientation(g, std::move(parents));

  const std::vector<graph::NodeId> center{0};
  const ReadKFamily family = child_max_family(orientation, center);
  EXPECT_EQ(family.read_k(), 1u);

  std::vector<double> base{0.5, 0.1, 0.2, 0.9, 0.3, 0.4};
  EXPECT_TRUE(family.evaluate(0, base));  // 0.9 > 0.5
  base[3] = 0.2;
  EXPECT_FALSE(family.evaluate(0, base));
}

TEST(Family, ChildMaxReadBoundedByAlphaPlusOne) {
  // On an arboricity-α orientation, a priority feeds its own indicator
  // plus one per parent: read <= max_out_degree + 1.
  util::Rng rng(91);
  const graph::Graph g = graph::gen::union_of_random_forests(100, 3, rng);
  const graph::Orientation orientation = graph::degeneracy_orientation(g);
  std::vector<graph::NodeId> all(g.num_nodes());
  std::iota(all.begin(), all.end(), graph::NodeId{0});
  const ReadKFamily family = child_max_family(orientation, all);
  EXPECT_LE(family.read_k(), orientation.max_out_degree() + 1);
}

TEST(Family, ParentMaxSemantics) {
  const graph::Graph g = graph::gen::path(3);
  // Orient 0 -> 1 -> 2 (parents to the right).
  std::vector<std::vector<graph::NodeId>> parents{{1}, {2}, {}};
  const graph::Orientation orientation(g, std::move(parents));
  const std::vector<graph::NodeId> members{0, 1, 2};
  const ReadKFamily family = parent_max_family(orientation, members);

  std::vector<double> base{0.9, 0.5, 0.1};
  EXPECT_TRUE(family.evaluate(0, base));   // 0.9 > 0.5
  EXPECT_TRUE(family.evaluate(1, base));   // 0.5 > 0.1
  EXPECT_TRUE(family.evaluate(2, base));   // no parents
  base[0] = 0.2;
  EXPECT_FALSE(family.evaluate(0, base));
}

}  // namespace
}  // namespace arbmis::readk
