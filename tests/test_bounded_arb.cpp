// Tests for BoundedArbIndependentSet (the paper's Algorithm 1): schedule
// bookkeeping, postconditions on I/B/VIB, the Invariant audit, and the
// bad-probability behavior.
#include <gtest/gtest.h>

#include "core/bounded_arb.h"
#include "core/invariant.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "mis/verifier.h"

namespace arbmis::core {
namespace {

graph::Graph test_graph(graph::NodeId n, graph::NodeId alpha,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::gen::union_of_random_forests(n, alpha, rng);
}

TEST(Schedule, PointsFollowTheLayout) {
  Params params;
  params.num_scales = 2;
  params.iterations_per_scale = 2;
  params.max_degree = 64;
  params.alpha = 1;
  params.rho_factor = 8.0;
  const graph::Graph g = graph::gen::path(2);
  BoundedArbIndependentSet algorithm(g, params);

  using Phase = SchedulePoint::Phase;
  EXPECT_EQ(algorithm.schedule_point(0).phase, Phase::kBootstrap);
  // Scale 1: rounds 1..8 (3Λ+2 = 8).
  EXPECT_EQ(algorithm.schedule_point(1).phase, Phase::kPrio);
  EXPECT_EQ(algorithm.schedule_point(1).iteration, 1u);
  EXPECT_EQ(algorithm.schedule_point(2).phase, Phase::kResolve);
  EXPECT_EQ(algorithm.schedule_point(3).phase, Phase::kAliveProcess);
  EXPECT_EQ(algorithm.schedule_point(4).phase, Phase::kPrio);
  EXPECT_EQ(algorithm.schedule_point(4).iteration, 2u);
  EXPECT_EQ(algorithm.schedule_point(7).phase, Phase::kDegreeReport);
  EXPECT_EQ(algorithm.schedule_point(8).phase, Phase::kBadCheck);
  EXPECT_TRUE(algorithm.is_scale_end(8));
  // Scale 2 starts at round 9.
  EXPECT_EQ(algorithm.schedule_point(9).scale, 2u);
  EXPECT_EQ(algorithm.schedule_point(9).phase, Phase::kPrio);
  EXPECT_TRUE(algorithm.is_scale_end(16));
  EXPECT_FALSE(algorithm.is_scale_end(15));
}

class BoundedArbSweep
    : public ::testing::TestWithParam<std::tuple<graph::NodeId, std::uint64_t>> {
};

TEST_P(BoundedArbSweep, PostconditionsHold) {
  const auto [alpha, seed] = GetParam();
  const graph::Graph g = test_graph(600, alpha, seed);
  const Params params = Params::practical(alpha, g.max_degree());
  const auto result = BoundedArbIndependentSet::run(g, params, seed);

  EXPECT_TRUE(result.stats.all_halted);
  // Every node got a final outcome.
  EXPECT_EQ(result.count(ArbOutcome::kActive), 0u);

  // I is independent.
  EXPECT_TRUE(mis::is_independent(g, result.mis_mask()));

  // Covered nodes really have an I-neighbor.
  const auto mis_mask = result.mis_mask();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.outcome[v] != ArbOutcome::kCovered) continue;
    bool covered = false;
    for (graph::NodeId w : g.neighbors(v)) covered |= (mis_mask[w] != 0);
    EXPECT_TRUE(covered) << "node " << v;
  }

  // The Invariant (paper §3) for survivors: at the end of the final scale
  // every remaining node has at most Δ/2^(Θ+2) high-degree active
  // neighbors — recomputed from scratch here.
  const auto remaining = result.remaining_mask();
  const auto bad = result.bad_mask();
  std::vector<std::uint64_t> residual_degree(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!remaining[v]) continue;
    for (graph::NodeId w : g.neighbors(v)) residual_degree[v] += remaining[w];
  }
  if (params.num_scales > 0) {
    const std::uint64_t high = params.residual_degree_cut();
    const std::uint64_t bad_threshold = params.vhi_internal_degree_bound();
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!remaining[v]) continue;
      std::uint64_t high_neighbors = 0;
      for (graph::NodeId w : g.neighbors(v)) {
        if (remaining[w] && residual_degree[w] > high) ++high_neighbors;
      }
      EXPECT_LE(high_neighbors, bad_threshold) << "node " << v;
    }
  }
  (void)bad;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSeeds, BoundedArbSweep,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 77, 4242)));

TEST(BoundedArb, InvariantAuditorSeesNoViolations) {
  const graph::Graph g = test_graph(800, 2, 5);
  const Params params = Params::practical(2, g.max_degree());
  BoundedArbIndependentSet algorithm(g, params);
  InvariantAuditor auditor(g, algorithm);
  sim::Network net(g, 5);
  const auto stats = net.run(algorithm, params.total_rounds(),
                             auditor.observer());
  EXPECT_TRUE(stats.all_halted);
  ASSERT_EQ(auditor.audits().size(), params.num_scales);
  EXPECT_TRUE(auditor.all_hold());
  for (const auto& audit : auditor.audits()) {
    EXPECT_EQ(audit.violations, 0u) << "scale " << audit.scale;
    EXPECT_LE(audit.max_high_degree_neighbors, audit.bad_threshold);
  }
}

TEST(BoundedArb, ZeroScalesLeavesEverythingRemaining) {
  const graph::Graph g = graph::gen::path(10);
  Params params = Params::practical(1, g.max_degree());
  ASSERT_EQ(params.num_scales, 0u);  // Δ = 2 is below any practical cut
  const auto result = BoundedArbIndependentSet::run(g, params, 1);
  EXPECT_EQ(result.count(ArbOutcome::kRemaining), 10u);
  EXPECT_EQ(result.stats.rounds, 0u);
}

TEST(BoundedArb, DeterministicGivenSeed) {
  const graph::Graph g = test_graph(300, 2, 9);
  const Params params = Params::practical(2, g.max_degree());
  const auto a = BoundedArbIndependentSet::run(g, params, 123);
  const auto b = BoundedArbIndependentSet::run(g, params, 123);
  EXPECT_EQ(a.outcome, b.outcome);
}

TEST(BoundedArb, ScaleStatsAccountForEveryNode) {
  const graph::Graph g = test_graph(500, 2, 13);
  const Params params = Params::practical(2, g.max_degree());
  const auto result = BoundedArbIndependentSet::run(g, params, 3);
  std::uint64_t joined = 0, covered = 0, bad = 0;
  for (const auto& scale : result.scale_stats) {
    joined += scale.joined;
    covered += scale.covered;
    bad += scale.bad;
  }
  EXPECT_EQ(joined, result.count(ArbOutcome::kInMis));
  EXPECT_EQ(covered, result.count(ArbOutcome::kCovered));
  EXPECT_EQ(bad, result.count(ArbOutcome::kBad));
  if (!result.scale_stats.empty()) {
    EXPECT_EQ(result.scale_stats.back().active_after,
              result.count(ArbOutcome::kRemaining));
  }
}

TEST(BoundedArb, ScheduleBoundsTheRounds) {
  // The fixed schedule is an upper bound; the run ends early if every
  // node is decided (joined/covered/bad) before the last scale.
  util::Rng rng(21);
  const graph::Graph g = graph::gen::hubbed_forest_union(4000, 2, 4, rng);
  const Params params = Params::practical(2, g.max_degree());
  const auto result = BoundedArbIndependentSet::run(g, params, 2);
  ASSERT_GT(params.num_scales, 0u);
  EXPECT_TRUE(result.stats.all_halted);
  EXPECT_LE(result.stats.rounds,
            params.num_scales * (3 * params.iterations_per_scale + 2));
  EXPECT_EQ(result.count(ArbOutcome::kActive), 0u);
}

TEST(BoundedArb, BadNodesAreRareOnBoundedArbGraphs) {
  // Theorem 3.6's qualitative content with practical constants: only a
  // small fraction of nodes lands in B.
  std::uint64_t total_nodes = 0;
  std::uint64_t total_bad = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const graph::Graph g = test_graph(1000, 2, seed + 31);
    const Params params = Params::practical(2, g.max_degree());
    const auto result = BoundedArbIndependentSet::run(g, params, seed);
    total_nodes += g.num_nodes();
    total_bad += result.count(ArbOutcome::kBad);
  }
  EXPECT_LT(static_cast<double>(total_bad),
            0.05 * static_cast<double>(total_nodes));
}

}  // namespace
}  // namespace arbmis::core
