// Unit tests for src/util: RNG determinism and stream independence,
// statistics math, histograms, and the table emitter.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace arbmis {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  util::Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  util::Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  util::Rng rng(5);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, kDraws / 10.0 * 0.15);
  }
}

TEST(Rng, RangeInclusive) {
  util::Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ChildStreamsAreIndependentOfCreationOrder) {
  const util::Rng base(1234);
  util::Rng c5_first = base.child(5);
  util::Rng c9 = base.child(9);
  util::Rng c5_second = base.child(5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c5_first.next(), c5_second.next());
  }
  // Distinct ids give distinct streams.
  util::Rng c5 = base.child(5);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c5.next() == c9.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildDoesNotPerturbParent) {
  util::Rng a(77);
  util::Rng b(77);
  (void)a.child(3);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BernoulliMatchesProbability) {
  util::Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RunningStats, Empty) {
  util::RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  util::RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  util::Rng rng(21);
  util::RunningStats all;
  util::RunningStats left;
  util::RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(util::quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(util::quantile(sorted, 0.5), 2.5);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(util::quantile({}, 0.5), 0.0);
}

TEST(WilsonInterval, ContainsTruthAndShrinks) {
  const util::Interval wide = util::wilson_interval(30, 100);
  const util::Interval narrow = util::wilson_interval(3000, 10000);
  EXPECT_TRUE(wide.contains(0.3));
  EXPECT_TRUE(narrow.contains(0.3));
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(WilsonInterval, ZeroTrials) {
  const util::Interval interval = util::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(interval.hi, 1.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0);
  }
  const util::LinearFit fit = util::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Correlation, SignMatchesTrend) {
  std::vector<double> xs, up, down;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    up.push_back(2.0 * i + 1);
    down.push_back(-0.5 * i);
  }
  EXPECT_GT(util::correlation(xs, up), 0.99);
  EXPECT_LT(util::correlation(xs, down), -0.99);
}

TEST(BinomialCdf, MatchesKnownValues) {
  // P[Bin(10, 0.5) <= 5] = 0.623046875
  EXPECT_NEAR(util::binomial_cdf(5, 10, 0.5), 0.623046875, 1e-9);
  EXPECT_DOUBLE_EQ(util::binomial_cdf(10, 10, 0.3), 1.0);
  EXPECT_NEAR(util::binomial_cdf(0, 4, 0.5), 0.0625, 1e-12);
}

TEST(LogBinomial, MatchesSmallCases) {
  EXPECT_NEAR(std::exp(util::log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(util::log_binomial(10, 5)), 252.0, 1e-6);
  EXPECT_EQ(util::log_binomial(3, 5),
            -std::numeric_limits<double>::infinity());
}

TEST(Histogram, BucketsAndOverflow) {
  util::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bucket(2), 1u);  // 5.0
  EXPECT_EQ(h.total(), 6u);
}

TEST(Log2Histogram, PowerBuckets) {
  util::Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.zero_count(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);  // [1,2)
  EXPECT_EQ(h.bucket(1), 2u);  // [2,4)
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.max_value(), 1024u);
}

TEST(Table, AlignsAndEmitsCsv) {
  util::Table table({"name", "count", "ratio"});
  table.row().cell("alpha").cell(std::uint64_t{12}).cell(0.5);
  table.row().cell("beta,x").cell(std::uint64_t{3}).cell(1.25);
  std::ostringstream pretty;
  table.print(pretty);
  EXPECT_NE(pretty.str().find("alpha"), std::string::npos);
  EXPECT_NE(pretty.str().find("----"), std::string::npos);

  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("name,count,ratio"), std::string::npos);
  EXPECT_NE(csv.str().find("\"beta,x\""), std::string::npos);
}

TEST(Table, CellAt) {
  util::Table table({"a", "b"});
  table.row().cell(std::uint64_t{1}).cell(std::uint64_t{2});
  EXPECT_EQ(table.at(0, 0), "1");
  EXPECT_EQ(table.at(0, 1), "2");
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_columns(), 2u);
}

}  // namespace
}  // namespace arbmis
