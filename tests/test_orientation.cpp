// Tests for orientations and forest partitions — the analysis-side
// parent/child structure of the paper.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/properties.h"

namespace arbmis::graph {
namespace {

TEST(Orientation, DegeneracyOrientationBoundsOutDegree) {
  util::Rng rng(31);
  for (NodeId k : {1u, 2u, 4u}) {
    const Graph g = gen::union_of_random_forests(100, k, rng);
    const Orientation o = degeneracy_orientation(g);
    EXPECT_LE(o.max_out_degree(), degeneracy(g));
    EXPECT_LE(o.max_out_degree(), 2 * k - 1);
    EXPECT_TRUE(o.is_acyclic());
  }
}

TEST(Orientation, ChildrenInverseOfParents) {
  util::Rng rng(37);
  const Graph g = gen::random_apollonian(60, rng);
  const Orientation o = degeneracy_orientation(g);
  std::uint64_t parent_pairs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId p : o.parents(v)) {
      const auto kids = o.children(p);
      EXPECT_NE(std::find(kids.begin(), kids.end(), v), kids.end());
      ++parent_pairs;
    }
  }
  EXPECT_EQ(parent_pairs, g.num_edges());
}

TEST(Orientation, IdOrientationAcyclic) {
  util::Rng rng(41);
  const Graph g = gen::gnp(60, 0.1, rng);
  const Orientation o = id_orientation(g);
  EXPECT_TRUE(o.is_acyclic());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId p : o.parents(v)) EXPECT_GT(p, v);
  }
}

TEST(Orientation, DetectsCycle) {
  // Manually build a cyclic "orientation": 0 -> 1 -> 2 -> 0.
  Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph g = b.build();
  std::vector<std::vector<NodeId>> parents{{1}, {2}, {0}};
  const Orientation o(g, std::move(parents));
  EXPECT_FALSE(o.is_acyclic());
}

TEST(ForestPartition, FromDegeneracyOrientationIsValid) {
  util::Rng rng(43);
  for (NodeId k : {1u, 2u, 3u}) {
    const Graph g = gen::union_of_random_forests(80, k, rng);
    const Orientation o = degeneracy_orientation(g);
    const ForestPartition partition = forests_from_orientation(g, o);
    EXPECT_EQ(partition.num_forests(), o.max_out_degree());
    EXPECT_EQ(partition.num_edges(), g.num_edges());
    EXPECT_TRUE(valid_forest_partition(g, partition));
  }
}

TEST(ForestPartition, TreeGivesOneForest) {
  util::Rng rng(47);
  const Graph t = gen::random_tree(50, rng);
  const Orientation o = degeneracy_orientation(t);
  const ForestPartition partition = forests_from_orientation(t, o);
  EXPECT_EQ(partition.num_forests(), 1u);
  EXPECT_TRUE(valid_forest_partition(t, partition));
}

TEST(ForestPartition, ValidatorCatchesBadPartition) {
  const Graph g = gen::path(4);
  // Missing edge coverage.
  ForestPartition partition;
  partition.forest_parent = {{kNoParent, 0, kNoParent, kNoParent}};
  EXPECT_FALSE(valid_forest_partition(g, partition));
  // Non-edge parent pointer.
  partition.forest_parent = {{2, 0, 1, 2}};
  EXPECT_FALSE(valid_forest_partition(g, partition));
}

TEST(ForestPartition, ValidatorCatchesCycleInForest) {
  Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph g = b.build();
  ForestPartition partition;
  partition.forest_parent = {{1, 2, 0}};
  EXPECT_FALSE(valid_forest_partition(g, partition));
}

}  // namespace
}  // namespace arbmis::graph
