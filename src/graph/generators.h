// Graph generators for the experiment workloads.
//
// The paper's result targets graphs of bounded arboricity α, so most of the
// random families here come with a constructive arboricity certificate:
//
//   * trees / forests                         — α = 1
//   * union_of_random_forests(n, k)           — α ≤ k (edges are k forests)
//   * k_degenerate(n, k), k_tree(n, k)        — degeneracy ≤ k ⇒ α ≤ k
//   * random_apollonian(n), grids             — planar ⇒ α ≤ 3
//   * gnp / complete / hypercube              — unbounded-α controls
//
// Random generators take an Rng by reference; each call consumes from the
// stream, so two calls with the same Rng produce different graphs while a
// reseeded Rng reproduces them exactly.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace arbmis::graph::gen {

// ----- deterministic families ---------------------------------------------

/// Simple path 0-1-...-(n-1).
Graph path(NodeId n);

/// Cycle on n >= 3 nodes (n < 3 degrades to a path).
Graph cycle(NodeId n);

/// Star: node 0 adjacent to 1..n-1.
Graph star(NodeId n);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b}; sides are [0,a) and [a,a+b).
Graph complete_bipartite(NodeId a, NodeId b);

/// Balanced d-ary tree on n nodes: parent(i) = (i-1)/d.
Graph balanced_tree(NodeId n, NodeId arity);

/// Caterpillar: a spine path with `legs` leaves hanging off each spine node.
Graph caterpillar(NodeId spine, NodeId legs);

/// rows x cols grid (4-neighborhood). Planar, α <= 2.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (grid with wraparound); needs rows,cols >= 3 to stay
/// simple — smaller values degrade to a grid.
Graph torus(NodeId rows, NodeId cols);

/// Triangulated grid: grid plus one diagonal per cell. Planar, α <= 3.
Graph triangular_grid(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d nodes, degree d).
Graph hypercube(NodeId dimensions);

// ----- random families ------------------------------------------------------

/// Uniform random labeled tree via Prüfer sequence decoding (n >= 1).
Graph random_tree(NodeId n, util::Rng& rng);

/// Random recursive tree: node i attaches to a uniform node in [0, i).
Graph random_recursive_tree(NodeId n, util::Rng& rng);

/// Preferential-attachment tree: node i attaches to an existing node chosen
/// proportionally to current degree (yields high-degree hubs; still α = 1).
Graph preferential_attachment_tree(NodeId n, util::Rng& rng);

/// Erdős–Rényi G(n, p) using geometric edge skipping (O(n + m) expected).
Graph gnp(NodeId n, double p, util::Rng& rng);

/// Uniform G(n, m): m distinct edges sampled without replacement.
Graph gnm(NodeId n, std::uint64_t m, util::Rng& rng);

/// Union of k independent uniform random spanning trees on [0, n); the edge
/// set is a union of k forests, so arboricity <= k by construction.
Graph union_of_random_forests(NodeId n, NodeId k, util::Rng& rng);

/// Chung–Lu power-law random graph: node v gets weight
/// w_v = c·(v+1)^(-1/(gamma-1)) and edge {u,v} appears independently with
/// probability min(1, w_u·w_v / Σw). gamma in (2, 3] gives heavy-tailed
/// degrees with hubs — a "real-world-like" workload whose degeneracy
/// (hence arboricity) stays small while Δ grows polynomially in n.
/// `average_degree` scales the weights.
Graph chung_lu_power_law(NodeId n, double gamma, double average_degree,
                         util::Rng& rng);

/// Union of (k-1) random forests plus one star forest with `num_hubs`
/// centers: arboricity <= k by construction, but maximum degree ~ n/hubs.
/// This is the regime the paper targets — high-degree nodes in a sparse
/// (bounded-arboricity) graph — and the workload where the scale/shatter
/// machinery of Algorithm 1 actually engages.
Graph hubbed_forest_union(NodeId n, NodeId k, NodeId num_hubs,
                          util::Rng& rng);

/// Random Apollonian network: repeatedly pick a face of a planar
/// triangulation uniformly at random and insert a node adjacent to its
/// three corners. Maximal planar (m = 3n - 6 for n >= 3), 3-degenerate.
Graph random_apollonian(NodeId n, util::Rng& rng);

/// Random k-tree: (k+1)-clique seed; each new node is adjacent to a
/// uniformly chosen existing k-clique. Degeneracy exactly k (for n > k).
Graph k_tree(NodeId n, NodeId k, util::Rng& rng);

/// Random k-degenerate graph: node i attaches to min(i, k) distinct
/// uniformly chosen earlier nodes. Degeneracy <= k, arboricity <= k.
Graph k_degenerate(NodeId n, NodeId k, util::Rng& rng);

}  // namespace arbmis::graph::gen
