// Plain-text graph serialization, so experiment workloads can be saved,
// diffed, and re-loaded (and external graphs imported).
//
// Format: a header line "n m" followed by m lines "u v" (0-based ids,
// whitespace separated). Lines starting with '#' are comments and are
// skipped. Writing emits each undirected edge once with u < v.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.h"

namespace arbmis::graph {

/// Writes the header + edge list (with a comment header line).
void write_edge_list(std::ostream& out, GraphView g);

/// Parses the format above. Throws std::invalid_argument on malformed
/// input (bad header, edge count mismatch, out-of-range endpoints,
/// self-loops).
Graph read_edge_list(std::istream& in);

/// File convenience wrappers; throw std::runtime_error when the file
/// cannot be opened.
void save_graph(const std::string& path, GraphView g);
Graph load_graph(const std::string& path);

/// Graphviz DOT export (undirected). `highlight[v] != 0` fills node v —
/// handy for eyeballing MIS outputs and bad sets; pass {} for none.
void write_dot(std::ostream& out, GraphView g,
               std::span<const std::uint8_t> highlight = {});

}  // namespace arbmis::graph
