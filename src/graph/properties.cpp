#include "graph/properties.h"

#include <algorithm>
#include <queue>

namespace arbmis::graph {

NodeId Components::largest() const noexcept {
  NodeId best = 0;
  for (NodeId s : sizes) best = std::max(best, s);
  return best;
}

namespace {

Components components_impl(GraphView g, const std::uint8_t* in_set) {
  const NodeId n = g.num_nodes();
  Components out;
  out.label.assign(n, kNoComponent);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (out.label[start] != kNoComponent) continue;
    if (in_set != nullptr && in_set[start] == 0) continue;
    const NodeId comp = out.count++;
    NodeId size = 0;
    queue.clear();
    queue.push_back(start);
    out.label[start] = comp;
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      ++size;
      for (NodeId w : g.neighbors(v)) {
        if (out.label[w] != kNoComponent) continue;
        if (in_set != nullptr && in_set[w] == 0) continue;
        out.label[w] = comp;
        queue.push_back(w);
      }
    }
    out.sizes.push_back(size);
  }
  return out;
}

}  // namespace

Components connected_components(GraphView g) {
  return components_impl(g, nullptr);
}

Components induced_components(GraphView g, std::span<const std::uint8_t> in_set) {
  return components_impl(g, in_set.data());
}

std::vector<NodeId> bfs_distances(GraphView g, NodeId source) {
  std::vector<NodeId> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] != kUnreachable) continue;
      dist[w] = dist[v] + 1;
      queue.push(w);
    }
  }
  return dist;
}

bool is_forest(GraphView g) {
  const Components comps = connected_components(g);
  // A forest has exactly n - (#components) edges.
  return g.num_edges() ==
         static_cast<std::uint64_t>(g.num_nodes()) - comps.count;
}

CoreDecomposition core_decomposition(GraphView g) {
  const NodeId n = g.num_nodes();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  out.position.assign(n, 0);
  if (n == 0) return out;

  // Bucket queue keyed by current degree (Matula–Beck).
  std::vector<NodeId> deg(n);
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<NodeId> bucket_start(max_deg + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bucket_start[deg[v] + 1];
  for (NodeId d = 1; d <= max_deg + 1; ++d) bucket_start[d] += bucket_start[d - 1];
  std::vector<NodeId> sorted(n);       // nodes sorted by current degree
  std::vector<NodeId> pos(n);          // index in `sorted`
  {
    std::vector<NodeId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      sorted[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }
  // bucket_head[d] = index in `sorted` of first node with degree d.
  std::vector<NodeId> bucket_head(bucket_start.begin(),
                                  bucket_start.end() - 1);

  std::vector<bool> removed(n, false);
  NodeId degeneracy_value = 0;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId v = sorted[i];
    removed[v] = true;
    degeneracy_value = std::max(degeneracy_value, deg[v]);
    out.core[v] = degeneracy_value;
    out.position[v] = static_cast<NodeId>(out.order.size());
    out.order.push_back(v);
    for (NodeId w : g.neighbors(v)) {
      if (removed[w] || deg[w] <= deg[v]) continue;
      // Move w one bucket down: swap it with the first element of its
      // bucket, then shrink the bucket from the left.
      const NodeId dw = deg[w];
      const NodeId head_idx = bucket_head[dw];
      const NodeId head_node = sorted[head_idx];
      if (head_node != w) {
        std::swap(sorted[head_idx], sorted[pos[w]]);
        std::swap(pos[head_node], pos[w]);
      }
      ++bucket_head[dw];
      --deg[w];
    }
  }
  out.degeneracy = degeneracy_value;
  return out;
}

NodeId degeneracy(GraphView g) { return core_decomposition(g).degeneracy; }

std::uint64_t density_lower_bound(GraphView g) {
  if (g.num_nodes() < 2) return 0;
  const std::uint64_t denom = g.num_nodes() - 1;
  return (g.num_edges() + denom - 1) / denom;
}

ArboricityBounds arboricity_bounds(GraphView g) {
  return {density_lower_bound(g), degeneracy(g)};
}

NodeId eccentricity(GraphView g, NodeId source) {
  NodeId ecc = 0;
  for (NodeId d : bfs_distances(g, source)) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::optional<NodeId> diameter(GraphView g) {
  if (g.num_nodes() == 0) return std::nullopt;
  NodeId best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, eccentricity(g, v));
  }
  return best;
}

}  // namespace arbmis::graph
