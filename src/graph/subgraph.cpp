#include "graph/subgraph.h"

#include <algorithm>

namespace arbmis::graph {

namespace {

Subgraph build_from_nodes(GraphView g, std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  Subgraph out;
  out.to_original = std::move(nodes);
  out.to_local.assign(g.num_nodes(), Subgraph::kNotInSubgraph);
  for (NodeId local = 0; local < out.to_original.size(); ++local) {
    out.to_local[out.to_original[local]] = local;
  }
  Builder b(static_cast<NodeId>(out.to_original.size()));
  for (NodeId local = 0; local < out.to_original.size(); ++local) {
    const NodeId v = out.to_original[local];
    for (NodeId w : g.neighbors(v)) {
      const NodeId w_local = out.to_local[w];
      if (w_local != Subgraph::kNotInSubgraph && local < w_local) {
        b.add_edge(local, w_local);
      }
    }
  }
  out.graph = b.build();
  return out;
}

}  // namespace

Subgraph induced_subgraph(GraphView g, std::span<const std::uint8_t> mask) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mask[v]) nodes.push_back(v);
  }
  return build_from_nodes(g, std::move(nodes));
}

Subgraph induced_subgraph(GraphView g, std::span<const NodeId> nodes) {
  return build_from_nodes(g, std::vector<NodeId>(nodes.begin(), nodes.end()));
}

}  // namespace arbmis::graph
