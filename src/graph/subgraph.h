// Induced subgraphs with bidirectional node-id mappings. The finishing
// pipeline (ArbMIS Algorithm 2) runs sub-algorithms on G[Vlo], G[Vhi], and
// the bad-set components; this type carries the relabeling.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace arbmis::graph {

struct Subgraph {
  Graph graph{0};
  /// to_original[local] = node id in the parent graph.
  std::vector<NodeId> to_original;
  /// to_local[original] = local id, or kNotInSubgraph.
  std::vector<NodeId> to_local;

  static constexpr NodeId kNotInSubgraph = ~NodeId{0};

  NodeId original(NodeId local) const { return to_original[local]; }
  bool contains(NodeId original_id) const {
    return to_local[original_id] != kNotInSubgraph;
  }
};

/// Subgraph induced by the nodes with mask[v] == true.
Subgraph induced_subgraph(GraphView g, std::span<const std::uint8_t> mask);

/// Subgraph induced by an explicit node list (need not be sorted; must not
/// contain duplicates).
Subgraph induced_subgraph(GraphView g, std::span<const NodeId> nodes);

}  // namespace arbmis::graph
