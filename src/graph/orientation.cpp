#include "graph/orientation.h"

#include <algorithm>
#include <map>

#include "graph/properties.h"

namespace arbmis::graph {

Orientation::Orientation(GraphView g,
                         std::vector<std::vector<NodeId>> parents)
    : parents_(std::move(parents)), children_(g.num_nodes()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_out_degree_ =
        std::max(max_out_degree_, static_cast<NodeId>(parents_[v].size()));
    for (NodeId p : parents_[v]) children_[p].push_back(v);
  }
  for (auto& kids : children_) std::sort(kids.begin(), kids.end());
}

bool Orientation::is_acyclic() const {
  // Kahn's algorithm over the child->parent digraph.
  const NodeId n = num_nodes();
  std::vector<NodeId> in_degree(n, 0);  // number of children pointing at v
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId p : parents_[v]) ++in_degree[p];
  }
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) stack.push_back(v);
  }
  NodeId seen = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++seen;
    for (NodeId p : parents_[v]) {
      if (--in_degree[p] == 0) stack.push_back(p);
    }
  }
  return seen == n;
}

Orientation degeneracy_orientation(GraphView g) {
  const CoreDecomposition cores = core_decomposition(g);
  std::vector<std::vector<NodeId>> parents(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      if (cores.position[v] < cores.position[w]) parents[v].push_back(w);
    }
  }
  return Orientation(g, std::move(parents));
}

Orientation id_orientation(GraphView g) {
  std::vector<std::vector<NodeId>> parents(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      if (w > v) parents[v].push_back(w);
    }
  }
  return Orientation(g, std::move(parents));
}

std::uint64_t ForestPartition::num_edges() const noexcept {
  std::uint64_t total = 0;
  for (const auto& forest : forest_parent) {
    for (NodeId p : forest) {
      if (p != kNoParent) ++total;
    }
  }
  return total;
}

ForestPartition forests_from_orientation(GraphView g,
                                         const Orientation& orientation) {
  ForestPartition out;
  out.forest_parent.assign(orientation.max_out_degree(),
                           std::vector<NodeId>(g.num_nodes(), kNoParent));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto parents = orientation.parents(v);
    for (std::size_t i = 0; i < parents.size(); ++i) {
      out.forest_parent[i][v] = parents[i];
    }
  }
  return out;
}

bool valid_forest_partition(GraphView g, const ForestPartition& partition) {
  const NodeId n = g.num_nodes();
  // Every (v, parent) pair must be a real edge, and each edge must be
  // covered exactly once.
  std::map<Edge, int> coverage;
  for (const auto& forest : partition.forest_parent) {
    if (forest.size() != n) return false;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId p = forest[v];
      if (p == kNoParent) continue;
      if (p >= n || !g.has_edge(v, p)) return false;
      ++coverage[{std::min(v, p), std::max(v, p)}];
    }
  }
  if (coverage.size() != g.num_edges()) return false;
  for (const auto& [edge, count] : coverage) {
    if (count != 1) return false;
  }
  // Each forest must be acyclic: follow parent pointers with cycle marking.
  for (const auto& forest : partition.forest_parent) {
    // 0 = unvisited, 1 = on current path, 2 = done
    std::vector<unsigned char> state(n, 0);
    for (NodeId start = 0; start < n; ++start) {
      if (state[start] != 0) continue;
      std::vector<NodeId> chain;
      NodeId v = start;
      while (v != kNoParent && state[v] == 0) {
        state[v] = 1;
        chain.push_back(v);
        v = forest[v];
      }
      if (v != kNoParent && state[v] == 1) return false;  // cycle
      for (NodeId u : chain) state[u] = 2;
    }
  }
  return true;
}

}  // namespace arbmis::graph
