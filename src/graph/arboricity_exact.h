// Exact arboricity via matroid union (Roskind–Tarjan style augmenting
// sequences).
//
// The paper's parameter α is the arboricity — the minimum number of
// forests covering the edge set (Nash-Williams:
// α = max_H ceil(m_H / (n_H - 1))). properties.h gives the cheap sandwich
// (density, degeneracy) and orientation_opt.h tightens it to
// [p, p+1]; this module decides the remaining bit exactly, and produces a
// certifying partition into α forests.
//
// Algorithm: insert edges one at a time into k forests; when an edge fits
// nowhere directly, search (BFS) for an augmenting sequence of edge
// displacements — place e into forest i, kicking some edge f off the
// created cycle into another forest, and so on. Matroid union theory
// guarantees the search is complete: if no augmenting sequence exists,
// the current edge set is not partitionable into k forests at all.
//
// Complexity is polynomial but not tuned (O(m·k·m·n) worst case) — this
// is a validation oracle for tests and workload certification on graphs
// up to a few thousand edges, not a big-data routine.
#pragma once

#include <optional>

#include "graph/graph.h"
#include "graph/orientation.h"

namespace arbmis::graph {

/// Partitions g's edges into at most k forests, or nullopt if impossible
/// (i.e. k < arboricity(g)).
std::optional<ForestPartition> partition_into_forests(GraphView g,
                                                      NodeId k);

/// Exact arboricity (0 for edgeless graphs).
NodeId exact_arboricity(GraphView g);

/// Exact arboricity together with a certifying partition.
struct ArboricityCertificate {
  NodeId arboricity = 0;
  ForestPartition forests;
};

ArboricityCertificate exact_arboricity_certified(GraphView g);

}  // namespace arbmis::graph
