#include "graph/graph.h"

#include <algorithm>

#include "util/rng.h"

namespace arbmis::graph {

Graph::Graph(NodeId n) : num_nodes_(n), offsets_(n + 1, 0) {}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  return GraphView(*this).has_edge(u, v);
}

NodeId Graph::port_of(NodeId v, NodeId w) const {
  return GraphView(*this).port_of(v, w);
}

std::vector<Edge> Graph::edges() const { return GraphView(*this).edges(); }

bool GraphView::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

NodeId GraphView::port_of(NodeId v, NodeId w) const {
  const auto nbrs = neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
  if (it == nbrs.end() || *it != w) {
    throw std::invalid_argument("port_of: nodes are not adjacent");
  }
  return static_cast<NodeId>(it - nbrs.begin());
}

std::vector<Edge> GraphView::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

Builder::Builder(NodeId n) : num_nodes_(n) {}

Builder& Builder::add_edge(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::invalid_argument("add_edge: endpoint out of range");
  }
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  return *this;
}

bool Builder::has_edge(NodeId u, NodeId v) const noexcept {
  if (u > v) std::swap(u, v);
  const Edge e{u, v};
  return std::find(edges_.begin(), edges_.end(), e) != edges_.end();
}

Graph Builder::build() const {
  std::vector<Edge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Graph g(num_nodes_);
  std::vector<std::uint64_t> deg(num_nodes_ + 1, 0);
  for (const Edge& e : sorted) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg[v];
    g.max_degree_ = std::max<NodeId>(g.max_degree_, static_cast<NodeId>(deg[v]));
  }
  g.adjacency_.resize(sorted.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : sorted) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
  }
  return g;
}

Graph from_edges(NodeId n, std::span<const Edge> edges) {
  Builder b(n);
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

std::uint64_t content_hash(GraphView g) {
  // Chain over (n, deg(0), adj(0)..., deg(1), adj(1)...). Degrees are
  // included so the hash distinguishes graphs whose concatenated adjacency
  // arrays coincide but whose offsets differ.
  std::uint64_t h = util::mix64(0x41524247u /*"ARBG"*/, g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    h = util::mix64(h, g.degree(u));
    for (const NodeId v : g.neighbors(u)) h = util::mix64(h, v);
  }
  return h;
}

}  // namespace arbmis::graph
