// On-disk binary CSR graph format (".gr"), version 1.
//
// The format is the out-of-core twin of graph::Graph: the same offsets +
// adjacency arrays, laid out so an mmap of the file IS a valid GraphView
// with zero parsing — load time is one header validation, not an O(m)
// rebuild. docs/STORAGE.md is the full specification; the byte layout:
//
//   offset  size        field
//   ------  ----------  --------------------------------------------------
//   0       8           magic "ARBMISGR"
//   8       4           version (u32, little-endian) = 1
//   12      4           flags (u32): bit 0 = degree-ordered renumbering,
//                                    bit 1 = permutation section present
//   16      8           n (u64)  number of nodes
//   24      8           m (u64)  number of undirected edges
//   32      8           max_degree (u64)
//   40      8           reserved (u64, must be 0)
//   48      (n+1)*8     offsets (u64 each): offsets[0] = 0, offsets[n] = 2m
//   ...     2m*4        adjacency (u32 node ids, sorted within each node)
//   [...    n*4         new->original id permutation, iff flags bit 1]
//
// Every multi-byte field is little-endian and naturally aligned (the
// header is 48 bytes, so the u64 offsets start 8-aligned and everything
// after stays 4-aligned) — the two properties that make the mmap view
// legal. The file size is exactly determined by the header; a shorter or
// longer file is rejected as corrupt.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace arbmis::graph::storage {

/// "ARBMISGR" — eight bytes, no terminator on disk.
inline constexpr std::array<char, 8> kGrMagic = {'A', 'R', 'B', 'M',
                                                 'I', 'S', 'G', 'R'};
inline constexpr std::uint32_t kGrVersion = 1;
inline constexpr std::size_t kGrHeaderBytes = 48;

/// Header flag bits (kGrFlagKnownMask rejects files from the future).
inline constexpr std::uint32_t kGrFlagDegreeOrdered = 1u << 0;
inline constexpr std::uint32_t kGrFlagHasPermutation = 1u << 1;
inline constexpr std::uint32_t kGrFlagKnownMask =
    kGrFlagDegreeOrdered | kGrFlagHasPermutation;

struct GrHeader {
  std::uint32_t version = kGrVersion;
  std::uint32_t flags = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t max_degree = 0;

  bool degree_ordered() const noexcept {
    return (flags & kGrFlagDegreeOrdered) != 0;
  }
  bool has_permutation() const noexcept {
    return (flags & kGrFlagHasPermutation) != 0;
  }

  /// Exact file size this header mandates (header + offsets + adjacency
  /// [+ permutation]).
  std::uint64_t expected_file_bytes() const noexcept;
};

/// Serializes `header` into a kGrHeaderBytes buffer (explicit little-endian
/// byte order, independent of the host).
std::array<unsigned char, kGrHeaderBytes> encode_gr_header(
    const GrHeader& header);

/// Parses and validates the fixed-size header. Throws std::runtime_error
/// with a "gr:"-prefixed message on wrong magic, unsupported version,
/// unknown flags, nonzero reserved word, or an n/m/max_degree combination
/// that cannot be a valid CSR graph (n or ids beyond the 32-bit NodeId
/// space, max_degree > n, permutation flag inconsistencies).
/// `bytes` must point at kGrHeaderBytes bytes; `source` names the file in
/// error messages.
GrHeader decode_gr_header(const unsigned char* bytes,
                          const std::string& source);

}  // namespace arbmis::graph::storage
