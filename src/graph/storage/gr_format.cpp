#include "graph/storage/gr_format.h"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace arbmis::graph::storage {

namespace {

void put_u32(unsigned char* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffu);
  }
}

void put_u64(unsigned char* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffu);
  }
}

std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

[[noreturn]] void fail(const std::string& source, const std::string& what) {
  throw std::runtime_error("gr: " + source + ": " + what);
}

}  // namespace

std::uint64_t GrHeader::expected_file_bytes() const noexcept {
  std::uint64_t bytes = kGrHeaderBytes;
  bytes += (num_nodes + 1) * sizeof(std::uint64_t);  // offsets
  bytes += 2 * num_edges * sizeof(NodeId);           // adjacency
  if (has_permutation()) bytes += num_nodes * sizeof(NodeId);
  return bytes;
}

std::array<unsigned char, kGrHeaderBytes> encode_gr_header(
    const GrHeader& header) {
  std::array<unsigned char, kGrHeaderBytes> out{};
  std::memcpy(out.data(), kGrMagic.data(), kGrMagic.size());
  put_u32(out.data() + 8, header.version);
  put_u32(out.data() + 12, header.flags);
  put_u64(out.data() + 16, header.num_nodes);
  put_u64(out.data() + 24, header.num_edges);
  put_u64(out.data() + 32, header.max_degree);
  put_u64(out.data() + 40, 0);  // reserved
  return out;
}

GrHeader decode_gr_header(const unsigned char* bytes,
                          const std::string& source) {
  if (std::memcmp(bytes, kGrMagic.data(), kGrMagic.size()) != 0) {
    fail(source, "wrong magic (not an arbmis .gr file)");
  }
  GrHeader header;
  header.version = get_u32(bytes + 8);
  header.flags = get_u32(bytes + 12);
  header.num_nodes = get_u64(bytes + 16);
  header.num_edges = get_u64(bytes + 24);
  header.max_degree = get_u64(bytes + 32);
  const std::uint64_t reserved = get_u64(bytes + 40);

  if (header.version != kGrVersion) {
    fail(source, "unsupported version " + std::to_string(header.version) +
                     " (this build reads version " +
                     std::to_string(kGrVersion) + ")");
  }
  if ((header.flags & ~kGrFlagKnownMask) != 0) {
    fail(source, "unknown flag bits 0x" + std::to_string(header.flags) +
                     " (file written by a newer tool?)");
  }
  if (reserved != 0) {
    fail(source, "nonzero reserved header word");
  }
  constexpr std::uint64_t kMaxNodes = std::numeric_limits<NodeId>::max();
  if (header.num_nodes > kMaxNodes) {
    fail(source, "node count " + std::to_string(header.num_nodes) +
                     " exceeds the 32-bit NodeId space");
  }
  // 2m adjacency entries must be indexable and every endpoint must name a
  // valid node; an edge needs two distinct endpoints, so m is bounded by
  // n*(n-1)/2 — but the cheap necessary conditions below are what a
  // hostile header can violate without reading the arrays.
  if (header.num_edges > kMaxNodes * (kMaxNodes / 2)) {
    fail(source, "edge count " + std::to_string(header.num_edges) +
                     " is not representable");
  }
  if (header.num_nodes == 0 && header.num_edges != 0) {
    fail(source, "edges without nodes");
  }
  if (header.max_degree > (header.num_nodes == 0 ? 0 : header.num_nodes - 1)) {
    fail(source, "max_degree " + std::to_string(header.max_degree) +
                     " exceeds n-1");
  }
  if (header.degree_ordered() && !header.has_permutation()) {
    fail(source,
         "degree-ordered flag without a permutation section (original ids "
         "would be unrecoverable)");
  }
  return header;
}

}  // namespace arbmis::graph::storage
