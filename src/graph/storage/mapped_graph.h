// Read-only, out-of-core graph storage: MappedGraph opens a binary .gr
// file (gr_format.h) and exposes it through the same graph::GraphView seam
// the in-memory Graph converts to — so the simulator, the algorithms, the
// fault planner, and the verifier run off either storage unmodified, and
// byte-identically (tests/test_parallel_equivalence.cpp MappedEquivalence
// and the mapped golden pins in tests/test_determinism.cpp are the proof).
//
// Backends:
//   * mmap (the default where available): the offsets/adjacency arrays are
//     the page cache's copy of the file — opening a 10^8-edge graph costs
//     one header validation, memory use is whatever the kernel keeps
//     resident, and madvise(MADV_SEQUENTIAL) tells it the CSR sweep access
//     pattern the round loop produces.
//   * buffered (the fallback, and forceable via GrMapMode::kBuffered): the
//     whole file is read into one heap allocation. Used when mmap is
//     unavailable (non-POSIX host, mmap() failure on an exotic
//     filesystem) — behavior is identical, only residency differs.
//
// Validation: the header and exact file size are always checked (a
// truncated or padded file never constructs). GrMapOptions::verify_structure
// (default on) additionally proves the CSR arrays well-formed — monotone
// offsets, sorted in-range neighbor lists, no self-loops, symmetric
// adjacency, honest max_degree — one O(m log Δ) pass, so a corrupt body
// fails at open() instead of as an out-of-bounds read mid-simulation.
// Out-of-core sweeps that trust the producer can turn it off; the view
// itself stays bounds-checked at the file level either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/storage/gr_format.h"

namespace arbmis::graph::storage {

enum class GrMapMode : std::uint8_t {
  kAuto,      ///< mmap where available, buffered reads otherwise
  kMmap,      ///< require mmap; open() throws if it is unavailable
  kBuffered,  ///< force the buffered-read fallback
};

struct GrMapOptions {
  GrMapMode mode = GrMapMode::kAuto;
  /// Full structural verification of the CSR arrays at open() (see the
  /// header comment). Always performed on top of the mandatory header and
  /// file-size checks.
  bool verify_structure = true;
};

class MappedGraph {
 public:
  /// Opens and validates `path`. Throws std::runtime_error ("gr:"-prefixed)
  /// on any open, size, header, or structural failure.
  static MappedGraph open(const std::string& path, GrMapOptions options = {});

  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph();

  /// The storage seam: a MappedGraph is usable anywhere a Graph is.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design — this conversion is the storage seam
  operator GraphView() const noexcept { return view(); }
  GraphView view() const noexcept {
    return {static_cast<NodeId>(header_.num_nodes),
            static_cast<NodeId>(header_.max_degree), offsets_, adjacency_};
  }

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(header_.num_nodes);
  }
  std::uint64_t num_edges() const noexcept { return header_.num_edges; }
  NodeId max_degree() const noexcept {
    return static_cast<NodeId>(header_.max_degree);
  }
  const GrHeader& header() const noexcept { return header_; }

  /// True when the bytes behind view() are an mmap of the file (false =
  /// buffered-read fallback).
  bool mmap_backed() const noexcept { return map_base_ != nullptr; }

  /// True when the file's vertex numbering is degree-ordered (header flag).
  bool degree_ordered() const noexcept { return header_.degree_ordered(); }

  /// new->original id permutation saved by the converter; empty when the
  /// file carries none (numbering == original numbering). Entry v is the
  /// id node v had in the source edge list — map MIS outputs through it.
  std::span<const NodeId> permutation() const noexcept {
    return header_.has_permutation()
               ? std::span<const NodeId>(permutation_, header_.num_nodes)
               : std::span<const NodeId>();
  }

 private:
  MappedGraph() = default;

  void reset() noexcept;  ///< unmap / free, return to empty state

  GrHeader header_{};
  // Exactly one of (map_base_, buffer_) owns the bytes; data_ points into
  // whichever it is.
  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::vector<unsigned char> buffer_;
  const std::uint64_t* offsets_ = nullptr;
  const NodeId* adjacency_ = nullptr;
  const NodeId* permutation_ = nullptr;
};

}  // namespace arbmis::graph::storage
