// Edge-list-to-.gr conversion (the library behind tools/gr_convert.cpp).
//
// Input is tools-grade edge-list text — SNAP dumps, experiment exports,
// hand-written graphs: one "u v" pair per line, '#' or '%' comment lines,
// blank lines, CRLF endings, arbitrary (sparse, out-of-order) vertex ids up
// to 2^32 - 1. The converter compacts the ids that actually appear to a
// dense 0..n-1 numbering, drops self-loops, deduplicates repeated edges,
// and (optionally) renumbers vertices in degree order. Anything else — a
// third token on a line, a non-numeric token, an id that does not fit in
// 32 bits — is a hard error, never a silently dropped edge: the stats
// struct accounts for every input line, and tests/test_fuzz.cpp holds the
// converter to that accounting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/graph.h"

namespace arbmis::graph::storage {

struct ConvertOptions {
  /// Renumber vertices by descending degree (ties by ascending compacted
  /// id). The output file gets the degree-ordered flag and a permutation
  /// section mapping new ids back to ORIGINAL input-text ids.
  bool degree_order = false;
};

/// Per-conversion accounting: every input line lands in exactly one bucket
/// (comment/blank, kept edge, dropped self-loop, dropped duplicate) or the
/// conversion throws.
struct ConvertStats {
  std::uint64_t lines_total = 0;       ///< all lines read, including the last unterminated one
  std::uint64_t lines_comment = 0;     ///< '#'/'%' comments and blank lines
  std::uint64_t edges_input = 0;       ///< well-formed "u v" lines
  std::uint64_t self_loops_dropped = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t edges_kept = 0;        ///< edges in the output graph (m)
};

struct ConvertResult {
  Graph graph;  ///< compacted (and possibly degree-ordered) graph
  /// new_to_old[v] = the id node v carried in the INPUT TEXT (not an
  /// intermediate compacted id). Empty iff the mapping is the identity —
  /// the input already used dense 0..n-1 ids and no reordering happened —
  /// in which case no permutation section belongs in the file.
  std::vector<NodeId> new_to_old;
  bool degree_ordered = false;
  ConvertStats stats;
};

/// Parses edge-list text from `in` (see the header comment for the accepted
/// grammar). Throws std::invalid_argument naming the 1-based line number on
/// any malformed line; malformed input is never partially converted.
ConvertResult convert_edge_list(std::istream& in,
                                const ConvertOptions& options = {});

}  // namespace arbmis::graph::storage
