#include "graph/storage/convert.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace arbmis::graph::storage {

namespace {

[[noreturn]] void fail_line(std::uint64_t line_no, const std::string& what) {
  throw std::invalid_argument("gr_convert: line " + std::to_string(line_no) +
                              ": " + what);
}

constexpr std::string_view kSpace = " \t";

/// Strict decimal parse of one token; the whole token must be consumed.
std::uint64_t parse_id(std::string_view token, std::uint64_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    fail_line(line_no, "vertex id '" + std::string(token) + "' overflows");
  }
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail_line(line_no, "malformed vertex id '" + std::string(token) + "'");
  }
  if (value > std::uint64_t{0xffffffffu}) {
    fail_line(line_no, "vertex id " + std::to_string(value) +
                           " does not fit in 32 bits");
  }
  return value;
}

}  // namespace

ConvertResult convert_edge_list(std::istream& in,
                                const ConvertOptions& options) {
  ConvertResult result;
  ConvertStats& stats = result.stats;

  // Pass 1: parse every line into (a) the multiset of endpoint ids that
  // appeared (self-loops included — a vertex mentioned only by a dropped
  // self-loop is still a vertex) and (b) the raw edge pairs.
  std::vector<NodeId> ids;
  std::vector<std::pair<NodeId, NodeId>> raw_edges;
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines_total;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input

    const auto first = line.find_first_not_of(kSpace);
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      ++stats.lines_comment;
      continue;
    }

    // Exactly two whitespace-separated tokens; anything else fails loudly
    // rather than guessing which pair was meant.
    std::string_view rest = std::string_view(line).substr(first);
    std::string_view tokens[2];
    for (auto& token : tokens) {
      if (rest.empty()) {
        fail_line(stats.lines_total,
                  "expected 'u v', got only " +
                      std::to_string(&token - &tokens[0]) + " token(s)");
      }
      const auto end = rest.find_first_of(kSpace);
      token = rest.substr(0, end);
      rest = end == std::string_view::npos ? std::string_view{}
                                           : rest.substr(end);
      const auto next = rest.find_first_not_of(kSpace);
      rest = next == std::string_view::npos ? std::string_view{}
                                            : rest.substr(next);
    }
    if (!rest.empty()) {
      fail_line(stats.lines_total,
                "trailing token '" + std::string(rest.substr(0, 32)) +
                    "' after 'u v'");
    }

    const auto u =
        static_cast<NodeId>(parse_id(tokens[0], stats.lines_total));
    const auto v =
        static_cast<NodeId>(parse_id(tokens[1], stats.lines_total));
    ++stats.edges_input;
    ids.push_back(u);
    ids.push_back(v);
    if (u == v) {
      ++stats.self_loops_dropped;
      continue;
    }
    raw_edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  if (in.bad()) {
    throw std::invalid_argument("gr_convert: read error on input stream");
  }

  // Compact the ids that appeared to dense 0..n-1. Sorted-vector +
  // lower_bound keeps the mapping deterministic (DET004: no unordered
  // containers in semantic code).
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const auto n = static_cast<NodeId>(ids.size());
  const auto compact = [&ids](NodeId original) {
    return static_cast<NodeId>(
        std::lower_bound(ids.begin(), ids.end(), original) - ids.begin());
  };

  for (auto& [u, v] : raw_edges) {
    u = compact(u);
    v = compact(v);
  }
  std::sort(raw_edges.begin(), raw_edges.end());
  raw_edges.erase(std::unique(raw_edges.begin(), raw_edges.end()),
                  raw_edges.end());
  stats.edges_kept = raw_edges.size();
  stats.duplicates_dropped =
      stats.edges_input - stats.self_loops_dropped - stats.edges_kept;

  // Optional degree-ordered renumbering: descending degree, ties by
  // ascending compacted id — the order the out-of-core round loop wants
  // high-traffic vertices in.
  std::vector<NodeId> order;  // order[new_id] = compacted id
  if (options.degree_order) {
    std::vector<NodeId> degree(n, 0);
    for (const auto& [u, v] : raw_edges) {
      ++degree[u];
      ++degree[v];
    }
    order.resize(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(),
                     [&degree](NodeId a, NodeId b) {
                       return degree[a] != degree[b] ? degree[a] > degree[b]
                                                     : a < b;
                     });
    std::vector<NodeId> new_id(n, 0);  // compacted id -> new id
    for (NodeId v = 0; v < n; ++v) new_id[order[v]] = v;
    for (auto& [u, v] : raw_edges) {
      u = new_id[u];
      v = new_id[v];
      if (u > v) std::swap(u, v);
    }
    result.degree_ordered = true;
  }

  // new_to_old maps through to the ORIGINAL input-text ids; elide it only
  // when it is the identity (dense input, no reordering) — then the file
  // needs no permutation section.
  result.new_to_old.resize(n);
  bool identity = true;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId compacted = options.degree_order ? order[v] : v;
    result.new_to_old[v] = ids[compacted];
    identity = identity && result.new_to_old[v] == v;
  }
  if (identity && !options.degree_order) result.new_to_old.clear();

  Builder builder(n);
  for (const auto& [u, v] : raw_edges) builder.add_edge(u, v);
  result.graph = builder.build();
  return result;
}

}  // namespace arbmis::graph::storage
