#include "graph/storage/gr_writer.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace arbmis::graph::storage {

namespace {

/// Buffered little-endian emitter: batches small writes into one IO buffer
/// so the n+1 offset words do not become n+1 ofstream calls.
class LeWriter {
 public:
  LeWriter(std::ofstream& out, const std::string& path)
      : out_(out), path_(path) {
    buffer_.reserve(kBufferBytes);
  }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      byte(static_cast<unsigned char>((value >> (8 * i)) & 0xffu));
    }
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>((value >> (8 * i)) & 0xffu));
    }
  }

  void raw(const void* data, std::size_t bytes) {
    flush();
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    check();
  }

  void flush() {
    if (buffer_.empty()) return;
    out_.write(reinterpret_cast<const char*>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    check();
  }

 private:
  static constexpr std::size_t kBufferBytes = 1u << 20;

  void byte(unsigned char b) {
    buffer_.push_back(b);
    if (buffer_.size() >= kBufferBytes) flush();
  }

  void check() {
    if (!out_) {
      throw std::runtime_error("gr: " + path_ + ": write failed");
    }
  }

  std::ofstream& out_;
  const std::string& path_;
  std::vector<unsigned char> buffer_;
};

}  // namespace

void write_gr(const std::string& path, GraphView g,
              const GrWriteOptions& options) {
  const NodeId n = g.num_nodes();
  if (!options.new_to_old.empty() && options.new_to_old.size() != n) {
    throw std::runtime_error(
        "gr: " + path + ": new_to_old has " +
        std::to_string(options.new_to_old.size()) + " entries for " +
        std::to_string(n) + " nodes");
  }
  if (options.degree_ordered && options.new_to_old.empty()) {
    throw std::runtime_error(
        "gr: " + path +
        ": degree_ordered requires the new_to_old permutation");
  }

  GrHeader header;
  header.num_nodes = n;
  header.num_edges = g.num_edges();
  header.max_degree = g.max_degree();
  if (options.degree_ordered) header.flags |= kGrFlagDegreeOrdered;
  if (!options.new_to_old.empty()) header.flags |= kGrFlagHasPermutation;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("gr: cannot open " + path + " for writing");
  }
  LeWriter writer(out, path);

  const auto header_bytes = encode_gr_header(header);
  writer.raw(header_bytes.data(), header_bytes.size());

  // Offsets: running prefix over the degrees.
  std::uint64_t offset = 0;
  writer.u64(offset);
  for (NodeId v = 0; v < n; ++v) {
    offset += g.degree(v);
    writer.u64(offset);
  }
  writer.flush();

  // Adjacency: the host is little-endian on every supported target, so the
  // per-node neighbor spans can be streamed as raw bytes; the element-wise
  // fallback keeps big-endian hosts correct.
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.empty()) continue;
    if constexpr (std::endian::native == std::endian::little) {
      writer.raw(nbrs.data(), nbrs.size_bytes());
    } else {
      for (const NodeId w : nbrs) writer.u32(w);
    }
  }
  writer.flush();

  if (!options.new_to_old.empty()) {
    if constexpr (std::endian::native == std::endian::little) {
      writer.raw(options.new_to_old.data(), options.new_to_old.size_bytes());
    } else {
      for (const NodeId original : options.new_to_old) writer.u32(original);
    }
  }
  writer.flush();
  out.close();
  if (!out) {
    throw std::runtime_error("gr: " + path + ": close failed");
  }
}

}  // namespace arbmis::graph::storage
