#include "graph/storage/mapped_graph.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ARBMIS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ARBMIS_HAVE_MMAP 0
#endif

namespace arbmis::graph::storage {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("gr: " + path + ": " + what);
}

/// Mandatory cheap checks beyond the header: the file must be exactly the
/// size the header mandates (catches truncation AND trailing garbage).
void check_file_size(const std::string& path, const GrHeader& header,
                     std::uint64_t actual_bytes) {
  const std::uint64_t expected = header.expected_file_bytes();
  if (actual_bytes < expected) {
    fail(path, "truncated: header mandates " + std::to_string(expected) +
                   " bytes, file has " + std::to_string(actual_bytes));
  }
  if (actual_bytes > expected) {
    fail(path, std::to_string(actual_bytes - expected) +
                   " trailing bytes beyond the " + std::to_string(expected) +
                   " the header mandates");
  }
}

/// O(m log Δ) structural proof of the CSR arrays (GrMapOptions::
/// verify_structure): monotone offsets bracketed by [0, 2m], strictly
/// sorted in-range neighbor lists (sorted ⇒ no duplicate edge; strict ⇒
/// no self-loop via the in-list id check), symmetric adjacency, and an
/// honest max_degree — everything GraphView consumers assume.
void verify_structure(const std::string& path, const GrHeader& header,
                      const std::uint64_t* offsets, const NodeId* adjacency) {
  const auto n = static_cast<NodeId>(header.num_nodes);
  const std::uint64_t two_m = 2 * header.num_edges;
  if (offsets[0] != 0) fail(path, "offsets[0] != 0");
  if (offsets[n] != two_m) {
    fail(path, "offsets[n] = " + std::to_string(offsets[n]) +
                   " does not equal 2m = " + std::to_string(two_m));
  }
  std::uint64_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t begin = offsets[v];
    const std::uint64_t end = offsets[v + 1];
    if (end < begin || end > two_m) {
      fail(path, "offsets not monotone at node " + std::to_string(v));
    }
    max_degree = std::max(max_degree, end - begin);
    NodeId prev = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      const NodeId w = adjacency[i];
      if (w >= n) {
        fail(path, "neighbor " + std::to_string(w) + " of node " +
                       std::to_string(v) + " is out of range (n = " +
                       std::to_string(n) + ")");
      }
      if (w == v) {
        fail(path, "self-loop at node " + std::to_string(v));
      }
      if (i > begin && w <= prev) {
        fail(path, "neighbor list of node " + std::to_string(v) +
                       " is not strictly sorted");
      }
      prev = w;
    }
  }
  if (max_degree != header.max_degree) {
    fail(path, "header max_degree " + std::to_string(header.max_degree) +
                   " does not match actual " + std::to_string(max_degree));
  }
  // Symmetry: every (v, w) must have its (w, v) mirror. Binary search in
  // w's (already proven sorted) list.
  const GraphView view(n, static_cast<NodeId>(header.max_degree), offsets,
                       adjacency);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : view.neighbors(v)) {
      if (w > v) break;  // each unordered pair checked once, from the v > w side
      const auto mirror = view.neighbors(w);
      if (!std::binary_search(mirror.begin(), mirror.end(), v)) {
        fail(path, "asymmetric adjacency: " + std::to_string(w) + " -> " +
                       std::to_string(v) + " has no mirror");
      }
    }
  }
}

}  // namespace

MappedGraph MappedGraph::open(const std::string& path, GrMapOptions options) {
  if constexpr (std::endian::native != std::endian::little) {
    fail(path,
         "the mmap loader requires a little-endian host (the on-disk "
         "arrays are reinterpreted in place)");
  }
  MappedGraph g;

#if ARBMIS_HAVE_MMAP
  const bool try_mmap = options.mode != GrMapMode::kBuffered;
#else
  const bool try_mmap = false;
  if (options.mode == GrMapMode::kMmap) {
    fail(path, "mmap requested but unavailable on this platform");
  }
#endif

  const unsigned char* data = nullptr;
  std::uint64_t size = 0;

#if ARBMIS_HAVE_MMAP
  if (try_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg): two-argument O_RDONLY open, no vararg mode
    if (fd < 0) {
      fail(path, "cannot open: " + std::string(std::strerror(errno)));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      fail(path, "fstat failed: " + err);
    }
    const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
    if (file_bytes < kGrHeaderBytes) {
      ::close(fd);
      fail(path, "truncated: " + std::to_string(file_bytes) +
                     " bytes is smaller than the " +
                     std::to_string(kGrHeaderBytes) + "-byte header");
    }
    void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    // The fd is not needed once the mapping exists (or failed).
    ::close(fd);
    if (base == MAP_FAILED) {
      if (options.mode == GrMapMode::kMmap) {
        fail(path, "mmap failed: " + std::string(std::strerror(errno)));
      }
      // kAuto: fall through to the buffered path below.
    } else {
      // Streaming access pattern hint; advisory, so failure is ignored.
      ::madvise(base, file_bytes, MADV_SEQUENTIAL);
      g.map_base_ = base;
      g.map_length_ = file_bytes;
      data = static_cast<const unsigned char*>(base);
      size = file_bytes;
    }
  }
#endif

  if (data == nullptr) {
    // Buffered fallback: one sequential read of the whole file.
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(path, "cannot open");
    in.seekg(0, std::ios::end);
    const std::streamoff end = in.tellg();
    if (end < 0) fail(path, "cannot determine file size");
    in.seekg(0, std::ios::beg);
    const auto file_bytes = static_cast<std::uint64_t>(end);
    if (file_bytes < kGrHeaderBytes) {
      fail(path, "truncated: " + std::to_string(file_bytes) +
                     " bytes is smaller than the " +
                     std::to_string(kGrHeaderBytes) + "-byte header");
    }
    g.buffer_.resize(file_bytes);
    in.read(reinterpret_cast<char*>(g.buffer_.data()),
            static_cast<std::streamsize>(file_bytes));
    if (!in || static_cast<std::uint64_t>(in.gcount()) != file_bytes) {
      fail(path, "short read");
    }
    data = g.buffer_.data();
    size = file_bytes;
  }

  try {
    g.header_ = decode_gr_header(data, path);
    check_file_size(path, g.header_, size);
  } catch (...) {
    g.reset();
    throw;
  }

  // The header is 48 bytes and mmap regions are page-aligned, so the u64
  // offsets array starts 8-aligned and the u32 arrays after it 4-aligned;
  // the buffered path inherits the vector allocation's alignment, which
  // is at least alignof(std::max_align_t).
  const unsigned char* cursor = data + kGrHeaderBytes;
  g.offsets_ = reinterpret_cast<const std::uint64_t*>(cursor);
  cursor += (g.header_.num_nodes + 1) * sizeof(std::uint64_t);
  g.adjacency_ = reinterpret_cast<const NodeId*>(cursor);
  cursor += 2 * g.header_.num_edges * sizeof(NodeId);
  g.permutation_ = g.header_.has_permutation()
                       ? reinterpret_cast<const NodeId*>(cursor)
                       : nullptr;

  if (options.verify_structure) {
    try {
      verify_structure(path, g.header_, g.offsets_, g.adjacency_);
      // The permutation must be a bijection onto original ids only when the
      // numbering is dense; converter-written files may map to sparse
      // original ids, so only the cheap width check applies here.
    } catch (...) {
      g.reset();
      throw;
    }
  }
  return g;
}

void MappedGraph::reset() noexcept {
#if ARBMIS_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_length_);
  }
#endif
  map_base_ = nullptr;
  map_length_ = 0;
  buffer_.clear();
  buffer_.shrink_to_fit();
  offsets_ = nullptr;
  adjacency_ = nullptr;
  permutation_ = nullptr;
  header_ = GrHeader{};
}

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : header_(other.header_),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_length_(std::exchange(other.map_length_, 0)),
      buffer_(std::move(other.buffer_)),
      offsets_(std::exchange(other.offsets_, nullptr)),
      adjacency_(std::exchange(other.adjacency_, nullptr)),
      permutation_(std::exchange(other.permutation_, nullptr)) {
  other.header_ = GrHeader{};
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_length_ = std::exchange(other.map_length_, 0);
    buffer_ = std::move(other.buffer_);
    offsets_ = std::exchange(other.offsets_, nullptr);
    adjacency_ = std::exchange(other.adjacency_, nullptr);
    permutation_ = std::exchange(other.permutation_, nullptr);
    other.header_ = GrHeader{};
  }
  return *this;
}

MappedGraph::~MappedGraph() { reset(); }

}  // namespace arbmis::graph::storage
