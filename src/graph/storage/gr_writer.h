// Streaming writer for the binary .gr CSR format (gr_format.h).
//
// The writer takes any GraphView — an in-memory Graph, or a MappedGraph
// being re-written — and emits the file in one sequential pass with O(1)
// extra memory beyond a fixed IO buffer: offsets are accumulated from the
// per-node degrees while streaming, adjacency is copied span by span.
#pragma once

#include <span>
#include <string>

#include "graph/graph.h"
#include "graph/storage/gr_format.h"

namespace arbmis::graph::storage {

struct GrWriteOptions {
  /// new_to_old[new_id] = id the node carried before renumbering. Empty =
  /// identity (no permutation section is written). When non-empty its size
  /// must equal g.num_nodes().
  std::span<const NodeId> new_to_old;
  /// Set the degree-ordered header flag (requires new_to_old; the writer
  /// does not itself reorder — gr_convert does, see convert.h).
  bool degree_ordered = false;
};

/// Writes `g` to `path` in .gr v1 format. Throws std::runtime_error on IO
/// failure or inconsistent options.
void write_gr(const std::string& path, GraphView g,
              const GrWriteOptions& options = {});

}  // namespace arbmis::graph::storage
