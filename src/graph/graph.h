// Immutable undirected simple graph in compressed sparse row (CSR) form.
//
// Every distributed algorithm in this repository runs against this type:
// node ids are dense [0, n), adjacency lists are sorted, and neighbor
// access is a contiguous span — which also gives each node a stable local
// "port" numbering (index into its adjacency list), the communication
// primitive the CONGEST simulator exposes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace arbmis::graph {

using NodeId = std::uint32_t;

/// Undirected edge; normalized so u < v inside Builder.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class GraphView;

class Graph {
 public:
  /// Empty graph with n isolated nodes.
  explicit Graph(NodeId n = 0);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  /// Number of undirected edges.
  std::uint64_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbors of v.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return std::span<const NodeId>(adjacency_)
        .subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const noexcept { return max_degree_; }

  /// True if {u, v} is an edge (binary search; O(log deg)).
  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Port of neighbor w at node v, i.e. the index of w in neighbors(v).
  /// Throws std::invalid_argument if w is not adjacent to v.
  NodeId port_of(NodeId v, NodeId w) const;

  /// All edges, each reported once with u < v, sorted.
  std::vector<Edge> edges() const;

 private:
  friend class Builder;
  friend class GraphView;
  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, sorted per node
};

/// Non-owning CSR view — the storage seam every graph consumer runs
/// through. A GraphView is four words (n, Δ, offsets pointer, adjacency
/// pointer) and is passed by value; it exposes exactly the read surface of
/// Graph, so the simulator, the algorithms, the fault planner, and the
/// verifier are oblivious to whether the bytes behind it live in an
/// in-memory Graph or an mmap-mapped .gr file (graph/storage/
/// mapped_graph.h). Construction from Graph is implicit by design: every
/// `const Graph&` call site keeps compiling unchanged. The view does not
/// own or extend the lifetime of the underlying storage — the Graph or
/// MappedGraph must outlive it, exactly like a std::span.
class GraphView {
 public:
  /// Empty view (n = 0): valid, no storage behind it.
  constexpr GraphView() noexcept = default;

  /// Implicit by design — this conversion is the seam that lets Graph
  /// call sites flow into GraphView consumers unchanged.
  // NOLINTNEXTLINE(google-explicit-constructor): the implicit conversion IS the storage seam
  GraphView(const Graph& g) noexcept
      : num_nodes_(g.num_nodes_),
        max_degree_(g.max_degree_),
        offsets_(g.offsets_.data()),
        adjacency_(g.adjacency_.data()) {}

  /// Raw-CSR constructor (used by storage::MappedGraph). `offsets` must
  /// have n+1 monotone entries with offsets[0] == 0; `adjacency` must hold
  /// offsets[n] node ids, sorted within each node's range.
  GraphView(NodeId n, NodeId max_degree, const std::uint64_t* offsets,
            const NodeId* adjacency) noexcept
      : num_nodes_(n),
        max_degree_(max_degree),
        offsets_(offsets),
        adjacency_(adjacency) {}

  NodeId num_nodes() const noexcept { return num_nodes_; }
  /// Number of undirected edges.
  std::uint64_t num_edges() const noexcept {
    return offsets_ == nullptr ? 0 : offsets_[num_nodes_] / 2;
  }

  /// Sorted neighbors of v.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_ + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const noexcept { return max_degree_; }

  /// True if {u, v} is an edge (binary search; O(log deg)).
  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Port of neighbor w at node v, i.e. the index of w in neighbors(v).
  /// Throws std::invalid_argument if w is not adjacent to v.
  NodeId port_of(NodeId v, NodeId w) const;

  /// All edges, each reported once with u < v, sorted. Materializes a
  /// vector — O(m) memory; prefer neighbors() iteration on mapped graphs.
  std::vector<Edge> edges() const;

 private:
  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  const std::uint64_t* offsets_ = nullptr;  // n+1 entries
  const NodeId* adjacency_ = nullptr;       // offsets_[n] entries
};

/// Accumulates edges and finalizes into a Graph. Rejects self-loops and
/// out-of-range endpoints immediately; duplicate edges are deduplicated at
/// build() time (multi-edges collapse to one).
class Builder {
 public:
  explicit Builder(NodeId n);

  NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Adds undirected edge {u, v}. Throws std::invalid_argument on u == v or
  /// an endpoint >= n.
  Builder& add_edge(NodeId u, NodeId v);

  /// True if the edge was already added (linear in edges added so far is
  /// avoided by keeping the set sorted lazily at query time; intended for
  /// generator-internal use on small batches).
  bool has_edge(NodeId u, NodeId v) const noexcept;

  std::uint64_t num_edges_added() const noexcept { return edges_.size(); }

  /// Finalizes. The builder may be reused afterwards (it keeps its edges).
  Graph build() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// Convenience: graph from an explicit edge list.
Graph from_edges(NodeId n, std::span<const Edge> edges);

/// Deterministic 64-bit structural hash of (n, adjacency). Two views hash
/// equal iff they describe the same labeled graph, regardless of storage
/// backend (in-memory Graph vs mmap-mapped .gr) — this is the cache-key
/// component the serving layer uses (docs/SERVING.md). O(n + m).
std::uint64_t content_hash(GraphView g);

}  // namespace arbmis::graph
