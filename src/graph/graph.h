// Immutable undirected simple graph in compressed sparse row (CSR) form.
//
// Every distributed algorithm in this repository runs against this type:
// node ids are dense [0, n), adjacency lists are sorted, and neighbor
// access is a contiguous span — which also gives each node a stable local
// "port" numbering (index into its adjacency list), the communication
// primitive the CONGEST simulator exposes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace arbmis::graph {

using NodeId = std::uint32_t;

/// Undirected edge; normalized so u < v inside Builder.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// Empty graph with n isolated nodes.
  explicit Graph(NodeId n = 0);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  /// Number of undirected edges.
  std::uint64_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbors of v.
  std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return std::span<const NodeId>(adjacency_)
        .subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  NodeId degree(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  NodeId max_degree() const noexcept { return max_degree_; }

  /// True if {u, v} is an edge (binary search; O(log deg)).
  bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Port of neighbor w at node v, i.e. the index of w in neighbors(v).
  /// Throws std::invalid_argument if w is not adjacent to v.
  NodeId port_of(NodeId v, NodeId w) const;

  /// All edges, each reported once with u < v, sorted.
  std::vector<Edge> edges() const;

 private:
  friend class Builder;
  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, sorted per node
};

/// Accumulates edges and finalizes into a Graph. Rejects self-loops and
/// out-of-range endpoints immediately; duplicate edges are deduplicated at
/// build() time (multi-edges collapse to one).
class Builder {
 public:
  explicit Builder(NodeId n);

  NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Adds undirected edge {u, v}. Throws std::invalid_argument on u == v or
  /// an endpoint >= n.
  Builder& add_edge(NodeId u, NodeId v);

  /// True if the edge was already added (linear in edges added so far is
  /// avoided by keeping the set sorted lazily at query time; intended for
  /// generator-internal use on small batches).
  bool has_edge(NodeId u, NodeId v) const noexcept;

  std::uint64_t num_edges_added() const noexcept { return edges_.size(); }

  /// Finalizes. The builder may be reused afterwards (it keeps its edges).
  Graph build() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// Convenience: graph from an explicit edge list.
Graph from_edges(NodeId n, std::span<const Edge> edges);

}  // namespace arbmis::graph
