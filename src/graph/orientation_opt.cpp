#include "graph/orientation_opt.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/properties.h"

namespace arbmis::graph {

namespace {

/// Compact Dinic max-flow for the orientation charging network.
class Dinic {
 public:
  explicit Dinic(std::uint32_t num_nodes) : head_(num_nodes, kNone) {}

  void add_edge(std::uint32_t from, std::uint32_t to, std::uint32_t cap) {
    arcs_.push_back({to, head_[from], cap});
    head_[from] = static_cast<std::uint32_t>(arcs_.size() - 1);
    arcs_.push_back({from, head_[to], 0});
    head_[to] = static_cast<std::uint32_t>(arcs_.size() - 1);
  }

  std::uint64_t max_flow(std::uint32_t source, std::uint32_t sink) {
    std::uint64_t total = 0;
    while (bfs(source, sink)) {
      cursor_ = head_;
      while (std::uint64_t pushed = dfs(
                 source, sink, std::numeric_limits<std::uint32_t>::max())) {
        total += pushed;
      }
    }
    return total;
  }

  /// Residual capacity of the i-th added edge (in insertion order,
  /// counting only forward edges).
  std::uint32_t forward_residual(std::uint32_t edge_index) const {
    return arcs_[2 * edge_index].cap;
  }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Arc {
    std::uint32_t to;
    std::uint32_t next;
    std::uint32_t cap;
  };

  bool bfs(std::uint32_t source, std::uint32_t sink) {
    level_.assign(head_.size(), kNone);
    level_[source] = 0;
    std::queue<std::uint32_t> queue;
    queue.push(source);
    while (!queue.empty()) {
      const std::uint32_t v = queue.front();
      queue.pop();
      for (std::uint32_t a = head_[v]; a != kNone; a = arcs_[a].next) {
        if (arcs_[a].cap > 0 && level_[arcs_[a].to] == kNone) {
          level_[arcs_[a].to] = level_[v] + 1;
          queue.push(arcs_[a].to);
        }
      }
    }
    return level_[sink] != kNone;
  }

  std::uint64_t dfs(std::uint32_t v, std::uint32_t sink,
                    std::uint32_t limit) {
    if (v == sink || limit == 0) return limit;
    for (std::uint32_t& a = cursor_[v]; a != kNone; a = arcs_[a].next) {
      Arc& arc = arcs_[a];
      if (arc.cap == 0 || level_[arc.to] != level_[v] + 1) continue;
      const std::uint64_t pushed =
          dfs(arc.to, sink, std::min(limit, arc.cap));
      if (pushed > 0) {
        arc.cap -= static_cast<std::uint32_t>(pushed);
        arcs_[a ^ 1].cap += static_cast<std::uint32_t>(pushed);
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::uint32_t> head_;
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> cursor_;
};

/// Builds the charging network for bound k and returns (flow == m, dinic,
/// edge list). Node layout: 0 = source, 1..m = edge nodes,
/// m+1..m+n = vertex nodes, m+n+1 = sink.
struct ChargingNetwork {
  Dinic dinic;
  std::vector<Edge> edges;
  bool feasible = false;

  ChargingNetwork(GraphView g, NodeId k)
      : dinic(static_cast<std::uint32_t>(g.num_edges() + g.num_nodes() + 2)),
        edges(g.edges()) {
    const auto m = static_cast<std::uint32_t>(edges.size());
    const std::uint32_t source = 0;
    const std::uint32_t sink = m + g.num_nodes() + 1;
    // Forward-edge indices 0..m-1: source -> edge node (these carry the
    // charging decision read back by forward_residual / the arcs below).
    for (std::uint32_t i = 0; i < m; ++i) {
      dinic.add_edge(source, 1 + i, 1);
    }
    // Indices m..3m-1 alternate (edge->u, edge->v) per edge.
    for (std::uint32_t i = 0; i < m; ++i) {
      dinic.add_edge(1 + i, m + 1 + edges[i].u, 1);
      dinic.add_edge(1 + i, m + 1 + edges[i].v, 1);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      dinic.add_edge(m + 1 + v, sink, k);
    }
    feasible = (dinic.max_flow(source, sink) == m);
  }

  /// After a feasible run: true if edge i was charged to edges[i].u.
  bool charged_to_u(std::uint32_t i) const {
    // The edge->u forward arc is saturated iff its residual is 0.
    const std::uint32_t m = static_cast<std::uint32_t>(edges.size());
    return dinic.forward_residual(m + 2 * i) == 0;
  }
};

}  // namespace

bool has_orientation_with_outdegree(GraphView g, NodeId k) {
  if (g.num_edges() == 0) return true;
  if (k == 0) return false;
  return ChargingNetwork(g, k).feasible;
}

NodeId pseudoarboricity(GraphView g) {
  if (g.num_edges() == 0) return 0;
  // p is at least the global density ceil(m/n) and at most the degeneracy.
  NodeId lo = static_cast<NodeId>(
      (g.num_edges() + g.num_nodes() - 1) / g.num_nodes());
  lo = std::max<NodeId>(lo, 1);
  NodeId hi = std::max<NodeId>(degeneracy(g), lo);
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (has_orientation_with_outdegree(g, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Orientation min_outdegree_orientation(GraphView g) {
  const NodeId p = pseudoarboricity(g);
  std::vector<std::vector<NodeId>> parents(g.num_nodes());
  if (g.num_edges() > 0) {
    ChargingNetwork network(g, p);
    // feasible by construction of p
    for (std::uint32_t i = 0; i < network.edges.size(); ++i) {
      const Edge& e = network.edges[i];
      if (network.charged_to_u(i)) {
        parents[e.u].push_back(e.v);  // charged node pays: e.u -> e.v
      } else {
        parents[e.v].push_back(e.u);
      }
    }
  }
  return Orientation(g, std::move(parents));
}

TightArboricityBounds tight_arboricity_bounds(GraphView g) {
  TightArboricityBounds bounds;
  bounds.pseudoarboricity = pseudoarboricity(g);
  const ArboricityBounds basic = arboricity_bounds(g);
  bounds.lower = std::max<NodeId>(static_cast<NodeId>(basic.lower),
                                  bounds.pseudoarboricity);
  const NodeId p_plus = g.num_edges() == 0 ? 0 : bounds.pseudoarboricity + 1;
  bounds.upper = std::min<NodeId>(static_cast<NodeId>(basic.upper), p_plus);
  bounds.upper = std::max(bounds.upper, bounds.lower);
  return bounds;
}

}  // namespace arbmis::graph
