#include "graph/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace arbmis::graph::gen {

namespace {
/// NodeId is 32-bit, so size expressions like rows*cols are evaluated in
/// 64 bits and validated here: oversized requests fail loudly instead of
/// silently wrapping into a small (and wrong) graph.
NodeId checked_node_count(std::uint64_t n) {
  if (n > std::numeric_limits<NodeId>::max()) {
    throw std::length_error("graph generator: node count overflows NodeId");
  }
  return static_cast<NodeId>(n);
}
}  // namespace

Graph path(NodeId n) {
  Builder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle(NodeId n) {
  if (n < 3) return path(n);
  Builder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph star(NodeId n) {
  Builder b(n);
  for (NodeId i = 1; i < n; ++i) b.add_edge(0, i);
  return b.build();
}

Graph complete(NodeId n) {
  Builder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete_bipartite(NodeId a, NodeId b_size) {
  Builder b(checked_node_count(std::uint64_t{a} + b_size));
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b_size; ++v) b.add_edge(u, a + v);
  }
  return b.build();
}

Graph balanced_tree(NodeId n, NodeId arity) {
  Builder b(n);
  const NodeId d = std::max<NodeId>(arity, 1);
  for (NodeId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / d);
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  const NodeId n =
      checked_node_count(std::uint64_t{spine} + std::uint64_t{spine} * legs);
  Builder b(n);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i) {
    for (NodeId leg = 0; leg < legs; ++leg) b.add_edge(i, next++);
  }
  return b.build();
}

namespace {
NodeId grid_id(NodeId r, NodeId c, NodeId cols) { return r * cols + c; }
}  // namespace

Graph grid(NodeId rows, NodeId cols) {
  Builder b(checked_node_count(std::uint64_t{rows} * cols));
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      if (r + 1 < rows) b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
    }
  }
  return b.build();
}

Graph torus(NodeId rows, NodeId cols) {
  if (rows < 3 || cols < 3) return grid(rows, cols);
  Builder b(checked_node_count(std::uint64_t{rows} * cols));
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(grid_id(r, c, cols), grid_id(r, (c + 1) % cols, cols));
      b.add_edge(grid_id(r, c, cols), grid_id((r + 1) % rows, c, cols));
    }
  }
  return b.build();
}

Graph triangular_grid(NodeId rows, NodeId cols) {
  Builder b(checked_node_count(std::uint64_t{rows} * cols));
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(grid_id(r, c, cols), grid_id(r, c + 1, cols));
      if (r + 1 < rows) b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c, cols));
      if (r + 1 < rows && c + 1 < cols) {
        b.add_edge(grid_id(r, c, cols), grid_id(r + 1, c + 1, cols));
      }
    }
  }
  return b.build();
}

Graph hypercube(NodeId dimensions) {
  if (dimensions >= 32) {
    throw std::length_error("hypercube: 2^dimensions overflows NodeId");
  }
  const NodeId n = NodeId{1} << dimensions;
  Builder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId bit = 0; bit < dimensions; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return b.build();
}

Graph random_tree(NodeId n, util::Rng& rng) {
  if (n <= 1) return Graph(n);
  if (n == 2) return path(2);
  // Prüfer decoding: a uniform sequence of length n-2 over [0, n) maps to a
  // uniform labeled tree.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<NodeId> remaining_degree(n, 1);
  for (NodeId x : prufer) ++remaining_degree[x];

  Builder b(n);
  // Min-leaf extraction without a heap: sweep a pointer over candidates.
  std::vector<bool> used(n, false);
  NodeId ptr = 0;
  while (remaining_degree[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    b.add_edge(leaf, x);
    if (--remaining_degree[x] == 1 && x < ptr) {
      leaf = x;  // new leaf with smaller label becomes next
    } else {
      do {
        ++ptr;
      } while (remaining_degree[ptr] != 1);
      leaf = ptr;
    }
  }
  // Final edge joins the last leaf to node n-1.
  b.add_edge(leaf, n - 1);
  return b.build();
}

Graph random_recursive_tree(NodeId n, util::Rng& rng) {
  Builder b(n);
  for (NodeId i = 1; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>(rng.below(i)));
  }
  return b.build();
}

Graph preferential_attachment_tree(NodeId n, util::Rng& rng) {
  Builder b(n);
  if (n < 2) return b.build();
  // endpoint multiset trick: each edge contributes both endpoints, so a
  // uniform draw from `endpoints` is degree-proportional.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n));
  b.add_edge(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (NodeId i = 2; i < n; ++i) {
    const NodeId target = endpoints[rng.below(endpoints.size())];
    b.add_edge(i, target);
    endpoints.push_back(i);
    endpoints.push_back(target);
  }
  return b.build();
}

Graph gnp(NodeId n, double p, util::Rng& rng) {
  Builder b(n);
  if (n < 2 || p <= 0.0) return b.build();
  if (p >= 1.0) return complete(n);
  // Geometric skipping (Batagelj–Brandes): iterate over potential edges in
  // lexicographic order, jumping ahead by Geometric(p) each time.
  const double log1mp = std::log1p(-p);
  std::int64_t u = 1;
  std::int64_t v = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (u < nn) {
    const double r = std::max(rng.uniform01(), 1e-300);
    v += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
    while (v >= u && u < nn) {
      v -= u;
      ++u;
    }
    if (u < nn) {
      b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return b.build();
}

Graph gnm(NodeId n, std::uint64_t m, util::Rng& rng) {
  Builder b(n);
  if (n < 2) return b.build();
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    const auto a = std::min(u, v);
    const auto bb = std::max(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | bb;
    if (chosen.insert(key).second) b.add_edge(a, bb);
  }
  return b.build();
}

Graph union_of_random_forests(NodeId n, NodeId k, util::Rng& rng) {
  Builder b(n);
  for (NodeId forest = 0; forest < k; ++forest) {
    // Random spanning tree over a random labeling so forests differ in
    // structure, not just in Prüfer stream position.
    Graph tree = random_tree(n, rng);
    std::vector<NodeId> relabel(n);
    std::iota(relabel.begin(), relabel.end(), NodeId{0});
    for (NodeId i = n; i > 1; --i) {
      std::swap(relabel[i - 1], relabel[rng.below(i)]);
    }
    for (const Edge& e : tree.edges()) {
      b.add_edge(relabel[e.u], relabel[e.v]);
    }
  }
  return b.build();
}

Graph chung_lu_power_law(NodeId n, double gamma, double average_degree,
                         util::Rng& rng) {
  Builder b(n);
  if (n < 2) return b.build();
  const double exponent = -1.0 / (std::max(gamma, 2.01) - 1.0);
  std::vector<double> weight(n);
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    weight[v] = std::pow(static_cast<double>(v + 1), exponent);
    total += weight[v];
  }
  // Scale so the expected average degree is as requested.
  const double scale =
      average_degree * static_cast<double>(n) / (total * total);
  // Weights are sorted decreasing, so for each u the edge probabilities
  // p(u,v) decrease in v; sample v by geometric skipping against the
  // upper bound p_max = p(u, u+1), thinning with p(u,v)/p_max.
  for (NodeId u = 0; u + 1 < n; ++u) {
    const double p_max = std::min(1.0, scale * weight[u] * weight[u + 1]);
    if (p_max <= 0.0) continue;
    const double log1mp = std::log1p(-std::min(p_max, 1.0 - 1e-12));
    std::int64_t v = static_cast<std::int64_t>(u);
    while (true) {
      const double r = std::max(rng.uniform01(), 1e-300);
      v += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
      if (v >= static_cast<std::int64_t>(n)) break;
      const double p =
          std::min(1.0, scale * weight[u] * weight[static_cast<NodeId>(v)]);
      if (rng.uniform01() * p_max < p) {
        b.add_edge(u, static_cast<NodeId>(v));
      }
    }
  }
  return b.build();
}

Graph hubbed_forest_union(NodeId n, NodeId k, NodeId num_hubs,
                          util::Rng& rng) {
  Builder b(n);
  if (n == 0) return b.build();
  num_hubs = std::max<NodeId>(std::min(num_hubs, n), 1);
  // Star forest: node v attaches to the hub of its block.
  const NodeId block = (n + num_hubs - 1) / num_hubs;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId hub = (v / block) * block;
    if (v != hub) b.add_edge(v, hub);
  }
  // Plus k-1 random spanning trees.
  if (k >= 2) {
    Graph forests = union_of_random_forests(n, k - 1, rng);
    for (const Edge& e : forests.edges()) b.add_edge(e.u, e.v);
  }
  return b.build();
}

Graph random_apollonian(NodeId n, util::Rng& rng) {
  if (n < 3) return complete(n);
  Builder b(n);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
  std::vector<std::array<NodeId, 3>> faces{{0, 1, 2}};
  for (NodeId i = 3; i < n; ++i) {
    const std::size_t f = rng.below(faces.size());
    const std::array<NodeId, 3> face = faces[f];
    for (NodeId corner : face) b.add_edge(i, corner);
    faces[f] = {face[0], face[1], i};
    faces.push_back({face[0], face[2], i});
    faces.push_back({face[1], face[2], i});
  }
  return b.build();
}

Graph k_tree(NodeId n, NodeId k, util::Rng& rng) {
  if (k == 0) return Graph(n);
  if (n <= k + 1) return complete(n);
  Builder b(n);
  std::vector<std::vector<NodeId>> cliques;  // k-cliques usable as anchors
  for (NodeId u = 0; u <= k; ++u) {
    for (NodeId v = u + 1; v <= k; ++v) b.add_edge(u, v);
  }
  // All k-subsets of the seed (k+1)-clique.
  for (NodeId skip = 0; skip <= k; ++skip) {
    std::vector<NodeId> c;
    for (NodeId u = 0; u <= k; ++u) {
      if (u != skip) c.push_back(u);
    }
    cliques.push_back(std::move(c));
  }
  for (NodeId i = k + 1; i < n; ++i) {
    // Copy: pushing new cliques below reallocates the vector.
    const std::vector<NodeId> anchor = cliques[rng.below(cliques.size())];
    for (NodeId u : anchor) b.add_edge(i, u);
    // New k-cliques: replace each anchor member with i.
    for (NodeId replaced = 0; replaced < k; ++replaced) {
      std::vector<NodeId> c = anchor;
      c[replaced] = i;
      cliques.push_back(std::move(c));
    }
  }
  return b.build();
}

Graph k_degenerate(NodeId n, NodeId k, util::Rng& rng) {
  Builder b(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId picks = std::min<NodeId>(i, k);
    // Floyd's algorithm: sample `picks` distinct values from [0, i).
    std::unordered_set<NodeId> chosen;
    for (NodeId j = i - picks; j < i; ++j) {
      auto t = static_cast<NodeId>(rng.below(j + 1));
      if (!chosen.insert(t).second) chosen.insert(j);
    }
    for (NodeId target : chosen) b.add_edge(i, target);
  }
  return b.build();
}

}  // namespace arbmis::graph::gen
