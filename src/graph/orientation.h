// Edge orientations and forest partitions.
//
// The paper's analysis fixes an orientation of an arboricity-α graph in
// which every node has at most α out-neighbors ("parents"); the algorithm
// itself never sees it. This module provides:
//
//   * the degeneracy orientation (out-degree <= degeneracy <= 2α-1), used by
//     the read-k event kernels and invariant audits, and
//   * partition of out-edges into forests (out-edge index -> forest), the
//     primitive behind Barenboim–Elkin style decompositions and the
//     Cole–Vishkin finishing step.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace arbmis::graph {

/// An acyclic orientation stored as parent lists: parents(v) are the
/// out-neighbors of v. children(v) is the inverse view.
class Orientation {
 public:
  Orientation(GraphView g, std::vector<std::vector<NodeId>> parents);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(parents_.size());
  }

  std::span<const NodeId> parents(NodeId v) const noexcept {
    return parents_[v];
  }
  std::span<const NodeId> children(NodeId v) const noexcept {
    return children_[v];
  }

  NodeId out_degree(NodeId v) const noexcept {
    return static_cast<NodeId>(parents_[v].size());
  }

  /// Maximum out-degree over all nodes — an arboricity witness when the
  /// orientation is acyclic (α <= max out-degree ... within a factor 2).
  NodeId max_out_degree() const noexcept { return max_out_degree_; }

  /// True if the directed graph has no directed cycle.
  bool is_acyclic() const;

 private:
  std::vector<std::vector<NodeId>> parents_;
  std::vector<std::vector<NodeId>> children_;
  NodeId max_out_degree_ = 0;
};

/// Orients every edge from the endpoint earlier in the degeneracy order to
/// the later one; each node then has at most `degeneracy(g)` parents. This
/// is the orientation the paper's analysis assumes (with α replaced by the
/// degeneracy, which is < 2α).
Orientation degeneracy_orientation(GraphView g);

/// Orients every edge from the smaller id to the larger id; out-degree can
/// be large, but the orientation is trivially acyclic. Used in tests.
Orientation id_orientation(GraphView g);

/// A partition of the edge set into rooted forests. forest_parent[f][v] is
/// v's parent in forest f, or kNoParent.
inline constexpr NodeId kNoParent = ~NodeId{0};

struct ForestPartition {
  /// forest_parent[f][v]: parent of v in forest f (kNoParent if none).
  std::vector<std::vector<NodeId>> forest_parent;

  NodeId num_forests() const noexcept {
    return static_cast<NodeId>(forest_parent.size());
  }

  /// Total number of (v, parent) pairs across forests == edges covered.
  std::uint64_t num_edges() const noexcept;
};

/// Splits the orientation's out-edges by local index: v's i-th parent goes
/// to forest i. Yields exactly max_out_degree() forests, each a forest
/// because every node has <= 1 parent per index and the orientation is
/// acyclic. Requires an acyclic orientation.
ForestPartition forests_from_orientation(GraphView g,
                                         const Orientation& orientation);

/// Checks that `partition` covers each edge of g exactly once and that each
/// forest is acyclic with in-tree parent pointers. Used by tests.
bool valid_forest_partition(GraphView g, const ForestPartition& partition);

}  // namespace arbmis::graph
