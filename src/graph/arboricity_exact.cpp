#include "graph/arboricity_exact.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/properties.h"

namespace arbmis::graph {

namespace {

constexpr std::uint32_t kUnplaced = ~std::uint32_t{0};

/// Incremental partition of edges into k forests with matroid-union
/// augmentation. Forests are kept as per-vertex incidence lists of edge
/// indices.
class ForestPartitioner {
 public:
  ForestPartitioner(GraphView g, NodeId k)
      : g_(g),
        k_(k),
        edges_(g.edges()),
        forest_of_(edges_.size(), kUnplaced),
        adjacency_(k, std::vector<std::vector<std::uint32_t>>(g.num_nodes())) {}

  /// Tries to place every edge; false as soon as one cannot be placed.
  bool run() {
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
      if (!insert(e)) return false;
    }
    return true;
  }

  ForestPartition partition() const {
    ForestPartition out;
    out.forest_parent.assign(k_, std::vector<NodeId>(g_.num_nodes(), kNoParent));
    // Root every tree of every forest and emit parent pointers.
    for (NodeId forest = 0; forest < k_; ++forest) {
      std::vector<bool> seen(g_.num_nodes(), false);
      for (NodeId root = 0; root < g_.num_nodes(); ++root) {
        if (seen[root]) continue;
        seen[root] = true;
        std::vector<NodeId> stack{root};
        while (!stack.empty()) {
          const NodeId v = stack.back();
          stack.pop_back();
          for (std::uint32_t e : adjacency_[forest][v]) {
            const NodeId w = other_endpoint(e, v);
            if (seen[w]) continue;
            seen[w] = true;
            out.forest_parent[forest][w] = v;
            stack.push_back(w);
          }
        }
      }
    }
    return out;
  }

 private:
  NodeId other_endpoint(std::uint32_t e, NodeId v) const {
    return edges_[e].u == v ? edges_[e].v : edges_[e].u;
  }

  /// Edges on the tree path between u and v in `forest`; empty return +
  /// false if u, v are in different trees.
  bool tree_path(NodeId forest, NodeId u, NodeId v,
                 std::vector<std::uint32_t>& path) const {
    path.clear();
    if (u == v) return true;
    std::vector<std::uint32_t> via(g_.num_nodes(), kUnplaced);
    std::queue<NodeId> queue;
    queue.push(u);
    std::vector<bool> seen(g_.num_nodes(), false);
    seen[u] = true;
    while (!queue.empty()) {
      const NodeId x = queue.front();
      queue.pop();
      for (std::uint32_t e : adjacency_[forest][x]) {
        const NodeId y = other_endpoint(e, x);
        if (seen[y]) continue;
        seen[y] = true;
        via[y] = e;
        if (y == v) {
          // Reconstruct.
          NodeId cursor = v;
          while (cursor != u) {
            const std::uint32_t e_back = via[cursor];
            path.push_back(e_back);
            cursor = other_endpoint(e_back, cursor);
          }
          return true;
        }
        queue.push(y);
      }
    }
    return false;
  }

  void attach(std::uint32_t e, NodeId forest) {
    forest_of_[e] = forest;
    adjacency_[forest][edges_[e].u].push_back(e);
    adjacency_[forest][edges_[e].v].push_back(e);
  }

  void detach(std::uint32_t e) {
    const NodeId forest = forest_of_[e];
    for (NodeId endpoint : {edges_[e].u, edges_[e].v}) {
      auto& list = adjacency_[forest][endpoint];
      list.erase(std::find(list.begin(), list.end(), e));
    }
    forest_of_[e] = kUnplaced;
  }

  /// Matroid-union augmenting insertion of edge e0 (BFS over edge
  /// displacements; the shortest augmenting sequence is applied, which is
  /// what makes the cascade of exchanges valid).
  bool insert(std::uint32_t e0) {
    std::vector<std::uint32_t> pred(edges_.size(), kUnplaced);
    std::vector<bool> visited(edges_.size(), false);
    std::queue<std::uint32_t> queue;
    queue.push(e0);
    visited[e0] = true;

    std::vector<std::uint32_t> path;
    while (!queue.empty()) {
      const std::uint32_t f = queue.front();
      queue.pop();
      for (NodeId forest = 0; forest < k_; ++forest) {
        if (forest_of_[f] == forest) continue;
        if (!tree_path(forest, edges_[f].u, edges_[f].v, path)) {
          // f fits in `forest` outright: apply the augmenting sequence.
          apply_chain(f, forest, pred);
          return true;
        }
        for (std::uint32_t h : path) {
          if (!visited[h]) {
            visited[h] = true;
            pred[h] = f;
            queue.push(h);
          }
        }
      }
    }
    return false;
  }

  /// Unwinds pred pointers: `last` moves into `destination`, its old
  /// forest receives its predecessor, and so on up to the unplaced root.
  void apply_chain(std::uint32_t last, NodeId destination,
                   const std::vector<std::uint32_t>& pred) {
    std::uint32_t cursor = last;
    NodeId dest = destination;
    while (true) {
      const NodeId old_forest = forest_of_[cursor];
      if (old_forest != kUnplaced) detach(cursor);
      attach(cursor, dest);
      if (pred[cursor] == kUnplaced) break;  // reached the new edge e0
      const std::uint32_t next = pred[cursor];
      dest = old_forest;
      cursor = next;
    }
  }

  GraphView g_;
  NodeId k_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> forest_of_;
  // adjacency_[forest][vertex] -> incident edge indices in that forest
  std::vector<std::vector<std::vector<std::uint32_t>>> adjacency_;
};

}  // namespace

std::optional<ForestPartition> partition_into_forests(GraphView g,
                                                      NodeId k) {
  if (g.num_edges() == 0) {
    ForestPartition empty;
    empty.forest_parent.assign(k, std::vector<NodeId>(g.num_nodes(), kNoParent));
    return empty;
  }
  if (k == 0) return std::nullopt;
  ForestPartitioner partitioner(g, k);
  if (!partitioner.run()) return std::nullopt;
  ForestPartition result = partitioner.partition();
  if (!valid_forest_partition(g, result)) {
    throw std::logic_error(
        "partition_into_forests: internal error — produced an invalid "
        "partition");
  }
  return result;
}

NodeId exact_arboricity(GraphView g) {
  if (g.num_edges() == 0) return 0;
  NodeId lo = std::max<NodeId>(
      static_cast<NodeId>(density_lower_bound(g)), 1);
  NodeId hi = std::max<NodeId>(degeneracy(g), lo);
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (partition_into_forests(g, mid).has_value()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

ArboricityCertificate exact_arboricity_certified(GraphView g) {
  ArboricityCertificate certificate;
  certificate.arboricity = exact_arboricity(g);
  if (certificate.arboricity > 0) {
    certificate.forests =
        *partition_into_forests(g, certificate.arboricity);
  } else {
    certificate.forests.forest_parent.clear();
  }
  return certificate;
}

}  // namespace arbmis::graph
