#include "graph/io.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace arbmis::graph {

void write_edge_list(std::ostream& out, GraphView g) {
  out << "# arbmis edge list: n m, then one 'u v' per undirected edge\n";
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

namespace {

/// Next non-comment, non-empty line; false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  if (!next_content_line(in, line)) {
    throw std::invalid_argument("read_edge_list: missing header line");
  }
  std::istringstream header(line);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!(header >> n >> m)) {
    throw std::invalid_argument("read_edge_list: malformed header");
  }
  // Compare in 64 bits: `~NodeId{0}` would promote to int -1 and then
  // convert back to a huge uint64, making the check pass for every n.
  if (n > std::numeric_limits<NodeId>::max()) {
    throw std::invalid_argument(
        "read_edge_list: node count " + std::to_string(n) +
        " exceeds the 32-bit NodeId space");
  }
  Builder builder(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!next_content_line(in, line)) {
      throw std::invalid_argument(
          "read_edge_list: fewer edges than the header promised");
    }
    std::istringstream edge(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(edge >> u >> v)) {
      throw std::invalid_argument("read_edge_list: malformed edge line");
    }
    if (u >= n || v >= n) {
      throw std::invalid_argument("read_edge_list: endpoint out of range");
    }
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.build();
}

void save_graph(const std::string& path, GraphView g) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_graph: cannot open " + path);
  }
  write_edge_list(out, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_graph: cannot open " + path);
  }
  return read_edge_list(in);
}

void write_dot(std::ostream& out, GraphView g,
               std::span<const std::uint8_t> highlight) {
  out << "graph arbmis {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  " << v;
    if (v < highlight.size() && highlight[v] != 0) {
      out << " [style=filled, fillcolor=lightblue]";
    }
    out << ";\n";
  }
  for (const Edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v << ";\n";
  }
  out << "}\n";
}

}  // namespace arbmis::graph
