// Optimal (minimum out-degree) orientations via max-flow, and the exact
// pseudoarboricity they certify.
//
// The paper's analysis fixes an orientation with at most α parents per
// node. The degeneracy orientation (orientation.h) guarantees out-degree
// <= 2α-1; this module computes the true optimum
//
//     p(G) = min over orientations of the max out-degree
//          = ceil( max over subgraphs H of m_H / n_H )   (pseudoarboricity)
//
// by binary-searching k and checking feasibility with a Dinic max-flow on
// the standard bipartite charging network (edge -> its two endpoints,
// endpoint capacity k). Known sandwich: p(G) <= arboricity(G) <= p(G)+1,
// so together with the Nash-Williams density lower bound from
// properties.h this usually pins the paper's α exactly — and the
// orientation itself gives the read-k event kernels the tightest k
// certificate available.
#pragma once

#include "graph/graph.h"
#include "graph/orientation.h"

namespace arbmis::graph {

/// True iff g admits an orientation with max out-degree <= k.
bool has_orientation_with_outdegree(GraphView g, NodeId k);

/// Exact pseudoarboricity p(G) (0 for edgeless graphs).
NodeId pseudoarboricity(GraphView g);

/// An orientation achieving out-degree p(G). Note: unlike the degeneracy
/// orientation it need not be acyclic — the read-k counting arguments
/// only need the parent bound, not acyclicity.
Orientation min_outdegree_orientation(GraphView g);

/// Convenience: [density lower bound, degeneracy] refined with the exact
/// pseudoarboricity sandwich p <= α <= p+1.
struct TightArboricityBounds {
  NodeId pseudoarboricity = 0;
  NodeId lower = 0;  ///< max(density bound, p)
  NodeId upper = 0;  ///< min(degeneracy, p + 1)
  bool exact() const noexcept { return lower == upper; }
};

TightArboricityBounds tight_arboricity_bounds(GraphView g);

}  // namespace arbmis::graph
