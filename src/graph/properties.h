// Structural graph queries used by the algorithms, the analysis audits, and
// the test suite: connectivity, BFS distances, degeneracy (k-core)
// decomposition, and arboricity bounds.
//
// Arboricity itself is expensive to compute exactly; the repository uses
// the standard sandwich
//
//     ceil(max-density) <= arboricity <= degeneracy  (and degeneracy <= 2α-1)
//
// where max-density is max over subgraphs S of |E(S)|/(|S|-1). We report the
// whole-graph density as a cheap lower bound and degeneracy as the upper
// bound; generators additionally carry constructive certificates (DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace arbmis::graph {

/// Connected components result.
struct Components {
  /// Component index of each node, in [0, count).
  std::vector<NodeId> label;
  NodeId count = 0;
  /// Size of each component.
  std::vector<NodeId> sizes;

  NodeId largest() const noexcept;
};

Components connected_components(GraphView g);

/// Components of the subgraph induced by the nodes where `in_set` is true.
/// Nodes outside the set get label == kNoComponent.
inline constexpr NodeId kNoComponent = ~NodeId{0};
Components induced_components(GraphView g, std::span<const std::uint8_t> in_set);

/// BFS distances from `source`; unreachable nodes get kUnreachable.
inline constexpr NodeId kUnreachable = ~NodeId{0};
std::vector<NodeId> bfs_distances(GraphView g, NodeId source);

/// True if the graph has no cycle (i.e. it is a forest).
bool is_forest(GraphView g);

/// Degeneracy ordering (Matula–Beck, O(n + m)).
struct CoreDecomposition {
  /// Core number of each node.
  std::vector<NodeId> core;
  /// Nodes in removal order: each node has <= degeneracy neighbors later
  /// in this order.
  std::vector<NodeId> order;
  /// position[v] = index of v in `order`.
  std::vector<NodeId> position;
  NodeId degeneracy = 0;
};

CoreDecomposition core_decomposition(GraphView g);

NodeId degeneracy(GraphView g);

/// Whole-graph Nash-Williams density lower bound: ceil(m / (n - 1)).
/// Zero for graphs with fewer than two nodes.
std::uint64_t density_lower_bound(GraphView g);

/// Arboricity sandwich computed in one pass.
struct ArboricityBounds {
  std::uint64_t lower = 0;  ///< ceil(m/(n-1)) over the whole graph
  std::uint64_t upper = 0;  ///< degeneracy
};

ArboricityBounds arboricity_bounds(GraphView g);

/// Eccentricity of `source` (max BFS distance in its component).
NodeId eccentricity(GraphView g, NodeId source);

/// Exact diameter of the largest component via all-source BFS; intended for
/// small graphs in tests. Returns nullopt for empty graphs.
std::optional<NodeId> diameter(GraphView g);

}  // namespace arbmis::graph
