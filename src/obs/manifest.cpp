#include "obs/manifest.h"

#include <utility>

#include "obs/events.h"

#ifndef ARBMIS_GIT_SHA
#define ARBMIS_GIT_SHA "unknown"
#endif

namespace arbmis::obs {

Manifest make_manifest(std::string tool) {
  Manifest m;
  m.git_sha = ARBMIS_GIT_SHA;
#ifdef NDEBUG
  m.build_type = "Release";
#else
  m.build_type = "Debug";
#endif
  m.tool = std::move(tool);
  return m;
}

namespace {

void append_string_field(std::string& out, const char* key,
                         std::string_view value, bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":\"";
  append_json_escaped(out, value);
  out += '"';
}

}  // namespace

std::string to_json_object(const Manifest& m) {
  std::string out = "{";
  append_string_field(out, "schema", m.schema, /*first=*/true);
  append_string_field(out, "git_sha", m.git_sha);
  append_string_field(out, "build_type", m.build_type);
  append_string_field(out, "tool", m.tool);
  append_string_field(out, "workload", m.workload);
  out += ",\"seed\":" + std::to_string(m.seed);
  out += ",\"nodes\":" + std::to_string(m.nodes);
  out += ",\"edges\":" + std::to_string(m.edges);
  out += ",\"threads\":" + std::to_string(m.threads);
  append_string_field(out, "inbox", m.inbox);
  append_string_field(out, "extra", m.extra);
  out += '}';
  return out;
}

std::string to_json_line(const Manifest& m) {
  return "{\"manifest\":" + to_json_object(m) + "}";
}

}  // namespace arbmis::obs
