// Flight recorder: always-on, fixed-size in-memory telemetry ring.
//
// The sinks in obs/sink.h are write-ahead: they stream every event to a
// file chosen at startup. The flight recorder is the complement — a
// bounded ring of the *most recent* events, kept in memory at all times,
// so that when a run crashes, a CONGEST/read-k violation fires, or a
// certification fails, the events leading up to the failure can be
// dumped after the fact. Events are stored pre-encoded in the ARBMISEV
// binary record layout (obs/sink.h), bounded by BYTES rather than event
// count, evicting oldest-first; a dump is therefore a standard binary
// event artifact (magic, manifest record, event records, plus a trailing
// kRecorderDump event describing the ring state) that
// tools/trace_inspect.py validates, summarizes, and diffs like any other
// event file.
//
// Determinism contract: recording preserves emission order and encodes
// logical time only, so after identical runs the ring's record bytes
// (ring_bytes()) are byte-identical across executor thread counts and
// inbox implementations — tests/test_parallel_equivalence.cpp enforces
// this alongside the sink-stream byte-identity.
//
// Crash path: dump_to_fd() is async-signal-safe best effort — it takes
// no lock, allocates nothing, and writes only via write(2) to an fd the
// host opened ahead of time (tools/arbmis_serve.cpp --crash-dump). If the
// fatal signal interrupted record() mid-update the tail of the dump may
// be truncated; trace_inspect.py still decodes the intact prefix.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.h"
#include "obs/manifest.h"

namespace arbmis::obs {

/// Per-event text payloads are truncated to this many bytes before
/// encoding, so one pathological log line cannot flush the whole ring
/// (and so record() can encode into a fixed stack buffer).
inline constexpr std::size_t kMaxRecorderText = 4096;

struct RecorderConfig {
  /// Ring capacity in encoded-record bytes (allocated once, up front).
  std::size_t max_bytes = std::size_t{1} << 20;
  /// Category filter, mirroring SinkConfig. exec defaults to off for the
  /// same reason as sinks: lane events vary by thread count and would
  /// break the ring's byte-identity across executors.
  bool semantic = true;
  bool log_text = true;
  bool exec = false;
  /// Auto-dump target for the failure seams (ModelChecker violations,
  /// resilient_mis certification failure). Empty disables auto dumps.
  std::string dump_path;
};

struct RecorderStats {
  std::uint64_t recorded_events = 0;   ///< accepted by the filter, ever
  std::uint64_t buffered_events = 0;   ///< currently held in the ring
  std::uint64_t buffered_bytes = 0;    ///< encoded bytes currently held
  std::uint64_t evicted_events = 0;    ///< displaced oldest-first
  std::uint64_t evicted_bytes = 0;
  std::uint64_t dropped_oversized = 0; ///< single record > capacity
  std::uint64_t dumps = 0;             ///< dump()/auto_dump() successes
};

class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Filter, encode, and append one event, evicting oldest records until
  /// it fits. Thread-safe; allocation-free (fixed stack encode buffer).
  void record(const Event& e);

  /// Replaces the pre-rendered stream header every dump re-emits. The
  /// constructor installs make_manifest("flight_recorder") so a dump is
  /// always a valid artifact even when the host never attaches one.
  void attach_manifest(const Manifest& m);

  const RecorderConfig& config() const noexcept { return config_; }
  RecorderStats stats() const;

  /// Full ARBMISEV artifact: header + manifest record, the ring's records
  /// oldest-first, then one kRecorderDump trailer event carrying `reason`
  /// and the ring state.
  std::string snapshot(std::string_view reason) const;

  /// The ring's concatenated event-record bytes, oldest-first, with no
  /// header or trailer — the unit of cross-executor byte comparison.
  std::string ring_bytes() const;

  /// snapshot() written to `path`. Returns false on I/O failure.
  bool dump(const std::string& path, std::string_view reason);

  /// dump() to config().dump_path; no-op returning false when unset.
  bool auto_dump(std::string_view reason);

  /// Async-signal-safe best-effort dump to an already-open fd: header,
  /// then every intact ring record, then the kRecorderDump trailer. No
  /// locking or allocation; see the file comment for the caveat.
  void dump_to_fd(int fd, std::string_view reason) const noexcept;

  /// Drops all buffered records (cumulative counters are kept).
  void clear();

 private:
  bool accepts(EventKind kind) const noexcept;
  /// Under mu_: frees >= needed bytes by evicting oldest records.
  void evict_for(std::size_t needed);
  /// Under mu_ (or lock-free from the signal path): byte at ring offset.
  unsigned char at(std::size_t logical) const noexcept {
    return buf_[(head_ + logical) % buf_.size()];
  }

  RecorderConfig config_;
  mutable std::mutex mu_;
  std::vector<unsigned char> buf_;  ///< flat ring storage
  std::size_t head_ = 0;            ///< offset of the oldest byte
  std::size_t size_ = 0;            ///< bytes in use
  RecorderStats stats_;
  std::string header_bytes_;        ///< magic + version + manifest record
};

/// Process-wide recorder, or nullptr when detached. Independent of the
/// sink: obs::emit() forwards every event to both.
FlightRecorder* recorder() noexcept;

/// RAII attachment mirroring ScopedSink. Non-owning; restores the
/// previous recorder on destruction.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(FlightRecorder* r);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  FlightRecorder* prev_;
};

/// Failure-seam helper: auto-dump the attached recorder, if any. Returns
/// true when a dump file was actually written.
bool recorder_auto_dump(std::string_view reason);

}  // namespace arbmis::obs
