#include "obs/registry.h"

#include <atomic>
#include <cstdio>

#include "obs/events.h"

namespace arbmis::obs {

namespace {

std::atomic<Registry*> g_registry{nullptr};

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_key(std::string& out, std::string_view key, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
}

template <typename T>
void append_u64_array(std::string& out, const T& values) {
  out += '[';
  bool first = true;
  for (const auto v : values) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(v);
  }
  out += ']';
}

}  // namespace

void Registry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0u).first;
  }
  it->second += delta;
}

void Registry::set(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::int64_t{0}).first;
  }
  it->second = value;
}

void Registry::observe(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = log2_histograms_.find(name);
  if (it == log2_histograms_.end()) {
    it = log2_histograms_.emplace(std::string(name), util::Log2Histogram{})
             .first;
  }
  it->second.add(value);
}

void Registry::observe_linear(std::string_view name, double lo, double hi,
                              std::size_t buckets, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = linear_histograms_.find(name);
  if (it == linear_histograms_.end()) {
    it = linear_histograms_
             .emplace(std::string(name), util::Histogram(lo, hi, buckets))
             .first;
  }
  it->second.add(value);
}

void Registry::track_round_series(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  series_.try_emplace(std::string(name));
}

void Registry::snapshot_round(std::uint32_t round) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (round % round_sample_ != 0) return;
  sampled_rounds_.push_back(round);
  for (auto& [name, series] : series_) {
    std::uint64_t current = 0;
    if (const auto it = counters_.find(name); it != counters_.end()) {
      current = it->second;
    }
    series.deltas.push_back(current - series.last);
    series.last = current;
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0u;
}

std::int64_t Registry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0;
}

std::string Registry::to_json(const Manifest* manifest) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema\":\"";
  out += kMetricsSchemaVersion;
  out += "\",\"manifest\":";
  out += manifest != nullptr ? to_json_object(*manifest) : "null";

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    append_key(out, name, first);
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    append_key(out, name, first);
    out += std::to_string(value);
  }

  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : log2_histograms_) {
    append_key(out, name, first);
    out += "{\"type\":\"log2\",\"zero\":" + std::to_string(h.zero_count());
    out += ",\"buckets\":";
    std::vector<std::uint64_t> buckets(h.bucket_count());
    for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] = h.bucket(b);
    append_u64_array(out, buckets);
    out += ",\"total\":" + std::to_string(h.total());
    out += ",\"max_value\":" + std::to_string(h.max_value()) + "}";
  }
  for (const auto& [name, h] : linear_histograms_) {
    append_key(out, name, first);
    out += "{\"type\":\"linear\",\"lo\":";
    append_double(out, h.bucket_lo(0));
    out += ",\"hi\":";
    append_double(out, h.bucket_hi(h.bucket_count() - 1));
    out += ",\"buckets\":";
    std::vector<std::uint64_t> buckets(h.bucket_count());
    for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] = h.bucket(b);
    append_u64_array(out, buckets);
    out += ",\"underflow\":" + std::to_string(h.underflow());
    out += ",\"overflow\":" + std::to_string(h.overflow());
    out += ",\"total\":" + std::to_string(h.total()) + "}";
  }

  out += "},\"rounds\":{\"sample\":" + std::to_string(round_sample_);
  out += ",\"sampled\":";
  append_u64_array(out, sampled_rounds_);
  out += ",\"series\":{";
  first = true;
  for (const auto& [name, series] : series_) {
    append_key(out, name, first);
    append_u64_array(out, series.deltas);
  }
  out += "}}}";
  return out;
}

Registry* registry() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

ScopedRegistry::ScopedRegistry(Registry* r)
    : prev_(g_registry.exchange(r, std::memory_order_acq_rel)) {}

ScopedRegistry::~ScopedRegistry() {
  g_registry.store(prev_, std::memory_order_release);
}

}  // namespace arbmis::obs
