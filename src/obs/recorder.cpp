#include "obs/recorder.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>

#include "obs/sink.h"

namespace arbmis::obs {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

/// Worst-case encoded record: tag + kind + two small varints + eight
/// 64-bit varints + text-length varint + truncated text.
constexpr std::size_t kEncodeBufBytes =
    2 + 5 + 1 + kMaxEventValues * 10 + 5 + kMaxRecorderText;

std::size_t put_varint(unsigned char* out, std::uint64_t v) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<unsigned char>(v) | 0x80u;
    v >>= 7;
  }
  out[n++] = static_cast<unsigned char>(v);
  return n;
}

/// Encodes one ARBMISEV 0x01 event record (the BinaryWriter layout) into
/// `out`, which must hold kEncodeBufBytes. Allocation-free so both the
/// record path and the signal-handler trailer can use it.
std::size_t encode_record(const Event& e, unsigned char* out) noexcept {
  std::size_t n = 0;
  out[n++] = 0x01;
  out[n++] = static_cast<unsigned char>(e.kind);
  n += put_varint(out + n, e.round);
  n += put_varint(out + n, e.num_values);
  for (std::uint32_t i = 0; i < e.num_values; ++i) {
    n += put_varint(out + n, e.values[i]);
  }
  const std::size_t text_len = std::min(e.text.size(), kMaxRecorderText);
  n += put_varint(out + n, text_len);
  if (text_len != 0) {
    std::memcpy(out + n, e.text.data(), text_len);
    n += text_len;
  }
  return n;
}

/// Async-signal-safe full write; ignores errors beyond giving up (the
/// crash path cannot do better than best effort).
void write_all(int fd, const unsigned char* data, std::size_t n) noexcept {
  std::size_t done = 0;
  while (done < n) {
    const ::ssize_t w = ::write(fd, data + done, n - done);
    if (w <= 0) return;
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(RecorderConfig config)
    : config_(std::move(config)),
      buf_(std::max<std::size_t>(config_.max_bytes, 64)) {
  attach_manifest(make_manifest("flight_recorder"));
}

bool FlightRecorder::accepts(EventKind kind) const noexcept {
  switch (event_category(kind)) {
    case EventCategory::kSemantic: return config_.semantic;
    case EventCategory::kLogText: return config_.log_text;
    case EventCategory::kExec: return config_.exec;
  }
  return false;
}

void FlightRecorder::attach_manifest(const Manifest& m) {
  std::string header;
  header.append("ARBMISEV", 8);
  header += '\x01';
  const std::string json = to_json_line(m);
  header += '\x00';
  append_varint(header, json.size());
  header += json;
  const std::lock_guard<std::mutex> lock(mu_);
  header_bytes_ = std::move(header);
}

void FlightRecorder::evict_for(std::size_t needed) {
  while (buf_.size() - size_ < needed && size_ > 0) {
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(at(i)) << (8 * i);
    }
    head_ = (head_ + 4 + len) % buf_.size();
    size_ -= 4 + len;
    --stats_.buffered_events;
    stats_.buffered_bytes -= len;
    ++stats_.evicted_events;
    stats_.evicted_bytes += len;
  }
}

void FlightRecorder::record(const Event& e) {
  if (!accepts(e.kind)) return;
  unsigned char rec[kEncodeBufBytes];
  const std::size_t len = encode_record(e, rec);

  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.recorded_events;
  if (len + 4 > buf_.size()) {
    ++stats_.dropped_oversized;
    return;
  }
  evict_for(len + 4);
  unsigned char prefix[4];
  for (std::size_t i = 0; i < 4; ++i) {
    prefix[i] = static_cast<unsigned char>((len >> (8 * i)) & 0xFFu);
  }
  const auto put = [&](const unsigned char* data, std::size_t n) {
    std::size_t tail = (head_ + size_) % buf_.size();
    for (std::size_t i = 0; i < n; ++i) {
      buf_[tail] = data[i];
      tail = (tail + 1) % buf_.size();
    }
    size_ += n;
  };
  put(prefix, 4);
  put(rec, len);
  ++stats_.buffered_events;
  stats_.buffered_bytes += len;
}

RecorderStats FlightRecorder::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string FlightRecorder::ring_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(stats_.buffered_bytes);
  std::size_t pos = 0;
  while (pos + 4 <= size_) {
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(at(pos + i)) << (8 * i);
    }
    if (pos + 4 + len > size_) break;
    for (std::size_t i = 0; i < len; ++i) out += static_cast<char>(
        at(pos + 4 + i));
    pos += 4 + len;
  }
  return out;
}

std::string FlightRecorder::snapshot(std::string_view reason) const {
  std::string out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(header_bytes_.size() + size_ + 128);
    out = header_bytes_;
    std::size_t pos = 0;
    while (pos + 4 <= size_) {
      std::uint32_t len = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(at(pos + i)) << (8 * i);
      }
      if (pos + 4 + len > size_) break;
      for (std::size_t i = 0; i < len; ++i) out += static_cast<char>(
          at(pos + 4 + i));
      pos += 4 + len;
    }
    const Event trailer = make_event(
        EventKind::kRecorderDump, /*round=*/0, reason,
        stats_.buffered_events, stats_.buffered_bytes,
        stats_.evicted_events, stats_.evicted_bytes);
    unsigned char rec[kEncodeBufBytes];
    const std::size_t len = encode_record(trailer, rec);
    out.append(reinterpret_cast<const char*>(rec), len);
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path, std::string_view reason) {
  const std::string bytes = snapshot(reason);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dumps;
  }
  return true;
}

bool FlightRecorder::auto_dump(std::string_view reason) {
  if (config_.dump_path.empty()) return false;
  return dump(config_.dump_path, reason);
}

void FlightRecorder::dump_to_fd(int fd, std::string_view reason)
    const noexcept {
  // NO lock and no allocation: this runs from fatal-signal context. The
  // fields below may be mid-update; the per-record length check below
  // stops the walk at the first implausible prefix.
  write_all(fd, reinterpret_cast<const unsigned char*>(header_bytes_.data()),
            header_bytes_.size());
  const std::size_t cap = buf_.size();
  const std::size_t size = std::min(size_, cap);
  std::size_t pos = 0;
  while (pos + 4 <= size) {
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(at(pos + i)) << (8 * i);
    }
    if (len > kEncodeBufBytes || pos + 4 + len > size) break;
    const std::size_t start = (head_ + pos + 4) % cap;
    const std::size_t seg1 = std::min<std::size_t>(len, cap - start);
    write_all(fd, buf_.data() + start, seg1);
    if (seg1 < len) write_all(fd, buf_.data(), len - seg1);
    pos += 4 + len;
  }
  const Event trailer = make_event(
      EventKind::kRecorderDump, /*round=*/0, reason,
      stats_.buffered_events, stats_.buffered_bytes,
      stats_.evicted_events, stats_.evicted_bytes);
  unsigned char rec[kEncodeBufBytes];
  const std::size_t len = encode_record(trailer, rec);
  write_all(fd, rec, len);
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  stats_.buffered_events = 0;
  stats_.buffered_bytes = 0;
}

FlightRecorder* recorder() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

ScopedRecorder::ScopedRecorder(FlightRecorder* r)
    : prev_(g_recorder.exchange(r, std::memory_order_acq_rel)) {}

ScopedRecorder::~ScopedRecorder() {
  g_recorder.store(prev_, std::memory_order_release);
}

bool recorder_auto_dump(std::string_view reason) {
  if (FlightRecorder* r = recorder()) return r->auto_dump(reason);
  return false;
}

}  // namespace arbmis::obs
