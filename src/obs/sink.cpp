#include "obs/sink.h"

#include <atomic>
#include <utility>

#include "obs/recorder.h"

namespace arbmis::obs {

namespace {

std::atomic<EventSink*> g_sink{nullptr};

void log_hook(util::LogLevel level, std::string_view message) {
  emit(make_event(EventKind::kLog, /*round=*/0, message,
                  static_cast<std::uint64_t>(level)));
}

}  // namespace

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>(static_cast<unsigned char>(v) | 0x80u);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

bool SinkConfig::accepts_category(EventCategory category) const noexcept {
  switch (category) {
    case EventCategory::kSemantic: return semantic;
    case EventCategory::kLogText: return log_text;
    case EventCategory::kExec: return exec;
  }
  return false;
}

bool is_per_round(EventKind kind) noexcept {
  return kind == EventKind::kRound || kind == EventKind::kFaultRound ||
         kind == EventKind::kLaneMerge;
}

void EventSink::emit(const Event& e) {
  if (!config_.accepts_category(event_category(e.kind))) return;
  if (is_per_round(e.kind) && config_.round_sample > 1 &&
      e.round % config_.round_sample != 0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  write(e);
}

void EventSink::attach_manifest(const Manifest& m) {
  const std::lock_guard<std::mutex> lock(mu_);
  manifest_ = m;
  write_manifest(m);
}

JsonlWriter::JsonlWriter(std::string path, SinkConfig config)
    : EventSink(config), path_(std::move(path)), out_(path_) {}

JsonlWriter::~JsonlWriter() = default;

void JsonlWriter::rotate(std::string new_path) {
  const std::lock_guard<std::mutex> lock(mutex());
  out_.close();
  path_ = std::move(new_path);
  out_.open(path_);
  if (manifest()) write_manifest(*manifest());
}

void JsonlWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex());
  out_.flush();
}

void JsonlWriter::write(const Event& e) { out_ << to_json_line(e) << '\n'; }

void JsonlWriter::write_manifest(const Manifest& m) {
  out_ << to_json_line(m) << '\n';
}

BinaryWriter::BinaryWriter(std::string path, SinkConfig config)
    : EventSink(config), path_(std::move(path)),
      out_(path_, std::ios::binary) {
  out_.write("ARBMISEV", 8);
  out_.put('\x01');
}

BinaryWriter::~BinaryWriter() = default;

void BinaryWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex());
  out_.flush();
}

void BinaryWriter::write(const Event& e) {
  std::string rec;
  rec += '\x01';
  rec += static_cast<char>(e.kind);
  append_varint(rec, e.round);
  append_varint(rec, e.num_values);
  for (std::uint32_t i = 0; i < e.num_values; ++i) {
    append_varint(rec, e.values[i]);
  }
  append_varint(rec, e.text.size());
  rec.append(e.text);
  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
}

void BinaryWriter::write_manifest(const Manifest& m) {
  const std::string json = to_json_line(m);
  std::string rec;
  rec += '\x00';
  append_varint(rec, json.size());
  rec += json;
  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
}

std::vector<OwnedEvent> VectorSink::events() const {
  const std::lock_guard<std::mutex> lock(events_mu_);
  return events_;
}

std::size_t VectorSink::size() const {
  const std::lock_guard<std::mutex> lock(events_mu_);
  return events_.size();
}

std::string VectorSink::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(events_mu_);
  std::string out;
  for (const OwnedEvent& e : events_) {
    out += to_json_line(e.view());
    out += '\n';
  }
  return out;
}

void VectorSink::write(const Event& e) {
  const std::lock_guard<std::mutex> lock(events_mu_);
  events_.emplace_back(e);
}

EventSink* sink() noexcept { return g_sink.load(std::memory_order_acquire); }

void emit(const Event& e) {
  if (EventSink* s = sink()) s->emit(e);
  if (FlightRecorder* r = recorder()) r->record(e);
}

bool telemetry_attached() noexcept {
  return sink() != nullptr || recorder() != nullptr;
}

ScopedSink::ScopedSink(EventSink* s)
    : prev_(g_sink.exchange(s, std::memory_order_acq_rel)),
      prev_hook_(util::set_log_event_hook(s != nullptr ? &log_hook
                                                       : nullptr)) {}

ScopedSink::~ScopedSink() {
  util::set_log_event_hook(prev_hook_);
  g_sink.store(prev_, std::memory_order_release);
}

}  // namespace arbmis::obs
