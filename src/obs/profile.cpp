#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>

#include "obs/events.h"

namespace arbmis::obs {

namespace {

std::atomic<Profiler*> g_profiler{nullptr};
std::atomic<std::uint64_t> g_next_generation{1};

thread_local std::uint32_t tl_lane = 0;

/// Per-thread buffer cache, keyed by profiler generation so a cache left
/// behind by a destroyed profiler is never written through.
struct ThreadCache {
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache tl_cache;

}  // namespace

Profiler::Profiler()
    : generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() = default;

Profiler* Profiler::active() noexcept {
  return g_profiler.load(std::memory_order_acquire);
}

Profiler::Buffer* Profiler::buffer_for_this_thread() {
  if (tl_cache.generation != generation_) {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    tl_cache = {generation_, buffers_.back().get()};
  }
  return static_cast<Buffer*>(tl_cache.buffer);
}

void Profiler::record(const char* name, std::uint64_t start_ns,
                      std::uint64_t end_ns) {
  Buffer* buf = buffer_for_this_thread();
  buf->spans.push_back(
      Span{name, tl_lane, start_ns, end_ns - start_ns});
}

std::size_t Profiler::span_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->spans.size();
  return n;
}

std::string Profiler::to_chrome_trace_json(const Manifest* manifest) const {
  std::vector<Span> spans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      spans.insert(spans.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.lane != b.lane) return a.lane < b.lane;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;  // enclosing scope before enclosed
  });

  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const Span& s : spans) t0 = std::min(t0, s.start_ns);
  if (spans.empty()) t0 = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"cat\":\"arbmis\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(s.lane);
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f}",
                  static_cast<double>(s.start_ns - t0) / 1000.0,
                  static_cast<double>(s.dur_ns) / 1000.0);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":";
  out += manifest != nullptr ? to_json_object(*manifest) : "null";
  out += '}';
  return out;
}

ScopedProfiler::ScopedProfiler(Profiler* p)
    : prev_(g_profiler.exchange(p, std::memory_order_acq_rel)) {}

ScopedProfiler::~ScopedProfiler() {
  g_profiler.store(prev_, std::memory_order_release);
}

void set_thread_lane(std::uint32_t lane) noexcept { tl_lane = lane; }

std::uint32_t thread_lane() noexcept { return tl_lane; }

std::uint64_t profile_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace arbmis::obs
