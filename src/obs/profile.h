// Profiling scopes: the only place wall-clock time exists in the
// telemetry subsystem (events carry logical time exclusively; see
// obs/events.h).
//
//   OBS_SCOPE("net.round");
//
// opens an RAII timer recording a span into a thread-local buffer owned
// by the active Profiler — no lock on the hot path; the buffer is
// registered once per (thread, profiler) pair. With no profiler attached
// the macro costs one relaxed atomic load and a branch.
//
// Spans carry a lane id (set_thread_lane) assigned by the parallel
// executor, so to_chrome_trace_json() can group tracks by lane and order
// spans deterministically by (lane, start) even though worker threads are
// pooled. The export is Chrome trace_event JSON ("ph":"X" complete
// events) and opens directly in chrome://tracing or Perfetto.
//
// Staleness guard: a ProfileScope captures the active profiler at
// construction and only records at destruction if that same profiler is
// still active — a scope that straddles a ScopedProfiler boundary drops
// its span instead of writing into a dead or different profiler. Each
// Profiler also has a process-unique generation id; thread-local buffer
// caches are keyed by it, so a stale cache from a destroyed profiler can
// never be written through.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/manifest.h"

namespace arbmis::obs {

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The attached profiler, or nullptr (the common, zero-cost case).
  static Profiler* active() noexcept;

  /// Record one closed span. `name` must be a string literal (spans store
  /// the pointer). Safe from any thread.
  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t end_ns);

  /// Total spans across all thread buffers. Takes the registry lock; call
  /// from serial code.
  std::size_t span_count() const;

  /// Chrome trace_event JSON ("traceEvents" of "ph":"X" complete events,
  /// timestamps in microseconds relative to the earliest span, one tid
  /// per lane). Call from serial code after all scopes have closed.
  std::string to_chrome_trace_json(const Manifest* manifest = nullptr) const;

 private:
  friend class ScopedProfiler;

  struct Span {
    const char* name;
    std::uint32_t lane;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };
  struct Buffer {
    std::vector<Span> spans;
  };

  Buffer* buffer_for_this_thread();

  const std::uint64_t generation_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII attachment of a profiler as the process-wide active one; restores
/// the previous on destruction. Non-owning.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler* p);
  ~ScopedProfiler();
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* prev_;
};

/// Lane id attached to spans recorded by this thread (0 = main/serial;
/// the parallel executor tags workers with lane + 1).
void set_thread_lane(std::uint32_t lane) noexcept;
std::uint32_t thread_lane() noexcept;

/// Monotonic nanoseconds for span timestamps.
std::uint64_t profile_now_ns() noexcept;

/// RAII span: records [construction, destruction) into the active
/// profiler, if any. Prefer the OBS_SCOPE macro.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) noexcept
      : name_(name), profiler_(Profiler::active()),
        start_ns_(profiler_ != nullptr ? profile_now_ns() : 0) {}
  ~ProfileScope() {
    if (profiler_ != nullptr && profiler_ == Profiler::active()) {
      profiler_->record(name_, start_ns_, profile_now_ns());
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  const char* name_;
  Profiler* profiler_;
  std::uint64_t start_ns_;
};

}  // namespace arbmis::obs

#define ARBMIS_OBS_CONCAT_INNER(a, b) a##b
#define ARBMIS_OBS_CONCAT(a, b) ARBMIS_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope under `name` (a string literal) when a
/// profiler is attached; a relaxed load and a branch otherwise.
#define OBS_SCOPE(name)                                 \
  const ::arbmis::obs::ProfileScope ARBMIS_OBS_CONCAT(  \
      arbmis_obs_scope_, __LINE__)(name)
