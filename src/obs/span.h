// Per-request span context: logical-time span markers for the serving
// path.
//
// A span is a bracket of kSpanBegin/kSpanEnd events around a unit of
// work. The serving layer opens one *root* span per request (identified
// by the service's deterministic request sequence number), and the
// layers it calls into — incremental repair, fault::resilient_mis,
// sim::Network::run — open *child* spans so trace_inspect.py --spans can
// break a request down into its repair/run constituents.
//
// Determinism contract, in two parts. (1) Span ids carry no process or
// wall-clock state: a root's id is supplied by its creator (the request
// sequence number), child ids are root*4096 + a per-root counter, so the
// serving differential harness still sees byte-identical streams across
// executor configurations. (2) Child spans emit ONLY when a span is
// already open on the current thread: instrumentation inside Network::run
// and resilient_mis stays completely silent for every non-serving caller,
// preserving the PR 5 event streams byte for byte.
//
// The context is thread-local. That is sound here because MisService
// handles each request entirely on the calling thread (the executor's
// worker lanes never emit semantic events; round barriers run on the
// controlling thread).
#pragma once

#include <cstdint>
#include <string_view>

namespace arbmis::obs {

/// Innermost span open on this thread, or 0 when none.
std::uint64_t current_span() noexcept;

/// Root span with an explicit deterministic id (must be nonzero). Emits
/// span_begin on construction and span_end on destruction.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::uint64_t id, std::uint64_t ref);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_;
  std::uint64_t prev_current_;
  std::uint64_t prev_root_;
  std::uint64_t prev_next_child_;
};

/// Child span: active (and emitting) only when a span is already open on
/// this thread; otherwise a complete no-op.
class ScopedChildSpan {
 public:
  explicit ScopedChildSpan(std::string_view name, std::uint64_t ref = 0);
  ~ScopedChildSpan();
  ScopedChildSpan(const ScopedChildSpan&) = delete;
  ScopedChildSpan& operator=(const ScopedChildSpan&) = delete;

  bool active() const noexcept { return active_; }
  std::uint64_t id() const noexcept { return id_; }

 private:
  bool active_;
  std::uint64_t id_ = 0;
  std::uint64_t prev_current_ = 0;
};

}  // namespace arbmis::obs
