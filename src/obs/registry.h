// Metrics registry: named counters, gauges, and histograms accumulated
// over a run and dumped as one stable JSON document ("arbmis.metrics.v1")
// next to the existing results/BENCH_*.json artifacts.
//
// Metric names are dotted paths ("sim.messages", "core.phase_rounds");
// docs/OBSERVABILITY.md lists every name the simulator emits. Storage is
// ordered (std::map), so the JSON is byte-stable for a given sequence of
// updates — tools/bench_gate.py diffs selected counters against committed
// baselines by exact equality.
//
// Counters opted in via track_round_series() additionally record a
// per-round delta series at each snapshot_round() call (subsampled by
// round_sample), giving "messages per round" style curves without a
// second instrumentation pass.
//
// Attachment mirrors the sink: a process-wide pointer installed by
// ScopedRegistry, nullptr when detached. Updates are mutex-guarded —
// instrumentation calls happen at serial points (round barriers, driver
// code), so the lock is uncontended; it exists so stray worker-thread
// updates (e.g. from log hooks) stay safe.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/manifest.h"
#include "util/histogram.h"

namespace arbmis::obs {

inline constexpr const char* kMetricsSchemaVersion = "arbmis.metrics.v1";

class Registry {
 public:
  explicit Registry(std::uint32_t round_sample = 1)
      : round_sample_(round_sample == 0 ? 1 : round_sample) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Monotonic counter.
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Last-write-wins gauge.
  void set(std::string_view name, std::int64_t value);
  /// Power-of-two-bucket histogram (util::Log2Histogram) — the default
  /// for heavy-tailed integer quantities such as payload widths.
  void observe(std::string_view name, std::uint64_t value);
  /// Fixed-bucket linear histogram over [lo, hi); the bucket layout is
  /// fixed by the first call for a given name.
  void observe_linear(std::string_view name, double lo, double hi,
                      std::size_t buckets, double value);

  /// Opt `name` (a counter) into the per-round delta series recorded by
  /// snapshot_round().
  void track_round_series(std::string_view name);

  /// Record one round boundary: for every tracked counter, append the
  /// delta since the previous snapshot. Rounds where
  /// round % round_sample != 0 are skipped.
  void snapshot_round(std::uint32_t round);

  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  std::uint32_t round_sample() const noexcept { return round_sample_; }

  /// The full "arbmis.metrics.v1" document; embeds `manifest` when given.
  std::string to_json(const Manifest* manifest = nullptr) const;

 private:
  struct Series {
    std::uint64_t last = 0;
    std::vector<std::uint64_t> deltas;
  };

  mutable std::mutex mu_;
  std::uint32_t round_sample_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, util::Log2Histogram, std::less<>> log2_histograms_;
  std::map<std::string, util::Histogram, std::less<>> linear_histograms_;
  std::map<std::string, Series, std::less<>> series_;
  std::vector<std::uint32_t> sampled_rounds_;
};

/// Process-wide registry, or nullptr when metrics are detached.
Registry* registry() noexcept;

/// RAII attachment of a registry; restores the previous one on
/// destruction. Non-owning.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* r);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

}  // namespace arbmis::obs
