#include "obs/span.h"

#include "obs/sink.h"

namespace arbmis::obs {

namespace {

struct SpanTls {
  std::uint64_t current = 0;     ///< innermost open span id
  std::uint64_t root = 0;        ///< enclosing root span id
  std::uint64_t next_child = 0;  ///< per-root child counter
};

thread_local SpanTls g_span_tls;

}  // namespace

std::uint64_t current_span() noexcept { return g_span_tls.current; }

ScopedSpan::ScopedSpan(std::string_view name, std::uint64_t id,
                       std::uint64_t ref)
    : id_(id),
      prev_current_(g_span_tls.current),
      prev_root_(g_span_tls.root),
      prev_next_child_(g_span_tls.next_child) {
  g_span_tls.current = id_;
  g_span_tls.root = id_;
  g_span_tls.next_child = 0;
  emit(make_event(EventKind::kSpanBegin, /*round=*/0, name, id_,
                  /*parent=*/std::uint64_t{0}, ref));
}

ScopedSpan::~ScopedSpan() {
  emit(make_event(EventKind::kSpanEnd, /*round=*/0, {}, id_));
  g_span_tls.current = prev_current_;
  g_span_tls.root = prev_root_;
  g_span_tls.next_child = prev_next_child_;
}

ScopedChildSpan::ScopedChildSpan(std::string_view name, std::uint64_t ref)
    : active_(g_span_tls.current != 0) {
  if (!active_) return;
  prev_current_ = g_span_tls.current;
  id_ = g_span_tls.root * 4096 + (++g_span_tls.next_child);
  g_span_tls.current = id_;
  emit(make_event(EventKind::kSpanBegin, /*round=*/0, name, id_,
                  prev_current_, ref));
}

ScopedChildSpan::~ScopedChildSpan() {
  if (!active_) return;
  emit(make_event(EventKind::kSpanEnd, /*round=*/0, {}, id_));
  g_span_tls.current = prev_current_;
}

}  // namespace arbmis::obs
