// Structured telemetry events.
//
// Every observable fact about a run — round barriers, pipeline phase
// transitions, fault decisions, model-checker verdicts — is expressed as
// one Event: a kind, a logical round, up to kMaxEventValues named 64-bit
// values, and an optional text payload. Field names live in a central
// schema table (event_schema) shared by the JSONL writer, the binary
// writer, and tools/trace_inspect.py, so the on-disk formats and the
// validator can never drift apart silently.
//
// Determinism contract: events use *logical* time only (the round number
// and emission order); wall-clock lives exclusively in the profiler
// (obs/profile.h). Kinds in the kSemantic category are emitted at serial
// points of the simulator (round barriers, run boundaries, pipeline
// drivers) and are byte-identical across executor thread counts and inbox
// implementations — tests/test_parallel_equivalence.cpp enforces this.
// Kinds in the kExec category describe executor internals (per-lane merge
// volumes) and legitimately vary by thread count; the default sink
// configuration excludes them (obs/sink.h).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace arbmis::obs {

inline constexpr std::size_t kMaxEventValues = 8;

enum class EventKind : std::uint8_t {
  kRunBegin = 0,   ///< Network::run entered
  kRound,          ///< one round barrier (accounting snapshot)
  kRunEnd,         ///< Network::run returning (RunStats)
  kModelCheck,     ///< end-of-run CONGEST checker summary
  kViolation,      ///< one model-check violation (text = what)
  kFaultRound,     ///< per-round injected-fault ledger entry
  kFaultCrash,     ///< one crash decision at a round barrier
  kFaultRecovery,  ///< one recovery resolved at a round barrier
  kPhase,          ///< pipeline phase transition (text = phase name)
  kScale,          ///< Algorithm 1 per-scale outcome
  kShatter,        ///< shattering outcome of the bad set
  kAttempt,        ///< one resilient_mis attempt
  kCertified,      ///< resilient_mis final certification verdict
  kLog,            ///< a util/log line routed into the stream
  kLaneMerge,      ///< executor detail: one lane folded at a barrier
  // Serving-layer kinds (src/serve/; docs/SERVING.md). Appended after
  // kLaneMerge so existing binary traces keep their kind bytes.
  kRequestBegin,     ///< one service request accepted (text = op name)
  kRequestEnd,       ///< the request's reply went out (status, bytes)
  kCacheHit,         ///< compute served from the result cache
  kCacheMiss,        ///< compute required a pipeline run
  kRepairBegin,      ///< incremental repair starting on a residual
  kRepairCertified,  ///< repair outcome after certification
  // Introspection kinds (obs v2: flight recorder + per-request spans).
  // Appended after the serving kinds so binary kind bytes stay stable.
  kSpanBegin,     ///< a scoped span opened (text = span name)
  kSpanEnd,       ///< the matching span closed
  kRecorderDump,  ///< flight-recorder dump trailer (text = reason)
  kCount
};

/// Coarse grouping used by sink filtering (obs/sink.h).
enum class EventCategory : std::uint8_t {
  kSemantic = 0,  ///< deterministic in (graph, seed, algorithm, plan)
  kLogText,       ///< log lines (deterministic content, free-form)
  kExec,          ///< executor internals; vary by thread count
};

EventCategory event_category(EventKind kind) noexcept;

/// One telemetry record. `text` is borrowed — valid only for the duration
/// of the emit call (sinks that buffer must copy; see OwnedEvent).
struct Event {
  EventKind kind = EventKind::kCount;
  std::uint32_t round = 0;
  std::string_view text{};
  std::array<std::uint64_t, kMaxEventValues> values{};
  std::uint32_t num_values = 0;
};

/// Deep copy of an Event for buffering sinks (obs::VectorSink).
struct OwnedEvent {
  EventKind kind = EventKind::kCount;
  std::uint32_t round = 0;
  std::string text;
  std::array<std::uint64_t, kMaxEventValues> values{};
  std::uint32_t num_values = 0;

  OwnedEvent() = default;
  explicit OwnedEvent(const Event& e)
      : kind(e.kind), round(e.round), text(e.text), values(e.values),
        num_values(e.num_values) {}
  Event view() const noexcept {
    return Event{kind, round, text, values, num_values};
  }
  friend bool operator==(const OwnedEvent&, const OwnedEvent&) = default;
};

/// Field names of one kind, in Event::values order. `text_field` is the
/// JSON key of the text payload (nullptr = kind carries no text).
struct EventSchema {
  const char* name = nullptr;  ///< stable wire name, e.g. "round"
  const char* text_field = nullptr;
  std::array<const char*, kMaxEventValues> fields{};
  std::uint32_t num_fields = 0;
};

/// Schema of `kind`; valid for every kind < kCount.
const EventSchema& event_schema(EventKind kind) noexcept;

/// Builds an event from a value list (bounds-checked at compile time).
template <typename... Values>
Event make_event(EventKind kind, std::uint32_t round, std::string_view text,
                 Values... values) {
  static_assert(sizeof...(Values) <= kMaxEventValues);
  Event e;
  e.kind = kind;
  e.round = round;
  e.text = text;
  e.values = {static_cast<std::uint64_t>(values)...};
  e.num_values = sizeof...(Values);
  return e;
}

/// Canonical single-line JSON rendering, shared by the JSONL writer and
/// the capture sink so stream comparisons and files use identical bytes:
///   {"ev":"round","round":3,"messages":8,...}
std::string to_json_line(const Event& e);

/// JSON string escaping for the writers (quotes, backslashes, control
/// characters; input treated as raw bytes).
void append_json_escaped(std::string& out, std::string_view text);

}  // namespace arbmis::obs
