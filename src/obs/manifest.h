// Run manifest: the reproducibility header every telemetry artifact
// carries. A trace, event stream, or metrics dump is only as useful as
// the ability to regenerate it, so the manifest pins everything a rerun
// needs: the git revision and build flavor of the binary, the seed, the
// workload description, and the executor configuration (thread count,
// inbox implementation). Writers emit it as the first record of every
// file — including each file produced by sink rotation — so any artifact
// is reproducible from its header alone.
//
// The executor fields (threads, inbox) live ONLY here, never in events:
// they do not affect run semantics (the determinism-merge rule), and
// keeping them out of the event stream is what lets the differential
// harness compare streams across executor configurations byte for byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace arbmis::obs {

/// Telemetry wire-format version; bump on any breaking schema change
/// (tools/trace_inspect.py refuses unknown versions).
inline constexpr const char* kSchemaVersion = "arbmis.obs.v1";

struct Manifest {
  std::string schema = kSchemaVersion;
  std::string git_sha;     ///< revision the binary was configured from
  std::string build_type;  ///< "Release" / "Debug" (NDEBUG of this TU's lib)
  std::string tool;        ///< emitting binary, e.g. "bench_comparison"
  std::string workload;    ///< free-form graph/workload description
  std::uint64_t seed = 0;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t threads = 0;  ///< simulator workers (0 = serial)
  std::string inbox;          ///< "arena" / "reference"
  std::string extra;          ///< free-form key=value notes

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Manifest pre-filled with build provenance (git sha baked in at
/// configure time, build flavor from NDEBUG) and the process-default
/// executor configuration.
Manifest make_manifest(std::string tool);

/// The bare manifest object `{...}`, for embedding inside other JSON
/// documents (the metrics dump, the Chrome trace's otherData).
std::string to_json_object(const Manifest& m);

/// Single-line JSON object: {"manifest":{...}}. The leading "manifest"
/// key is how readers tell the header apart from event records.
std::string to_json_line(const Manifest& m);

}  // namespace arbmis::obs
