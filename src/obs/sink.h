// Event sinks: where telemetry events go.
//
// A sink is attached process-wide with ScopedSink (mirroring
// sim::ScopedNumThreads / ScopedInboxImpl); instrumentation sites check
// `obs::sink() != nullptr` — a single relaxed atomic load — so a build
// with no sink attached pays one predictable branch per serial
// instrumentation point and nothing per message or per node.
//
// Filtering happens in the base class before the write virtual: a
// SinkConfig selects event categories (executor-internal kinds are off by
// default to keep streams byte-identical across thread counts) and can
// subsample per-round kinds (kRound / kFaultRound / kLaneMerge) to every
// Nth round for long runs. Run-boundary and phase events always pass.
//
// Writers re-emit the attached Manifest at the head of every file,
// including each file produced by rotate(), so any artifact on disk is
// self-describing.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/manifest.h"
#include "util/log.h"

namespace arbmis::obs {

struct SinkConfig {
  bool semantic = true;   ///< kSemantic kinds (deterministic run facts)
  bool log_text = true;   ///< kLog (routed util/log lines)
  bool exec = false;      ///< kExec kinds; vary by thread count
  /// Keep per-round kinds only for rounds where round % round_sample == 0
  /// (0 is treated as 1, i.e. keep everything).
  std::uint32_t round_sample = 1;

  bool accepts_category(EventCategory category) const noexcept;
};

/// True for kinds emitted once per round barrier — the only kinds subject
/// to round sampling.
bool is_per_round(EventKind kind) noexcept;

/// Appends one unsigned LEB128 varint — the integer encoding of the
/// ARBMISEV binary format, shared by BinaryWriter and the flight
/// recorder's header rendering (obs/recorder.h).
void append_varint(std::string& out, std::uint64_t v);

/// Base sink: thread-safe filtered emission. Derived classes implement
/// write()/write_manifest(), which are always called under the sink lock.
class EventSink {
 public:
  explicit EventSink(SinkConfig config = {}) : config_(config) {}
  virtual ~EventSink() = default;
  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;

  /// Filter by config, then hand to the writer. Safe from any thread.
  void emit(const Event& e);

  /// Attach the run manifest; written immediately as the file header and
  /// re-written by rotating writers on each new file.
  void attach_manifest(const Manifest& m);

  const SinkConfig& config() const noexcept { return config_; }

  virtual void flush() {}

 protected:
  virtual void write(const Event& e) = 0;
  virtual void write_manifest(const Manifest& m) { (void)m; }

  const std::optional<Manifest>& manifest() const noexcept {
    return manifest_;
  }
  std::mutex& mutex() noexcept { return mu_; }

 private:
  SinkConfig config_;
  std::optional<Manifest> manifest_;
  std::mutex mu_;
};

/// One JSON object per line; first line is the manifest.
class JsonlWriter : public EventSink {
 public:
  explicit JsonlWriter(std::string path, SinkConfig config = {});
  ~JsonlWriter() override;

  /// Close the current file and continue into `new_path`, re-emitting the
  /// manifest header so the new file stands alone.
  void rotate(std::string new_path);

  const std::string& path() const noexcept { return path_; }
  void flush() override;

 protected:
  void write(const Event& e) override;
  void write_manifest(const Manifest& m) override;

 private:
  std::string path_;
  std::ofstream out_;
};

/// Compact binary stream (see docs/OBSERVABILITY.md for the layout):
///   magic "ARBMISEV", version byte 0x01, then records:
///     0x00  manifest: varint length + manifest JSON bytes
///     0x01  event: kind byte, varint round, varint num_values,
///           num_values varints, varint text length, text bytes
/// All varints are unsigned LEB128.
class BinaryWriter : public EventSink {
 public:
  explicit BinaryWriter(std::string path, SinkConfig config = {});
  ~BinaryWriter() override;

  const std::string& path() const noexcept { return path_; }
  void flush() override;

 protected:
  void write(const Event& e) override;
  void write_manifest(const Manifest& m) override;

 private:
  std::string path_;
  std::ofstream out_;
};

/// In-memory capture for tests and the differential harness.
class VectorSink : public EventSink {
 public:
  explicit VectorSink(SinkConfig config = {}) : EventSink(config) {}

  std::vector<OwnedEvent> events() const;
  std::size_t size() const;

  /// The captured stream rendered exactly as JsonlWriter would write it
  /// (manifest excluded) — the unit of comparison for event-stream
  /// equality in tests/test_parallel_equivalence.cpp.
  std::string to_jsonl() const;

 protected:
  void write(const Event& e) override;

 private:
  mutable std::mutex events_mu_;
  std::vector<OwnedEvent> events_;
};

/// Process-wide sink, or nullptr when telemetry is detached (the common,
/// zero-cost case).
EventSink* sink() noexcept;

/// Emit to the attached sink and flight recorder, if any. The two null
/// checks are the entire cost of a disabled instrumentation point.
void emit(const Event& e);

/// True when any consumer — sink or flight recorder (obs/recorder.h) —
/// is attached. Instrumentation sites that gather data before building
/// events should test this rather than sink() alone, so a recorder-only
/// process (the serving daemon's default) still observes the run.
bool telemetry_attached() noexcept;

/// RAII attachment of a sink (and of the util/log → event bridge, so log
/// lines become kLog events while attached). Non-owning; restores the
/// previous sink and log hook on destruction. Mirrors the repo's other
/// scoped process-wide overrides.
class ScopedSink {
 public:
  explicit ScopedSink(EventSink* s);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  EventSink* prev_;
  util::LogEventHook prev_hook_;
};

}  // namespace arbmis::obs
