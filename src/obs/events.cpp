#include "obs/events.h"

#include <cstdio>

namespace arbmis::obs {

namespace {

constexpr std::size_t kNumKinds = static_cast<std::size_t>(EventKind::kCount);

/// The wire schema. Order matches EventKind; tools/trace_inspect.py embeds
/// the same table (docs/OBSERVABILITY.md documents both) — update all
/// three together and bump the manifest schema version on breaking change.
constexpr std::array<EventSchema, kNumKinds> kSchemas = {{
    {"run_begin", "algorithm",
     {"nodes", "edges", "seed", "max_rounds", "enforce_congest"}, 5},
    {"round", nullptr,
     {"halted", "messages", "payload_bits", "in_flight", "rng_draws",
      "max_message_bits", "k_prev"},
     7},
    {"run_end", nullptr,
     {"rounds", "messages", "payload_bits", "max_edge_load", "all_halted",
      "rng_draws"},
     6},
    {"model_check", nullptr,
     {"k", "max_message_bits", "max_edge_bits", "max_rng_reads", "violations",
      "edge_bit_budget"},
     6},
    {"violation", "what", {}, 0},
    {"fault_round", nullptr, {"drops", "duplicates", "crashes", "recoveries"},
     4},
    {"fault_crash", nullptr, {"node", "recover_at"}, 2},
    {"fault_recovery", nullptr, {"node"}, 1},
    {"phase", "name", {"index", "set_size", "rounds", "messages"}, 4},
    {"scale", nullptr, {"scale", "joined", "covered", "bad", "active_after"},
     5},
    {"shatter", nullptr,
     {"set_size", "components", "largest", "vlo", "vhi"}, 5},
    {"attempt", nullptr,
     {"attempt", "residual", "committed", "covered", "faulty", "rounds"}, 6},
    {"certified", nullptr, {"certified", "attempts", "rounds_to_recovery"},
     3},
    {"log", "message", {"level"}, 1},
    {"lane_merge", nullptr, {"lane", "sends", "messages", "halts"}, 4},
    {"request_begin", "op", {"request", "graph"}, 2},
    {"request_end", nullptr, {"request", "status", "payload_bytes"}, 3},
    {"cache_hit", nullptr, {"graph", "seed", "key_hash"}, 3},
    {"cache_miss", nullptr, {"graph", "seed", "key_hash"}, 3},
    {"repair_begin", nullptr, {"graph", "epoch", "residual", "full_recompute"},
     4},
    {"repair_certified", nullptr,
     {"graph", "epoch", "certified", "committed", "rounds"}, 5},
    {"span_begin", "name", {"span", "parent", "ref"}, 3},
    {"span_end", nullptr, {"span"}, 1},
    {"recorder_dump", "reason",
     {"buffered_events", "buffered_bytes", "evicted_events", "evicted_bytes"},
     4},
}};

}  // namespace

EventCategory event_category(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kLog:
      return EventCategory::kLogText;
    case EventKind::kLaneMerge:
      return EventCategory::kExec;
    default:
      return EventCategory::kSemantic;
  }
}

const EventSchema& event_schema(EventKind kind) noexcept {
  return kSchemas[static_cast<std::size_t>(kind)];
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string to_json_line(const Event& e) {
  const EventSchema& schema = event_schema(e.kind);
  std::string out;
  out.reserve(64 + e.text.size());
  out += "{\"ev\":\"";
  out += schema.name;
  out += "\",\"round\":";
  out += std::to_string(e.round);
  const std::uint32_t n = std::min(e.num_values, schema.num_fields);
  for (std::uint32_t i = 0; i < n; ++i) {
    out += ",\"";
    out += schema.fields[i];
    out += "\":";
    out += std::to_string(e.values[i]);
  }
  if (schema.text_field != nullptr) {
    out += ",\"";
    out += schema.text_field;
    out += "\":\"";
    append_json_escaped(out, e.text);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace arbmis::obs
