// CONGEST message format.
//
// Every message carries an algorithm-defined 32-bit tag plus one 64-bit
// payload word; the network fills in the sender id on delivery. This is a
// deliberate straitjacket: a tag + one machine word is O(log n) bits for
// every graph this repository can hold, so any algorithm expressible on
// this interface is a CONGEST algorithm. The network additionally enforces
// "at most one message per directed edge per round" (the standard CONGEST
// normalization) unless a test opts out.
#pragma once

#include <bit>
#include <cstdint>

#include "graph/graph.h"

namespace arbmis::sim {

struct Message {
  graph::NodeId src = 0;     ///< sender's node id (set by the network)
  std::uint32_t tag = 0;     ///< algorithm-defined message kind
  std::uint64_t payload = 0; ///< one CONGEST word
};

/// Bits accounted per message: tag is bounded by O(1) distinct kinds in all
/// our algorithms, payload is one word, src is implicit from the port. We
/// charge the full 64-bit word plus an 8-bit kind.
inline constexpr std::uint64_t kBitsPerMessage = 72;

/// Bits charged for the message tag in the *actual*-width accounting below
/// (matches ModelCheckOptions::tag_bits' default).
inline constexpr std::uint32_t kTagBits = 8;

/// Actual width of one message on the wire: the tag's O(1) kind bits plus
/// the significant bits of the payload word — the same formula the model
/// checker budgets with. Per-round accounting (RoundDelta::payload_bits,
/// the sim.message_bits histogram) uses this; the nominal run-wide
/// RunStats::payload_bits keeps charging the full kBitsPerMessage word.
constexpr std::uint64_t message_bits(const Message& m) noexcept {
  return kTagBits + static_cast<std::uint64_t>(std::bit_width(m.payload));
}

}  // namespace arbmis::sim
