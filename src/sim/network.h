// Synchronous CONGEST network simulator.
//
// Execution model: in each round the network (1) delivers all messages sent
// in the previous round, (2) calls Algorithm::on_round for every non-halted
// node, collecting its sends into next-round inboxes, and (3) advances the
// round counter. Nodes halt individually via NodeContext::halt(); the run
// ends when every node has halted or the round budget is exhausted.
//
// Accounting: rounds, total messages, total payload bits, and the maximum
// number of messages any single directed edge carried in one round. With
// `enforce_congest` (default on) a node sending more than
// `max_messages_per_edge_per_round` on one port aborts the run with
// std::logic_error — this is how the test suite proves the algorithms obey
// the CONGEST normalization rather than merely claiming it. On top of the
// message-count cap, a ModelChecker (sim/model_check.h, also default-on)
// enforces the per-edge bit budget, RNG-stream isolation with a per-round
// randomness budget, and callback pinning (no cross-node state access),
// and keeps the read-k multiplicity ledger reported via
// model_check_report().
//
// Determinism: node v draws from Rng(seed).child(v); callback order never
// affects the streams, so a run is a pure function of (graph, seed,
// algorithm).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "sim/algorithm.h"
#include "sim/message.h"
#include "sim/model_check.h"
#include "util/rng.h"

namespace arbmis::sim {

struct NetworkOptions {
  bool enforce_congest = true;
  std::uint32_t max_messages_per_edge_per_round = 1;
  /// Runtime CONGEST model checker (enabled by default; see
  /// sim/model_check.h). Set `model_check.enabled = false` to opt out.
  ModelCheckOptions model_check;
};

struct RunStats {
  std::uint32_t rounds = 0;           ///< rounds executed (excludes on_start)
  std::uint64_t messages = 0;         ///< total messages delivered
  std::uint64_t payload_bits = 0;     ///< messages * kBitsPerMessage
  std::uint32_t max_edge_load = 0;    ///< max msgs on one directed edge/round
  bool all_halted = false;            ///< every node halted within budget

  /// Accumulates another stage's stats (pipeline composition): rounds add,
  /// loads max.
  void absorb(const RunStats& other) noexcept;
};

class Network {
 public:
  Network(const graph::Graph& g, std::uint64_t seed,
          NetworkOptions options = {});

  const graph::Graph& graph() const noexcept { return *graph_; }
  std::uint32_t round() const noexcept { return round_; }
  bool halted(graph::NodeId v) const noexcept { return halted_[v]; }
  graph::NodeId num_halted() const noexcept { return num_halted_; }

  /// Called after every completed round with the round number just
  /// finished; used by audits and traces. May inspect but not mutate.
  using RoundObserver = std::function<void(const Network&, std::uint32_t)>;

  /// Runs `algorithm` until all nodes halt or `max_rounds` rounds complete.
  /// The network resets its per-run state (halts, inboxes, round counter)
  /// at the top of each run; RNG streams continue across runs so that a
  /// pipeline of stages consumes one coherent randomness source.
  RunStats run(Algorithm& algorithm, std::uint32_t max_rounds,
               const RoundObserver& observer = {});

  /// What the model checker observed during the latest run (width series,
  /// read multiplicity k, violations). Budget fields are valid even before
  /// the first run.
  const ModelCheckReport& model_check_report() const noexcept {
    return checker_.report();
  }

 private:
  friend class NodeContext;
  friend class NodeRandom;

  void do_send(graph::NodeId from, graph::NodeId port, std::uint32_t tag,
               std::uint64_t payload);
  void do_halt(graph::NodeId v);
  /// Accounts one logical draw from v's stream, then exposes it.
  util::Rng& draw_rng(graph::NodeId v);

  const graph::Graph* graph_;
  NetworkOptions options_;
  std::vector<util::Rng> rngs_;
  std::vector<bool> halted_;
  graph::NodeId num_halted_ = 0;
  std::uint32_t round_ = 0;

  // inboxes for the current round / being filled for the next round
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> next_inbox_;

  // Per-directed-edge send counters, epoch-stamped by round to avoid a
  // clear per round. Slot for (v, port) = edge_slot_offset_[v] + port.
  std::vector<std::uint64_t> edge_offset_;
  std::vector<std::uint32_t> edge_sends_;
  std::vector<std::uint32_t> edge_epoch_;

  ModelChecker checker_;
  RunStats stats_;
};

}  // namespace arbmis::sim
