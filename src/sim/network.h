// Synchronous CONGEST network simulator.
//
// Execution model: in each round the network (1) delivers all messages sent
// in the previous round, (2) calls Algorithm::on_round for every non-halted
// node, collecting its sends into next-round inboxes, and (3) advances the
// round counter. Nodes halt individually via NodeContext::halt(); the run
// ends when every node has halted or the round budget is exhausted.
//
// Parallel execution: with NetworkOptions::num_threads >= 1 step (2) runs
// on a persistent worker pool (sim/thread_pool.h). Each round the
// non-halted nodes are sharded into contiguous node-id ranges of
// near-equal size, one shard per worker; every worker buffers its sends,
// halt count, and checker accounting into a private ExecLane, and the
// lanes are merged at the round barrier in shard (= node-id) order.
//
// Determinism-merge rule: the serial executor emits sends in ascending
// sender id (it scans v = 0..n-1) and each node's RNG stream is private,
// so replaying the lane buffers in shard order reproduces the serial
// inbox order, stats, and ModelChecker ledger *byte-identically* for every
// thread count — tests/test_parallel_equivalence.cpp is the proof.
// num_threads == 0 selects the legacy serial path (and is the default);
// a process-wide override for code that constructs its own Networks deep
// inside pipelines is available via ScopedNumThreads.
//
// Accounting: rounds, total messages, total payload bits, and the maximum
// number of messages any single directed edge carried in one round. With
// `enforce_congest` (default on) a node sending more than
// `max_messages_per_edge_per_round` on one port aborts the run with
// std::logic_error — this is how the test suite proves the algorithms obey
// the CONGEST normalization rather than merely claiming it. On top of the
// message-count cap, a ModelChecker (sim/model_check.h, also default-on)
// enforces the per-edge bit budget, RNG-stream isolation with a per-round
// randomness budget, and callback pinning (no cross-node state access),
// and keeps the read-k multiplicity ledger reported via
// model_check_report().
//
// Determinism: node v draws from Rng(seed).child(v); callback order never
// affects the streams, so a run is a pure function of (graph, seed,
// algorithm) — and, by the merge rule above, independent of num_threads.
//
// Fault injection: NetworkOptions::fault attaches a FaultInjector
// (sim/fault_hooks.h; the deterministic FaultPlan lives in src/fault/).
// Message fates are decided per send as a pure function of (plan, edge
// slot, round), surviving copies ride the regular lane staging, and node
// crashes/recoveries resolve serially at the round barrier — so a faulty
// run is a pure function of (graph, seed, algorithm, plan) and remains
// byte-identical across thread counts. With no injector attached every
// fault path is skipped.
//
// Message arena (the delivery fast path): the CONGEST normalization caps
// traffic at one message per directed edge per round, so instead of one
// heap vector per node the default inbox is a flat arena with exactly one
// Message slot per directed edge, laid out in the CSR edge order the
// per-edge counters already use (slot base of node v = edge_offset_[v]).
// A send appends at inbox_count_next_[target], so node v's inbox is the
// contiguous range [edge_offset_[v], edge_offset_[v] + count) of the
// arena — filled in ascending sender id, which for sorted adjacency IS
// port order, i.e. byte-identical to the retained vector-inbox reference
// implementation. Delivery, lane merge, and fault-injected duplicates are
// plain index writes into storage allocated once at construction: after
// the constructor returns, a fault-free run performs zero heap
// allocations in either executor. Fault duplicates (and runs that opt out
// of enforce_congest) can exceed the one-slot-per-edge capacity; the
// excess overflows into a per-node side buffer that is empty — and costs
// nothing — on the normal path, keeping "<= 1 message per directed edge
// per round" an enforced invariant rather than a load-bearing assumption.
// NetworkOptions::inbox / ScopedInboxImpl select the reference
// implementation for differential tests (tests/test_message_arena.cpp,
// the arena matrix in tests/test_parallel_equivalence.cpp, and the
// arena-vs-reference fuzz in tests/test_fuzz.cpp are the proof).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/algorithm.h"
#include "sim/fault_hooks.h"
#include "sim/message.h"
#include "sim/model_check.h"
#include "sim/thread_pool.h"
#include "util/rng.h"

namespace arbmis::sim {

/// Inbox storage strategy (see the "Message arena" section of the header
/// comment). The reference implementation is retained verbatim so the
/// arena can be differentially tested against the pre-arena behavior.
enum class InboxImpl : std::uint8_t {
  kProcessDefault = 0,  ///< resolve via default_inbox_impl()
  kArena,               ///< flat per-directed-edge slots (the fast path)
  kReferenceVectors,    ///< legacy vector<vector<Message>> inboxes
};

struct NetworkOptions {
  bool enforce_congest = true;
  std::uint32_t max_messages_per_edge_per_round = 1;
  /// Inbox storage. kProcessDefault resolves to the process-wide default
  /// (the arena unless a ScopedInboxImpl override is active). Results are
  /// bit-identical across all values.
  InboxImpl inbox = InboxImpl::kProcessDefault;
  /// Fault injector (non-owning; must outlive every run). nullptr (the
  /// default) disables every fault path — runs are byte-identical to a
  /// build without the subsystem. See sim/fault_hooks.h for the contract
  /// and src/fault/ for the deterministic FaultPlan implementation.
  FaultInjector* fault = nullptr;
  /// Worker threads for round execution. 0 (default) = the process-wide
  /// default, which is the serial executor unless a ScopedNumThreads
  /// override is active; >= 1 = the staged parallel executor with exactly
  /// that many workers (1 still exercises the staging + merge machinery).
  /// Results are bit-identical across all values.
  std::uint32_t num_threads = 0;
  /// Runtime CONGEST model checker (enabled by default; see
  /// sim/model_check.h). Set `model_check.enabled = false` to opt out.
  ModelCheckOptions model_check;
};

/// Process-wide worker count applied when NetworkOptions::num_threads == 0.
/// Defaults to 0 (serial). Not thread-safe to mutate while Networks are
/// being constructed concurrently.
std::uint32_t default_num_threads() noexcept;

/// RAII override of default_num_threads(): routes every Network constructed
/// in scope (including those buried inside pipeline drivers such as
/// core::arb_mis) through the parallel executor. Restores the previous
/// value on destruction.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(std::uint32_t num_threads) noexcept;
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  std::uint32_t previous_;
};

/// Process-wide inbox implementation applied when NetworkOptions::inbox ==
/// InboxImpl::kProcessDefault. Defaults to the arena. Never returns
/// kProcessDefault. Not thread-safe to mutate while Networks are being
/// constructed concurrently.
InboxImpl default_inbox_impl() noexcept;

/// RAII override of default_inbox_impl(): routes every Network constructed
/// in scope (including those buried inside pipeline drivers) through the
/// given inbox implementation — how the differential tests run whole
/// pipelines against the retained reference implementation.
class ScopedInboxImpl {
 public:
  explicit ScopedInboxImpl(InboxImpl impl) noexcept;
  ~ScopedInboxImpl();
  ScopedInboxImpl(const ScopedInboxImpl&) = delete;
  ScopedInboxImpl& operator=(const ScopedInboxImpl&) = delete;

 private:
  InboxImpl previous_;
};

struct RunStats {
  std::uint32_t rounds = 0;           ///< rounds executed (excludes on_start)
  std::uint64_t messages = 0;         ///< total messages delivered
  std::uint64_t payload_bits = 0;     ///< messages * kBitsPerMessage
  std::uint32_t max_edge_load = 0;    ///< max msgs on one directed edge/round
  bool all_halted = false;            ///< every node halted within budget

  /// Accumulates another stage's stats (pipeline composition): rounds add,
  /// loads max, all_halted ANDs (a pipeline halted iff every stage did).
  void absorb(const RunStats& other) noexcept;
};

/// Per-worker staging area of the parallel round executor. Everything a
/// callback would have written to shared simulator state is buffered here
/// and merged at the round barrier in shard order (see the determinism-
/// merge rule in the header comment).
struct ExecLane {
  struct StagedSend {
    graph::NodeId target;
    Message msg;
    /// Carries the sender's this-round randomness (read-k ledger entry).
    bool rng_bearing;
    /// Inbox copies to deliver (>= 1; dropped messages are never staged).
    std::uint8_t copies;
  };

  /// Sends in call order; senders within a shard ascend, so concatenating
  /// lanes in shard order reproduces the serial send order.
  std::vector<StagedSend> sends;
  std::uint64_t messages = 0;      ///< delivered messages consumed
  std::uint64_t payload_bits = 0;  ///< actual bits consumed (message_bits)
  std::uint64_t rng_draws = 0;     ///< logical draws made in this shard
  std::uint32_t max_edge_load = 0;
  graph::NodeId halts = 0;         ///< nodes newly halted in this shard
  /// Fault events staged by this worker's sends (merged at the barrier so
  /// the injector's ledger stays executor-independent).
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;
  /// Contiguous copy of an overflowing arena inbox (region + side buffer)
  /// for the duration of one callback; unused — and never allocated — on
  /// the fault-free path. Not cleared by reset(): it is transient per
  /// callback and keeps its capacity across rounds.
  std::vector<Message> scratch;
  ModelCheckerLane check;

  void reset() noexcept {
    sends.clear();
    messages = 0;
    payload_bits = 0;
    rng_draws = 0;
    max_edge_load = 0;
    halts = 0;
    fault_drops = 0;
    fault_duplicates = 0;
    check.reset();
  }
};

/// Per-round accounting snapshot, refreshed at every round barrier and
/// readable by RoundObservers (sim/trace.h records it). `messages` counts
/// the messages consumed by callbacks this round; fault counters cover
/// faults resolved or injected this round (drops/duplicates are charged to
/// the round the message was *sent* in).
struct RoundDelta {
  std::uint32_t round = 0;
  std::uint64_t messages = 0;
  /// Actual bits consumed this round: sum of message_bits() (tag kind bits
  /// plus significant payload bits) over the consumed messages — NOT
  /// messages * kBitsPerMessage; the nominal full-word charge lives only
  /// in the run-wide RunStats::payload_bits.
  std::uint64_t payload_bits = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;
  std::uint32_t fault_crashes = 0;
  std::uint32_t fault_recoveries = 0;

  friend bool operator==(const RoundDelta&, const RoundDelta&) = default;
};

class Network {
 public:
  Network(graph::GraphView g, std::uint64_t seed,
          NetworkOptions options = {});

  graph::GraphView graph() const noexcept { return graph_; }
  std::uint32_t round() const noexcept { return round_; }
  bool halted(graph::NodeId v) const noexcept { return halted_[v] != 0; }
  graph::NodeId num_halted() const noexcept { return num_halted_; }
  /// Resolved worker count (0 = serial executor).
  std::uint32_t num_threads() const noexcept { return num_threads_; }
  /// True when the flat message arena backs the inboxes (the default);
  /// false selects the retained vector-inbox reference implementation.
  bool uses_arena() const noexcept { return use_arena_; }
  /// Total Message slots in the arena = number of directed edges (one slot
  /// per (node, port) pair, CSR order). Valid in both inbox modes.
  std::uint64_t arena_slots() const noexcept { return edge_offset_.back(); }
  /// Logical RNG draws made so far in the current run, summed over nodes.
  /// Deterministic in (graph, seed, algorithm) and executor-independent.
  std::uint64_t total_rng_draws() const noexcept { return rng_draws_; }
  /// Messages staged for delivery next round, network-wide / to one node
  /// (valid at round barriers, e.g. inside a RoundObserver; test hooks).
  std::uint64_t in_flight() const noexcept { return in_flight_next_; }
  std::uint32_t staged_inbox_size(graph::NodeId v) const noexcept {
    return use_arena_ ? inbox_count_next_[v]
                      : static_cast<std::uint32_t>(next_inbox_[v].size());
  }
  /// Staged messages for v that exceeded its per-directed-edge slot
  /// capacity and sit in the overflow side buffer (0 on the normal path).
  std::uint32_t staged_overflow_size(graph::NodeId v) const noexcept {
    const std::uint32_t cap = graph_.degree(v);
    return use_arena_ && inbox_count_next_[v] > cap
               ? inbox_count_next_[v] - cap
               : 0;
  }

  /// Called after every completed round with the round number just
  /// finished; used by audits and traces. May inspect but not mutate.
  /// Under the parallel executor it fires at the round barrier, after the
  /// lane merge, so it always observes a consistent global state.
  using RoundObserver = std::function<void(const Network&, std::uint32_t)>;

  /// Runs `algorithm` until all nodes halt or `max_rounds` rounds complete.
  /// The network resets its per-run state (halts, inboxes, round counter)
  /// at the top of each run; RNG streams continue across runs so that a
  /// pipeline of stages consumes one coherent randomness source.
  RunStats run(Algorithm& algorithm, std::uint32_t max_rounds,
               const RoundObserver& observer = {});

  /// What the model checker observed during the latest run (width series,
  /// read multiplicity k, violations). Budget fields are valid even before
  /// the first run.
  const ModelCheckReport& model_check_report() const noexcept {
    return checker_.report();
  }

  /// Accounting for the most recently completed round (valid inside a
  /// RoundObserver and after run() returns).
  const RoundDelta& last_round() const noexcept { return last_round_; }

 private:
  friend class NodeContext;
  friend class NodeRandom;

  void do_send(ExecLane* lane, graph::NodeId from, graph::NodeId port,
               std::uint32_t tag, std::uint64_t payload);
  void do_halt(ExecLane* lane, graph::NodeId v);
  /// Accounts one logical draw from v's stream, then exposes it.
  util::Rng& draw_rng(ExecLane* lane, graph::NodeId v);
  /// Appends one inbox copy for `target` to next-round storage: an arena
  /// slot write on the fast path (side buffer past capacity), a push_back
  /// under the reference implementation. Serial in both executors (the
  /// parallel path reaches here only through the barrier merge).
  void deliver(graph::NodeId target, const Message& msg);
  /// The inbox being consumed this round, as contiguous storage. Arena
  /// overflow (fault duplicates / congest-off runs) is materialized into
  /// the caller's scratch buffer; the fast path is a span into the arena.
  std::span<const Message> current_inbox(graph::NodeId v, ExecLane* lane);

  /// Runs one callback phase (on_start when round_ == 0, else on_round)
  /// over all non-halted nodes, serially or on the worker pool.
  void run_phase(Algorithm& algorithm);
  void run_phase_parallel(Algorithm& algorithm);
  /// Invokes the callback of one node (shared by both executors).
  void step_node(Algorithm& algorithm, graph::NodeId v, ExecLane* lane);
  /// Barrier bookkeeping: fills last_round_, flushes the round's fault
  /// drop/duplicate counts to the injector's ledger.
  void flush_round_accounting(std::uint64_t messages_before,
                              RoundFaultEvents events);

  graph::GraphView graph_;
  NetworkOptions options_;
  std::uint64_t seed_ = 0;  ///< base RNG seed (telemetry run_begin events)
  FaultInjector* fault_ = nullptr;  ///< non-owning; nullptr = fault-free
  std::uint32_t num_threads_ = 0;  ///< resolved at construction; 0 = serial
  bool use_arena_ = true;          ///< resolved at construction
  std::vector<util::Rng> rngs_;
  // One byte per node (not vector<bool>): under the parallel executor a
  // node's own halt flag is written while neighbors' flags are read.
  std::vector<std::uint8_t> halted_;
  graph::NodeId num_halted_ = 0;
  std::uint32_t round_ = 0;

  // Message arena: one slot per directed edge in CSR order (node v's inbox
  // region is [edge_offset_[v], edge_offset_[v+1])), double-buffered for
  // the deliver/fill round phases, with a per-node fill count. Messages
  // past a node's region capacity — only possible with fault duplicates or
  // enforce_congest off — land in the per-node overflow side buffers,
  // whose dirty flags make the common no-overflow round reset O(1).
  std::vector<Message> arena_cur_;
  std::vector<Message> arena_next_;
  std::vector<std::uint32_t> inbox_count_cur_;
  std::vector<std::uint32_t> inbox_count_next_;
  std::vector<std::vector<Message>> overflow_cur_;
  std::vector<std::vector<Message>> overflow_next_;
  bool overflow_cur_dirty_ = false;
  bool overflow_next_dirty_ = false;
  std::vector<Message> scratch_inbox_;  ///< serial-path overflow staging
  std::uint64_t in_flight_next_ = 0;    ///< messages staged for next round

  // Reference implementation (InboxImpl::kReferenceVectors): the pre-arena
  // per-node inbox vectors, kept for differential testing.
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> next_inbox_;

  // Per-directed-edge send counters, epoch-stamped by round to avoid a
  // clear per round. Slot for (v, port) = edge_slot_offset_[v] + port.
  std::vector<std::uint64_t> edge_offset_;
  std::vector<std::uint32_t> edge_sends_;
  std::vector<std::uint32_t> edge_epoch_;

  // Parallel executor state (empty in serial mode).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ExecLane> lanes_;
  std::vector<graph::NodeId> shard_bounds_;

  ModelChecker checker_;
  RunStats stats_;
  RoundDelta last_round_;
  std::uint64_t rng_draws_ = 0;  ///< run-wide logical draws (all nodes)
  // Actual consumed bits of the round in progress (serial executor writes
  // directly; the parallel merge folds the lane counters in here).
  std::uint64_t round_payload_bits_ = 0;
  // Fault drop/duplicate counts of the round in progress (serial executor
  // writes directly; the parallel merge folds the lane counters in here).
  std::uint64_t round_fault_drops_ = 0;
  std::uint64_t round_fault_duplicates_ = 0;
};

}  // namespace arbmis::sim
