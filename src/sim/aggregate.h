// Global aggregation over a BFS tree: convergecast + broadcast.
//
// Every algorithm in this repository (and in the paper's literature)
// assumes nodes know global quantities — n for priority ranges and
// schedules, Δ for the scale parameters, α as a promise. This module is
// the standard O(diameter)-round CONGEST protocol that justifies the
// assumption: elect a leader (sim/bfs_rooting.h), combine the per-node
// values up the BFS tree (one word per edge), and flood the result back
// down. Each component computes its own aggregate.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::sim {

enum class AggregateOp : std::uint8_t { kSum, kMax, kMin };

class GlobalAggregate : public Algorithm {
 public:
  /// `parent` from a stabilized BfsRooting; `value[v]` is each node's
  /// contribution.
  GlobalAggregate(graph::GraphView g, std::vector<graph::NodeId> parent,
                  std::vector<std::uint64_t> value, AggregateOp op);

  std::string_view name() const override { return "global_aggregate"; }
  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  /// Per-node result: the aggregate of the node's component.
  const std::vector<std::uint64_t>& results() const noexcept {
    return result_;
  }

  struct Result {
    std::vector<std::uint64_t> value;  ///< component aggregate, per node
    RunStats stats;                    ///< includes the rooting rounds
  };

  /// Full pipeline (rooting + convergecast + broadcast).
  /// rooting_budget = 0 uses n + 2.
  static Result run(graph::GraphView g, std::vector<std::uint64_t> value,
                    AggregateOp op, std::uint64_t seed = 0,
                    std::uint32_t rooting_budget = 0);

 private:
  enum Tag : std::uint32_t { kHello = 1, kUp = 2, kDown = 3 };

  std::uint64_t combine(std::uint64_t a, std::uint64_t b) const noexcept;

  graph::GraphView graph_;
  AggregateOp op_;
  std::vector<graph::NodeId> parent_;
  std::vector<graph::NodeId> parent_port_;
  std::vector<std::vector<graph::NodeId>> child_ports_;
  std::vector<graph::NodeId> children_pending_;
  std::vector<std::uint64_t> accumulator_;
  std::vector<std::uint64_t> result_;
  std::vector<std::uint8_t> sent_up_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::sim
