#include "sim/model_check.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "obs/recorder.h"
#include "obs/sink.h"
#include "util/log.h"

namespace arbmis::sim {

namespace {

constexpr std::uint32_t kStaleEpoch = ~std::uint32_t{0};

std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(x - 1));
}

}  // namespace

ModelCheckerLane::ModelCheckerLane()
    : active_node(ModelChecker::kNoNode) {}

void ModelCheckerLane::reset() {
  active_node = ModelChecker::kNoNode;
  max_message_bits = 0;
  round_max_message_bits = 0;
  max_edge_bits = 0;
  max_rng_reads = 0;
  any_first_draw = false;
  consumed_origins.clear();
  violations = 0;
  violation_texts.clear();
}

std::string ModelCheckReport::summary() const {
  std::ostringstream out;
  out << "model-check: rounds=" << rounds_observed
      << " budget=" << edge_bit_budget << "b"
      << " max_msg=" << max_message_bits << "b"
      << " max_edge=" << max_edge_bits_per_round << "b"
      << " max_rng_reads=" << max_rng_reads_per_round << " k=" << k
      << " violations=" << violations;
  if (faults.drops > 0 || faults.duplicates > 0 || faults.crashes > 0 ||
      faults.recoveries > 0) {
    out << " faults{drops=" << faults.drops
        << " dups=" << faults.duplicates << " crashes=" << faults.crashes
        << " recoveries=" << faults.recoveries << "}";
  }
  return out.str();
}

ModelChecker::ModelChecker(graph::GraphView g, ModelCheckOptions options,
                           std::uint32_t allowed_messages_per_edge)
    : options_(options), num_nodes_(g.num_nodes()) {
  if (!options_.enabled) return;
  const std::uint32_t per_message =
      std::max(options_.min_edge_bits,
               options_.log_n_factor *
                   ceil_log2(static_cast<std::uint64_t>(num_nodes_) + 1));
  edge_bit_budget_ =
      per_message * std::max<std::uint32_t>(allowed_messages_per_edge, 1);
  origin_offset_.resize(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (graph::NodeId v = 0; v < num_nodes_; ++v) {
    origin_offset_[v + 1] = origin_offset_[v] + g.degree(v);
  }
  const std::uint64_t slots = origin_offset_[num_nodes_];
  edge_bits_.assign(slots, 0);
  edge_bits_epoch_.assign(slots, kStaleEpoch);
  rng_reads_.assign(num_nodes_, 0);
  rng_epoch_.assign(num_nodes_, kStaleEpoch);
  for (int s = 0; s < 2; ++s) {
    mult_[s].assign(num_nodes_, 0);
    mult_epoch_[s].assign(num_nodes_, kStaleEpoch);
  }
  origin_pending_.resize(slots);
  origin_current_.resize(slots);
  origin_count_pending_.assign(num_nodes_, 0);
  origin_count_current_.assign(num_nodes_, 0);
  origin_overflow_pending_.resize(num_nodes_);
  origin_overflow_current_.resize(num_nodes_);
  report_.edge_bit_budget = edge_bit_budget_;
}

void ModelChecker::begin_run() {
  if (!options_.enabled) return;
  std::fill(edge_bits_epoch_.begin(), edge_bits_epoch_.end(), kStaleEpoch);
  std::fill(rng_epoch_.begin(), rng_epoch_.end(), kStaleEpoch);
  for (int s = 0; s < 2; ++s) {
    std::fill(mult_epoch_[s].begin(), mult_epoch_[s].end(), kStaleEpoch);
  }
  std::fill(origin_count_pending_.begin(), origin_count_pending_.end(), 0u);
  std::fill(origin_count_current_.begin(), origin_count_current_.end(), 0u);
  if (origin_pending_dirty_) {
    for (auto& box : origin_overflow_pending_) box.clear();
    origin_pending_dirty_ = false;
  }
  if (origin_current_dirty_) {
    for (auto& box : origin_overflow_current_) box.clear();
    origin_current_dirty_ = false;
  }
  active_node_ = kNoNode;
  report_ = ModelCheckReport{};
  report_.edge_bit_budget = edge_bit_budget_;
}

void ModelChecker::begin_round(std::uint32_t round) {
  if (!options_.enabled) return;
  (void)round;
  // Mirror the Network's inbox swap: what was sent last round is what gets
  // consumed this round. Undelivered leftovers (halted recipients) die here.
  std::swap(origin_current_, origin_pending_);
  std::swap(origin_count_current_, origin_count_pending_);
  std::fill(origin_count_pending_.begin(), origin_count_pending_.end(), 0u);
  std::swap(origin_overflow_current_, origin_overflow_pending_);
  std::swap(origin_current_dirty_, origin_pending_dirty_);
  if (origin_pending_dirty_) {
    for (auto& box : origin_overflow_pending_) box.clear();
    origin_pending_dirty_ = false;
  }
}

void ModelChecker::deliver_origin(graph::NodeId target, graph::NodeId origin) {
  std::uint32_t& count = origin_count_pending_[target];
  const std::uint64_t cap = origin_offset_[target + 1] - origin_offset_[target];
  if (count < cap) [[likely]] {
    origin_pending_[origin_offset_[target] + count] = origin;
  } else {
    origin_overflow_pending_[target].push_back(origin);
    origin_pending_dirty_ = true;
  }
  ++count;
}

std::uint32_t& ModelChecker::stamped(std::vector<std::uint32_t>& counts,
                                     std::vector<std::uint32_t>& epochs,
                                     std::uint64_t i, std::uint32_t round) {
  if (epochs[i] != round) {
    epochs[i] = round;
    counts[i] = 0;
  }
  return counts[i];
}

namespace {

std::string node_name(graph::NodeId v) {
  return v == ModelChecker::kNoNode ? std::string("<none>")
                                    : std::to_string(v);
}

}  // namespace

bool ModelChecker::on_send(ModelCheckerLane* lane, graph::NodeId from,
                           graph::NodeId target, std::uint64_t slot,
                           std::uint64_t payload, std::uint32_t round,
                           std::uint8_t copies) {
  if (!options_.enabled) return false;
  const graph::NodeId active = lane ? lane->active_node : active_node_;
  if (from != active) {
    violation(lane, "out-of-context send: node " + std::to_string(from) +
                        "'s port used while node " + node_name(active) +
                        " was scheduled");
  }
  const auto width = static_cast<std::uint32_t>(
      options_.tag_bits + std::bit_width(payload));
  if (lane) {
    lane->max_message_bits = std::max(lane->max_message_bits, width);
    lane->round_max_message_bits =
        std::max(lane->round_max_message_bits, width);
  } else {
    report_.max_message_bits = std::max(report_.max_message_bits, width);
    if (report_.round_max_message_bits.size() <= round) {
      report_.round_max_message_bits.resize(round + 1, 0);
    }
    report_.round_max_message_bits[round] =
        std::max(report_.round_max_message_bits[round], width);
  }

  // Per-edge bits live in the sender's slots, which belong to exactly one
  // worker during a parallel phase — safe to update in place either way.
  std::uint32_t& bits =
      stamped(edge_bits_, edge_bits_epoch_, slot, round);
  bits += width;
  if (lane) {
    lane->max_edge_bits = std::max(lane->max_edge_bits, bits);
  } else {
    report_.max_edge_bits_per_round =
        std::max(report_.max_edge_bits_per_round, bits);
  }
  if (bits > edge_bit_budget_) {
    violation(lane, "message budget exceeded: " + std::to_string(bits) +
                        " bits on one edge in round " +
                        std::to_string(round) + " (budget " +
                        std::to_string(edge_bit_budget_) + ")");
  }

  // A message sent after a draw in the same callback carries that round's
  // randomness to `target`, which will read it on delivery — once per
  // delivered copy, so dropped messages never enter the read-k ledger and
  // duplicated ones enter it twice.
  const bool rng_bearing =
      rng_epoch_[from] == round && rng_reads_[from] > 0;
  if (rng_bearing && !lane) {
    for (std::uint8_t c = 0; c < copies; ++c) {
      deliver_origin(target, from);
    }
  }
  return rng_bearing && lane != nullptr;
}

void ModelChecker::count_consumption(graph::NodeId origin,
                                     std::uint32_t draw_round) {
  const int slot = draw_round & 1;
  if (mult_epoch_[slot][origin] != draw_round) return;
  const std::uint32_t m = ++mult_[slot][origin];
  report_.k = std::max(report_.k, m);
  if (report_.round_k.size() <= draw_round) {
    report_.round_k.resize(draw_round + 1, 0);
  }
  report_.round_k[draw_round] = std::max(report_.round_k[draw_round], m);
}

void ModelChecker::on_consume(ModelCheckerLane* lane, graph::NodeId v,
                              std::uint32_t round) {
  if (!options_.enabled) return;
  if (round == 0) return;  // nothing in flight before round 1
  std::uint32_t& count = origin_count_current_[v];
  if (count == 0) return;
  const std::uint64_t base = origin_offset_[v];
  const std::uint64_t cap = origin_offset_[v + 1] - base;
  const std::uint64_t in_arena = std::min<std::uint64_t>(count, cap);
  if (lane) {
    // Multiplicity counters are indexed by origin — a neighbor possibly
    // owned by another worker — so the counting is deferred to merge_lane.
    const graph::NodeId* arena = origin_current_.data() + base;
    lane->consumed_origins.insert(lane->consumed_origins.end(), arena,
                                  arena + in_arena);
    if (count > cap) {
      auto& box = origin_overflow_current_[v];
      lane->consumed_origins.insert(lane->consumed_origins.end(), box.begin(),
                                    box.end());
      box.clear();
    }
    count = 0;
    return;
  }
  for (std::uint64_t i = 0; i < in_arena; ++i) {
    count_consumption(origin_current_[base + i], round - 1);
  }
  if (count > cap) {
    auto& box = origin_overflow_current_[v];
    for (graph::NodeId origin : box) count_consumption(origin, round - 1);
    box.clear();
  }
  count = 0;
}

void ModelChecker::on_rng_read(ModelCheckerLane* lane, graph::NodeId v,
                               std::uint32_t round) {
  if (!options_.enabled) return;
  const graph::NodeId active = lane ? lane->active_node : active_node_;
  if (v != active) {
    violation(lane, "RNG isolation breach: node " + std::to_string(v) +
                        "'s private stream read while node " +
                        node_name(active) + " was scheduled");
  }
  const std::uint32_t reads = ++stamped(rng_reads_, rng_epoch_, v, round);
  if (lane) {
    lane->max_rng_reads = std::max(lane->max_rng_reads, reads);
  } else {
    report_.max_rng_reads_per_round =
        std::max(report_.max_rng_reads_per_round, reads);
  }
  if (reads > options_.max_rng_reads_per_round) {
    violation(lane, "randomness budget exceeded: node " +
                        std::to_string(v) + " drew " +
                        std::to_string(reads) + " times in round " +
                        std::to_string(round) + " (budget " +
                        std::to_string(options_.max_rng_reads_per_round) +
                        ")");
  }
  if (reads == 1) {
    // Fresh per-round randomness: the drawing node is its first reader.
    // The parity ledger slot belongs to v (this worker); only the shared
    // report update is staged in the lane.
    const int slot = round & 1;
    mult_epoch_[slot][v] = round;
    mult_[slot][v] = 1;
    if (lane) {
      lane->any_first_draw = true;
    } else {
      report_.k = std::max(report_.k, 1u);
      if (report_.round_k.size() <= round) {
        report_.round_k.resize(round + 1, 0);
      }
      report_.round_k[round] = std::max(report_.round_k[round], 1u);
    }
  }
}

void ModelChecker::on_halt(ModelCheckerLane* lane, graph::NodeId v) {
  if (!options_.enabled) return;
  const graph::NodeId active = lane ? lane->active_node : active_node_;
  if (v != active) {
    violation(lane, "out-of-context halt: node " + std::to_string(v) +
                        " halted while node " + node_name(active) +
                        " was scheduled");
  }
}

void ModelChecker::on_delivered_origin(graph::NodeId target,
                                       graph::NodeId origin) {
  if (!options_.enabled) return;
  deliver_origin(target, origin);
}

void ModelChecker::merge_lane(ModelCheckerLane& lane, std::uint32_t round) {
  if (!options_.enabled) {
    lane.reset();
    return;
  }
  report_.max_message_bits =
      std::max(report_.max_message_bits, lane.max_message_bits);
  if (lane.round_max_message_bits > 0) {
    if (report_.round_max_message_bits.size() <= round) {
      report_.round_max_message_bits.resize(round + 1, 0);
    }
    report_.round_max_message_bits[round] = std::max(
        report_.round_max_message_bits[round], lane.round_max_message_bits);
  }
  report_.max_edge_bits_per_round =
      std::max(report_.max_edge_bits_per_round, lane.max_edge_bits);
  report_.max_rng_reads_per_round =
      std::max(report_.max_rng_reads_per_round, lane.max_rng_reads);
  if (lane.any_first_draw) {
    report_.k = std::max(report_.k, 1u);
    if (report_.round_k.size() <= round) {
      report_.round_k.resize(round + 1, 0);
    }
    report_.round_k[round] = std::max(report_.round_k[round], 1u);
  }
  if (round > 0) {
    for (graph::NodeId origin : lane.consumed_origins) {
      count_consumption(origin, round - 1);
    }
  }
  // Deferred violation telemetry: the events fire here, at the serial
  // merge barrier, in lane-fold order — never from worker threads.
  for (const std::string& what : lane.violation_texts) {
    obs::emit(obs::make_event(obs::EventKind::kViolation, round, what));
  }
  if (!lane.violation_texts.empty()) {
    obs::recorder_auto_dump("model_check_violation");
  }
  report_.violations += lane.violations;
  lane.reset();
}

void ModelChecker::record_fault_totals(const FaultTotals& totals) {
  if (!options_.enabled) return;
  report_.faults = totals;
}

void ModelChecker::end_run(std::uint32_t rounds) {
  if (!options_.enabled) return;
  report_.rounds_observed = rounds;
  ARBMIS_LOG(Debug) << report_.summary();
}

void ModelChecker::violation(ModelCheckerLane* lane,
                             const std::string& what) {
  // Fail-fast aborts before the lane merge, so the count goes to whichever
  // ledger survives: the lane when staged, the shared report when serial.
  // Telemetry follows the same split: the serial path emits the kViolation
  // event (and triggers the flight-recorder auto-dump) right here, while
  // the staged path defers both to merge_lane so no event is ever emitted
  // from a worker thread.
  if (lane) {
    ++lane->violations;
    lane->violation_texts.push_back(what);
  } else {
    ++report_.violations;
    obs::emit(obs::make_event(obs::EventKind::kViolation, /*round=*/0,
                              what));
    obs::recorder_auto_dump("model_check_violation");
  }
  ARBMIS_LOG(Error) << "CONGEST model violation: " << what;
  if (options_.fail_fast) {
    throw CongestViolation("CONGEST model violation: " + what);
  }
}

}  // namespace arbmis::sim
