// Compile-time CONGEST contracts (see docs/TOOLING.md §9 and
// tools/arbmis_audit.py --explain CON001).
//
// Two enforcement layers live here:
//
//   1. static_asserts that pin the simulator's message layout and the
//      model checker's nominal accounting to each other. These run in
//      every build (sim/network.cpp includes this header), so a drive-by
//      edit to Message, kBitsPerMessage, or ModelCheckOptions' defaults
//      fails to compile instead of silently skewing every budget the
//      paper's read-k analysis is calibrated against.
//
//   2. an identifier poison list, active only when the translation unit
//      is compiled with -DARBMIS_CONTRACTS_POISON (the CMake option
//      ARBMIS_CONTRACTS=ON force-includes this header into every
//      semantic-module TU and defines that macro). Poisoned names are
//      the process-global entropy and environment escape hatches that
//      would break single-seed reproducibility: util/rng.h is the only
//      sanctioned randomness source. The static audit (DET001–DET003)
//      catches the same names without a compiler; the poison list is the
//      layer that cannot be dodged by a clever spelling the tokenizer
//      misses. CON001 in tools/arbmis_audit.py keeps the two lists in
//      sync.
//
// The poison block pre-includes the standard library first: #pragma GCC
// poison rejects any later *occurrence* of a name, including its own
// declaration in a system header, so every header that legitimately
// declares a banned name must already have been seen.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "sim/message.h"
#include "sim/model_check.h"

namespace arbmis::sim::contract {

// --- Message layout -------------------------------------------------------
// The flat CSR message arena memcpys Messages between per-round buffers,
// and the trace writer dumps them as raw bytes.
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay trivially copyable: the message arena and "
              "binary trace writer move it with memcpy");
static_assert(std::is_standard_layout_v<Message>,
              "Message must stay standard-layout for the binary trace "
              "format to be well-defined");

// --- Nominal bit accounting ----------------------------------------------
// One CONGEST message = an 8-bit kind tag + one 64-bit payload word.
// These three constants are the single source the asserts below compare
// everything else against; change them only together with the model and
// the paper-facing docs.
inline constexpr std::uint32_t kNominalTagBits = 8;
inline constexpr std::uint32_t kNominalPayloadBits = 64;
inline constexpr std::uint64_t kNominalMessageBits =
    kNominalTagBits + kNominalPayloadBits;

static_assert(sizeof(Message{}.payload) * 8 == kNominalPayloadBits,
              "payload must be exactly one 64-bit CONGEST word");
static_assert(kBitsPerMessage == kNominalMessageBits,
              "sim/message.h kBitsPerMessage must equal tag + payload");
static_assert(kTagBits == kNominalTagBits,
              "sim/message.h kTagBits must match the nominal tag width");

// message_bits() is the actual-width formula the model checker budgets
// with: tag bits plus the significant bits of the payload word.
static_assert(message_bits(Message{0, 0, 0}) == kNominalTagBits,
              "an empty payload must cost exactly the tag bits");
static_assert(message_bits(Message{0, 0, 1}) == kNominalTagBits + 1,
              "message_bits must charge significant payload bits");
static_assert(message_bits(Message{0, 0, ~std::uint64_t{0}}) ==
                  kNominalMessageBits,
              "a full payload word must cost exactly kBitsPerMessage");

// --- Model checker defaults ----------------------------------------------
// The runtime ModelChecker charges tag_bits per message and floors the
// per-edge budget at min_edge_bits; both defaults must agree with the
// nominal layout or the budgets in tests/test_model_check.cpp drift.
static_assert(ModelCheckOptions{}.tag_bits == kNominalTagBits,
              "ModelCheckOptions::tag_bits default must match the nominal "
              "tag width");
static_assert(ModelCheckOptions{}.min_edge_bits == kNominalMessageBits,
              "ModelCheckOptions::min_edge_bits default must floor at one "
              "full message");

}  // namespace arbmis::sim::contract

// --- Identifier poison ----------------------------------------------------
// Active only under ARBMIS_CONTRACTS=ON (which defines the macro below
// and force-includes this header). GCC and Clang both implement the
// pragma. Clock names are deliberately NOT poisoned: obs/profile.h uses
// steady_clock for wall-clock profiling and is included by sim TUs; the
// static audit (DET002) polices clocks in semantic code instead.
#if defined(ARBMIS_CONTRACTS_POISON) && defined(__GNUC__)
#if __has_include(<bits/stdc++.h>)
#include <bits/stdc++.h>  // pre-declare everything poisonable (libstdc++)
#else
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#endif
#pragma GCC poison rand srand rand_r drand48 lrand48
#pragma GCC poison random_device mt19937 mt19937_64 default_random_engine
#pragma GCC poison minstd_rand minstd_rand0 knuth_b
#pragma GCC poison getenv setenv putenv unsetenv
#endif
