#include "sim/thread_pool.h"

#include <stdexcept>

namespace arbmis::sim {

ThreadPool::ThreadPool(std::uint32_t num_workers) {
  if (num_workers == 0) {
    throw std::invalid_argument("ThreadPool: num_workers must be >= 1");
  }
  errors_.resize(num_workers);
  workers_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(const std::function<void(std::uint32_t)>& task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    outstanding_ = num_workers();
    for (std::exception_ptr& e : errors_) e = nullptr;
    ++epoch_;
  }
  dispatch_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  task_ = nullptr;
  for (std::exception_ptr& error : errors_) {
    if (error) {
      const std::exception_ptr first = error;
      error = nullptr;
      lock.unlock();
      std::rethrow_exception(first);
    }
  }
}

void ThreadPool::worker_loop(std::uint32_t index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      dispatch_cv_.wait(
          lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    try {
      (*task)(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      errors_[index] = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace arbmis::sim
