// Fault-injection seam of the CONGEST simulator.
//
// The simulator itself stays fault-agnostic: NetworkOptions::fault accepts
// a FaultInjector and the Network consults it at exactly three points —
//
//   * begin_round: serially at every round barrier, before any callback of
//     that round runs. This is where node events (crashes, recoveries)
//     resolve, so the down set is frozen for the duration of the phase and
//     every worker reads a consistent snapshot.
//   * on_message: once per send, from the sending node's worker. The fate
//     of a message (delivered, dropped, duplicated) must be a pure
//     function of (plan, edge slot, round) — the contract that keeps
//     fault runs byte-identical across thread counts: the parallel
//     executor stages the surviving copies in its per-worker ExecLanes and
//     replays them in shard order, reproducing the serial inbox bytes.
//   * account: once per round at the barrier, with the round's summed drop
//     and duplicate counts (serially accumulated, or merged from the lanes
//     in shard order), so the injector's ledger is executor-independent.
//
// Semantics of the injected faults:
//   * a dropped message is lost in transit — the sender still pays its
//     CONGEST budget (it sent the message; the network ate it);
//   * a duplicated message is delivered twice to the same recipient (the
//     network duplicated it in transit — no extra sender budget);
//   * a down (crashed) node receives no callbacks and sends nothing;
//     messages addressed to a node that is down at send time are dropped.
//     Recovery is crash-recover with state intact: the node resumes its
//     callback schedule having missed the intervening rounds.
//
// The concrete implementation (FaultPlan, adversaries, the fault ledger)
// lives in src/fault; this header exists so arbmis_sim does not depend on
// arbmis_fault.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace arbmis::sim {

/// Fate of one message: how many copies reach the recipient's next-round
/// inbox. 0 = dropped, 1 = delivered, 2 = duplicated.
struct FaultDecision {
  std::uint8_t copies = 1;
};

/// Node events resolved at one round barrier.
struct RoundFaultEvents {
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;
};

/// Run-wide fault counters, surfaced through ModelCheckReport::faults.
struct FaultTotals {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;

  bool operator==(const FaultTotals&) const = default;
};

/// Abstract fault source attached via NetworkOptions::fault. All hooks are
/// called by the Network only; with no injector attached the simulator
/// takes none of these paths (zero cost when off).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Reset per-run state (Network::run calls this at the top of each run).
  virtual void begin_run() = 0;

  /// Serial barrier hook before the callbacks of `round` execute (round 0
  /// is the on_start phase). Resolves crash/recovery events; `halted` is
  /// the per-node halt flags (1 = halted), so adaptive adversaries can
  /// target still-active nodes.
  virtual RoundFaultEvents begin_round(
      std::uint32_t round, std::span<const std::uint8_t> halted) = 0;

  /// Fate of one message sent from `from` to `to` on the directed edge
  /// `edge_slot` during `round`. Must be const and thread-safe: the
  /// parallel executor calls it concurrently from workers, and determinism
  /// across thread counts requires it to be a pure function.
  virtual FaultDecision on_message(graph::NodeId from, graph::NodeId to,
                                   std::uint64_t edge_slot,
                                   std::uint32_t round) const = 0;

  /// True while `v` is crashed. Stable between barriers.
  virtual bool is_down(graph::NodeId v) const = 0;

  /// Number of currently-down nodes (all distinct from halted nodes).
  virtual graph::NodeId num_down() const = 0;

  /// True if any currently-down node has a recovery scheduled; the run
  /// must not end while recoveries are pending.
  virtual bool recovery_pending() const = 0;

  /// Ledger hook: the round's summed drop/duplicate counts, delivered once
  /// per round at the barrier.
  virtual void account(std::uint32_t round, std::uint64_t drops,
                       std::uint64_t duplicates) = 0;

  /// Run-wide totals (valid during and after a run).
  virtual FaultTotals totals() const = 0;
};

}  // namespace arbmis::sim
