// Runtime CONGEST model checker.
//
// The simulator's message type (one tag + one 64-bit word) makes gross
// bandwidth violations impossible by construction, but three subtler ways
// of cheating the model remain expressible:
//
//   1. width  — packing more than O(log n) significant bits into the
//      payload word, or smuggling extra words down one edge in a round
//      when the per-edge message cap is relaxed;
//   2. state  — reading or mutating another node's simulator state outside
//      message delivery, e.g. by stashing a NodeContext in one callback and
//      using it from another node's callback (global peeking);
//   3. randomness — drawing more than a word of randomness per round, or
//      sampling a *different* node's private stream.
//
// ModelChecker turns each of these into an enforced runtime invariant.
// Network calls the hooks below on every send, delivery, RNG read, and
// callback boundary; a violation is reported through util/log and (by
// default) aborts the run with CongestViolation. The checker also keeps
// the read-k ledger the paper's analysis is built on: when a node draws
// fresh randomness in round r, the draw is "read" once by the node itself
// and once per *delivered* message it sends that round (neighbors consume
// the value next round — exactly how priorities propagate in Algorithm 1).
// The maximum multiplicity observed is reported as `k`, mirroring
// ReadKFamily::read_k() in src/readk/family.h: on a run of
// BoundedArbIndependentSet the two quantities coincide (see
// tests/test_model_check.cpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/fault_hooks.h"

namespace arbmis::sim {

/// Thrown (when ModelCheckOptions::fail_fast) on any model violation.
class CongestViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct ModelCheckOptions {
  /// Master switch. On by default: the whole test/bench battery runs under
  /// enforcement, which is the point (ISSUE 1).
  bool enabled = true;
  /// Throw CongestViolation at the first violation (after logging). When
  /// false, violations are only counted and logged.
  bool fail_fast = true;
  /// Bits charged for the message tag (O(1) distinct kinds per algorithm).
  std::uint32_t tag_bits = 8;
  /// Per-edge per-round budget = allowed_messages *
  /// max(min_edge_bits, log_n_factor * ceil(log2(n + 1))).
  std::uint32_t log_n_factor = 8;
  /// Floor of the per-message budget: one CONGEST word (64 payload bits +
  /// tag), so the budget never dips below what Message physically holds.
  std::uint32_t min_edge_bits = 72;
  /// Randomness budget: logical draws one node may make in one round. Two
  /// covers every algorithm in the repository (Israeli–Itai needs a coin
  /// plus a port pick); the paper's Algorithm 1 uses exactly one.
  std::uint32_t max_rng_reads_per_round = 2;
};

/// What the checker saw over one Network::run.
struct ModelCheckReport {
  std::uint32_t rounds_observed = 0;
  /// Enforced per-edge per-round budget in bits (for one allowed message).
  std::uint32_t edge_bit_budget = 0;
  /// Widest single message: tag_bits + significant payload bits.
  std::uint32_t max_message_bits = 0;
  /// Max cumulative bits one directed edge carried in one round.
  std::uint32_t max_edge_bits_per_round = 0;
  /// Max logical RNG draws by one node in one round.
  std::uint32_t max_rng_reads_per_round = 0;
  /// Read multiplicity: max number of consumers of one node's per-round
  /// randomness (the node itself plus delivered recipients). This is the
  /// simulator-side analog of ReadKFamily::read_k().
  std::uint32_t k = 0;
  std::uint64_t violations = 0;
  /// Injected-fault totals for the run (all zero when no FaultInjector is
  /// attached). Note that a duplicated randomness-bearing message counts
  /// twice in the read-k ledger: the recipient observably reads the value
  /// once per delivered copy.
  FaultTotals faults;
  /// Per-round series (index = round number; round 0 is on_start).
  std::vector<std::uint32_t> round_max_message_bits;
  std::vector<std::uint32_t> round_k;

  /// One-line human summary for logs.
  std::string summary() const;
};

/// Per-worker staging area for the checker under the parallel round
/// executor (see sim/network.h). During a parallel phase each worker
/// funnels the *shared* parts of the checker's accounting — report maxima,
/// violation counts, and the consumed-origin list of the read-k ledger —
/// into its own lane; ModelChecker::merge_lane folds the lanes back in
/// shard (= node-id) order at the round barrier, so the merged report is
/// byte-identical to a serial run. Per-node/per-edge counters stay in the
/// checker's shared arrays even during a parallel phase: every slot there
/// is owned by exactly one node and therefore by exactly one worker.
struct ModelCheckerLane {
  /// Node whose callback this worker is executing (the pinning check).
  graph::NodeId active_node;
  /// Max message width observed by this worker, run-wide and this round.
  std::uint32_t max_message_bits = 0;
  std::uint32_t round_max_message_bits = 0;
  /// Max cumulative per-edge bits observed by this worker (edges are
  /// sender-owned, so the counters are exact; only the max is staged).
  std::uint32_t max_edge_bits = 0;
  /// Max per-node draws in one round observed by this worker.
  std::uint32_t max_rng_reads = 0;
  /// True if any node made its first draw of the round on this worker.
  bool any_first_draw = false;
  /// Origins of randomness-bearing messages consumed by this worker's
  /// nodes, in node order; multiplicity counting is replayed at the merge.
  std::vector<graph::NodeId> consumed_origins;
  std::uint64_t violations = 0;
  /// Violation messages staged by this worker. Telemetry must not be
  /// emitted from worker threads, so the kViolation events (and the
  /// flight-recorder auto-dump) fire at the merge barrier instead.
  std::vector<std::string> violation_texts;

  ModelCheckerLane();

  /// Clears the per-phase fields (merge_lane calls this after folding).
  void reset();
};

/// Instrumentation attached to a Network. All hooks are O(1); with
/// `enabled == false` every hook returns immediately.
///
/// Every hook takes a ModelCheckerLane pointer: nullptr selects the serial
/// path (accounting goes straight into the shared report, exactly the
/// pre-parallelism behavior); a non-null lane selects the staged path used
/// by the parallel executor.
class ModelChecker {
 public:
  static constexpr graph::NodeId kNoNode = ~graph::NodeId{0};

  ModelChecker() = default;
  ModelChecker(graph::GraphView g, ModelCheckOptions options,
               std::uint32_t allowed_messages_per_edge);

  bool enabled() const noexcept { return options_.enabled; }
  const ModelCheckReport& report() const noexcept { return report_; }

  /// Resets per-run state (Network::run calls this at the top of each run).
  void begin_run();
  /// Marks the delivery boundary of `round` (mirrors the inbox swap).
  void begin_round(std::uint32_t round);
  /// Pins the node whose callback is executing; kNoNode between callbacks.
  void begin_callback(ModelCheckerLane* lane, graph::NodeId v) noexcept {
    (lane ? lane->active_node : active_node_) = v;
  }
  void end_callback(ModelCheckerLane* lane) noexcept {
    (lane ? lane->active_node : active_node_) = kNoNode;
  }

  /// Hook for every send: `slot` is the directed-edge slot (shared with
  /// Network's per-edge counters). Enforces the bit budget and tags the
  /// message as randomness-bearing if `from` drew earlier this round.
  /// `copies` is the number of inbox copies the network will deliver
  /// (faults make it 0 = dropped or 2 = duplicated; 1 otherwise). The
  /// sender is charged its full CONGEST budget regardless — it sent the
  /// message even if the network ate it — but only delivered copies enter
  /// the read-k ledger. Returns true iff the message is randomness-bearing
  /// AND the lane path is active — the caller must then report each
  /// delivered copy via on_delivered_origin during its merge (the serial
  /// path records the origins internally and always returns false).
  bool on_send(ModelCheckerLane* lane, graph::NodeId from,
               graph::NodeId target, std::uint64_t slot,
               std::uint64_t payload, std::uint32_t round,
               std::uint8_t copies = 1);

  /// Hook for each node about to consume its inbox this round: counts the
  /// read multiplicity of every randomness-bearing message delivered to it
  /// (lane path: defers the counting to merge_lane).
  void on_consume(ModelCheckerLane* lane, graph::NodeId v,
                  std::uint32_t round);

  /// Hook for one logical draw from node v's private stream.
  void on_rng_read(ModelCheckerLane* lane, graph::NodeId v,
                   std::uint32_t round);

  /// Hook for a halt request (cross-node halt is a state write).
  void on_halt(ModelCheckerLane* lane, graph::NodeId v);

  /// Records a staged randomness-bearing delivery (parallel merge path;
  /// mirrors what the serial on_send does internally).
  void on_delivered_origin(graph::NodeId target, graph::NodeId origin);

  /// Folds one worker's staged accounting into the shared report. Called
  /// at the round barrier in shard order; `round` is the round the lane's
  /// callbacks executed in (0 for the on_start phase). Resets the lane.
  void merge_lane(ModelCheckerLane& lane, std::uint32_t round);

  /// Copies the fault injector's run-wide totals into the report (Network
  /// calls this once at the end of a faulty run).
  void record_fault_totals(const FaultTotals& totals);

  /// Final bookkeeping; logs the summary at debug level.
  void end_run(std::uint32_t rounds);

 private:
  void violation(ModelCheckerLane* lane, const std::string& what);
  /// Bumps the read multiplicity of `origin`'s round-`draw_round` draw.
  void count_consumption(graph::NodeId origin, std::uint32_t draw_round);
  /// Appends one randomness-bearing delivery to the pending origin arena
  /// (side buffer past the recipient's per-directed-edge capacity).
  void deliver_origin(graph::NodeId target, graph::NodeId origin);
  /// Lazily epoch-stamped per-round counters.
  std::uint32_t& stamped(std::vector<std::uint32_t>& counts,
                         std::vector<std::uint32_t>& epochs, std::uint64_t i,
                         std::uint32_t round);

  ModelCheckOptions options_;
  std::uint32_t num_nodes_ = 0;
  std::uint32_t edge_bit_budget_ = 0;  ///< budget for all allowed messages
  graph::NodeId active_node_ = kNoNode;

  // Per-directed-edge cumulative bits this round, epoch-stamped.
  std::vector<std::uint32_t> edge_bits_;
  std::vector<std::uint32_t> edge_bits_epoch_;

  // Per-node RNG draws this round, epoch-stamped. A node "drew this round"
  // iff rng_epoch_[v] == round and rng_reads_[v] > 0.
  std::vector<std::uint32_t> rng_reads_;
  std::vector<std::uint32_t> rng_epoch_;

  // Read multiplicity of v's per-round randomness. A draw made in round r
  // is consumed by neighbors in round r + 1, when v may already be drawing
  // again — so the ledger keeps two slots indexed by round parity.
  // mult_[r & 1][v] counts consumers of v's round-r draw and is valid while
  // mult_epoch_[r & 1][v] == r.
  std::vector<std::uint32_t> mult_[2];
  std::vector<std::uint32_t> mult_epoch_[2];

  // Origins of randomness-bearing messages in flight / being delivered,
  // mirroring Network's message-arena swap: a flat arena with one origin
  // slot per directed edge in CSR order (origin_offset_ = the same layout
  // as Network's edge_offset_), per-recipient fill counts, and per-node
  // side buffers for deliveries past capacity (fault duplicates or
  // congest-off runs). Zero allocations on the fault-free path; fill
  // order is ascending sender per recipient, identical to the pre-arena
  // per-node vectors.
  std::vector<std::uint64_t> origin_offset_;  // size n+1
  std::vector<graph::NodeId> origin_pending_;
  std::vector<graph::NodeId> origin_current_;
  std::vector<std::uint32_t> origin_count_pending_;
  std::vector<std::uint32_t> origin_count_current_;
  std::vector<std::vector<graph::NodeId>> origin_overflow_pending_;
  std::vector<std::vector<graph::NodeId>> origin_overflow_current_;
  bool origin_pending_dirty_ = false;
  bool origin_current_dirty_ = false;

  ModelCheckReport report_;
};

}  // namespace arbmis::sim
