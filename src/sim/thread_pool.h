// Persistent worker pool for the parallel round executor (sim/network.h).
//
// The pool owns `num_workers` long-lived threads that sleep between
// dispatches, so a simulation paying one pool construction amortizes the
// thread-start cost over every round of every run. `run(task)` invokes
// task(w) once per worker index w in [0, num_workers) and blocks until
// every invocation returns.
//
// Exception contract: a task may throw. The pool captures one exception
// per worker, finishes the dispatch barrier (no worker is left running),
// and rethrows the exception of the *lowest* worker index from run() —
// a deterministic choice, so a run that violates the CONGEST budget
// aborts with the same exception no matter how the OS scheduled the
// workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arbmis::sim {

class ThreadPool {
 public:
  /// Spawns `num_workers` (>= 1) threads; they idle until run() is called.
  explicit ThreadPool(std::uint32_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Runs task(w) on worker w for every w, blocking until all complete.
  /// Rethrows the lowest-index worker's exception, if any.
  void run(const std::function<void(std::uint32_t)>& task);

 private:
  void worker_loop(std::uint32_t index);

  std::mutex mutex_;
  std::condition_variable dispatch_cv_;  ///< wakes workers on a new epoch
  std::condition_variable done_cv_;      ///< wakes run() when all finish
  const std::function<void(std::uint32_t)>* task_ = nullptr;
  std::uint64_t epoch_ = 0;       ///< incremented per dispatch
  std::uint32_t outstanding_ = 0; ///< workers still inside the current epoch
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> workers_;
};

}  // namespace arbmis::sim
