// Distributed BFS rooting: elects the minimum id of every connected
// component as root and builds a BFS spanning tree (parent pointers)
// around it — the standard CONGEST building block the paper's §1 alludes
// to when it contrasts unoriented trees ("hard") with consistently
// oriented ones (O(log* n) via Cole–Vishkin). Composing this with
// mis/cole_vishkin.h gives a fully distributed tree MIS path:
// O(diameter) rooting + O(log* n) coloring.
//
// Protocol (flooding): every node starts believing it is the root
// (best = own id, distance 0) and broadcasts (best, dist). On hearing a
// smaller (best, dist+1) offer it adopts the sender as parent and
// re-broadcasts. Nodes re-broadcast only on improvement, so the protocol
// quiesces after O(component diameter) rounds; because CONGEST nodes
// cannot detect global quiescence without a known diameter bound, run()
// takes an explicit round budget and reports whether the forest it built
// is consistent (stabilized() — computed centrally, as verification).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::sim {

class BfsRooting : public Algorithm {
 public:
  explicit BfsRooting(graph::GraphView g);

  std::string_view name() const override { return "bfs_rooting"; }
  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;
  bool is_reactive() const override { return true; }

  /// parent[v] = BFS parent (graph::kNoParent for roots).
  const std::vector<graph::NodeId>& parents() const noexcept {
    return parent_;
  }
  /// Elected root id each node currently believes in.
  const std::vector<graph::NodeId>& roots() const noexcept { return best_; }
  /// BFS distance to the believed root.
  const std::vector<graph::NodeId>& distances() const noexcept {
    return distance_;
  }

  struct Result {
    std::vector<graph::NodeId> parent;
    std::vector<graph::NodeId> root;
    std::vector<graph::NodeId> distance;
    RunStats stats;
    /// True iff the flood quiesced within the budget: every node's root
    /// is its component's minimum id and parents decrease the distance.
    bool stabilized = false;
    /// Last round in which any node improved its offer — the protocol's
    /// actual O(diameter) cost (stats.rounds always equals the budget,
    /// because quiescence is not locally detectable).
    std::uint32_t quiescence_round = 0;
  };

  /// Runs with the given round budget (>= component diameter + 1 to
  /// stabilize; n always suffices).
  static Result run(graph::GraphView g, std::uint64_t seed,
                    std::uint32_t round_budget);

 private:
  enum Tag : std::uint32_t { kOffer = 1 };

  static std::uint64_t encode(graph::NodeId root,
                              graph::NodeId distance) noexcept {
    return (static_cast<std::uint64_t>(root) << 32) | distance;
  }

  graph::GraphView graph_;
  // Per-node slots, maxed post-run: callbacks must not update a shared
  // aggregate (see the thread-safety contract in sim/algorithm.h).
  std::vector<std::uint32_t> last_improvement_round_;
  std::vector<graph::NodeId> best_;
  std::vector<graph::NodeId> distance_;
  std::vector<graph::NodeId> parent_;
};

/// Centralized audit used by Result::stabilized and the tests.
bool bfs_forest_consistent(graph::GraphView g,
                           std::span<const graph::NodeId> parent,
                           std::span<const graph::NodeId> root,
                           std::span<const graph::NodeId> distance);

}  // namespace arbmis::sim
