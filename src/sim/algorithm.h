// Per-node algorithm interface for the synchronous message-passing
// simulator.
//
// One Algorithm instance serves the whole network and owns its per-node
// state (vectors indexed by node id). The network calls
//
//   on_start(ctx)          once per node before round 1 (may send), then
//   on_round(ctx, inbox)   once per non-halted node per round,
//
// where `inbox` contains exactly the messages the node's neighbors sent in
// the previous round. Correct implementations read only their own node's
// state plus the inbox — the simulator cannot mechanically prevent global
// peeking, but the audit hooks (core/invariant.h) are the only sanctioned
// cross-node readers, and they run between rounds.
//
// Thread-safety contract: with NetworkOptions::num_threads >= 1 the
// network invokes callbacks for *distinct* nodes concurrently within a
// round. The locality rule above is therefore also the data-race rule: a
// callback may write only its own node's slots of the per-node state
// vectors, those slots must be at least one byte wide (std::vector<bool>
// bit-packs and is forbidden for per-node state — use
// std::vector<std::uint8_t>), and any whole-run aggregate must be derived
// from per-node state after the run rather than incremented inside
// callbacks. tests/test_parallel_equivalence.cpp is the enforcement
// vehicle: it proves runs are bit-identical across thread counts.
#pragma once

#include <span>
#include <string_view>

#include "graph/graph.h"
#include "sim/message.h"
#include "util/rng.h"

namespace arbmis::sim {

class Network;
struct ExecLane;

/// Draw-counted view of a node's private random stream. Every method is
/// one logical draw in the model checker's randomness ledger (rejection
/// retries inside a draw are not charged extra), so algorithms stay inside
/// the per-round randomness budget the CONGEST checker enforces. Satisfies
/// UniformRandomBitGenerator via operator().
class NodeRandom {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return util::Rng::min(); }
  static constexpr result_type max() noexcept { return util::Rng::max(); }

  result_type operator()() { return next(); }
  std::uint64_t next();
  double uniform01();
  std::uint64_t below(std::uint64_t bound);
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  bool bernoulli(double p);

 private:
  friend class NodeContext;
  NodeRandom(Network& net, graph::NodeId id, ExecLane* lane)
      : net_(&net), id_(id), lane_(lane) {}

  Network* net_;
  graph::NodeId id_;
  ExecLane* lane_;  ///< staging lane under the parallel executor, or null
};

/// Facade handed to algorithm callbacks; valid only for the duration of the
/// callback.
class NodeContext {
 public:
  /// `lane` is the worker's staging area when the parallel round executor
  /// is active (sim/network.h); null selects the direct serial path.
  NodeContext(Network& net, graph::NodeId id, ExecLane* lane = nullptr)
      : net_(&net), id_(id), lane_(lane) {}

  graph::NodeId id() const noexcept { return id_; }
  graph::NodeId degree() const noexcept;
  /// Sorted global ids of neighbors; index into this span == port number.
  std::span<const graph::NodeId> neighbors() const noexcept;
  /// Current round number (0 during on_start).
  std::uint32_t round() const noexcept;
  /// Number of nodes in the network (used for priority ranges etc.).
  graph::NodeId network_size() const noexcept;

  /// Sends to the neighbor at `port` (delivered next round). Throws
  /// std::logic_error if the CONGEST per-edge budget is exceeded.
  void send(graph::NodeId port, std::uint32_t tag, std::uint64_t payload);

  /// Sends the same message to every neighbor.
  void broadcast(std::uint32_t tag, std::uint64_t payload);

  /// This node's private random stream (deterministic in (seed, id)).
  /// Draws are counted by the model checker; reading another node's stream
  /// or exceeding the per-round draw budget is a reported violation.
  NodeRandom rng() { return NodeRandom(*net_, id_, lane_); }

  /// Marks the node terminated; it receives no further callbacks. Messages
  /// already queued to it are silently dropped.
  void halt();

 private:
  Network* net_;
  graph::NodeId id_;
  ExecLane* lane_;  ///< staging lane under the parallel executor, or null
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string_view name() const = 0;

  /// Round 0: initialize per-node state; may send and may halt.
  virtual void on_start(NodeContext& ctx) = 0;

  /// One synchronous round: react to last round's messages; may send/halt.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;

  /// A reactive algorithm acts only on received messages: a round with no
  /// message in flight anywhere is a global no-op. The network uses this
  /// to cut a run short once the system quiesces (e.g. BFS rooting, which
  /// cannot detect quiescence locally and therefore never halts) — the
  /// skipped rounds are free in a real network too, because nothing is
  /// transmitted and no state changes.
  virtual bool is_reactive() const { return false; }
};

}  // namespace arbmis::sim
