#include "sim/bfs_rooting.h"

#include <algorithm>

#include "graph/properties.h"

namespace arbmis::sim {

BfsRooting::BfsRooting(graph::GraphView g)
    : graph_(g),
      last_improvement_round_(g.num_nodes(), 0),
      best_(g.num_nodes()),
      distance_(g.num_nodes(), 0),
      parent_(g.num_nodes(), graph::kNoParent) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) best_[v] = v;
}

void BfsRooting::on_start(NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (ctx.degree() == 0) {
    ctx.halt();
    return;
  }
  ctx.broadcast(kOffer, encode(best_[v], distance_[v]));
}

void BfsRooting::on_round(NodeContext& ctx,
                          std::span<const Message> inbox) {
  const graph::NodeId v = ctx.id();
  bool improved = false;
  for (const Message& m : inbox) {
    if (m.tag != kOffer) continue;
    const auto offered_root = static_cast<graph::NodeId>(m.payload >> 32);
    const auto offered_distance =
        static_cast<graph::NodeId>(m.payload & 0xffffffffu) + 1;
    if (offered_root < best_[v] ||
        (offered_root == best_[v] && offered_distance < distance_[v])) {
      best_[v] = offered_root;
      distance_[v] = offered_distance;
      parent_[v] = m.src;
      improved = true;
    }
  }
  if (improved) {
    last_improvement_round_[v] = ctx.round();
    ctx.broadcast(kOffer, encode(best_[v], distance_[v]));
  }
  // Never halts voluntarily: quiescence (no node improves, so no one
  // sends) makes rounds free in practice, and the budget ends the run.
}

bool bfs_forest_consistent(graph::GraphView g,
                           std::span<const graph::NodeId> parent,
                           std::span<const graph::NodeId> root,
                           std::span<const graph::NodeId> distance) {
  // Reference: components and their minimum ids.
  const graph::Components comps = graph::connected_components(g);
  std::vector<graph::NodeId> min_id(comps.count, ~graph::NodeId{0});
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    min_id[comps.label[v]] = std::min(min_id[comps.label[v]], v);
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (root[v] != min_id[comps.label[v]]) return false;
    if (v == root[v]) {
      if (parent[v] != graph::kNoParent || distance[v] != 0) return false;
    } else {
      const graph::NodeId p = parent[v];
      if (p == graph::kNoParent || !g.has_edge(v, p)) return false;
      if (root[p] != root[v]) return false;
      if (distance[v] != distance[p] + 1) return false;
    }
  }
  return true;
}

BfsRooting::Result BfsRooting::run(graph::GraphView g, std::uint64_t seed,
                                   std::uint32_t round_budget) {
  BfsRooting algorithm(g);
  Network net(g, seed);
  Result result;
  result.stats = net.run(algorithm, round_budget);
  result.parent = algorithm.parent_;
  result.root = algorithm.best_;
  result.distance = algorithm.distance_;
  result.stabilized = bfs_forest_consistent(g, result.parent, result.root,
                                            result.distance);
  result.quiescence_round =
      g.num_nodes() > 0 ? *std::max_element(
                              algorithm.last_improvement_round_.begin(),
                              algorithm.last_improvement_round_.end())
                        : 0;
  return result;
}

}  // namespace arbmis::sim
