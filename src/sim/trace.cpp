#include "sim/trace.h"

#include <ostream>

namespace arbmis::sim {

Network::RoundObserver Trace::observer() {
  return [this](const Network& net, std::uint32_t round) {
    const RoundDelta& delta = net.last_round();
    records_.push_back({round, net.num_halted(), delta.messages,
                        delta.payload_bits, delta.fault_drops,
                        delta.fault_duplicates, delta.fault_crashes,
                        delta.fault_recoveries});
  };
}

std::uint32_t Trace::round_reaching_halted_fraction(
    double fraction, graph::NodeId n) const noexcept {
  // An empty target is met before any round runs, even with no records.
  if (fraction <= 0.0 || n == 0) return 0;
  // More nodes than exist can never halt.
  if (fraction > 1.0) return kNeverReached;
  const double target = fraction * static_cast<double>(n);
  for (const RoundRecord& rec : records_) {
    if (static_cast<double>(rec.halted) >= target) return rec.round;
  }
  return kNeverReached;
}

void Trace::print(std::ostream& out) const {
  for (const RoundRecord& rec : records_) {
    out << "round " << rec.round << ": halted=" << rec.halted
        << " messages=" << rec.messages << " bits=" << rec.payload_bits;
    if (rec.fault_drops > 0 || rec.fault_duplicates > 0 ||
        rec.fault_crashes > 0 || rec.fault_recoveries > 0) {
      out << " faults{drops=" << rec.fault_drops
          << " dups=" << rec.fault_duplicates
          << " crashes=" << rec.fault_crashes
          << " recoveries=" << rec.fault_recoveries << "}";
    }
    out << '\n';
  }
}

}  // namespace arbmis::sim
