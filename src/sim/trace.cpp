#include "sim/trace.h"

#include <ostream>

namespace arbmis::sim {

Network::RoundObserver Trace::observer() {
  return [this](const Network& net, std::uint32_t round) {
    records_.push_back({round, net.num_halted()});
  };
}

std::uint32_t Trace::round_reaching_halted_fraction(
    double fraction, graph::NodeId n) const noexcept {
  const double target = fraction * static_cast<double>(n);
  for (const RoundRecord& rec : records_) {
    if (static_cast<double>(rec.halted) >= target) return rec.round;
  }
  return 0;
}

void Trace::print(std::ostream& out) const {
  for (const RoundRecord& rec : records_) {
    out << "round " << rec.round << ": halted=" << rec.halted << '\n';
  }
}

}  // namespace arbmis::sim
