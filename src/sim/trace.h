// Optional per-round trace: a RoundObserver that snapshots aggregate
// progress (halted counts, message/payload volume, injected-fault events
// from Network::last_round()) and, when verbose, prints one line per
// round. Used by examples/congest_trace and by debugging sessions; cheap
// enough to leave attached in tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/network.h"

namespace arbmis::sim {

class Trace {
 public:
  struct RoundRecord {
    std::uint32_t round = 0;
    graph::NodeId halted = 0;          ///< cumulative halted count
    std::uint64_t messages = 0;        ///< messages consumed this round
    /// Actual bits consumed this round: sum of sim::message_bits() over
    /// the consumed messages (see RoundDelta::payload_bits), not the
    /// nominal messages * kBitsPerMessage.
    std::uint64_t payload_bits = 0;
    std::uint64_t fault_drops = 0;     ///< messages dropped this round
    std::uint64_t fault_duplicates = 0;
    std::uint32_t fault_crashes = 0;   ///< crashes resolved at this barrier
    std::uint32_t fault_recoveries = 0;
  };

  /// Returns an observer bound to this trace. The trace must outlive the
  /// Network::run call.
  Network::RoundObserver observer();

  const std::vector<RoundRecord>& records() const noexcept { return records_; }

  /// Sentinel for "the fraction was never reached in the recorded rounds"
  /// — distinct from round 0, which is a real round (on_start).
  static constexpr std::uint32_t kNeverReached = ~std::uint32_t{0};

  /// First recorded round by which at least `fraction` of the n nodes had
  /// halted. Boundary behavior (pinned by tests/test_sim.cpp):
  ///   - fraction <= 0 or n == 0: the target is empty, trivially met
  ///     before any round — returns 0 even with no records;
  ///   - fraction > 1 (target > n nodes), no records, or target simply
  ///     never met: returns kNeverReached;
  ///   - fraction == 1.0 requires every node halted (no rounding slack).
  std::uint32_t round_reaching_halted_fraction(double fraction,
                                               graph::NodeId n) const noexcept;

  void print(std::ostream& out) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace arbmis::sim
