// Optional per-round trace: a RoundObserver that snapshots aggregate
// progress (halted counts, message/payload volume, injected-fault events
// from Network::last_round()) and, when verbose, prints one line per
// round. Used by examples/congest_trace and by debugging sessions; cheap
// enough to leave attached in tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/network.h"

namespace arbmis::sim {

class Trace {
 public:
  struct RoundRecord {
    std::uint32_t round = 0;
    graph::NodeId halted = 0;          ///< cumulative halted count
    std::uint64_t messages = 0;        ///< messages consumed this round
    std::uint64_t payload_bits = 0;    ///< messages * kBitsPerMessage
    std::uint64_t fault_drops = 0;     ///< messages dropped this round
    std::uint64_t fault_duplicates = 0;
    std::uint32_t fault_crashes = 0;   ///< crashes resolved at this barrier
    std::uint32_t fault_recoveries = 0;
  };

  /// Returns an observer bound to this trace. The trace must outlive the
  /// Network::run call.
  Network::RoundObserver observer();

  const std::vector<RoundRecord>& records() const noexcept { return records_; }

  /// First round by which at least `fraction` of nodes had halted, or 0 if
  /// never reached.
  std::uint32_t round_reaching_halted_fraction(double fraction,
                                               graph::NodeId n) const noexcept;

  void print(std::ostream& out) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace arbmis::sim
