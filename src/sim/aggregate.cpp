#include "sim/aggregate.h"

#include <algorithm>
#include <stdexcept>

#include "sim/bfs_rooting.h"

namespace arbmis::sim {

GlobalAggregate::GlobalAggregate(graph::GraphView g,
                                 std::vector<graph::NodeId> parent,
                                 std::vector<std::uint64_t> value,
                                 AggregateOp op)
    : graph_(g),
      op_(op),
      parent_(std::move(parent)),
      parent_port_(g.num_nodes(), graph::kNoParent),
      child_ports_(g.num_nodes()),
      children_pending_(g.num_nodes(), 0),
      accumulator_(std::move(value)),
      result_(g.num_nodes(), 0),
      sent_up_(g.num_nodes(), false) {
  if (parent_.size() != g.num_nodes() ||
      accumulator_.size() != g.num_nodes()) {
    throw std::invalid_argument("GlobalAggregate: input size mismatch");
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (parent_[v] != graph::kNoParent) {
      parent_port_[v] = g.port_of(v, parent_[v]);
    }
  }
}

std::uint64_t GlobalAggregate::combine(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  switch (op_) {
    case AggregateOp::kSum: return a + b;
    case AggregateOp::kMax: return std::max(a, b);
    case AggregateOp::kMin: return std::min(a, b);
  }
  return a;
}

void GlobalAggregate::on_start(NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (ctx.degree() == 0) {
    result_[v] = accumulator_[v];
    ctx.halt();
    return;
  }
  if (parent_port_[v] != graph::kNoParent) {
    ctx.send(parent_port_[v], kHello, 0);
  }
}

void GlobalAggregate::on_round(NodeContext& ctx,
                               std::span<const Message> inbox) {
  const graph::NodeId v = ctx.id();
  const bool is_root = parent_port_[v] == graph::kNoParent;
  for (const Message& m : inbox) {
    switch (m.tag) {
      case kHello:
        child_ports_[v].push_back(graph_.port_of(v, m.src));
        ++children_pending_[v];
        break;
      case kUp:
        accumulator_[v] = combine(accumulator_[v], m.payload);
        --children_pending_[v];
        break;
      case kDown:
        result_[v] = m.payload;
        for (graph::NodeId port : child_ports_[v]) {
          ctx.send(port, kDown, m.payload);
        }
        ctx.halt();
        return;
      default:
        break;
    }
  }
  // Child discovery completes at round 1; afterwards, report upward (or
  // conclude, for the root) once every child has reported.
  if (ctx.round() >= 2 && !sent_up_[v] && children_pending_[v] == 0) {
    sent_up_[v] = true;
    if (is_root) {
      result_[v] = accumulator_[v];
      for (graph::NodeId port : child_ports_[v]) {
        ctx.send(port, kDown, result_[v]);
      }
      ctx.halt();
      return;
    }
    ctx.send(parent_port_[v], kUp, accumulator_[v]);
  }
}

GlobalAggregate::Result GlobalAggregate::run(graph::GraphView g,
                                             std::vector<std::uint64_t> value,
                                             AggregateOp op,
                                             std::uint64_t seed,
                                             std::uint32_t rooting_budget) {
  if (rooting_budget == 0) rooting_budget = g.num_nodes() + 2;
  const BfsRooting::Result rooting =
      BfsRooting::run(g, seed, rooting_budget);
  if (!rooting.stabilized) {
    throw std::invalid_argument(
        "GlobalAggregate: rooting did not stabilize within the budget");
  }
  GlobalAggregate algorithm(g, rooting.parent, std::move(value), op);
  Network net(g, seed + 1);
  Result result;
  result.stats = rooting.stats;
  // Rooting terminates by quiescence, not by halting; the stabilized check
  // above is its completion criterion, so it counts as a finished stage in
  // the conjunctive all_halted of the composition.
  result.stats.all_halted = true;
  const RunStats aggregate_stats = net.run(algorithm, 1 << 22);
  result.stats.absorb(aggregate_stats);
  result.value = algorithm.result_;
  return result;
}

}  // namespace arbmis::sim
